"""Baselines: Table I matrix, Sia-style auditing + exhaustion, MAC scheme."""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines import (
    CachingCheater,
    MacAuditor,
    MacProver,
    SiaStyleAuditor,
    SiaStyleProver,
    TABLE_I,
    expected_coverage,
    render_table,
)


class TestFeatureMatrix:
    def test_all_paper_systems_present(self):
        names = {row.name for row in TABLE_I}
        for system in ("IPFS", "Swarm", "Storj", "MaidSafe", "Sia",
                       "Filecoin", "ZKCSP", "Hawk", "This work"):
            assert system in names

    def test_this_work_row_matches_demonstrated_properties(self):
        ours = next(row for row in TABLE_I if row.name == "This work")
        assert str(ours.onchain_security) == "o"   # tests/core/test_attacks
        assert str(ours.prover_efficiency) == "o"  # Fig. 8/9 benches
        assert str(ours.storage_guarantee) == "High"

    def test_render(self):
        text = render_table()
        assert "Sia" in text and "Filecoin" in text
        assert len(text.splitlines()) == len(TABLE_I) + 2


class TestSiaStyle:
    @pytest.fixture(scope="class")
    def system(self):
        blocks = [bytes([i]) * 64 for i in range(32)]
        prover = SiaStyleProver(blocks)
        auditor = SiaStyleAuditor(prover.root, prover.num_leaves)
        return blocks, prover, auditor

    def test_honest_round(self, system):
        _, prover, auditor = system
        challenge = auditor.challenge(0, b"rand-0")
        proof = prover.respond(challenge)
        assert auditor.verify(challenge, proof)

    def test_wrong_leaf_rejected(self, system):
        _, prover, auditor = system
        c0 = auditor.challenge(0, b"rand-0")
        c1 = next(
            auditor.challenge(i, b"rand")
            for i in range(1, 50)
            if auditor.challenge(i, b"rand").leaf_index != c0.leaf_index
        )
        assert not auditor.verify(c1, prover.respond(c0))

    def test_proof_leaks_raw_block(self, system):
        """The privacy failure: the on-chain proof contains the block."""
        blocks, prover, auditor = system
        challenge = auditor.challenge(3, b"rand-3")
        proof = prover.respond(challenge)
        assert proof.leaked_block == blocks[challenge.leaf_index]

    def test_trail_larger_than_ours(self, system):
        """Sia-style trail grows with block size + log(n); ours is 288 B."""
        _, prover, auditor = system
        proof = prover.respond(auditor.challenge(0, b"r"))
        assert proof.byte_size() > 64  # leaf alone already 64 B

    def test_exhaustion_attack(self, system):
        """Paper Section II: providers reuse proofs for challenged blocks."""
        _, prover, auditor = system
        cheater = CachingCheater()
        rng = random.Random(4)
        # Honest phase: the cheater scrapes 200 rounds of public trails.
        for round_id in range(200):
            challenge = auditor.challenge(round_id, b"beacon")
            cheater.observe(prover.respond(challenge))
        coverage = cheater.coverage(prover.num_leaves)
        assert coverage > 0.95  # nearly the whole space seen
        cheater.go_rogue()
        # Post-drop: cheater answers from cache alone.
        wins = 0
        for round_id in range(200, 260):
            challenge = auditor.challenge(round_id, b"beacon")
            response = cheater.respond(challenge)
            if response is not None and auditor.verify(challenge, response):
                wins += 1
        assert wins >= 55  # passes almost every audit with no data

    def test_expected_coverage_formula(self):
        assert expected_coverage(32, 0) == 0.0
        assert expected_coverage(32, 200) > 0.99
        assert expected_coverage(32, 10) == pytest.approx(
            1 - (31 / 32) ** 10
        )


class TestMacBaseline:
    def test_honest_rounds(self):
        data = os.urandom(1000)
        auditor = MacAuditor(data, num_challenges=5)
        prover = MacProver(data)
        for _ in range(5):
            challenge = auditor.challenge()
            assert auditor.verify(challenge, prover.respond(challenge))

    def test_challenge_exhaustion(self):
        """Paper Section VIII: 'cannot support unlimited times of challenges'."""
        data = b"x" * 100
        auditor = MacAuditor(data, num_challenges=2)
        prover = MacProver(data)
        for _ in range(2):
            challenge = auditor.challenge()
            assert auditor.verify(challenge, prover.respond(challenge))
        assert auditor.challenges_remaining == 0
        with pytest.raises(RuntimeError):
            auditor.challenge()

    def test_corrupted_data_detected(self):
        data = os.urandom(500)
        auditor = MacAuditor(data, num_challenges=3)
        prover = MacProver(data[:-1] + b"\x00")
        challenge = auditor.challenge()
        assert not auditor.verify(challenge, prover.respond(challenge))

    def test_prover_reads_whole_file_every_round(self):
        """The scalability failure: O(|F|) per audit."""
        data = os.urandom(4096)
        auditor = MacAuditor(data, num_challenges=3)
        prover = MacProver(data)
        for _ in range(3):
            prover.respond(auditor.challenge())
        assert prover.bytes_read_total == 3 * len(data)

    def test_table_storage_accounting(self):
        auditor = MacAuditor(b"d", num_challenges=100)
        assert auditor.table_bytes == 100 * 48
