"""Parallel audit engine: determinism, grouped batching, chain integration."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    BatchItem,
    DataOwner,
    ProtocolParams,
    StorageProvider,
    Verifier,
    corrupt_chunk,
    epoch_challenge,
    verify_batch_grouped,
    verify_sequential,
)
from repro.engine import (
    AuditExecutor,
    AuditInstance,
    EpochScheduler,
    ProveTask,
    VerifyTask,
)
from repro.randomness import HashChainBeacon

PARAMS = ProtocolParams(s=5, k=3)


def _make_fleet(owners: int = 2, files: int = 2, seed: int = 9):
    rng = random.Random(seed)
    instances = []
    for owner_index in range(owners):
        owner = DataOwner(PARAMS, rng=rng)
        for file_index in range(files):
            package = owner.prepare(
                bytes([17 + owner_index * files + file_index]) * 700,
                fresh_keypair=file_index == 0,
            )
            instances.append(
                AuditInstance.from_package(package, owner_id=f"owner-{owner_index}")
            )
    return instances


@pytest.fixture(scope="module")
def fleet():
    return _make_fleet()


def _run_epoch(instances, workers: int):
    with AuditExecutor(instances, workers=workers) as executor:
        scheduler = EpochScheduler(
            executor,
            PARAMS,
            HashChainBeacon(b"engine-test"),
            deterministic=True,  # test-only: makes proofs comparable bytewise
            rng=random.Random(2),
        )
        return scheduler.run_epoch(0)


class TestDeterminism:
    def test_parallel_matches_sequential_bit_for_bit(self, fleet):
        """The headline engine guarantee: pool results == inline results."""
        inline = _run_epoch(fleet, workers=1)
        pooled = _run_epoch(fleet, workers=2)
        assert inline.batch_ok and pooled.batch_ok
        assert inline.proof_bytes() == pooled.proof_bytes()

    def test_production_default_uses_fresh_nonces(self, fleet):
        """deterministic=False (the default): publicly derivable nonces
        would let observers strip the privacy mask, so the same epoch run
        twice must yield different Sigma commitments."""

        def run():
            with AuditExecutor(fleet, workers=1) as executor:
                scheduler = EpochScheduler(
                    executor,
                    PARAMS,
                    HashChainBeacon(b"engine-test"),
                    rng=random.Random(2),
                )
                return scheduler.run_epoch(0)

        first, second = run(), run()
        assert first.batch_ok and second.batch_ok
        assert first.proof_bytes() != second.proof_bytes()

    def test_epochs_produce_distinct_proofs(self, fleet):
        with AuditExecutor(fleet, workers=1) as executor:
            scheduler = EpochScheduler(
                executor,
                PARAMS,
                HashChainBeacon(b"engine-test"),
                deterministic=True,
                rng=random.Random(2),
            )
            first, second = scheduler.run(2)
        assert first.batch_ok and second.batch_ok
        assert first.proof_bytes() != second.proof_bytes()

    def test_shared_evaluation_point_per_epoch(self, fleet):
        beacon = HashChainBeacon(b"engine-test")
        challenges = [
            epoch_challenge(beacon.output(0), PARAMS, instance.name)
            for instance in fleet
        ]
        points = {challenge.point for challenge in challenges}
        assert len(points) == 1
        seeds = {challenge.c1 for challenge in challenges}
        assert len(seeds) == len(fleet)  # per-file challenged sets


class TestGroupedBatchVerify:
    def test_matches_sequential_verdict(self, fleet):
        result = _run_epoch(fleet, workers=1)
        items = [
            BatchItem(
                public=instance.public,
                name=instance.name,
                num_chunks=instance.num_chunks,
                challenge=result.challenges[instance.name],
                proof=outcome.proof(),
            )
            for instance, outcome in zip(fleet, result.outcomes)
        ]
        assert verify_sequential(items)
        assert verify_batch_grouped(items, rng=random.Random(4))

    def test_detects_single_bad_proof(self, fleet):
        result = _run_epoch(fleet, workers=1)
        items = []
        for index, (instance, outcome) in enumerate(zip(fleet, result.outcomes)):
            proof = outcome.proof()
            if index == 1:  # swap in another instance's sigma
                other = result.outcomes[0].proof()
                from repro.core import PrivateProof

                proof = PrivateProof(
                    sigma=other.sigma,
                    y_masked=proof.y_masked,
                    psi=proof.psi,
                    commitment=proof.commitment,
                )
            items.append(
                BatchItem(
                    public=instance.public,
                    name=instance.name,
                    num_chunks=instance.num_chunks,
                    challenge=result.challenges[instance.name],
                    proof=proof,
                )
            )
        assert not verify_batch_grouped(items, rng=random.Random(4))

    def test_detects_data_loss(self):
        """A provider proving over corrupted data fails the grouped check."""
        rng = random.Random(31)
        owner = DataOwner(PARAMS, rng=rng)
        package = owner.prepare(b"\x2a" * 700)
        corrupted = corrupt_chunk(package.chunked, chunk_index=0)
        instance = AuditInstance(
            owner_id="corrupt",
            name=package.name,
            public=package.public,
            chunked=corrupted,
            authenticators=package.authenticators,
        )
        result = _run_epoch([instance], workers=1)
        assert not result.batch_ok


class TestExecutor:
    def test_individual_verify_fanout(self, fleet):
        result = _run_epoch(fleet, workers=1)
        tasks = [
            VerifyTask(
                name=instance.name,
                challenge_bytes=result.challenges[instance.name].to_bytes(),
                k=result.challenges[instance.name].k,
                proof_bytes=outcome.proof_bytes,
            )
            for instance, outcome in zip(fleet, result.outcomes)
        ]
        with AuditExecutor(fleet, workers=1) as executor:
            assert executor.verify(tasks) == [True] * len(tasks)

    def test_unknown_file_rejected(self, fleet):
        with AuditExecutor(fleet, workers=1) as executor:
            task = ProveTask(name=0xDEAD, challenge_bytes=b"\x00" * 48, k=3)
            with pytest.raises(KeyError):
                executor.prove([task])

    def test_duplicate_registration_rejected(self, fleet):
        with pytest.raises(ValueError):
            AuditExecutor([fleet[0], fleet[0]])

    def test_workers_resolution(self, fleet):
        assert AuditExecutor(fleet, workers=3).workers == 3
        assert AuditExecutor(fleet, workers=0).workers >= 1
        with pytest.raises(ValueError):
            AuditExecutor(fleet, workers=-1)


class TestChainIntegration:
    def test_executor_driven_contracts_close_clean(self):
        from repro.chain import (
            Blockchain,
            ContractTerms,
            deploy_audit_contract,
            run_contracts_to_completion,
        )

        rng = random.Random(77)
        owner = DataOwner(PARAMS, rng=rng)
        provider = StorageProvider(rng=rng)
        chain = Blockchain()
        terms = ContractTerms(
            num_audits=2, audit_interval=60.0, response_window=20.0
        )
        deployments, instances = [], []
        for file_index in range(2):
            package = owner.prepare(
                bytes([file_index + 1]) * 600, fresh_keypair=file_index == 0
            )
            assert provider.accept(package)
            instances.append(AuditInstance.from_package(package))
            deployments.append(
                deploy_audit_contract(
                    chain,
                    package,
                    provider,
                    terms,
                    HashChainBeacon(b"chain-engine"),
                    PARAMS,
                )
            )
        with AuditExecutor(instances, workers=1) as executor:
            contracts = run_contracts_to_completion(
                chain, deployments, executor=executor
            )
        for contract in contracts:
            assert contract.passes == 2 and contract.fails == 0
