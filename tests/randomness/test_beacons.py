"""Beacons: determinism, the last-revealer bias attack, the VDF fix."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.randomness import (
    BeaconConsumer,
    BlindLastRevealer,
    CommitRevealBeacon,
    CommitRevealRound,
    HashChainBeacon,
    LastRevealerAttacker,
    MaliciousBeacon,
    TrustedBeacon,
    VdfBeacon,
    WesolowskiVdf,
    combine_reveals,
    hash_to_prime,
)
from repro.randomness.vdf import is_probable_prime


class TestHashChainBeacon:
    def test_deterministic_and_distinct(self):
        beacon = HashChainBeacon(b"seed")
        assert beacon.output(1) == beacon.output(1)
        assert beacon.output(1) != beacon.output(2)
        assert len(beacon.output(0)) == 32

    def test_seed_separation(self):
        assert HashChainBeacon(b"a").output(1) != HashChainBeacon(b"b").output(1)


class TestMaliciousBeacon:
    def test_scripted_rounds_override(self):
        fallback = HashChainBeacon(b"x")
        beacon = MaliciousBeacon({3: b"E" * 32}, fallback)
        assert beacon.output(3) == b"E" * 32
        assert beacon.output(4) == fallback.output(4)
        beacon.script(4, b"F" * 32)
        assert beacon.output(4) == b"F" * 32


class TestCommitReveal:
    def test_protocol_flow(self):
        beacon = CommitRevealBeacon(["a", "b", "c"], b"s")
        assert beacon.output(0) != beacon.output(1)

    def test_reveal_must_match_commitment(self):
        rnd = CommitRevealRound()
        from repro.randomness.commit_reveal import _commitment

        rnd.commit("p", _commitment(b"value", b"salt"))
        rnd.start_reveal()
        with pytest.raises(ValueError):
            rnd.reveal("p", b"other", b"salt")

    def test_double_commit_rejected(self):
        rnd = CommitRevealRound()
        rnd.commit("p", b"c1")
        with pytest.raises(RuntimeError):
            rnd.commit("p", b"c2")

    def test_withholder_forfeits_deposit(self):
        from repro.randomness.commit_reveal import _commitment

        rnd = CommitRevealRound(deposit=42)
        rnd.commit("honest", _commitment(b"v1", b"s1"))
        rnd.commit("cheat", _commitment(b"v2", b"s2"))
        rnd.start_reveal()
        rnd.reveal("honest", b"v1", b"s1")
        rnd.finalize()
        assert rnd.forfeited == {"cheat": 42}

    def test_phase_guards(self):
        rnd = CommitRevealRound()
        with pytest.raises(RuntimeError):
            rnd.reveal("p", b"v", b"s")
        with pytest.raises(RuntimeError):
            rnd.finalize()


class TestLastRevealerBias:
    def test_attack_beats_chance(self):
        rng = random.Random(9)
        attacker = LastRevealerAttacker()
        predicate = lambda out: out[-1] & 1 == 0
        for _ in range(300):
            honest = [rng.randbytes(16) for _ in range(3)]
            attacker.play(honest, rng.randbytes(16), predicate)
        # Two candidate outputs -> ~3/4 success; honest play would be 1/2.
        assert attacker.stats.success_rate > 0.65
        assert attacker.stats.deposits_lost > 0

    def test_attacker_keeps_deposit_when_pointless(self):
        attacker = LastRevealerAttacker()
        attacker.play([b"h" * 16], b"o" * 16, lambda out: False)
        assert attacker.stats.deposits_lost == 0
        assert attacker.stats.successes == 0


class TestVdf:
    @pytest.fixture(scope="class")
    def vdf(self):
        return WesolowskiVdf.from_seed(b"test-vdf", bits=256, delay=128)

    def test_evaluate_verify_roundtrip(self, vdf):
        proof = vdf.evaluate(b"input-1")
        assert vdf.verify(b"input-1", proof)

    def test_wrong_input_rejected(self, vdf):
        proof = vdf.evaluate(b"input-1")
        assert not vdf.verify(b"input-2", proof)

    def test_tampered_output_rejected(self, vdf):
        proof = vdf.evaluate(b"input-3")
        assert not vdf.verify(
            b"input-3", dataclasses.replace(proof, output=proof.output + 1)
        )
        assert not vdf.verify(
            b"input-3", dataclasses.replace(proof, proof=proof.proof + 1)
        )

    def test_deterministic(self, vdf):
        assert vdf.evaluate(b"x").output == vdf.evaluate(b"x").output

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WesolowskiVdf(2, 0)

    def test_hash_to_prime(self):
        prime = hash_to_prime(b"data")
        assert is_probable_prime(prime)
        assert prime.bit_length() == 128
        assert hash_to_prime(b"data") == prime

    def test_miller_rabin_known_values(self):
        assert is_probable_prime(2)
        assert is_probable_prime(97)
        assert is_probable_prime(2**127 - 1)
        assert not is_probable_prime(1)
        assert not is_probable_prime(561)      # Carmichael number
        assert not is_probable_prime(2**16)


class TestVdfBeacon:
    def test_outputs_distinct(self):
        vdf = WesolowskiVdf.from_seed(b"b", bits=256, delay=64)
        beacon = VdfBeacon(vdf, ["a", "b"], b"seed")
        assert beacon.output(0) != beacon.output(1)
        assert beacon.cost_usd == 0.01  # paper: HydRand-style ~ $0.01

    def test_bias_collapses_to_chance(self):
        """The paper's point: a VDF finaliser blinds the last revealer."""
        rng = random.Random(10)
        vdf = WesolowskiVdf.from_seed(b"blind", bits=256, delay=64)
        attacker = BlindLastRevealer(vdf)
        predicate = lambda out: out[-1] & 1 == 0
        for _ in range(150):
            honest = [rng.randbytes(16) for _ in range(3)]
            attacker.play(honest, rng.randbytes(16), predicate)
        assert 0.35 < attacker.stats.success_rate < 0.65


class TestTrustedBeacon:
    def test_signature_verifies(self):
        beacon = TrustedBeacon(b"key", b"seed")
        consumer = BeaconConsumer(b"key")
        signed = beacon.emit(7)
        assert consumer.verify(signed)

    def test_forged_value_rejected(self):
        beacon = TrustedBeacon(b"key", b"seed")
        consumer = BeaconConsumer(b"key")
        signed = beacon.emit(7)
        assert not consumer.verify(dataclasses.replace(signed, value=b"z" * 32))

    def test_wrong_key_rejected(self):
        beacon = TrustedBeacon(b"key", b"seed")
        assert not BeaconConsumer(b"other").verify(beacon.emit(1))


def test_combine_reveals_order_sensitive():
    assert combine_reveals([b"a", b"b"]) != combine_reveals([b"b", b"a"])
