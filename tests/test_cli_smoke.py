"""CLI smoke suite: every documented ``repro`` subcommand runs end to end.

Each case invokes :func:`repro.cli.main` in-process at the smallest sizes
that still exercise the real code paths, and asserts exit code 0 plus the
stdout markers a user would look for.  This is the regression net that
keeps the README/SCENARIOS command lines from rotting: if a subcommand
grows a required flag or changes its output vocabulary, this suite fails
before the docs lie.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

#: (test id, argv, required stdout markers)
CASES = [
    (
        "keygen",
        ["keygen", "--s", "4"],
        ["s = 4", "on-chain pk footprint"],
    ),
    (
        "audit",
        ["audit", "--size", "600", "--rounds", "1", "--s", "4", "--k", "2"],
        ["contract closed", "PASS", "gas="],
    ),
    (
        "engine",
        ["engine", "--owners", "1", "--files", "2", "--epochs", "1",
         "--workers", "1", "--size", "500", "--s", "4", "--k", "3"],
        ["fleet: 1 owners x 2 files", "audits/s", "batch OK"],
    ),
    (
        "engine-lanes",
        ["engine", "--owners", "1", "--files", "2", "--epochs", "1",
         "--workers", "1", "--size", "500", "--s", "4", "--k", "3",
         "--lanes", "2"],
        ["lanes: 2", "batch OK"],
    ),
    (
        "checkpoint",
        ["checkpoint", "--owners", "1", "--files", "2", "--epochs", "1",
         "--workers", "1", "--size", "500", "--s", "4", "--k", "3"],
        ["1 checkpoint tx", "light client", "checkpoint log:"],
    ),
    (
        "checkpoint-fraud",
        ["checkpoint", "--owners", "1", "--files", "2", "--epochs", "1",
         "--workers", "1", "--size", "500", "--s", "4", "--k", "3",
         "--fraud"],
        ["fraud proof", "slashed"],
    ),
    (
        "shard",
        ["shard", "--lanes", "2", "--fleet", "2", "--epochs", "1",
         "--workers", "1", "--size", "500", "--s", "4", "--k", "3"],
        ["fabric: 2 lanes", "super-commitment", "per-lane gas totals:"],
    ),
    (
        "attack-privacy",
        ["attack", "--s", "4", "--k", "2"],
        ["transcripts", "NON-PRIVATE"],
    ),
    (
        "attack-selective",
        ["attack", "--strategy", "selective", "--s", "4", "--k", "3",
         "--epochs", "2", "--trials", "200", "--rho", "0.3"],
        ["selective-storage sampling", "zero false accepts: True"],
    ),
    (
        "attack-onchain",
        ["attack", "--strategy", "replay", "--onchain", "--s", "4", "--k", "3",
         "--rounds", "2"],
        ["chain explorer export"],
    ),
    (
        "lifecycle",
        ["lifecycle", "--years", "0.5", "--epochs-per-year", "2",
         "--files", "1", "--size", "400", "--shards", "3", "--needed", "2",
         "--providers", "6", "--lanes", "2", "--s", "3", "--k", "2"],
        ["lifecycle:", "event trail", "fabric state_hash",
         "all files retrievable: True", "model projection"],
    ),
    (
        "congest",
        ["congest", "--storm", "--griefer", "--lanes", "2", "--blocks", "4",
         "--senders", "4", "--seed", "1"],
        ["congestion:", "priority inversions: 0", "watermark held: True",
         "decayed to floor", "griefer caught: True"],
    ),
    (
        "serve-probe",
        ["serve", "--lanes", "2", "--fleet", "2", "--epochs", "1",
         "--size", "500", "--s", "4", "--k", "3", "--probe",
         "--mine-interval", "0"],
        ["audit service on", "probe node_status", "probe fee_suggest",
         "probe checkpoint_get", "probe: OK"],
    ),
    (
        "serve-probe-concurrent",
        ["serve", "--lanes", "2", "--fleet", "2", "--epochs", "1",
         "--size", "500", "--s", "4", "--k", "3", "--probe",
         "--concurrent", "--mine-interval", "0"],
        ["(concurrent)", "probe: OK"],
    ),
    (
        "serve-probe-metrics",
        ["serve", "--lanes", "2", "--fleet", "2", "--epochs", "1",
         "--size", "500", "--s", "4", "--k", "3", "--probe",
         "--metrics-port", "0", "--mine-interval", "0"],
        ["prometheus metrics on", "probe metrics_get", "probe /metrics",
         "probe: OK"],
    ),
    (
        "top-demo",
        ["top", "--demo", "--iterations", "1"],
        ["repro top @", "epochs", "audits", "mempool depth", "lanes",
         "verify  p50"],
    ),
    (
        "da-sample",
        ["da-sample", "--lanes", "2", "--fleet", "2", "--epochs", "1",
         "--size", "500", "--s", "4", "--k", "3", "--chunks", "16",
         "--data-chunks", "4", "--samples", "12", "--withhold", "0.25",
         "--fraud"],
        ["DA commitments for epoch 0", "available", "DETECTED",
         "reconstruction:", "replay -> consistent", "fraud proof",
         "slashed"],
    ),
    (
        "models",
        ["models", "--users", "1000"],
        ["chain throughput", "users/provider"],
    ),
]


@pytest.mark.parametrize(
    "argv,markers",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_subcommand_runs_clean(argv, markers, capsys):
    assert main(argv) == 0
    out = capsys.readouterr().out
    for marker in markers:
        assert marker in out, f"{argv[0]}: missing stdout marker {marker!r}"


def test_prepare_subcommand(tmp_path, capsys):
    target = tmp_path / "archive.bin"
    target.write_bytes(bytes(range(256)) * 4)
    assert main(["prepare", "--file", str(target), "--s", "4", "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "chunks (s=4)" in out
    assert "public key:" in out


def test_keygen_writes_key_file(tmp_path, capsys):
    out_path = tmp_path / "keys.bin"
    assert main(["keygen", "--s", "3", "--out", str(out_path)]) == 0
    assert out_path.exists() and out_path.stat().st_size > 0
    assert "written to" in capsys.readouterr().out


def test_lifecycle_persist_and_resume(tmp_path, capsys):
    persist = str(tmp_path / "state")
    base = ["lifecycle", "--years", "0.5", "--epochs-per-year", "2",
            "--files", "1", "--size", "400", "--shards", "3", "--needed", "2",
            "--providers", "6", "--lanes", "2", "--s", "3", "--k", "2",
            "--persist", persist]
    assert main(base) == 0
    first = capsys.readouterr().out
    assert main(["lifecycle", "--persist", persist, "--resume"]) == 0
    second = capsys.readouterr().out

    def grab(text, prefix):
        return [line for line in text.splitlines() if line.startswith(prefix)]

    assert grab(first, "fabric state_hash") == grab(second, "fabric state_hash")
    assert grab(first, "event trail") == grab(second, "event trail")


def test_every_documented_subcommand_is_smoked():
    """The parser's command set and this suite must stay in sync."""
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    smoked = {case[1][0] for case in CASES} | {"prepare"}
    assert set(subparsers.choices) == smoked


def test_bad_arguments_exit_nonzero():
    assert main(["checkpoint", "--epochs", "0"]) == 2
    assert main(["shard", "--lanes", "0"]) == 2
    assert main(["lifecycle", "--years", "-1"]) == 2
    assert main(["congest", "--blocks", "0"]) == 2


def test_lifecycle_resume_without_persist_is_rejected(capsys):
    assert main(["lifecycle", "--resume"]) == 2
    assert "requires --persist" in capsys.readouterr().err
