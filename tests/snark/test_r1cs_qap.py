"""Constraint-system builder and the R1CS -> QAP reduction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254.constants import CURVE_ORDER as R
from repro.snark.qap import compute_h_coefficients, r1cs_to_qap
from repro.snark.r1cs import ConstraintSystem, LinearCombination

values = st.integers(min_value=0, max_value=R - 1)


class TestLinearCombination:
    @settings(max_examples=20, deadline=None)
    @given(values, values, values)
    def test_evaluate(self, a, b, c):
        witness = [1, a, b]
        lc = (
            LinearCombination.variable(1, 2)
            + LinearCombination.variable(2, 3)
            + LinearCombination.constant(c)
        )
        assert lc.evaluate(witness) == (2 * a + 3 * b + c) % R

    def test_zero_terms_dropped(self):
        lc = LinearCombination({1: R, 2: 5})
        assert 1 not in lc.terms

    def test_sub_and_scale(self):
        lc = LinearCombination.variable(1) - LinearCombination.variable(1)
        assert lc.is_zero()
        assert LinearCombination.variable(1, 2).scale(3).terms == {1: 6}


class TestConstraintSystem:
    def test_mul_gate(self):
        cs = ConstraintSystem()
        x = cs.private_input(6)
        y = cs.private_input(7)
        z = cs.mul(cs.lc(x), cs.lc(y))
        assert cs.value(z) == 42
        assert cs.is_satisfied()

    def test_unsatisfied_detected(self):
        cs = ConstraintSystem()
        x = cs.private_input(2)
        cs.enforce(cs.lc(x), cs.lc(x), cs.lc(x))  # claims x*x = x, x=2
        assert not cs.is_satisfied()
        assert cs.first_unsatisfied() == 0

    def test_boolean_constraint(self):
        cs = ConstraintSystem()
        b = cs.private_input(1)
        cs.enforce_boolean(b)
        assert cs.is_satisfied()
        cs2 = ConstraintSystem()
        b2 = cs2.private_input(2)
        cs2.enforce_boolean(b2)
        assert not cs2.is_satisfied()

    def test_select_mux(self):
        for bit, expected in ((0, 30), (1, 20)):
            cs = ConstraintSystem()
            b = cs.private_input(bit)
            a = cs.private_input(20)
            c = cs.private_input(30)
            out = cs.select(b, cs.lc(a), cs.lc(c))
            assert out.evaluate(cs.witness) == expected
            assert cs.is_satisfied()

    def test_public_before_private_enforced(self):
        cs = ConstraintSystem()
        cs.private_input(1)
        with pytest.raises(ValueError):
            cs.public_input(2)

    def test_enforce_equal(self):
        cs = ConstraintSystem()
        a = cs.private_input(9)
        cs.enforce_equal(cs.lc(a), LinearCombination.constant(9))
        assert cs.is_satisfied()

    def test_public_values(self):
        cs = ConstraintSystem()
        p = cs.public_input(5)
        cs.private_input(6)
        assert cs.public_values() == [1, 5]


class TestQap:
    def _simple_cs(self, x=3, y=4):
        cs = ConstraintSystem()
        out = cs.public_input(x * y % R)
        a = cs.private_input(x)
        b = cs.private_input(y)
        cs.enforce(cs.lc(a), cs.lc(b), cs.lc(out))
        return cs

    def test_domain_is_power_of_two(self):
        qap = r1cs_to_qap(self._simple_cs())
        assert qap.domain_size & (qap.domain_size - 1) == 0

    def test_h_exists_for_valid_witness(self):
        cs = self._simple_cs()
        qap = r1cs_to_qap(cs)
        h = compute_h_coefficients(qap, cs.witness)
        assert len(h) <= qap.domain_size - 1

    def test_h_rejects_invalid_witness(self):
        cs = self._simple_cs()
        qap = r1cs_to_qap(cs)
        bad = list(cs.witness)
        bad[-1] = (bad[-1] + 1) % R
        with pytest.raises(ValueError):
            compute_h_coefficients(qap, bad)

    def test_divisibility_identity(self):
        """A(x)B(x) - C(x) == H(x) * Z(x) at a random point."""
        from repro.core.polynomial import evaluate

        cs = self._simple_cs(x=11, y=13)
        qap = r1cs_to_qap(cs)
        h = compute_h_coefficients(qap, cs.witness)
        tau = 987654321987654321
        a_val = sum(
            w * evaluate(p, tau) for w, p in zip(cs.witness, qap.a_polys)
        ) % R
        b_val = sum(
            w * evaluate(p, tau) for w, p in zip(cs.witness, qap.b_polys)
        ) % R
        c_val = sum(
            w * evaluate(p, tau) for w, p in zip(cs.witness, qap.c_polys)
        ) % R
        z_val = qap.vanishing_at(tau)
        h_val = evaluate(h, tau)
        assert (a_val * b_val - c_val) % R == h_val * z_val % R
