"""Groth16 end-to-end plus the MiMC/Merkle gadgets."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.crypto.bn254 import G1Point
from repro.crypto.bn254.constants import CURVE_ORDER as R
from repro.crypto.mimc import mimc_hash2
from repro.snark.circuits.merkle_circuit import (
    MerkleCircuitWitness,
    MiMCMerkleTree,
    build_merkle_circuit,
    circuit_constraint_count,
    merkle_root_native,
    sha256_equivalent_constraints,
)
from repro.snark.circuits.mimc_gadget import (
    CONSTRAINTS_PER_PERMUTATION,
    mimc_hash2_gadget,
)
from repro.snark.groth16 import prove, setup, verify
from repro.snark.r1cs import ConstraintSystem


@pytest.fixture(scope="module")
def simple_setup(rng):
    cs = ConstraintSystem()
    out = cs.public_input(21)
    a = cs.private_input(3)
    b = cs.private_input(7)
    cs.enforce(cs.lc(a), cs.lc(b), cs.lc(out))
    return cs, setup(cs, rng=rng)


class TestGroth16:
    def test_valid_proof_verifies(self, simple_setup, rng):
        cs, result = simple_setup
        proof = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        assert verify(result.verifying_key, cs.public_values(), proof)

    def test_other_witness_same_statement(self, simple_setup, rng):
        """21 = 3*7 = 1*21: a different witness for the same public value."""
        cs, result = simple_setup
        other = ConstraintSystem()
        out = other.public_input(21)
        a = other.private_input(1)
        b = other.private_input(21)
        other.enforce(other.lc(a), other.lc(b), other.lc(out))
        proof = prove(result.proving_key, result.qap, other.witness, rng=rng)
        assert verify(result.verifying_key, other.public_values(), proof)

    def test_wrong_public_input_fails(self, simple_setup, rng):
        cs, result = simple_setup
        proof = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        assert not verify(result.verifying_key, [1, 22], proof)

    def test_public_input_length_checked(self, simple_setup, rng):
        cs, result = simple_setup
        proof = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        with pytest.raises(ValueError):
            verify(result.verifying_key, [1, 21, 5], proof)

    def test_tampered_proof_fails(self, simple_setup, rng):
        cs, result = simple_setup
        proof = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        for field_name in ("a", "c"):
            point = getattr(proof, field_name)
            bad = dataclasses.replace(proof, **{field_name: point + G1Point.generator()})
            assert not verify(result.verifying_key, cs.public_values(), bad)

    def test_invalid_witness_cannot_prove(self, simple_setup, rng):
        cs, result = simple_setup
        bad = list(cs.witness)
        bad[-1] = (bad[-1] + 1) % R
        with pytest.raises(ValueError):
            prove(result.proving_key, result.qap, bad, rng=rng)

    def test_zero_knowledge_randomisation(self, simple_setup, rng):
        """Two proofs of the same witness differ (blinding factors)."""
        cs, result = simple_setup
        p1 = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        p2 = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        assert p1.a != p2.a
        assert verify(result.verifying_key, cs.public_values(), p1)
        assert verify(result.verifying_key, cs.public_values(), p2)

    def test_proof_size_constant(self, simple_setup, rng):
        cs, result = simple_setup
        proof = prove(result.proving_key, result.qap, cs.witness, rng=rng)
        assert len(proof.to_bytes()) == 128
        assert proof.byte_size() == 128

    def test_key_sizes_reported(self, simple_setup):
        _, result = simple_setup
        assert result.proving_key.byte_size() > result.verifying_key.byte_size()


class TestMiMCGadget:
    def test_matches_native(self):
        rng = random.Random(5)
        for _ in range(3):
            left, right = rng.randrange(R), rng.randrange(R)
            cs = ConstraintSystem()
            a = cs.private_input(left)
            b = cs.private_input(right)
            out = mimc_hash2_gadget(cs, cs.lc(a), cs.lc(b))
            assert out.evaluate(cs.witness) == mimc_hash2(left, right)
            assert cs.is_satisfied()

    def test_constraint_count(self):
        cs = ConstraintSystem()
        a = cs.private_input(1)
        b = cs.private_input(2)
        mimc_hash2_gadget(cs, cs.lc(a), cs.lc(b))
        assert cs.num_constraints == CONSTRAINTS_PER_PERMUTATION == 364


class TestMerkleCircuit:
    @pytest.fixture(scope="class")
    def tree(self):
        return MiMCMerkleTree([10, 20, 30, 40, 50, 60, 70, 80])

    def test_native_path(self, tree):
        for index in range(8):
            assert (
                merkle_root_native(
                    tree.levels[0][index], tree.siblings(index), index
                )
                == tree.root
            )

    def test_circuit_satisfied_all_indices(self, tree):
        for index in range(8):
            witness = MerkleCircuitWitness(
                root=tree.root,
                leaf_index=index,
                leaf_value=tree.levels[0][index],
                siblings=tree.siblings(index),
            )
            assert build_merkle_circuit(witness).is_satisfied()

    def test_wrong_leaf_unsatisfied(self, tree):
        witness = MerkleCircuitWitness(
            root=tree.root, leaf_index=2,
            leaf_value=tree.levels[0][2] + 1, siblings=tree.siblings(2),
        )
        assert not build_merkle_circuit(witness).is_satisfied()

    def test_wrong_sibling_unsatisfied(self, tree):
        siblings = tree.siblings(4)
        siblings[1] = (siblings[1] + 1) % R
        witness = MerkleCircuitWitness(
            root=tree.root, leaf_index=4,
            leaf_value=tree.levels[0][4], siblings=siblings,
        )
        assert not build_merkle_circuit(witness).is_satisfied()

    def test_constraint_count_prediction(self, tree):
        witness = MerkleCircuitWitness(
            root=tree.root, leaf_index=0,
            leaf_value=tree.levels[0][0], siblings=tree.siblings(0),
        )
        cs = build_merkle_circuit(witness)
        assert cs.num_constraints == circuit_constraint_count(tree.depth)

    def test_sha256_model_matches_paper_order(self):
        """1 KB -> 32 leaves -> depth 5 -> ~2.7e5, the paper's 3e5."""
        assert 2e5 < sha256_equivalent_constraints(5) < 4e5

    def test_non_power_of_two_padded(self):
        tree = MiMCMerkleTree([1, 2, 3])
        assert tree.num_leaves == 4
        assert tree.levels[0][3] == 0

    def test_single_leaf(self):
        tree = MiMCMerkleTree([42])
        assert tree.depth == 0
        assert tree.root == 42

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MiMCMerkleTree([])
