"""The Section IV strawman end to end (tiny file to keep the CRS small)."""

from __future__ import annotations

import pytest

from repro.snark.strawman import StrawmanOwner, StrawmanProver, StrawmanVerifier


@pytest.fixture(scope="module")
def strawman(rng):
    """64-byte file: 3 blocks -> 4 padded leaves -> depth-2 circuit."""
    data = bytes(range(64))
    owner = StrawmanOwner(data, rng=rng)
    setup_result = owner.trusted_setup()
    prover = StrawmanProver(owner.blocks, setup_result, rng=rng)
    verifier = StrawmanVerifier(setup_result)
    return owner, setup_result, prover, verifier


class TestStrawmanAudit:
    def test_honest_round(self, strawman):
        _, _, prover, verifier = strawman
        seed = b"round-1-randomness"
        proof, publics, elapsed = prover.respond(seed)
        assert verifier.verify(seed, proof, publics)
        assert elapsed > 0

    def test_wrong_seed_fails(self, strawman):
        _, _, prover, verifier = strawman
        proof, publics, _ = prover.respond(b"seed-A")
        # Index bits are pinned to the challenge: replaying under another
        # challenge fails unless the PRP happens to pick the same leaf.
        leaf_a = prover.challenge_to_leaf(b"seed-A")
        other = next(
            s for s in (b"seed-B", b"seed-C", b"seed-D", b"seed-E")
            if prover.challenge_to_leaf(s) != leaf_a
        )
        assert not verifier.verify(other, proof, publics)

    def test_forged_publics_fail(self, strawman):
        _, _, prover, verifier = strawman
        seed = b"round-2"
        proof, publics, _ = prover.respond(seed)
        forged = list(publics)
        forged[1] = (forged[1] + 1)
        assert not verifier.verify(seed, proof, forged)

    def test_mismatched_data_rejected_at_init(self, strawman, rng):
        owner, setup_result, _, _ = strawman
        bad_blocks = list(owner.blocks)
        bad_blocks[0] = (bad_blocks[0] + 1)
        with pytest.raises(ValueError):
            StrawmanProver(bad_blocks, setup_result, rng=rng)

    def test_table2_shape(self, strawman):
        """Table II qualitative shape: params MB-ish >> proof, setup cost."""
        _, setup_result, _, _ = strawman
        assert setup_result.param_bytes > 50_000       # >> the HLA pk (~KB)
        assert setup_result.constraint_count > 500
        assert setup_result.sha256_equivalent > setup_result.constraint_count

    def test_exhaustion_attack(self, strawman):
        """Section IV-D: precompute every leaf's proof, drop the data,
        keep passing audits forever."""
        _, _, prover, verifier = strawman
        cached = prover.precompute_all_proofs()
        assert cached == prover.tree.num_leaves
        prover.discard_data()
        for round_index in range(5):
            seed = f"post-drop-{round_index}".encode()
            proof, publics, elapsed = prover.respond(seed)
            assert elapsed == 0.0  # served from cache: no data needed
            assert verifier.verify(seed, proof, publics)
