"""Algebraic invariants of the HLA construction, tested directly.

These pin the *why* behind the protocol: the homomorphism of the
authenticators, the KZG evaluation identity in the exponent, and the
linearity the aggregation relies on.  Small s/k keep group operations
affordable; the algebra is scale-free.
"""

from __future__ import annotations

import pytest

from repro.core import generate_keypair, random_challenge
from repro.core.authenticator import block_digest_point, generate_authenticators
from repro.core.chunking import chunk_file
from repro.core.params import ProtocolParams
from repro.core.polynomial import evaluate, linear_combination, quotient_by_linear
from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    multi_scalar_mul,
    pairing,
    pairing_check,
)


@pytest.fixture(scope="module")
def instance(rng):
    params = ProtocolParams(s=4, k=3)
    keypair = generate_keypair(params.s, rng=rng)
    chunked = chunk_file(bytes(range(256)) * 2, params, name=1234)
    authenticators = generate_authenticators(chunked, keypair)
    return params, keypair, chunked, authenticators


class TestHlaHomomorphism:
    def test_single_authenticator_equation(self, instance):
        """e(sigma_i, g2) == e(g1^{M_i(alpha)} * H_i, eps)."""
        _, keypair, chunked, auths = instance
        g1, g2 = G1Point.generator(), G2Point.generator()
        for index in (0, 1):
            m_alpha = evaluate(chunked.chunks[index], keypair.secret.alpha)
            commitment = g1 * m_alpha + block_digest_point(chunked.name, index)
            assert pairing(auths[index], g2) == pairing(
                commitment, keypair.public.epsilon
            )

    def test_aggregation_is_homomorphic(self, instance):
        """prod sigma_i^{c_i} authenticates the combined polynomial.

        This is the linchpin: the k-term MSM the prover computes equals
        the authenticator of sum_i c_i M_i plus the combined digests.
        """
        _, keypair, chunked, auths = instance
        g1, g2 = G1Point.generator(), G2Point.generator()
        coefficients = [7, 11, 13]
        indices = [0, 1, 2]
        aggregated = multi_scalar_mul([auths[i] for i in indices], coefficients)
        combined_poly = linear_combination(
            [chunked.chunks[i] for i in indices], coefficients
        )
        combined_alpha = evaluate(combined_poly, keypair.secret.alpha)
        chi = multi_scalar_mul(
            [block_digest_point(chunked.name, i) for i in indices], coefficients
        )
        expected_base = g1 * combined_alpha + chi
        assert pairing(aggregated, g2) == pairing(
            expected_base, keypair.public.epsilon
        )

    def test_kzg_identity_in_exponent(self, instance):
        """e(g1^{Q(alpha)}, g2^{alpha - r}) == e(g1^{P(alpha) - P(r)}, g2)."""
        _, keypair, chunked, _ = instance
        g1, g2 = G1Point.generator(), G2Point.generator()
        alpha = keypair.secret.alpha
        poly = list(chunked.chunks[0])
        point = 987654321
        y = evaluate(poly, point)
        quotient = quotient_by_linear(poly, point)
        psi = multi_scalar_mul(
            list(keypair.public.powers[: len(quotient)]), quotient
        )
        lhs_g2 = g2 * ((alpha - point) % CURVE_ORDER)
        value = (evaluate(poly, alpha) - y) % CURVE_ORDER
        assert pairing(psi, lhs_g2) == pairing(g1 * value, g2)

    def test_delta_is_epsilon_to_alpha(self, instance):
        """The verification's G2-side term: delta * eps^{-r} = eps^{alpha-r}."""
        _, keypair, _, _ = instance
        alpha = keypair.secret.alpha
        r = 424242
        combined = keypair.public.delta - keypair.public.epsilon * r
        expected = keypair.public.epsilon * ((alpha - r) % CURVE_ORDER)
        assert combined == expected

    def test_masking_is_affine(self, instance, rng):
        """y' reconstructs y given (zeta, z): the Sigma algebra, no groups."""
        from repro.crypto.bn254 import hash_gt_to_scalar, gt_pow

        _, keypair, _, _ = instance
        y = 123456789
        z = 987654321
        commitment = gt_pow(keypair.public.pairing_base, z)
        zeta = hash_gt_to_scalar(commitment)
        y_masked = (zeta * y + z) % CURVE_ORDER
        recovered = (y_masked - z) * pow(zeta, -1, CURVE_ORDER) % CURVE_ORDER
        assert recovered == y


class TestSerializationFuzz:
    def test_random_bytes_never_crash_g1_decoder(self, rng):
        """Decoder totality: arbitrary 32 bytes either parse or raise."""
        from repro.crypto.bn254 import DeserializationError, g1_from_bytes

        parsed = 0
        for _ in range(300):
            blob = bytes(rng.randrange(256) for _ in range(32))
            try:
                point = g1_from_bytes(blob)
                assert point.is_on_curve()
                parsed += 1
            except DeserializationError:
                pass
        # About half of random x values are on-curve.
        assert 0 < parsed < 300

    def test_random_bytes_never_crash_proof_decoder(self, rng):
        from repro.core.proof import PrivateProof

        for _ in range(60):
            blob = bytes(rng.randrange(256) for _ in range(288))
            try:
                proof = PrivateProof.from_bytes(blob)
                assert proof.sigma.is_on_curve()
                assert proof.psi.is_on_curve()
            except ValueError:
                pass

    def test_random_bytes_never_crash_gt_decoder(self, rng):
        from repro.crypto.bn254 import DeserializationError, gt_from_bytes

        for _ in range(40):
            blob = bytes(rng.randrange(256) for _ in range(192))
            try:
                element = gt_from_bytes(blob)
                # Torus decompression always yields unitary elements.
                assert (element * element.conjugate()).is_one()
            except DeserializationError:
                pass
