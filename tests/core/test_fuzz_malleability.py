"""Adversarial fuzzing: proof malleability and random contract actions.

Soundness means more than "wrong data fails": *no bit manipulation of a
valid proof* may verify, and *no sequence of transactions* may drive the
contract into paying the wrong party or minting value.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chain import (
    Blockchain,
    ContractTerms,
    State,
    Transaction,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.core import (
    DataOwner,
    PrivateProof,
    ProtocolParams,
    Prover,
    StorageProvider,
    Verifier,
    random_challenge,
)
from repro.randomness import HashChainBeacon


@pytest.fixture(scope="module")
def valid_instance(package, accepted_provider, params, rng):
    challenge = random_challenge(params, rng=rng)
    proof = accepted_provider.respond(package.name, challenge)
    verifier = Verifier(package.public, package.name, package.num_chunks)
    assert verifier.verify_private(challenge, proof)
    return challenge, proof, verifier


class TestProofMalleability:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(position=st.integers(min_value=0, max_value=287),
           bit=st.integers(min_value=0, max_value=7))
    def test_single_bit_flips_never_verify(self, valid_instance, position, bit):
        """Flip any single bit of the 288-byte proof: decode error or reject."""
        challenge, proof, verifier = valid_instance
        raw = bytearray(proof.to_bytes())
        raw[position] ^= 1 << bit
        try:
            mutated = PrivateProof.from_bytes(bytes(raw))
        except ValueError:
            return  # refused at decode: fine
        # A decodable mutation may coincidentally re-encode to the same
        # group element (sign-bit of an infinity byte etc.); only a
        # *semantically identical* proof may verify.
        if mutated.to_bytes() == proof.to_bytes():
            return
        assert not verifier.verify_private(challenge, mutated)

    def test_proof_fields_not_interchangeable(self, valid_instance):
        challenge, proof, verifier = valid_instance
        swapped = PrivateProof(
            sigma=proof.psi,
            y_masked=proof.y_masked,
            psi=proof.sigma,
            commitment=proof.commitment,
        )
        assert not verifier.verify_private(challenge, swapped)

    def test_negated_points_fail(self, valid_instance):
        challenge, proof, verifier = valid_instance
        negated = PrivateProof(
            sigma=-proof.sigma,
            y_masked=proof.y_masked,
            psi=proof.psi,
            commitment=proof.commitment,
        )
        assert not verifier.verify_private(challenge, negated)

    def test_commitment_inverse_fails(self, valid_instance):
        challenge, proof, verifier = valid_instance
        inverted = PrivateProof(
            sigma=proof.sigma,
            y_masked=proof.y_masked,
            psi=proof.psi,
            commitment=proof.commitment.conjugate(),
        )
        assert not verifier.verify_private(challenge, inverted)


class TestContractFuzz:
    """Random transaction storms against the Fig. 2 state machine."""

    ACTIONS = ("negotiate", "acknowledge", "reject", "freeze", "submit_proof",
               "trigger_challenge", "trigger_verify")

    def _random_tx(self, chain, address, accounts, fuzz_rng, package):
        sender = fuzz_rng.choice(accounts)
        method = fuzz_rng.choice(self.ACTIONS)
        args: tuple = ()
        value = 0
        if method == "negotiate":
            args = (package.public, package.name, package.num_chunks)
        elif method == "submit_proof":
            args = (bytes(fuzz_rng.randrange(256) for _ in range(288)),)
        elif method == "freeze":
            value = fuzz_rng.choice([0, 10**15, 10**17])
        return Transaction(
            sender=sender, to=address, method=method, args=args, value=value
        )

    def test_random_action_storm_preserves_invariants(self, params, rng):
        fuzz_rng = random.Random(0xF00D)
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x66" * 500)
        provider = StorageProvider(rng=rng)
        assert provider.accept(package)
        chain = Blockchain()
        terms = ContractTerms(num_audits=2, audit_interval=60.0, response_window=20.0)
        deployment = deploy_audit_contract(
            chain, package, provider, terms, HashChainBeacon(b"fuzz"), params
        )
        contract = chain.contract_at(deployment.contract_address)
        accounts = [
            deployment.owner_account,
            deployment.provider_account,
            chain.create_account(5.0, label="outsider"),
        ]
        supply = chain.total_supply()
        for _ in range(120):
            tx = self._random_tx(
                chain, deployment.contract_address, accounts, fuzz_rng, package
            )
            chain.transact(tx)
            if fuzz_rng.random() < 0.3:
                chain.mine_block()
                deployment.provider_agent.on_block()
            # Invariants after every action:
            assert chain.total_supply() == supply, "value minted or burned"
            assert contract.cnt <= terms.num_audits
            assert contract.deposits[deployment.owner_account] >= 0
            assert contract.deposits[deployment.provider_account] >= 0
        # The contract can still finish normally afterwards.
        if contract.state is not State.CLOSED:
            final = run_contract_to_completion(chain, deployment)
            assert final.state is State.CLOSED
        assert chain.total_supply() == supply

    def test_outsider_can_never_extract_funds(self, params, rng):
        fuzz_rng = random.Random(0xCAFE)
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x55" * 400)
        provider = StorageProvider(rng=rng)
        assert provider.accept(package)
        chain = Blockchain()
        terms = ContractTerms(num_audits=1, audit_interval=60.0, response_window=20.0)
        deployment = deploy_audit_contract(
            chain, package, provider, terms, HashChainBeacon(b"fuzz2"), params
        )
        outsider = chain.create_account(2.0, label="thief")
        start_balance = chain.balance_of(outsider)
        for _ in range(60):
            tx = self._random_tx(
                chain, deployment.contract_address, [outsider], fuzz_rng, package
            )
            chain.transact(tx)
        # The outsider paid gas and value transfers but never gained.
        assert chain.balance_of(outsider) <= start_balance
