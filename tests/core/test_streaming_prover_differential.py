"""Differential test: streaming prover ≡ in-memory prover, byte for byte.

The :class:`~repro.core.streaming.StreamingProver` walks the file as a
byte stream in O(s) memory; the in-memory :class:`~repro.core.prover.Prover`
holds every chunk.  For the same challenge (and, in private mode, the same
nonce RNG) the two must produce *byte-identical* proofs across all the
chunk-boundary edge sizes — 0, 1, chunk−1, chunk, chunk+1 and beyond —
and for adversarially small stream pieces (1-byte dribble).
"""

from __future__ import annotations

import random

import pytest

from repro.core import DataOwner, ProtocolParams, StreamingProver
from repro.core.challenge import random_challenge
from repro.core.chunking import chunk_file
from repro.core.prover import Prover
from repro.crypto.field import BLOCK_BYTES

PARAMS = ProtocolParams(s=4, k=3)
CHUNK_BYTES = PARAMS.s * BLOCK_BYTES  # 124 at s=4

#: The chunk-boundary edge sizes the satellite task names (plus the same
#: pattern around the 31-byte block boundary and a multi-chunk tail case).
EDGE_SIZES = (
    1,
    BLOCK_BYTES - 1,
    BLOCK_BYTES,
    BLOCK_BYTES + 1,
    CHUNK_BYTES - 1,
    CHUNK_BYTES,
    CHUNK_BYTES + 1,
    3 * CHUNK_BYTES + 7,
)


def _payload(size: int) -> bytes:
    return bytes((index * 131 + size * 17) % 256 for index in range(size))


def _package(size: int):
    owner = DataOwner(PARAMS, rng=random.Random(size))
    return owner.prepare(_payload(size))


def _stream_factory(data: bytes, piece: int):
    return lambda: [data[i : i + piece] for i in range(0, len(data), piece)]


@pytest.fixture(scope="module")
def packages():
    return {size: _package(size) for size in EDGE_SIZES}


@pytest.mark.parametrize("size", EDGE_SIZES)
def test_plain_proofs_byte_identical(packages, size):
    package = packages[size]
    data = _payload(size)
    memory = Prover(package.chunked, package.public, list(package.authenticators))
    streaming = StreamingProver(
        _stream_factory(data, 13),
        package.public,
        list(package.authenticators),
        PARAMS,
    )
    challenge = random_challenge(PARAMS, rng=random.Random(1000 + size))
    assert (
        memory.respond_plain(challenge).to_bytes()
        == streaming.respond_plain(challenge).to_bytes()
    )


@pytest.mark.parametrize("size", EDGE_SIZES)
def test_private_proofs_byte_identical_with_pinned_nonce(packages, size):
    package = packages[size]
    data = _payload(size)
    memory = Prover(
        package.chunked,
        package.public,
        list(package.authenticators),
        rng=random.Random(42),
    )
    streaming = StreamingProver(
        _stream_factory(data, 7),
        package.public,
        list(package.authenticators),
        PARAMS,
        rng=random.Random(42),
    )
    challenge = random_challenge(PARAMS, rng=random.Random(2000 + size))
    assert (
        memory.respond_private(challenge).to_bytes()
        == streaming.respond_private(challenge).to_bytes()
    )


def test_size_zero_is_rejected_on_both_paths(packages):
    """The 0-byte edge: neither path can audit an empty file."""
    with pytest.raises(ValueError):
        chunk_file(b"", PARAMS, name=1)  # the in-memory preparation path
    package = packages[1]
    with pytest.raises(ValueError):
        StreamingProver(
            lambda: [], package.public, [], PARAMS
        )  # no authenticators
    streaming = StreamingProver(
        lambda: [b""], package.public, list(package.authenticators), PARAMS
    )
    with pytest.raises(ValueError, match="empty stream"):
        streaming.respond_plain(random_challenge(PARAMS, rng=random.Random(3)))


def test_piece_size_does_not_change_the_proof(packages):
    """Dribbling the stream 1 byte at a time yields the same bytes."""
    size = CHUNK_BYTES + 1
    package = packages[size]
    data = _payload(size)
    challenge = random_challenge(PARAMS, rng=random.Random(77))
    reference = None
    for piece in (1, 2, 31, 64, len(data)):
        streaming = StreamingProver(
            _stream_factory(data, piece),
            package.public,
            list(package.authenticators),
            PARAMS,
        )
        encoded = streaming.respond_plain(challenge).to_bytes()
        if reference is None:
            reference = encoded
        assert encoded == reference


def test_stream_shorter_than_authenticators_is_detected(packages):
    size = 3 * CHUNK_BYTES + 7
    package = packages[size]
    data = _payload(size)
    truncated = data[: 2 * CHUNK_BYTES]
    streaming = StreamingProver(
        _stream_factory(truncated, 13),
        package.public,
        list(package.authenticators),
        PARAMS,
    )
    with pytest.raises(ValueError, match="authenticators"):
        streaming.respond_plain(random_challenge(PARAMS, rng=random.Random(5)))


def test_streaming_report_accounts_time(packages):
    from repro.core.prover import ProveReport

    size = CHUNK_BYTES
    package = packages[size]
    data = _payload(size)
    streaming = StreamingProver(
        _stream_factory(data, 16),
        package.public,
        list(package.authenticators),
        PARAMS,
        rng=random.Random(4),
    )
    report = ProveReport()
    streaming.respond_private(
        random_challenge(PARAMS, rng=random.Random(6)), report
    )
    assert report.total_seconds > 0
    assert report.privacy_seconds > 0
