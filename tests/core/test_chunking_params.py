"""Chunking and protocol-parameter tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chunking import ChunkedFile, chunk_file, corrupt_chunk
from repro.core.params import ProtocolParams
from repro.crypto.field import BLOCK_BYTES


class TestParams:
    def test_defaults_match_paper(self):
        params = ProtocolParams()
        assert params.s == 50
        assert params.k == 300
        assert params.challenge_bytes == 48  # Section VII-B

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolParams(s=0)
        with pytest.raises(ValueError):
            ProtocolParams(k=0)
        with pytest.raises(ValueError):
            ProtocolParams(security_bits=100)

    def test_storage_overhead_is_one_over_s(self):
        """Paper: 'extra storage ... is only 1/s of the original data size'."""
        params = ProtocolParams(s=50)
        ratio = params.storage_overhead_ratio()
        assert abs(ratio - 32 / (50 * 31)) < 1e-12
        assert ratio < 1 / 40


class TestChunking:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=600), st.integers(min_value=1, max_value=9))
    def test_roundtrip(self, data, s):
        params = ProtocolParams(s=s, k=1)
        chunked = chunk_file(data, params, name=42)
        assert chunked.to_bytes() == data

    def test_chunk_count(self):
        data = b"\x01" * (31 * 10)  # exactly 10 blocks
        chunked = chunk_file(data, ProtocolParams(s=4, k=1), name=1)
        assert chunked.num_blocks == 10
        assert chunked.num_chunks == 3  # ceil(10/4)
        assert all(len(c) == 4 for c in chunked.chunks)

    def test_last_chunk_padded_with_zeros(self):
        data = b"\xff" * 31
        chunked = chunk_file(data, ProtocolParams(s=3, k=1), name=1)
        assert chunked.chunks[0][1] == 0
        assert chunked.chunks[0][2] == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chunk_file(b"", ProtocolParams(s=2, k=1), name=1)

    def test_blocks_fit_field(self):
        data = b"\xff" * 200
        chunked = chunk_file(data, ProtocolParams(s=5, k=1), name=1)
        from repro.crypto.bn254.constants import CURVE_ORDER

        assert all(
            0 <= block < CURVE_ORDER for chunk in chunked.chunks for block in chunk
        )

    def test_corrupt_chunk_changes_one_block(self):
        data = b"\xaa" * 310
        chunked = chunk_file(data, ProtocolParams(s=5, k=1), name=1)
        corrupted = corrupt_chunk(chunked, 1, 2, delta=9)
        assert corrupted.chunks[1][2] != chunked.chunks[1][2]
        assert corrupted.chunks[0] == chunked.chunks[0]
        assert corrupted.to_bytes() != data

    def test_polynomial_view(self):
        data = bytes(range(62))
        chunked = chunk_file(data, ProtocolParams(s=2, k=1), name=1)
        assert chunked.chunk_polynomial(0) == chunked.chunks[0]
