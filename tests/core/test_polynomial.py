"""Polynomial algebra: the identities the protocol's soundness rests on."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.polynomial import (
    add,
    evaluate,
    evaluate_naive,
    evaluate_on_domain,
    interpolate_on_domain,
    lagrange_interpolate,
    linear_combination,
    mul,
    ntt,
    quotient_by_linear,
    root_of_unity,
    scalar_mul,
    solve_linear_system,
)
from repro.crypto.bn254.constants import CURVE_ORDER as R

coeff = st.integers(min_value=0, max_value=R - 1)
polys = st.lists(coeff, min_size=1, max_size=12)
points = st.integers(min_value=0, max_value=R - 1)


@settings(max_examples=40, deadline=None)
@given(polys, points)
def test_horner_matches_naive(coefficients, x):
    assert evaluate(coefficients, x) == evaluate_naive(coefficients, x)


@settings(max_examples=40, deadline=None)
@given(polys, points)
def test_quotient_identity(coefficients, r):
    """(x - r) * Q(x) + P(r) == P(x): the KZG division property."""
    quotient = quotient_by_linear(coefficients, r)
    reconstructed = add(mul(quotient, [(-r) % R, 1]), [evaluate(coefficients, r)])
    # Compare as functions (pad lengths).
    for x in (0, 1, 7, r, R - 2):
        assert evaluate(reconstructed, x) == evaluate(coefficients, x)


@settings(max_examples=20, deadline=None)
@given(polys, polys, points)
def test_mul_evaluates_correctly(a, b, x):
    assert evaluate(mul(a, b), x) == evaluate(a, x) * evaluate(b, x) % R


@settings(max_examples=20, deadline=None)
@given(polys, polys, points, points)
def test_linear_combination(a, b, c1, c2):
    combo = linear_combination([a, b], [c1, c2])
    for x in (0, 3, 11):
        expected = (c1 * evaluate(a, x) + c2 * evaluate(b, x)) % R
        assert evaluate(combo, x) == expected


def test_linear_combination_mismatched():
    with pytest.raises(ValueError):
        linear_combination([[1]], [1, 2])


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(points, points), min_size=1, max_size=8, unique_by=lambda t: t[0]))
def test_lagrange_interpolation(pts):
    poly = lagrange_interpolate(pts)
    assert len(poly) <= len(pts)
    for x, y in pts:
        assert evaluate(poly, x) == y % R


def test_lagrange_duplicate_x_rejected():
    with pytest.raises(ValueError):
        lagrange_interpolate([(1, 2), (1, 3)])


def test_lagrange_recovers_exact_coefficients():
    """The attack's key step: s evaluations recover a degree s-1 polynomial."""
    poly = [5, 7, 11, 13]
    pts = [(x, evaluate(poly, x)) for x in (2, 4, 8, 16)]
    recovered = lagrange_interpolate(pts)
    assert recovered == poly


class TestLinearSystem:
    def test_identity(self):
        assert solve_linear_system([[1, 0], [0, 1]], [4, 9]) == [4, 9]

    def test_known_solution(self):
        # 2x + y = 12, x + 3y = 16 -> x = 4, y = 4.
        assert solve_linear_system([[2, 1], [1, 3]], [12, 16]) == [4, 4]

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            solve_linear_system([[1, 2], [2, 4]], [3, 6])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            solve_linear_system([[1, 2]], [3])

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.lists(coeff, min_size=3, max_size=3), min_size=3, max_size=3),
           st.lists(coeff, min_size=3, max_size=3))
    def test_solution_satisfies_system(self, matrix, rhs):
        try:
            solution = solve_linear_system(matrix, rhs)
        except ValueError:
            return  # singular, fine
        for row, b in zip(matrix, rhs):
            assert sum(a * x for a, x in zip(row, solution)) % R == b % R


class TestNtt:
    def test_root_of_unity_orders(self):
        for log in (1, 2, 8, 16):
            omega = root_of_unity(1 << log)
            assert pow(omega, 1 << log, R) == 1
            assert pow(omega, 1 << (log - 1), R) != 1

    def test_root_of_unity_invalid(self):
        with pytest.raises(ValueError):
            root_of_unity(3)
        with pytest.raises(ValueError):
            root_of_unity(1 << 29)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(coeff, min_size=8, max_size=8))
    def test_ntt_roundtrip(self, values):
        assert ntt(ntt(values), invert=True) == [v % R for v in values]

    def test_ntt_bad_length(self):
        with pytest.raises(ValueError):
            ntt([1, 2, 3])

    def test_ntt_matches_direct_evaluation(self):
        poly = [3, 1, 4, 1, 5, 9, 2, 6]
        omega = root_of_unity(8)
        evaluations = ntt(poly)
        for i in range(8):
            assert evaluations[i] == evaluate(poly, pow(omega, i, R))

    def test_domain_interpolation_roundtrip(self):
        poly = [17, 0, 3]
        evals = evaluate_on_domain(poly, 8)
        recovered = interpolate_on_domain(evals)
        assert recovered[:3] == poly
        assert all(c == 0 for c in recovered[3:])


def test_scalar_mul_and_add():
    assert scalar_mul([1, 2], 3) == [3, 6]
    assert add([1, 2], [3]) == [4, 2]
    assert add([], [1]) == [1]
