"""The Section V-C privacy attack: works on plain proofs, fails on private."""

from __future__ import annotations

import pytest

from repro.core import (
    EclipseChallengeFactory,
    InterpolationAttacker,
    Prover,
    transcript_from_plain,
    transcript_from_private,
    transcripts_needed,
)
from repro.core.attacks import mask_looks_uniform
from repro.core.params import ProtocolParams


@pytest.fixture(scope="module")
def attack_setup(package, rng):
    params = ProtocolParams(s=6, k=4)
    prover = Prover(
        package.chunked, package.public, list(package.authenticators), rng=rng
    )
    return params, prover


def _run_attack(params, prover, package, respond, to_transcript, rng):
    """Drive the eclipse scenario: k pinned sets x s evaluation points."""
    factory = EclipseChallengeFactory(params, rng=rng)
    attacker = InterpolationAttacker(params, package.chunked.num_chunks)
    c1, _ = factory.fresh_set_seeds()
    target = None
    for _ in range(params.k):
        _, c2 = factory.fresh_set_seeds()
        for _ in range(params.s):
            challenge = factory.challenge(c1, c2)
            proof = respond(challenge)
            attacker.observe(to_transcript(challenge, proof))
            if target is None:
                target = challenge.expand(package.chunked.num_chunks).indices
    return attacker, target


class TestAttackOnPlainProofs:
    def test_full_block_recovery(self, attack_setup, package, rng):
        """s*u transcripts -> every raw block of the challenged chunks."""
        params, prover = attack_setup
        attacker, target = _run_attack(
            params, prover, package, prover.respond_plain, transcript_from_plain, rng
        )
        assert attacker.transcripts_seen == transcripts_needed(params, params.k)
        recovered = attacker.recover_blocks(target)
        assert recovered is not None
        for index in target:
            assert list(package.chunked.chunks[index]) == recovered[index]

    def test_insufficient_transcripts_fail(self, attack_setup, package, rng):
        params, prover = attack_setup
        factory = EclipseChallengeFactory(params, rng=rng)
        attacker = InterpolationAttacker(params, package.chunked.num_chunks)
        c1, c2 = factory.fresh_set_seeds()
        # Only s-1 points for a single set: interpolation impossible.
        target = None
        for _ in range(params.s - 1):
            challenge = factory.challenge(c1, c2)
            attacker.observe(
                transcript_from_plain(challenge, prover.respond_plain(challenge))
            )
            if target is None:
                target = challenge.expand(package.chunked.num_chunks).indices
        assert attacker.recover_combined_polynomials() == []
        assert attacker.recover_blocks(target) is None

    def test_combined_polynomial_matches_ground_truth(
        self, attack_setup, package, rng
    ):
        """Stage 1 alone already leaks linear combinations of blocks."""
        from repro.core.polynomial import linear_combination

        params, prover = attack_setup
        factory = EclipseChallengeFactory(params, rng=rng)
        attacker = InterpolationAttacker(params, package.chunked.num_chunks)
        c1, c2 = factory.fresh_set_seeds()
        for _ in range(params.s):
            challenge = factory.challenge(c1, c2)
            attacker.observe(
                transcript_from_plain(challenge, prover.respond_plain(challenge))
            )
        recovered = attacker.recover_combined_polynomials()
        assert len(recovered) == 1
        combo = recovered[0]
        truth = linear_combination(
            [package.chunked.chunks[i] for i in combo.indices],
            list(combo.coefficients),
        )
        padded = combo.combined_polynomial + [0] * (
            len(truth) - len(combo.combined_polynomial)
        )
        assert padded == truth


class TestAttackOnPrivateProofs:
    def test_attack_recovers_nothing(self, attack_setup, package, rng):
        """The same pipeline on Sigma-masked proofs yields garbage."""
        params, prover = attack_setup
        attacker, target = _run_attack(
            params, prover, package, prover.respond_private,
            transcript_from_private, rng,
        )
        recovered = attacker.recover_blocks(target)
        if recovered is None:
            return  # singular system: even better for privacy
        for index in target:
            assert list(package.chunked.chunks[index]) != recovered[index]

    def test_masked_values_look_uniform(self, attack_setup, package, params, rng):
        from repro.core import random_challenge

        _, prover = attack_setup
        values = []
        challenge = random_challenge(params, rng=rng)
        for _ in range(80):
            values.append(prover.respond_private(challenge).y_masked)
        assert mask_looks_uniform(values)

    def test_mask_uniformity_rejects_constant(self):
        with pytest.raises(ValueError):
            mask_looks_uniform([1] * 10)
        assert not mask_looks_uniform([5] * 100)


def test_transcripts_needed_formula():
    params = ProtocolParams(s=50, k=300)
    assert transcripts_needed(params, 10) == 500
