"""Key generation, public-key validation, authenticator generation/checks."""

from __future__ import annotations

import pytest

from repro.core.authenticator import (
    PreprocessReport,
    authenticator_storage_bytes,
    block_digest_point,
    generate_authenticators,
    validate_authenticator,
    validate_authenticators_batched,
)
from repro.core.chunking import chunk_file, corrupt_chunk
from repro.core.keys import (
    KeyPair,
    PublicKey,
    SecretKey,
    generate_keypair,
    validate_public_key,
    validate_public_key_batched,
)
from repro.core.params import ProtocolParams
from repro.crypto.bn254 import CURVE_ORDER, G1Point, G2Point


class TestKeys:
    def test_structure(self, keypair, params):
        pk = keypair.public
        assert len(pk.powers) == params.s
        assert pk.powers[0] == G1Point.generator()
        assert pk.supports_privacy

    def test_powers_are_consecutive(self, keypair):
        alpha = keypair.secret.alpha
        g1 = G1Point.generator()
        power = 1
        for point in keypair.public.powers:
            assert point == g1 * power
            power = power * alpha % CURVE_ORDER

    def test_epsilon_delta_relation(self, keypair):
        g2 = G2Point.generator()
        sk = keypair.secret
        assert keypair.public.epsilon == g2 * sk.x
        assert keypair.public.delta == g2 * (sk.alpha * sk.x % CURVE_ORDER)

    def test_validate_public_key(self, keypair):
        assert validate_public_key(keypair.public)

    def test_validate_public_key_batched(self, keypair, rng):
        assert validate_public_key_batched(keypair.public, rng=rng)

    def test_forged_powers_rejected(self, keypair, rng):
        """An owner publishing inconsistent powers must be caught at ACK."""
        tampered = list(keypair.public.powers)
        tampered[2] = tampered[2] + G1Point.generator()
        forged = PublicKey(
            epsilon=keypair.public.epsilon,
            delta=keypair.public.delta,
            powers=tuple(tampered),
            pairing_base=keypair.public.pairing_base,
        )
        assert not validate_public_key(forged)
        assert not validate_public_key_batched(forged, rng=rng)

    def test_forged_pairing_base_rejected(self, keypair, rng):
        forged = PublicKey(
            epsilon=keypair.public.epsilon,
            delta=keypair.public.delta,
            powers=keypair.public.powers,
            pairing_base=keypair.public.pairing_base * keypair.public.pairing_base,
        )
        assert not validate_public_key_batched(forged, rng=rng)

    def test_serialization_roundtrip(self, keypair):
        data = keypair.public.to_bytes()
        restored = PublicKey.from_bytes(data)
        assert restored.epsilon == keypair.public.epsilon
        assert restored.delta == keypair.public.delta
        assert restored.powers == keypair.public.powers
        assert restored.pairing_base == keypair.public.pairing_base

    def test_byte_size_formula(self, keypair, params):
        """Fig. 4 accounting: 2 G2 + s G1 + name + GT (privacy)."""
        expected = 2 * 64 + params.s * 32 + 32 + 192
        assert keypair.public.byte_size() == expected

    def test_no_privacy_key_smaller(self, params, rng):
        kp = generate_keypair(params.s, private_auditing=False, rng=rng)
        assert kp.public.byte_size() + 192 == 2 * 64 + params.s * 32 + 32 + 192
        assert not kp.public.supports_privacy
        with pytest.raises(ValueError):
            kp.public.gt_table()

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            generate_keypair(0)


class TestAuthenticators:
    def test_generation_and_batch_validation(self, package, rng):
        assert validate_authenticators_batched(
            package.chunked, list(package.authenticators), package.public, rng=rng
        )

    def test_single_validation(self, package):
        assert validate_authenticator(
            package.chunked.chunks[0],
            0,
            package.authenticators[0],
            package.public,
            package.name,
        )

    def test_wrong_index_fails(self, package):
        assert not validate_authenticator(
            package.chunked.chunks[0],
            1,  # wrong index: digest H(name||1) won't match
            package.authenticators[0],
            package.public,
            package.name,
        )

    def test_tampered_chunk_fails_validation(self, package, rng):
        bad = corrupt_chunk(package.chunked, 0)
        assert not validate_authenticators_batched(
            bad, list(package.authenticators), package.public, rng=rng
        )

    def test_tampered_authenticator_fails(self, package, rng):
        tampered = list(package.authenticators)
        tampered[1] = tampered[1] + G1Point.generator()
        assert not validate_authenticators_batched(
            package.chunked, tampered, package.public, rng=rng
        )

    def test_wrong_count_fails(self, package, rng):
        assert not validate_authenticators_batched(
            package.chunked,
            list(package.authenticators[:-1]),
            package.public,
            rng=rng,
        )

    def test_naive_mode_matches_horner(self, params, rng, file_bytes, keypair):
        chunked = chunk_file(file_bytes[:200], params, name=77)
        fast = generate_authenticators(chunked, keypair, mode="horner")
        slow = generate_authenticators(chunked, keypair, mode="naive")
        assert fast == slow

    def test_report_populated(self, params, rng, keypair):
        chunked = chunk_file(b"\x42" * 400, params, name=88)
        report = PreprocessReport()
        generate_authenticators(chunked, keypair, report=report)
        assert report.num_chunks == chunked.num_chunks
        assert report.total_seconds > 0
        assert report.ecc_seconds > 0

    def test_digest_points_distinct(self):
        points = {
            block_digest_point(5, i).to_affine() for i in range(10)
        }
        assert len(points) == 10

    def test_storage_accounting(self):
        assert authenticator_storage_bytes(100) == 3200
