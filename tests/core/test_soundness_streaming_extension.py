"""Theorem-1 extractors, streaming preprocessing, append-only extension."""

from __future__ import annotations

import pytest

from repro.core import (
    DataOwner,
    ProtocolParams,
    StorageProvider,
    Verifier,
    random_challenge,
)
from repro.core.authenticator import generate_authenticators
from repro.core.chunking import chunk_file
from repro.core.extension import AppendError, append_data, overwrite_refused
from repro.core.keys import generate_keypair
from repro.core.params import ProtocolParams
from repro.core.prover import Prover
from repro.core.soundness import (
    ForkingProver,
    extract_masked_evaluation,
    knowledge_error_bound,
    verify_extraction,
)
from repro.core.streaming import stream_authenticators, stream_summary


class TestSpecialSoundness:
    @pytest.fixture(scope="class")
    def forking_prover(self, package, rng):
        return ForkingProver(
            package.chunked, package.public, list(package.authenticators), rng=rng
        )

    def test_extractor_recovers_y_and_z(self, forking_prover, params, rng):
        challenge = random_challenge(params, rng=rng)
        transcripts = forking_prover.respond_forked(challenge)
        y, z = extract_masked_evaluation(transcripts)
        assert verify_extraction(transcripts, forking_prover, y, z)

    def test_forked_transcripts_differ_only_in_y(self, forking_prover, params, rng):
        challenge = random_challenge(params, rng=rng)
        transcripts = forking_prover.respond_forked(challenge)
        assert transcripts.proof_one.sigma == transcripts.proof_two.sigma
        assert transcripts.proof_one.psi == transcripts.proof_two.psi
        assert transcripts.proof_one.commitment == transcripts.proof_two.commitment
        assert transcripts.proof_one.y_masked != transcripts.proof_two.y_masked

    def test_same_zeta_rejected(self, forking_prover, params, rng):
        import dataclasses

        challenge = random_challenge(params, rng=rng)
        transcripts = forking_prover.respond_forked(challenge)
        broken = dataclasses.replace(transcripts, zeta_two=transcripts.zeta_one)
        with pytest.raises(ValueError):
            extract_masked_evaluation(broken)

    def test_mismatched_commitments_rejected(self, forking_prover, params, rng):
        import dataclasses

        c1 = random_challenge(params, rng=rng)
        c2 = random_challenge(params, rng=rng)
        t1 = forking_prover.respond_forked(c1)
        t2 = forking_prover.respond_forked(c2)
        mixed = dataclasses.replace(t1, proof_two=t2.proof_two)
        with pytest.raises(ValueError):
            extract_masked_evaluation(mixed)

    def test_wrong_extraction_detected(self, forking_prover, params, rng):
        challenge = random_challenge(params, rng=rng)
        transcripts = forking_prover.respond_forked(challenge)
        y, z = extract_masked_evaluation(transcripts)
        assert not verify_extraction(transcripts, forking_prover, y + 1, z)
        assert not verify_extraction(transcripts, forking_prover, y, z + 1)

    def test_knowledge_error_negligible(self):
        assert knowledge_error_bound(10**6) < 2**-200


class TestStreaming:
    def test_matches_in_memory_path(self, rng):
        params = ProtocolParams(s=5, k=2)
        keypair = generate_keypair(params.s, rng=rng)
        data = bytes(range(256)) * 3
        chunked = chunk_file(data, params, name=404)
        expected = generate_authenticators(chunked, keypair)
        # Feed the stream in awkward piece sizes.
        pieces = [data[i : i + 37] for i in range(0, len(data), 37)]
        streamed = dict(
            stream_authenticators(iter(pieces), keypair, params, name=404)
        )
        assert len(streamed) == len(expected)
        for index, sigma in enumerate(expected):
            assert streamed[index] == sigma

    def test_streamed_authenticators_audit_correctly(self, rng):
        params = ProtocolParams(s=4, k=3)
        keypair = generate_keypair(params.s, rng=rng)
        data = b"streamed archive contents " * 20
        chunked = chunk_file(data, params, name=505)
        auths = [
            sigma
            for _, sigma in stream_authenticators(
                iter([data]), keypair, params, name=505
            )
        ]
        prover = Prover(chunked, keypair.public, auths, rng=rng)
        verifier = Verifier(keypair.public, 505, chunked.num_chunks)
        challenge = random_challenge(params, rng=rng)
        assert verifier.verify_private(challenge, prover.respond_private(challenge))

    def test_summary_accounting(self):
        params = ProtocolParams(s=4, k=1)
        pieces = [b"x" * 100, b"y" * 55]
        summary = stream_summary(iter(pieces), params, name=1)
        assert summary.byte_length == 155
        assert summary.num_chunks == ((155 + 30) // 31 + 3) // 4

    def test_empty_stream(self):
        params = ProtocolParams(s=4, k=1)
        summary = stream_summary(iter([]), params, name=1)
        assert summary.byte_length == 0
        assert summary.num_chunks == 1  # floor for the empty edge


class TestAppendOnlyExtension:
    @pytest.fixture()
    def aligned_setup(self, rng):
        params = ProtocolParams(s=4, k=3)
        owner = DataOwner(params, rng=rng)
        aligned_len = params.s * 31 * 5  # exactly 5 chunks
        package = owner.prepare(b"\xAB" * aligned_len)
        return params, owner, package

    def test_append_and_audit(self, aligned_setup, rng):
        params, owner, package = aligned_setup
        extended = append_data(package, owner.keypair, b"\xCD" * 200, params)
        assert extended.num_chunks > package.num_chunks
        assert extended.chunked.to_bytes().startswith(b"\xAB" * 100)
        assert extended.chunked.to_bytes().endswith(b"\xCD" * 200)
        # Old authenticators reused verbatim.
        assert extended.authenticators[: package.num_chunks] == package.authenticators
        # The provider can validate and answer audits over the whole file.
        provider = StorageProvider(rng=rng)
        assert provider.accept(extended)
        verifier = Verifier(extended.public, extended.name, extended.num_chunks)
        challenge = random_challenge(params, rng=rng)
        proof = provider.respond(extended.name, challenge)
        assert verifier.verify_private(challenge, proof)

    def test_double_append(self, aligned_setup, rng):
        params, owner, package = aligned_setup
        once = append_data(package, owner.keypair, b"\x01" * (params.s * 31), params)
        twice = append_data(once, owner.keypair, b"\x02" * 50, params)
        provider = StorageProvider(rng=rng)
        assert provider.accept(twice)

    def test_unaligned_original_rejected(self, rng):
        params = ProtocolParams(s=4, k=2)
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x11" * 100)  # not chunk-aligned
        with pytest.raises(AppendError):
            append_data(package, owner.keypair, b"\x22" * 10, params)

    def test_empty_append_rejected(self, aligned_setup):
        params, owner, package = aligned_setup
        with pytest.raises(AppendError):
            append_data(package, owner.keypair, b"", params)

    def test_foreign_keypair_rejected(self, aligned_setup, rng):
        params, _, package = aligned_setup
        other = generate_keypair(params.s, rng=rng)
        with pytest.raises(AppendError):
            append_data(package, other, b"\x33" * 10, params)

    def test_overwrite_always_refused(self, aligned_setup):
        _, _, package = aligned_setup
        with pytest.raises(AppendError):
            overwrite_refused(package, 0)
