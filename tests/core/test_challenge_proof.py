"""Challenge expansion and proof codecs (exact paper byte sizes)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.challenge import Challenge, challenge_from_beacon, random_challenge
from repro.core.params import ProtocolParams
from repro.core.proof import (
    PLAIN_PROOF_BYTES,
    PRIVATE_PROOF_BYTES,
    PlainProof,
    PrivateProof,
)


class TestChallenge:
    def test_size_is_48_bytes(self, params):
        challenge = random_challenge(params)
        assert challenge.byte_size() == 48  # Section VII-B
        assert len(challenge.to_bytes()) == 48

    def test_roundtrip(self, params, rng):
        challenge = random_challenge(params, rng=rng)
        restored = Challenge.from_bytes(challenge.to_bytes(), k=params.k)
        assert restored == challenge

    def test_expansion_deterministic(self, params, rng):
        challenge = random_challenge(params, rng=rng)
        a = challenge.expand(40)
        b = challenge.expand(40)
        assert a.indices == b.indices
        assert a.coefficients == b.coefficients
        assert a.point == b.point

    def test_indices_distinct_and_in_range(self, params, rng):
        challenge = random_challenge(params, rng=rng)
        expanded = challenge.expand(37)
        assert len(set(expanded.indices)) == len(expanded.indices)
        assert all(0 <= i < 37 for i in expanded.indices)

    def test_k_clamped_to_num_chunks(self, rng):
        params = ProtocolParams(s=4, k=100)
        challenge = random_challenge(params, rng=rng)
        expanded = challenge.expand(7)
        assert expanded.k == 7

    def test_different_seeds_different_sets(self, params, rng):
        c1 = random_challenge(params, rng=rng)
        c2 = random_challenge(params, rng=rng)
        assert (
            c1.expand(50).indices != c2.expand(50).indices
            or c1.expand(50).coefficients != c2.expand(50).coefficients
        )

    def test_from_beacon_deterministic(self, params):
        a = challenge_from_beacon(b"\x01" * 32, params)
        b = challenge_from_beacon(b"\x01" * 32, params)
        assert a == b
        assert a.byte_size() == 48

    def test_mismatched_seed_lengths_rejected(self):
        with pytest.raises(ValueError):
            Challenge(c1=b"\x00" * 16, c2=b"\x00" * 16, r_seed=b"\x00" * 8, k=3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Challenge(c1=b"\x00" * 16, c2=b"\x00" * 16, r_seed=b"\x00" * 16, k=0)


class TestProofCodecs:
    def test_sizes_match_paper(self, accepted_provider, package, params, rng):
        prover = accepted_provider.prover_for(package.name)
        challenge = random_challenge(params, rng=rng)
        plain = prover.respond_plain(challenge)
        private = prover.respond_private(challenge)
        assert len(plain.to_bytes()) == PLAIN_PROOF_BYTES == 96
        assert len(private.to_bytes()) == PRIVATE_PROOF_BYTES == 288

    def test_plain_roundtrip(self, accepted_provider, package, params, rng):
        prover = accepted_provider.prover_for(package.name)
        proof = prover.respond_plain(random_challenge(params, rng=rng))
        assert PlainProof.from_bytes(proof.to_bytes()) == proof

    def test_private_roundtrip(self, accepted_provider, package, params, rng):
        prover = accepted_provider.prover_for(package.name)
        proof = prover.respond_private(random_challenge(params, rng=rng))
        restored = PrivateProof.from_bytes(proof.to_bytes())
        assert restored.sigma == proof.sigma
        assert restored.y_masked == proof.y_masked
        assert restored.psi == proof.psi
        assert restored.commitment == proof.commitment

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            PlainProof.from_bytes(b"\x00" * 95)
        with pytest.raises(ValueError):
            PrivateProof.from_bytes(b"\x00" * 287)

    def test_noncanonical_scalar_rejected(self):
        data = bytearray(288)
        data[0] = 0x80  # sigma = infinity (valid)
        data[32:64] = b"\xff" * 32  # y' >= r
        data[64] = 0x80  # psi = infinity
        with pytest.raises(ValueError):
            PrivateProof.from_bytes(bytes(data))
