"""The protocol's core guarantees: completeness, soundness, detection.

These tests exercise paper Theorems 1 and 2 operationally: honest proofs
always verify (completeness); every cheating strategy we implement fails
(soundness); corruption of challenged data is detected.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    CheatingProver,
    ProveReport,
    Prover,
    Verifier,
    VerifyReport,
    corrupt_chunk,
    generate_keypair,
    random_challenge,
)
from repro.core.chunking import chunk_file
from repro.core.params import ProtocolParams
from repro.core.proof import PrivateProof
from repro.crypto.bn254 import G1Point


@pytest.fixture(scope="module")
def verifier(package):
    return Verifier(package.public, package.name, package.chunked.num_chunks)


@pytest.fixture(scope="module")
def prover(package, rng):
    return Prover(
        package.chunked, package.public, list(package.authenticators), rng=rng
    )


class TestCompleteness:
    def test_private_proof_verifies(self, prover, verifier, params, rng):
        for _ in range(3):
            challenge = random_challenge(params, rng=rng)
            proof = prover.respond_private(challenge)
            assert verifier.verify_private(challenge, proof)

    def test_plain_proof_verifies(self, prover, verifier, params, rng):
        challenge = random_challenge(params, rng=rng)
        assert verifier.verify_plain(challenge, prover.respond_plain(challenge))

    def test_proof_survives_serialization(self, prover, verifier, params, rng):
        """What the contract actually verifies is the deserialized bytes."""
        challenge = random_challenge(params, rng=rng)
        proof = prover.respond_private(challenge)
        restored = PrivateProof.from_bytes(proof.to_bytes())
        assert verifier.verify_private(challenge, restored)

    def test_reports_populated(self, prover, verifier, params, rng):
        challenge = random_challenge(params, rng=rng)
        prove_report = ProveReport()
        verify_report = VerifyReport()
        proof = prover.respond_private(challenge, prove_report)
        assert verifier.verify_private(challenge, proof, verify_report)
        assert prove_report.zp_seconds > 0
        assert prove_report.ecc_seconds > 0
        assert prove_report.privacy_seconds > 0
        assert verify_report.pairing_seconds > 0
        assert verify_report.hash_seconds > 0

    def test_sigma_commitments_fresh_per_proof(self, prover, params, rng):
        """Zero-knowledge hygiene: same challenge, different R and y'."""
        challenge = random_challenge(params, rng=rng)
        p1 = prover.respond_private(challenge)
        p2 = prover.respond_private(challenge)
        assert p1.commitment != p2.commitment
        assert p1.y_masked != p2.y_masked
        assert p1.sigma == p2.sigma  # the deterministic parts agree


class TestSoundness:
    def test_corrupted_challenged_chunk_fails(self, package, verifier, params, rng):
        challenge = random_challenge(params, rng=rng)
        target = challenge.expand(package.chunked.num_chunks).indices[0]
        bad = corrupt_chunk(package.chunked, target)
        cheater = Prover(bad, package.public, list(package.authenticators), rng=rng)
        assert not verifier.verify_private(challenge, cheater.respond_private(challenge))

    def test_unchallenged_corruption_not_detected_single_round(
        self, package, verifier, params, rng
    ):
        """Detection is probabilistic: an untouched chunk can hide (that is
        exactly why k is sized by the confidence model)."""
        challenge = random_challenge(params, rng=rng)
        expanded = challenge.expand(package.chunked.num_chunks)
        untouched = next(
            i for i in range(package.chunked.num_chunks) if i not in expanded.indices
        )
        bad = corrupt_chunk(package.chunked, untouched)
        cheater = Prover(bad, package.public, list(package.authenticators), rng=rng)
        assert verifier.verify_private(challenge, cheater.respond_private(challenge))

    def test_cheating_strategies_fail(self, package, verifier, params, rng):
        challenge = random_challenge(params, rng=rng)
        target = challenge.expand(package.chunked.num_chunks).indices[0]
        bad = corrupt_chunk(package.chunked, target)
        for strategy in ("zero-fill", "random-sigma"):
            cheater = CheatingProver(
                bad, package.public, list(package.authenticators),
                rng=rng, strategy=strategy,
            )
            assert not verifier.verify_private(
                challenge, cheater.respond_private(challenge)
            ), strategy

    def test_stale_proof_rejected(self, package, verifier, params, rng):
        cheater = CheatingProver(
            package.chunked, package.public, list(package.authenticators),
            rng=rng, strategy="stale-proof",
        )
        c1 = random_challenge(params, rng=rng)
        assert verifier.verify_private(c1, cheater.respond_private(c1))
        c2 = random_challenge(params, rng=rng)
        assert not verifier.verify_private(c2, cheater.respond_private(c2))

    def test_proof_for_other_challenge_fails(self, prover, verifier, params, rng):
        c1 = random_challenge(params, rng=rng)
        c2 = random_challenge(params, rng=rng)
        proof = prover.respond_private(c1)
        assert not verifier.verify_private(c2, proof)

    def test_tampered_fields_fail(self, prover, verifier, params, rng):
        challenge = random_challenge(params, rng=rng)
        proof = prover.respond_private(challenge)
        tampered = [
            dataclasses.replace(proof, sigma=proof.sigma + G1Point.generator()),
            dataclasses.replace(proof, psi=proof.psi + G1Point.generator()),
            dataclasses.replace(proof, y_masked=(proof.y_masked + 1)),
            dataclasses.replace(
                proof, commitment=proof.commitment * proof.commitment
            ),
        ]
        for bad in tampered:
            assert not verifier.verify_private(challenge, bad)

    def test_wrong_key_fails(self, package, params, rng):
        other = generate_keypair(params.s, rng=rng)
        wrong_verifier = Verifier(other.public, package.name, package.chunked.num_chunks)
        prover = Prover(
            package.chunked, package.public, list(package.authenticators), rng=rng
        )
        challenge = random_challenge(params, rng=rng)
        assert not wrong_verifier.verify_private(
            challenge, prover.respond_private(challenge)
        )

    def test_wrong_name_fails(self, package, verifier, params, rng):
        wrong = Verifier(package.public, package.name + 1, package.chunked.num_chunks)
        prover = Prover(
            package.chunked, package.public, list(package.authenticators), rng=rng
        )
        challenge = random_challenge(params, rng=rng)
        assert not wrong.verify_private(challenge, prover.respond_private(challenge))


class TestEdgeCases:
    def test_single_chunk_file(self, params, rng):
        kp = generate_keypair(params.s, rng=rng)
        chunked = chunk_file(b"tiny", params, name=3)
        assert chunked.num_chunks == 1
        from repro.core.authenticator import generate_authenticators

        auths = generate_authenticators(chunked, kp)
        prover = Prover(chunked, kp.public, auths, rng=rng)
        verifier = Verifier(kp.public, 3, 1)
        challenge = random_challenge(params, rng=rng)
        assert verifier.verify_private(challenge, prover.respond_private(challenge))

    def test_s_equals_one(self, rng):
        """The degenerate 'w/o s parameter' configuration of Fig. 7."""
        params = ProtocolParams(s=1, k=3)
        kp = generate_keypair(1, rng=rng)
        chunked = chunk_file(b"\x05" * 93, params, name=9)  # 3 blocks
        from repro.core.authenticator import generate_authenticators

        auths = generate_authenticators(chunked, kp)
        prover = Prover(chunked, kp.public, auths, rng=rng)
        verifier = Verifier(kp.public, 9, chunked.num_chunks)
        challenge = random_challenge(params, rng=rng)
        assert verifier.verify_private(challenge, prover.respond_private(challenge))

    def test_prover_requires_matching_authenticators(self, package, rng):
        with pytest.raises(ValueError):
            Prover(
                package.chunked,
                package.public,
                list(package.authenticators[:-1]),
                rng=rng,
            )

    def test_plain_prover_with_nonprivate_key(self, params, rng):
        kp = generate_keypair(params.s, private_auditing=False, rng=rng)
        chunked = chunk_file(b"\x01" * 100, params, name=4)
        from repro.core.authenticator import generate_authenticators

        auths = generate_authenticators(chunked, kp)
        prover = Prover(chunked, kp.public, auths, rng=rng)
        challenge = random_challenge(params, rng=rng)
        verifier = Verifier(kp.public, 4, chunked.num_chunks)
        assert verifier.verify_plain(challenge, prover.respond_plain(challenge))
        with pytest.raises(ValueError):
            prover.respond_private(challenge)
