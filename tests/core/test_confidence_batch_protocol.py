"""Confidence model (Fig. 9 schedule), batch auditing, high-level roles."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BatchItem,
    DataOwner,
    OffchainAuditSession,
    StorageProvider,
    detection_probability,
    detection_probability_exact,
    figure9_k_schedule,
    random_challenge,
    required_challenges,
    verify_batch,
    verify_sequential,
)
from repro.core.params import ProtocolParams


class TestConfidence:
    def test_paper_k300_gives_95_percent(self):
        """Section VI-A: k=300 -> 95% assurance at 1% tampering."""
        assert detection_probability(300, 0.01) >= 0.95

    def test_paper_schedule(self):
        schedule = figure9_k_schedule()
        assert schedule[0.91] == 240        # paper: 240
        assert schedule[0.95] in (298, 299, 300)  # paper rounds to 300
        assert schedule[0.99] in (458, 459, 460)  # paper: 460

    def test_required_challenges_inverse(self):
        for confidence in (0.5, 0.9, 0.99):
            k = required_challenges(confidence, 0.01)
            assert detection_probability(k, 0.01) >= confidence
            assert detection_probability(k - 1, 0.01) < confidence

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=1000))
    def test_monotone_in_k(self, k):
        assert detection_probability(k + 1, 0.01) >= detection_probability(k, 0.01)

    def test_exact_dominates_binomial(self):
        """Sampling without replacement detects at least as well."""
        n, corrupted, k = 1000, 10, 300
        exact = detection_probability_exact(n, corrupted, k)
        approx = detection_probability(k, corrupted / n)
        assert exact >= approx - 1e-12

    def test_exact_edge_cases(self):
        assert detection_probability_exact(100, 0, 50) == 0.0
        assert detection_probability_exact(100, 60, 50) == 1.0
        assert detection_probability_exact(10, 1, 10) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            detection_probability(-1, 0.5)
        with pytest.raises(ValueError):
            detection_probability(10, 1.5)
        with pytest.raises(ValueError):
            required_challenges(1.0, 0.01)


class TestBatchAuditing:
    @pytest.fixture(scope="class")
    def batch_items(self, package, accepted_provider, params, rng):
        items = []
        for _ in range(3):
            challenge = random_challenge(params, rng=rng)
            proof = accepted_provider.respond(package.name, challenge)
            items.append(
                BatchItem(
                    public=package.public,
                    name=package.name,
                    num_chunks=package.num_chunks,
                    challenge=challenge,
                    proof=proof,
                )
            )
        return items

    def test_batch_accepts_valid(self, batch_items, rng):
        assert verify_batch(batch_items, rng=rng)

    def test_sequential_agrees(self, batch_items):
        assert verify_sequential(batch_items)

    def test_batch_rejects_one_bad(self, batch_items, rng):
        bad_proof = dataclasses.replace(
            batch_items[1].proof, y_masked=(batch_items[1].proof.y_masked + 1)
        )
        tampered = [
            batch_items[0],
            dataclasses.replace(batch_items[1], proof=bad_proof),
            batch_items[2],
        ]
        assert not verify_batch(tampered, rng=rng)
        assert not verify_sequential(tampered)

    def test_empty_batch(self, rng):
        assert verify_batch([], rng=rng)

    def test_multi_user_batch(self, params, rng):
        """Different owners, different keys, one combined check."""
        items = []
        for user in range(2):
            owner = DataOwner(params, rng=rng)
            package = owner.prepare(bytes([user + 1]) * 400)
            provider = StorageProvider(rng=rng)
            assert provider.accept(package)
            challenge = random_challenge(params, rng=rng)
            items.append(
                BatchItem(
                    public=package.public,
                    name=package.name,
                    num_chunks=package.num_chunks,
                    challenge=challenge,
                    proof=provider.respond(package.name, challenge),
                )
            )
        assert verify_batch(items, rng=rng)


class TestProtocolRoles:
    def test_provider_rejects_forged_metadata(self, package, rng):
        """The Initialize-phase defence: bad authenticators -> no ACK."""
        import dataclasses as dc

        from repro.crypto.bn254 import G1Point

        tampered = list(package.authenticators)
        tampered[0] = tampered[0] + G1Point.generator()
        forged = dc.replace(package, authenticators=tuple(tampered))
        provider = StorageProvider(rng=rng)
        assert not provider.accept(forged)

    def test_session_rounds(self, params, rng):
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x33" * 500)
        provider = StorageProvider(rng=rng)
        assert provider.accept(package)
        session = OffchainAuditSession(owner, provider, package, rng=rng)
        for _ in range(2):
            assert session.run_round().passed
        assert len(session.history) == 2

    def test_dropped_file_raises(self, params, rng):
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x44" * 300)
        provider = StorageProvider(rng=rng)
        assert provider.accept(package)
        provider.drop_file(package.name)
        with pytest.raises(KeyError):
            provider.respond(package.name, random_challenge(params, rng=rng))

    def test_extra_storage_is_one_over_s(self, package, accepted_provider):
        prover = accepted_provider.prover_for(package.name)
        data_bytes = package.chunked.byte_length
        extra = prover.extra_storage_bytes()
        # 32-byte authenticator per chunk of s 31-byte blocks.
        expected_ratio = 32 / (package.chunked.s * 31)
        assert extra / data_bytes == pytest.approx(expected_ratio, rel=0.25)
