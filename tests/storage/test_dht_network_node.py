"""Chord DHT, network failure injection, and the DSN client pipeline."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.dht import ChordRing, chord_id
from repro.storage.network import NetworkError, SimulatedNetwork
from repro.storage.node import DsnClient, DsnCluster


class TestChord:
    @pytest.fixture(scope="class")
    def ring(self):
        ring = ChordRing(bits=16)
        for index in range(40):
            ring.join(f"provider-{index}")
        return ring

    def test_lookup_matches_brute_force(self, ring):
        """Greedy finger routing must agree with the definition of owner:
        the first node clockwise from the key."""
        for key in ("file-a", "file-b", "x" * 30, "0"):
            key_id = chord_id(key, ring.bits)
            ids = sorted(n.node_id for n in ring.nodes)
            expected = next((i for i in ids if i >= key_id), ids[0])
            owner, _ = ring.lookup(key)
            assert owner.node_id == expected

    def test_lookup_start_invariant(self, ring):
        owner, _ = ring.lookup("some-key")
        for start in ring.nodes[::7]:
            found, _ = ring.lookup("some-key", start=start)
            assert found.name == owner.name

    def test_logarithmic_hops(self, ring):
        worst = max(
            ring.lookup(f"key-{i}", start=ring.nodes[i % len(ring.nodes)])[1]
            for i in range(60)
        )
        assert worst <= 2 * math.ceil(math.log2(len(ring.nodes))) + 1

    def test_successors_distinct_and_ordered(self, ring):
        nodes = ring.successors("file-q", 10)
        assert len({n.name for n in nodes}) == 10
        owner, _ = ring.lookup("file-q")
        assert nodes[0].name == owner.name

    def test_successors_exceeding_ring_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.successors("k", len(ring.nodes) + 1)

    def test_join_leave_restabilizes(self):
        ring = ChordRing(bits=16)
        for index in range(10):
            ring.join(f"n{index}")
        owner_before, _ = ring.lookup("stable-key")
        ring.join("newcomer")
        ring.leave("n3")
        owner_after, _ = ring.lookup("stable-key")
        # The owner either stayed or changed to an adjacent node; routing
        # must still agree with brute force.
        key_id = chord_id("stable-key", ring.bits)
        ids = sorted(n.node_id for n in ring.nodes)
        expected = next((i for i in ids if i >= key_id), ids[0])
        assert owner_after.node_id == expected

    def test_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ChordRing().lookup("x")

    def test_single_node_owns_everything(self):
        ring = ChordRing(bits=16)
        ring.join("only")
        for key in ("a", "b", "c"):
            owner, hops = ring.lookup(key)
            assert owner.name == "only"


class TestNetwork:
    def test_latency_and_stats(self):
        net = SimulatedNetwork(base_latency=0.01, jitter=0.0)
        latency = net.send("a", "b", 100)
        assert latency == pytest.approx(0.01)
        assert net.stats.messages == 1
        assert net.stats.bytes_sent == 100

    def test_crash_and_recover(self):
        net = SimulatedNetwork()
        net.crash("b")
        with pytest.raises(NetworkError):
            net.send("a", "b", 1)
        net.recover("b")
        net.send("a", "b", 1)

    def test_partition_blocks_cross_traffic(self):
        net = SimulatedNetwork()
        net.partition({"a", "b"}, {"c", "d"})
        net.send("a", "b", 1)
        net.send("c", "d", 1)
        with pytest.raises(NetworkError):
            net.send("a", "c", 1)
        net.heal_partition()
        net.send("a", "c", 1)


class TestDsnPipeline:
    @pytest.fixture()
    def cluster(self):
        cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(3)))
        for index in range(12):
            cluster.add_node(f"node-{index}")
        return cluster

    def test_store_and_retrieve(self, cluster):
        client = DsnClient("owner", cluster)
        payload = bytes(range(256)) * 11
        manifest = client.store("f1", payload, n=10, k=3)
        assert len(manifest.shards) == 10
        assert len(manifest.providers) == 10
        assert client.retrieve(manifest) == payload

    def test_tolerates_max_erasures(self, cluster):
        client = DsnClient("owner", cluster)
        payload = b"\x42" * 4000
        manifest = client.store("f2", payload, n=10, k=3)
        for location in manifest.shards[:7]:
            cluster.network.crash(location.provider)
        assert client.retrieve(manifest) == payload

    def test_fails_beyond_max_erasures(self, cluster):
        client = DsnClient("owner", cluster)
        manifest = client.store("f3", b"\x01" * 1000, n=10, k=3)
        for location in manifest.shards[:8]:
            cluster.network.crash(location.provider)
        with pytest.raises(RuntimeError):
            client.retrieve(manifest)

    def test_corrupted_shard_skipped(self, cluster):
        client = DsnClient("owner", cluster)
        payload = b"\x07" * 2000
        manifest = client.store("f4", payload, n=6, k=3)
        # Corrupt one shard in place: checksum mismatch -> skipped.
        first = manifest.shards[0]
        node = cluster.node(first.provider)
        node.put("f4", first.shard_index, b"\x00" * len(node.get("f4", first.shard_index)))
        assert client.retrieve(manifest) == payload

    def test_repair_after_provider_loss(self, cluster):
        client = DsnClient("owner", cluster)
        payload = b"\x99" * 3000
        manifest = client.store("f5", payload, n=8, k=3)
        victim = manifest.shards[0].provider
        cluster.node(victim).drop_file("f5")
        manifest = client.repair(manifest, victim)
        assert victim not in {s.provider for s in manifest.shards}
        assert len(manifest.shards) == 8
        assert client.retrieve(manifest) == payload

    def test_capacity_limit(self, cluster):
        tiny = cluster.add_node("tiny", capacity_bytes=10)
        assert not tiny.put("f", 0, b"\x00" * 100)
        assert tiny.put("f", 0, b"\x00" * 10)

    def test_convergent_storage_dedupes(self, cluster):
        c1 = DsnClient("owner-1", cluster)
        c2 = DsnClient("owner-2", cluster)
        payload = b"common public dataset" * 20
        m1 = c1.store("dedup-file", payload, n=4, k=2, key_mode="convergent")
        m2 = c2.store("dedup-file", payload, n=4, k=2, key_mode="convergent")
        assert m1.tag == m2.tag  # identical ciphertext -> dedupable
        node = cluster.node(m1.shards[0].provider)
        assert node.get("dedup-file", 0) is not None
