"""Self-describing RS framing: length travels inside the shards.

Regression net for the availability-path bugfix: ``decode`` used to
require the caller to track ``data_length`` out of band, which is exactly
the kind of side channel a DA chunk fetched from an untrusted server
doesn't have.  ``encode_framed``/``decode_framed`` carry an 8-byte length
prefix inside the coded payload, so any k-of-n shard subset is fully
self-describing — including the zero-length, one-byte, and chunk-boundary
±1 payloads that off-by-one framing bugs live on.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.storage.erasure import FRAME_HEADER_BYTES, ReedSolomonCode, Shard


@pytest.fixture(scope="module")
def code() -> ReedSolomonCode:
    return ReedSolomonCode(n=7, k=3)


def payload(size: int) -> bytes:
    return bytes((17 * i + 5) % 251 for i in range(size))


def test_zero_length_payload_roundtrips(code):
    shards = code.encode_framed(b"")
    assert len(shards) == code.n
    assert code.decode_framed(shards[: code.k]) == b""


def test_one_byte_payload_roundtrips(code):
    shards = code.encode_framed(b"\x5a")
    assert code.decode_framed(shards[-code.k :]) == b"\x5a"


@pytest.mark.parametrize("size", sorted({
    0, 1, 2,
    # ±1 around the k-aligned chunk boundaries the padding logic straddles
    # (the frame adds 8 bytes, so boundary b sits at payload b*k - 8).
    3 * 3 - 8 - 1, 3 * 3 - 8, 3 * 3 - 8 + 1,
    3 * 4 - 8 - 1, 3 * 4 - 8, 3 * 4 - 8 + 1,
    3 * 10 - 8 - 1, 3 * 10 - 8, 3 * 10 - 8 + 1,
    100,
}))
def test_boundary_sizes_roundtrip(code, size):
    data = payload(size)
    shards = code.encode_framed(data)
    assert code.decode_framed(shards[: code.k]) == data


def test_any_k_subset_decodes(code):
    data = payload(41)
    shards = code.encode_framed(data)
    rng = random.Random(0xE2A)
    subsets = list(itertools.combinations(range(code.n), code.k))
    rng.shuffle(subsets)
    for subset in subsets[:15]:
        picked = [shards[i] for i in subset]
        assert code.decode_framed(picked) == data


def test_framed_and_bare_encodings_agree(code):
    """The frame is a plain prefix: bare decode sees header || payload."""
    data = payload(20)
    framed = code.encode_framed(data)
    length = code.shard_length_framed(framed)
    raw = code.decode(framed[: code.k], code.k * length)
    assert raw[:FRAME_HEADER_BYTES] == len(data).to_bytes(FRAME_HEADER_BYTES, "big")
    assert raw[FRAME_HEADER_BYTES : FRAME_HEADER_BYTES + len(data)] == data


def test_too_few_shards_rejected(code):
    shards = code.encode_framed(payload(10))
    with pytest.raises(ValueError, match="need at least"):
        code.decode_framed(shards[: code.k - 1])


def test_inconsistent_shard_lengths_rejected(code):
    shards = code.encode_framed(payload(10))[: code.k]
    shards[0] = Shard(index=shards[0].index, data=shards[0].data + b"\x00")
    with pytest.raises(ValueError, match="inconsistent shard lengths"):
        code.decode_framed(shards)


def test_shards_too_short_for_a_frame_rejected(code):
    stub = [Shard(index=i, data=b"\x00") for i in range(code.k)]
    with pytest.raises(ValueError, match="too short to carry a length frame"):
        code.decode_framed(stub)


def test_overclaiming_length_header_rejected(code):
    """A corrupted header cannot make the decoder read past the payload."""
    shards = code.encode_framed(payload(6))
    # Systematic code: shard 0 holds the leading header bytes. Claim an
    # enormous payload length.
    data = bytearray(shards[0].data)
    data[0] = 0xFF
    shards[0] = Shard(index=0, data=bytes(data))
    with pytest.raises(ValueError, match="exceeds decoded capacity"):
        code.decode_framed(shards[: code.k])


def test_bare_encode_still_rejects_empty(code):
    with pytest.raises(ValueError, match="cannot encode empty data"):
        code.encode(b"")
    # ...which is exactly why the framed path exists: empty payloads are
    # representable because the frame itself is never empty.
    assert code.decode_framed(code.encode_framed(b"")[: code.k]) == b""
