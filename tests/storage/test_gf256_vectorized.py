"""Vectorized GF(256) kernels vs scalar references.

The erasure codec's throughput now rides on a precomputed 256x256
product table and single-gather numpy lookups; the log/antilog scalar
helpers remain as the reference.  Differential-test the table paths
against them over randomized and edge inputs so a table-build bug can
never silently corrupt shards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.gf256 import (
    _MUL_TABLE,
    gf_inv,
    gf_matmul,
    gf_matmul_ref,
    gf_mul,
    gf_mul_vector,
    gf_mul_vector_ref,
)


class TestMulTable:
    def test_table_matches_scalar_mul_exhaustively(self):
        for a in range(256):
            row = _MUL_TABLE[a]
            for b in (0, 1, 2, 3, 127, 128, 254, 255):
                assert int(row[b]) == gf_mul(a, b)

    def test_zero_row_and_column(self):
        assert not _MUL_TABLE[0].any()
        assert not _MUL_TABLE[:, 0].any()

    def test_identity_row(self):
        assert np.array_equal(_MUL_TABLE[1], np.arange(256, dtype=np.uint8))

    def test_inverse_consistency(self):
        for a in range(1, 256):
            assert int(_MUL_TABLE[a][gf_inv(a)]) == 1


class TestMulVector:
    @pytest.mark.parametrize("scalar", [0, 1, 2, 57, 255])
    def test_matches_reference(self, scalar):
        rng = np.random.default_rng(scalar)
        vector = rng.integers(0, 256, size=257, dtype=np.uint8)
        assert np.array_equal(
            gf_mul_vector(scalar, vector), gf_mul_vector_ref(scalar, vector)
        )

    def test_empty_vector(self):
        empty = np.zeros(0, dtype=np.uint8)
        assert gf_mul_vector(77, empty).shape == (0,)

    def test_distributes_over_xor(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 256, size=100, dtype=np.uint8)
        b = rng.integers(0, 256, size=100, dtype=np.uint8)
        assert np.array_equal(
            gf_mul_vector(19, a ^ b), gf_mul_vector(19, a) ^ gf_mul_vector(19, b)
        )


class TestMatmul:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_vs_reference(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 7))
        rows = int(rng.integers(1, 7))
        length = int(rng.integers(1, 120))
        matrix = [
            [int(rng.integers(0, 256)) for _ in range(k)] for _ in range(rows)
        ]
        shards = rng.integers(0, 256, size=(k, length), dtype=np.uint8)
        assert np.array_equal(
            gf_matmul(matrix, shards), gf_matmul_ref(matrix, shards)
        )

    def test_identity_matrix(self):
        shards = np.arange(12, dtype=np.uint8).reshape(3, 4)
        identity = [[1 if i == j else 0 for j in range(3)] for i in range(3)]
        assert np.array_equal(gf_matmul(identity, shards), shards)

    def test_zero_matrix(self):
        shards = np.full((2, 5), 0xAB, dtype=np.uint8)
        assert not gf_matmul([[0, 0], [0, 0]], shards).any()

    def test_ones_row_is_xor_reduce(self):
        rng = np.random.default_rng(11)
        shards = rng.integers(0, 256, size=(4, 33), dtype=np.uint8)
        out = gf_matmul([[1, 1, 1, 1]], shards)
        expected = shards[0] ^ shards[1] ^ shards[2] ^ shards[3]
        assert np.array_equal(out[0], expected)

    def test_output_dtype_and_shape(self):
        shards = np.zeros((2, 9), dtype=np.uint8)
        out = gf_matmul([[3, 5], [7, 11], [13, 17]], shards)
        assert out.dtype == np.uint8 and out.shape == (3, 9)
