"""Capability strings and placement strategies."""

from __future__ import annotations

import random

import pytest

from repro.storage import DsnClient, DsnCluster, SimulatedNetwork
from repro.storage.capabilities import (
    CapabilityError,
    ReadCap,
    VerifyCap,
    check_verify_cap,
    make_read_cap,
    storage_index_from_key,
)
from repro.storage.placement import (
    CapacityAwarePlacement,
    LatencyAwarePlacement,
    ReputationWeightedPlacement,
    RingPlacement,
    place_with_strategy,
)


@pytest.fixture()
def cluster():
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(2)))
    for index in range(10):
        cluster.add_node(f"node-{index}")
    return cluster


class TestCapabilities:
    @pytest.fixture()
    def read_cap(self, cluster):
        client = DsnClient("owner", cluster)
        manifest = client.store("caps-file", b"capability test data " * 30, n=4, k=2)
        return make_read_cap(client.keys["caps-file"], manifest), manifest, client

    def test_roundtrip_strings(self, read_cap):
        cap, _, _ = read_cap
        assert ReadCap.from_string(cap.to_string()) == cap
        verify = cap.attenuate()
        assert VerifyCap.from_string(verify.to_string()) == verify

    def test_attenuation_is_one_way(self, read_cap):
        """The verify cap exposes the storage index, never the key."""
        cap, _, _ = read_cap
        verify = cap.attenuate()
        assert verify.storage_index == storage_index_from_key(cap.key)
        assert cap.key not in verify.to_string().encode()
        assert len(verify.storage_index) == 16

    def test_verify_cap_binds_to_manifest(self, read_cap, cluster):
        cap, manifest, client = read_cap
        verify = cap.attenuate()
        assert check_verify_cap(verify, cap.key, manifest)
        other_manifest = client.store("other-file", b"different data", n=3, k=2)
        assert not check_verify_cap(verify, cap.key, other_manifest)

    def test_wrong_prefix_rejected(self):
        with pytest.raises(CapabilityError):
            ReadCap.from_string("URI:VERIFY:aaaa:bbbb")
        with pytest.raises(CapabilityError):
            VerifyCap.from_string("URI:READ:aaaa:bbbb")

    def test_distinct_keys_distinct_indices(self):
        assert storage_index_from_key(b"\x01" * 32) != storage_index_from_key(
            b"\x02" * 32
        )


class TestPlacement:
    def test_ring_matches_client_default(self, cluster):
        strategy = RingPlacement()
        selected = strategy.select(cluster, "file-x", 4)
        expected = [n.name for n in cluster.ring.successors("file-x", 4)]
        assert selected[:4] == expected
        assert len(selected) == len(cluster.nodes)  # full fallback ordering
        with pytest.raises(RuntimeError):
            strategy.select(cluster, "file-x", len(cluster.nodes) + 1)

    def test_capacity_aware_skips_full_nodes(self, cluster):
        ring_order = RingPlacement().select(cluster, "file-y", 10)
        # Fill the first-choice node completely.
        first = cluster.node(ring_order[0])
        first.put("filler", 0, b"\x00" * (first.capacity_bytes - 10))
        strategy = CapacityAwarePlacement(shard_bytes=1000)
        selected = strategy.select(cluster, "file-y", 4)
        assert ring_order[0] not in selected[:4]

    def test_capacity_aware_fails_when_impossible(self, cluster):
        for node in cluster.nodes.values():
            node.put("filler", 0, b"\x00" * (node.capacity_bytes - 10))
        strategy = CapacityAwarePlacement(shard_bytes=1000)
        with pytest.raises(RuntimeError):
            strategy.select(cluster, "file-z", 2)

    def test_reputation_weighted_orders_by_score(self, cluster):
        scores = {name: 0.5 for name in cluster.nodes}
        scores["node-3"] = 0.9
        scores["node-7"] = 0.05  # below the bar: excluded
        strategy = ReputationWeightedPlacement(score_of=lambda n: scores[n])
        selected = strategy.select(cluster, "file-r", 5)
        assert selected[0] == "node-3"
        assert "node-7" not in selected

    def test_reputation_bar_enforced(self, cluster):
        strategy = ReputationWeightedPlacement(score_of=lambda n: 0.0)
        with pytest.raises(RuntimeError):
            strategy.select(cluster, "file-r", 2)

    def test_latency_aware_skips_dead_nodes(self, cluster):
        cluster.network.crash("node-0")
        strategy = LatencyAwarePlacement()
        selected = strategy.select(cluster, "file-l", 5)
        assert "node-0" not in selected

    def test_place_with_strategy_end_to_end(self, cluster):
        client = DsnClient("owner", cluster)
        payload = b"strategic placement " * 40
        manifest = place_with_strategy(
            client, RingPlacement(), "strat-file", payload, n=5, k=2
        )
        assert len(manifest.shards) == 5
        assert client.retrieve(manifest) == payload

    def test_place_with_strategy_skips_full_nodes(self, cluster):
        # Choke every ring-preferred node except enough for the file.
        client = DsnClient("owner", cluster)
        order = RingPlacement().select(cluster, "strat-2", 10)
        full = cluster.node(order[0])
        full.put("filler", 0, b"\x00" * (full.capacity_bytes - 4))
        payload = b"\x01" * 2000
        manifest = place_with_strategy(
            client, RingPlacement(), "strat-2", payload, n=4, k=2
        )
        assert order[0] not in {s.provider for s in manifest.shards}
        assert client.retrieve(manifest) == payload
