"""GF(256), Reed-Solomon and the encryption layer."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.encryption import decrypt_file, encrypt_file, generate_key
from repro.storage.erasure import ReedSolomonCode, Shard
from repro.storage.gf256 import (
    gf_div,
    gf_inv,
    gf_matmul,
    gf_matrix_invert,
    gf_mul,
    gf_pow,
)


class TestGf256:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_field_axioms(self, a, b, c):
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 255))
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_div(a, a) == 1

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(3, 255) == 1  # group order divides 255

    def test_matrix_inverse(self):
        matrix = [[1, 2], [3, 4]]
        inverse = gf_matrix_invert(matrix)
        import numpy as np

        identity = gf_matmul(
            matrix, gf_matmul(inverse, np.eye(2, dtype=np.uint8))
        )
        assert identity.tolist() == [[1, 0], [0, 1]]

    def test_singular_matrix(self):
        with pytest.raises(ValueError):
            gf_matrix_invert([[1, 1], [1, 1]])


class TestReedSolomon:
    @settings(max_examples=15, deadline=None)
    @given(
        st.binary(min_size=1, max_size=400),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=6),
    )
    def test_roundtrip_any_k_shards(self, data, k, extra):
        n = k + extra
        code = ReedSolomonCode(n, k)
        shards = code.encode(data)
        assert len(shards) == n
        # Decode from the *last* k shards (hardest case: parity-heavy).
        assert code.decode(shards[-k:], len(data)) == data

    def test_systematic_property(self):
        code = ReedSolomonCode(6, 3)
        data = bytes(range(90))
        shards = code.encode(data)
        assert b"".join(s.data for s in shards[:3])[: len(data)] == data

    def test_paper_3_of_10_code(self):
        """The paper's example: 3-out-of-10 erasure coding, 3.33x blow-up."""
        code = ReedSolomonCode(10, 3)
        assert abs(code.redundancy_factor - 10 / 3) < 1e-9
        data = b"archive!" * 100
        shards = code.encode(data)
        for selection in ([0, 4, 9], [7, 8, 9], [1, 2, 3]):
            subset = [shards[i] for i in selection]
            assert code.decode(subset, len(data)) == data

    def test_insufficient_shards(self):
        code = ReedSolomonCode(5, 3)
        shards = code.encode(b"hello world")
        with pytest.raises(ValueError):
            code.decode(shards[:2], 11)

    def test_duplicate_shards_not_counted_twice(self):
        code = ReedSolomonCode(5, 3)
        shards = code.encode(b"hello world")
        with pytest.raises(ValueError):
            code.decode([shards[0], shards[0], shards[0]], 11)

    def test_repair_regenerates_exact_shard(self):
        code = ReedSolomonCode(8, 4)
        data = b"\xab" * 333
        shards = code.encode(data)
        regenerated = code.repair(shards[4:], missing_index=2, data_length=len(data))
        assert regenerated.data == shards[2].data
        assert regenerated.index == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(3, 5)
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 3)
        with pytest.raises(ValueError):
            ReedSolomonCode(5, 3).encode(b"")

    def test_bad_shard_index_rejected(self):
        code = ReedSolomonCode(4, 2)
        shards = code.encode(b"data")
        with pytest.raises(ValueError):
            code.decode([Shard(index=9, data=b"xx")] + shards[:1], 4)


class TestEncryption:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=500))
    def test_roundtrip(self, plaintext):
        key = generate_key()
        assert decrypt_file(encrypt_file(plaintext, key), key) == plaintext

    def test_tamper_detected(self):
        key = generate_key()
        enc = encrypt_file(b"secret", key)
        flipped = bytes([enc.ciphertext[0] ^ 1]) + enc.ciphertext[1:]
        with pytest.raises(ValueError):
            decrypt_file(dataclasses.replace(enc, ciphertext=flipped), key)

    def test_wrong_key_detected(self):
        enc = encrypt_file(b"secret", generate_key())
        with pytest.raises(ValueError):
            decrypt_file(enc, generate_key())

    def test_random_mode_non_deterministic(self):
        key = generate_key()
        a = encrypt_file(b"same", key)
        b = encrypt_file(b"same", key)
        assert a.nonce != b.nonce  # fresh nonce per encryption

    def test_convergent_mode_deduplicates(self):
        """Two owners of the same file produce identical ciphertext —
        the dedup property whose privacy cost the paper warns about."""
        plain = b"shared public document"
        k1 = generate_key(plain, "convergent")
        k2 = generate_key(plain, "convergent")
        assert k1 == k2
        e1 = encrypt_file(plain, k1, "convergent")
        e2 = encrypt_file(plain, k2, "convergent")
        assert e1.ciphertext == e2.ciphertext

    def test_convergent_needs_plaintext(self):
        with pytest.raises(ValueError):
            generate_key(None, "convergent")
