"""Per-round vs. checkpointed settlement: identical verdicts, provably.

Acceptance properties:

* across the adversary strategy suite, the checkpointed path accepts and
  rejects exactly the round set the per-round (individual Eq.-2) path
  does, epoch by epoch;
* a light client can verify inclusion of **any** round in a committed
  checkpoint from the commitment + one Merkle path;
* replaying a checkpoint whose served leaves were tampered with flags the
  inconsistency (the off-chain detection that precedes an on-chain fraud
  proof).
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import StrategySpec, make_prover
from repro.chain.light_client import CheckpointLightClient
from repro.core import DataOwner, ProtocolParams, Verifier
from repro.core.challenge import Challenge
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.randomness import HashChainBeacon
from repro.rollup import build_checkpoint
from repro.sim.workloads import archive_file

EPOCHS = 2

#: One provider per strategy; rho high enough that selective/bitrot get
#: caught within the run's challenge budget with near-certainty is NOT
#: assumed — equivalence must hold whatever the verdicts turn out to be.
STRATEGY_MIX = (
    StrategySpec("honest", count=2),
    StrategySpec("forge"),
    StrategySpec("replay"),
    StrategySpec("selective", rho=0.5),
    StrategySpec("bitrot", rho=0.5),
    StrategySpec("offline", rho=1.0),  # always silent: exercises withheld
)


@pytest.fixture(scope="module")
def adversarial_run(params):
    """Checkpointed epochs over the full strategy mix, plus raw materials
    for the independent per-round verification pass."""
    rng = random.Random(0x0DD5)
    owner = DataOwner(params, rng=rng)
    beacon = HashChainBeacon(b"equivalence-test")
    instances, provers, kinds = [], {}, {}
    serial = 0
    for spec in STRATEGY_MIX:
        for _ in range(spec.count):
            package = owner.prepare(
                archive_file(900, tag=f"equiv-{serial}").data,
                fresh_keypair=serial == 0,
            )
            instances.append(AuditInstance.from_package(package, owner_id="eq"))
            provers[package.name] = make_prover(
                spec.kind, package, rng=rng, rho=spec.rho
            )
            kinds[package.name] = spec.kind
            serial += 1
    with AuditExecutor(instances, workers=1) as executor:
        scheduler = EpochScheduler(
            executor, params, beacon, rng=rng, checkpoint_mode=True
        )
        for name, kind in kinds.items():
            if kind != "honest":
                prover = provers[name]
                scheduler.set_override(
                    name,
                    lambda challenge, epoch, prover=prover: (
                        prover.respond_private(challenge)
                    ),
                )
        results = [scheduler.run_epoch(epoch) for epoch in range(EPOCHS)]
    return {
        "params": params,
        "beacon": beacon,
        "instances": instances,
        "kinds": kinds,
        "results": results,
    }


def _per_round_verdicts(run, result) -> dict[int, bool]:
    """The pre-rollup ground truth: one individual Eq.-2 check per round."""
    params = run["params"]
    verdicts: dict[int, bool] = {name: False for name in result.withheld}
    by_name = {instance.name: instance for instance in run["instances"]}
    for outcome in result.outcomes:
        instance = by_name[outcome.name]
        verifier = Verifier(instance.public, instance.name, instance.num_chunks)
        verdicts[outcome.name] = bool(
            verifier.verify_private(
                result.challenges[outcome.name], outcome.proof()
            )
        )
    return verdicts


class TestVerdictEquivalence:
    def test_checkpoint_verdicts_match_per_round_path(self, adversarial_run):
        saw_reject = saw_accept = False
        for result in adversarial_run["results"]:
            expected = _per_round_verdicts(adversarial_run, result)
            bundle = result.checkpoint
            committed = {r.name: r.verdict for r in bundle.records}
            assert committed == expected, (
                f"epoch {result.epoch}: checkpointed verdicts diverge from "
                f"the per-round path"
            )
            saw_reject |= not all(expected.values())
            saw_accept |= any(expected.values())
            # Counts in the on-chain commitment match too.
            assert bundle.checkpoint.accepted == sum(expected.values())
            assert bundle.checkpoint.rejected == len(expected) - sum(
                expected.values()
            )
        # The mix must actually exercise both verdict classes.
        assert saw_reject and saw_accept

    def test_forge_and_offline_always_rejected(self, adversarial_run):
        kinds = adversarial_run["kinds"]
        for result in adversarial_run["results"]:
            for record in result.checkpoint.records:
                kind = kinds[record.name]
                if kind == "forge":
                    assert not record.verdict
                if kind == "offline":
                    assert not record.verdict and record.withheld
                    assert record.reject_code == "no-proof"
                if kind == "honest":
                    assert record.verdict

    def test_replay_rejected_after_first_epoch(self, adversarial_run):
        kinds = adversarial_run["kinds"]
        replayer = next(n for n, k in kinds.items() if k == "replay")
        first = adversarial_run["results"][0].checkpoint.record_for(replayer)
        second = adversarial_run["results"][1].checkpoint.record_for(replayer)
        assert first.verdict          # honest answer in its first epoch
        assert not second.verdict     # stale proof against a fresh challenge


class TestLightClientInclusion:
    def test_every_round_verifiable_from_commitment(self, adversarial_run):
        registry = {
            instance.name: (instance.public.to_bytes(), instance.num_chunks)
            for instance in adversarial_run["instances"]
        }
        client = CheckpointLightClient(
            registry, adversarial_run["params"], adversarial_run["beacon"]
        )
        for result in adversarial_run["results"]:
            bundle = result.checkpoint
            for record in bundle.records:
                outcome = client.verify_inclusion(
                    bundle.checkpoint, bundle.prove(record.name)
                )
                assert outcome.ok, (record.name, outcome.reason)

    def test_replay_flags_tampered_leaf_set(self, adversarial_run):
        registry = {
            instance.name: (instance.public.to_bytes(), instance.num_chunks)
            for instance in adversarial_run["instances"]
        }
        client = CheckpointLightClient(
            registry, adversarial_run["params"], adversarial_run["beacon"]
        )
        bundle = adversarial_run["results"][0].checkpoint
        # Honest replay: consistent.
        clean = client.replay_checkpoint(bundle.checkpoint, bundle.records)
        assert clean.consistent
        assert clean.rounds_checked == len(bundle.records)
        # Aggregator serves leaves with one verdict flipped: the root no
        # longer matches AND the flipped leaf's verdict disagrees.
        tampered = list(bundle.records)
        tampered[0] = tampered[0].flipped()
        report = client.replay_checkpoint(bundle.checkpoint, tuple(tampered))
        assert not report.consistent
        assert report.root_mismatches == [bundle.checkpoint.epoch]
        assert (bundle.checkpoint.epoch, tampered[0].name) in report.disagreements

    def test_forged_commitment_fails_inclusion_against_true_root(
        self, adversarial_run
    ):
        registry = {
            instance.name: (instance.public.to_bytes(), instance.num_chunks)
            for instance in adversarial_run["instances"]
        }
        client = CheckpointLightClient(
            registry, adversarial_run["params"], adversarial_run["beacon"]
        )
        bundle = adversarial_run["results"][0].checkpoint
        records = list(bundle.records)
        records[0] = records[0].flipped()
        forged = build_checkpoint(bundle.checkpoint.epoch, tuple(records))
        # The forged leaf is included in the forged tree — but its verdict
        # does not survive independent re-verification.
        outcome = client.verify_inclusion(
            forged.checkpoint, forged.prove(records[0].name)
        )
        assert not outcome.ok and outcome.reason == "verdict-flipped"
        # And the forged leaf cannot be proven into the *true* root.
        crossed = client.verify_inclusion(
            bundle.checkpoint, forged.prove(records[0].name)
        )
        assert not crossed.ok and crossed.reason == "not-included"
