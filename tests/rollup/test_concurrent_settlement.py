"""Differential: concurrent lane settlement is bit-identical to sequential.

``CrossShardAggregator(concurrent_lanes=True)`` runs each lane's full
prove → verify → post pipeline on its own worker thread, with the epoch
barrier only at fabric-checkpoint aggregation.  Each lane owns a derived
rng (split from the shared seed in lane order at construction), so the
thread interleaving has nothing left to race on: against the same
adversarial fleet the settlement must match the sequential run *byte for
byte* — same accept/reject sets, same lane roots, same fabric
super-commitment, same lane-chain ``state_hash``.

``pooled_verify=True`` moves batch verification into the audit executor's
process pool.  The verification rho stream differs there (workers draw
from a shipped seed), so the contract is verdict equivalence, not byte
equality: blinding exponents never move an accept/reject verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import StrategySpec, make_prover
from repro.chain import ShardedChainFabric
from repro.core import DataOwner
from repro.engine import AuditExecutor, AuditInstance
from repro.randomness import HashChainBeacon
from repro.rollup import CrossShardAggregator
from repro.sim.workloads import archive_file

EPOCHS = 2
LANES = 4

#: Honest majority plus one of each failure mode (accepts *and* rejects).
STRATEGY_MIX = (
    StrategySpec("honest", count=2),
    StrategySpec("replay"),
    StrategySpec("bitrot", rho=0.5),
)


def _build_fleet(params):
    rng = random.Random(0xC0C)
    owner = DataOwner(params, rng=rng)
    instances, specs = [], {}
    serial = 0
    for spec in STRATEGY_MIX:
        for _ in range(spec.count):
            package = owner.prepare(
                archive_file(900, tag=f"conc-{serial}").data,
                fresh_keypair=serial == 0,
            )
            instances.append(AuditInstance.from_package(package, owner_id="cs"))
            specs[package.name] = (spec, package, serial)
            serial += 1
    return instances, specs


def _overrides(specs):
    """Fresh per-run prover instances, deterministically seeded per file."""
    overrides = {}
    for name, (spec, package, serial) in specs.items():
        if spec.kind == "honest":
            continue
        prover = make_prover(
            spec.kind, package, rng=random.Random(0xD06 + serial), rho=spec.rho
        )
        overrides[name] = (
            lambda challenge, epoch, prover=prover: prover.respond_private(challenge)
        )
    return overrides


def _settle(params, instances, specs, **aggregator_kwargs):
    """One full settlement run; returns (settlements, state_hash)."""
    workers = aggregator_kwargs.pop("workers", 1)
    fabric = ShardedChainFabric(num_lanes=LANES)
    try:
        with AuditExecutor(instances, workers=workers) as executor:
            aggregator = CrossShardAggregator(
                fabric,
                executor,
                params,
                HashChainBeacon(b"concurrent-settlement"),
                rng=random.Random(7),
                **aggregator_kwargs,
            )
            try:
                for name, override in _overrides(specs).items():
                    aggregator.set_override(name, override)
                settlements = aggregator.run(EPOCHS)
            finally:
                aggregator.close()
        return settlements, fabric.state_hash()
    finally:
        fabric.close()


@pytest.fixture(scope="module")
def fleet(params):
    return _build_fleet(params)


def _verdict_trace(settlements):
    return [
        (
            settlement.epoch,
            frozenset(settlement.accepted_names()),
            frozenset(settlement.rejected_names()),
        )
        for settlement in settlements
    ]


def test_concurrent_lanes_settle_bit_identically(params, fleet):
    # Deterministic mode pins every Sigma nonce to a per-(file, epoch)
    # digest; without it two *sequential* runs already differ byte-wise
    # (live blinding draws), so it is the precondition for comparing
    # transcripts — the concurrency question — rather than the blinding.
    instances, specs = fleet
    sequential, hash_seq = _settle(params, instances, specs, deterministic=True)
    concurrent, hash_conc = _settle(
        params, instances, specs, concurrent_lanes=True, deterministic=True
    )
    assert _verdict_trace(sequential) == _verdict_trace(concurrent)
    for left, right in zip(sequential, concurrent):
        assert left.fabric.checkpoint.fabric_root == right.fabric.checkpoint.fabric_root
        assert left.fabric.checkpoint.lanes_digest == right.fabric.checkpoint.lanes_digest
        assert left.fabric.checkpoint.to_bytes() == right.fabric.checkpoint.to_bytes()
        for (lane_a, bundle_a), (lane_b, bundle_b) in zip(
            left.fabric.lanes, right.fabric.lanes
        ):
            assert lane_a == lane_b
            assert bundle_a.checkpoint.root == bundle_b.checkpoint.root
    assert hash_seq == hash_conc
    # The mix produced both verdicts, so the equality above is non-vacuous.
    assert any(rejected for _, _, rejected in _verdict_trace(sequential))
    assert any(accepted for _, accepted, _ in _verdict_trace(sequential))


def test_pooled_verify_preserves_verdicts(params, fleet):
    instances, specs = fleet
    inline, _ = _settle(params, instances, specs)
    pooled, _ = _settle(params, instances, specs, pooled_verify=True)
    assert _verdict_trace(inline) == _verdict_trace(pooled)


def test_concurrent_pooled_process_workers_preserve_verdicts(params, fleet):
    """The full serving shape: lane threads + process-pool batch verify."""
    instances, specs = fleet
    baseline, _ = _settle(params, instances, specs)
    served, _ = _settle(
        params,
        instances,
        specs,
        concurrent_lanes=True,
        pooled_verify=True,
        workers=2,
    )
    assert _verdict_trace(baseline) == _verdict_trace(served)
