"""Canonical round records and checkpoint commitments: wire-format law."""

from __future__ import annotations

import pytest

from repro.chain.gas import CHECKPOINT_COMMITMENT_BYTES as GAS_COMMITMENT_BYTES
from repro.rollup import (
    CHECKPOINT_COMMITMENT_BYTES,
    Checkpoint,
    RoundRecord,
    WITHHELD_CODE,
    aggregated_proof_digest,
    build_checkpoint,
)


def _record(name=7, epoch=3, verdict=True, code="", proof=b"\xab" * 288):
    return RoundRecord(
        name=name,
        epoch=epoch,
        challenge_bytes=b"\x11" * 48,
        proof_bytes=proof,
        verdict=verdict,
        reject_code=code,
    )


class TestRoundRecord:
    def test_roundtrip(self):
        record = _record()
        assert RoundRecord.from_bytes(record.to_bytes()) == record

    def test_rejected_roundtrip_keeps_code(self):
        record = _record(verdict=False, code="pairing-mismatch")
        decoded = RoundRecord.from_bytes(record.to_bytes())
        assert decoded.reject_code == "pairing-mismatch"
        assert not decoded.verdict

    def test_withheld_record_has_empty_proof(self):
        record = _record(verdict=False, code=WITHHELD_CODE, proof=b"")
        decoded = RoundRecord.from_bytes(record.to_bytes())
        assert decoded.withheld
        assert decoded.proof_bytes == b""

    def test_verdict_and_code_must_agree(self):
        with pytest.raises(ValueError):
            _record(verdict=True, code="pairing-mismatch")
        with pytest.raises(ValueError):
            _record(verdict=False, code="")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b[:-1],                       # truncated
            lambda b: b + b"\x00",                  # trailing bytes
            lambda b: bytes([0x7F]) + b[1:],        # bad version
            lambda b: b[:41] + bytes([9]) + b[42:], # bad verdict byte
        ],
    )
    def test_malformed_bytes_rejected(self, mutate):
        encoded = _record().to_bytes()
        with pytest.raises(ValueError):
            RoundRecord.from_bytes(mutate(encoded))

    def test_flipped_inverts_verdict_both_ways(self):
        accepted = _record()
        flipped = accepted.flipped()
        assert not flipped.verdict and flipped.reject_code
        assert flipped.flipped().verdict
        # Everything except the verdict fields is preserved.
        assert flipped.proof_bytes == accepted.proof_bytes
        assert flipped.challenge_bytes == accepted.challenge_bytes


class TestCheckpoint:
    def test_commitment_roundtrip_and_size(self):
        bundle = build_checkpoint(
            3, tuple(_record(name=n, epoch=3) for n in (5, 2, 9))
        )
        encoded = bundle.checkpoint.to_bytes()
        assert len(encoded) == CHECKPOINT_COMMITMENT_BYTES
        assert Checkpoint.from_bytes(encoded) == bundle.checkpoint

    def test_gas_constant_matches_rollup_constant(self):
        # chain.gas keeps its own copy to stay import-free of the rollup
        # layer; the two must never drift.
        assert GAS_COMMITMENT_BYTES == CHECKPOINT_COMMITMENT_BYTES

    def test_records_sorted_by_name(self):
        bundle = build_checkpoint(
            1, tuple(_record(name=n, epoch=1) for n in (30, 10, 20))
        )
        assert [r.name for r in bundle.records] == [10, 20, 30]

    def test_root_independent_of_input_order(self):
        records = tuple(_record(name=n, epoch=0) for n in (4, 1, 3))
        forward = build_checkpoint(0, records)
        backward = build_checkpoint(0, tuple(reversed(records)))
        assert forward.checkpoint == backward.checkpoint

    def test_counts_and_digest(self):
        records = (
            _record(name=1, epoch=0),
            _record(name=2, epoch=0, verdict=False, code="no-proof", proof=b""),
        )
        bundle = build_checkpoint(0, records)
        assert bundle.checkpoint.accepted == 1
        assert bundle.checkpoint.rejected == 1
        assert bundle.checkpoint.proof_digest == aggregated_proof_digest(
            bundle.records
        )
        assert bundle.rejected_names() == (2,)
        assert bundle.accepted_names() == (1,)

    def test_empty_and_duplicate_and_foreign_epoch_rejected(self):
        with pytest.raises(ValueError):
            build_checkpoint(0, ())
        with pytest.raises(ValueError):
            build_checkpoint(0, (_record(name=1, epoch=0), _record(name=1, epoch=0)))
        with pytest.raises(ValueError):
            build_checkpoint(0, (_record(name=1, epoch=5),))

    def test_inclusion_proofs_open_the_root(self):
        bundle = build_checkpoint(
            2, tuple(_record(name=n, epoch=2) for n in range(8))
        )
        for name in range(8):
            assert bundle.verify_inclusion(bundle.prove(name))
        with pytest.raises(KeyError):
            bundle.prove(99)
