"""Cross-shard checkpoint aggregation: sharding must not move a verdict.

Acceptance properties (ISSUE 4 tentpole, part 3):

* across the full PR 2 adversary strategy mix, the 4-lane fabric accepts
  and rejects exactly the file set the single-lane run does, epoch by
  epoch;
* a light client verifies any round from the 87-byte fabric commitment
  via a leaf → lane-root → fabric-root proof, and every tamper class
  (wrong lane set, flipped leaf, crossed epochs) is named and rejected;
* the per-lane fraud-proof grounds of the checkpoint contract survive
  sharding: a forged lane checkpoint is slashed on its own lane.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import StrategySpec, make_prover
from repro.chain import ShardedChainFabric, Transaction
from repro.chain.light_client import (
    CheckpointLightClient,
    audit_the_auditor_fabric,
)
from repro.core import DataOwner
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.randomness import HashChainBeacon
from repro.rollup import (
    FABRIC_COMMITMENT_BYTES,
    FabricCheckpoint,
    CrossShardAggregator,
    build_checkpoint,
    build_fabric_checkpoint,
)
from repro.sim.workloads import archive_file

EPOCHS = 2
LANES = 4

#: The PR 2 strategy mix (mirrors tests/rollup/test_checkpoint_equivalence).
STRATEGY_MIX = (
    StrategySpec("honest", count=2),
    StrategySpec("forge"),
    StrategySpec("replay"),
    StrategySpec("selective", rho=0.5),
    StrategySpec("bitrot", rho=0.5),
    StrategySpec("offline", rho=1.0),
)


def _build_fleet(params):
    """Packages plus per-name deterministic strategy constructors.

    Strategy provers are stateful (replay caches its first proof,
    selective discards a random subset at construction), so each run gets
    its *own* prover instances seeded identically per file — the verdict
    sets can then be compared across runs.
    """
    rng = random.Random(0xFA8)
    owner = DataOwner(params, rng=rng)
    instances, specs = [], {}
    serial = 0
    for spec in STRATEGY_MIX:
        for _ in range(spec.count):
            package = owner.prepare(
                archive_file(900, tag=f"xshard-{serial}").data,
                fresh_keypair=serial == 0,
            )
            instances.append(AuditInstance.from_package(package, owner_id="xs"))
            specs[package.name] = (spec, package, serial)
            serial += 1
    return instances, specs


def _overrides(specs):
    overrides = {}
    for name, (spec, package, serial) in specs.items():
        if spec.kind == "honest":
            continue
        prover = make_prover(
            spec.kind, package, rng=random.Random(0xBEEF + serial), rho=spec.rho
        )
        overrides[name] = (
            lambda challenge, epoch, prover=prover: prover.respond_private(challenge)
        )
    return overrides


@pytest.fixture(scope="module")
def equivalence_run(params):
    """The same adversarial fleet settled single-lane and on a 4-lane fabric."""
    instances, specs = _build_fleet(params)
    beacon = HashChainBeacon(b"xshard-equivalence")

    with AuditExecutor(instances, workers=1) as executor:
        scheduler = EpochScheduler(
            executor, params, beacon, rng=random.Random(1), checkpoint_mode=True
        )
        for name, override in _overrides(specs).items():
            scheduler.set_override(name, override)
        single = [scheduler.run_epoch(epoch) for epoch in range(EPOCHS)]

    with AuditExecutor(instances, workers=1) as executor:
        fabric = ShardedChainFabric(num_lanes=LANES)
        aggregator = CrossShardAggregator(
            fabric, executor, params, beacon, rng=random.Random(2)
        )
        for name, override in _overrides(specs).items():
            aggregator.set_override(name, override)
        sharded = aggregator.run(EPOCHS)

    return {
        "params": params,
        "beacon": beacon,
        "instances": instances,
        "specs": specs,
        "single": single,
        "sharded": sharded,
        "aggregator": aggregator,
        "fabric": fabric,
    }


class TestVerdictEquivalence:
    def test_accept_reject_sets_match_single_lane_run(self, equivalence_run):
        saw_accept = saw_reject = False
        for single_result, settlement in zip(
            equivalence_run["single"], equivalence_run["sharded"]
        ):
            single_bundle = single_result.checkpoint
            assert set(settlement.accepted_names()) == set(
                single_bundle.accepted_names()
            ), f"epoch {settlement.epoch}: accepted sets diverge under sharding"
            assert set(settlement.rejected_names()) == set(
                single_bundle.rejected_names()
            ), f"epoch {settlement.epoch}: rejected sets diverge under sharding"
            saw_accept |= bool(single_bundle.accepted_names())
            saw_reject |= bool(single_bundle.rejected_names())
            # Counts in the super-commitment match the single-lane tree.
            fabric_ckpt = settlement.fabric.checkpoint
            assert fabric_ckpt.accepted == single_bundle.checkpoint.accepted
            assert fabric_ckpt.rejected == single_bundle.checkpoint.rejected
            assert fabric_ckpt.num_leaves == single_bundle.checkpoint.num_leaves
        assert saw_accept and saw_reject

    def test_every_instance_settles_on_its_placement_lane(self, equivalence_run):
        aggregator = equivalence_run["aggregator"]
        fabric = equivalence_run["fabric"]
        for settlement in equivalence_run["sharded"]:
            for lane_id, settled in settlement.lanes.items():
                for record in settled.bundle.records:
                    assert fabric.lane_index_for(record.name) == lane_id
        assert len(aggregator.pipelines) >= 2  # the mix actually sharded

    def test_lane_commitments_sit_on_their_lane_chain(self, equivalence_run):
        aggregator = equivalence_run["aggregator"]
        fabric = equivalence_run["fabric"]
        for lane_id, pipeline in aggregator.pipelines.items():
            assert (
                fabric.lane_index_of_contract(pipeline.contract_address) == lane_id
            )
            assert len(pipeline.contract.checkpoints) == EPOCHS


class TestFabricInclusion:
    @pytest.fixture()
    def client(self, equivalence_run):
        return CheckpointLightClient(
            equivalence_run["aggregator"].export_instance_registry(),
            equivalence_run["params"],
            equivalence_run["beacon"],
        )

    def test_every_round_verifiable_from_fabric_commitment(
        self, equivalence_run, client
    ):
        for settlement in equivalence_run["sharded"]:
            bundle = settlement.fabric
            for _, lane_bundle in bundle.lanes:
                for record in lane_bundle.records:
                    proof = bundle.prove(record.name)
                    assert bundle.verify_inclusion(proof)
                    outcome = client.verify_fabric_inclusion(
                        bundle.checkpoint, proof
                    )
                    assert outcome.ok, (record.name, outcome.reason)

    def test_commitment_byte_layout_round_trips(self, equivalence_run):
        commitment = equivalence_run["sharded"][0].fabric.checkpoint
        encoded = commitment.to_bytes()
        assert len(encoded) == FABRIC_COMMITMENT_BYTES == commitment.byte_size()
        assert FabricCheckpoint.from_bytes(encoded) == commitment
        with pytest.raises(ValueError):
            FabricCheckpoint.from_bytes(encoded[:-1])
        with pytest.raises(ValueError):
            FabricCheckpoint.from_bytes(bytes([0xFF]) + encoded[1:])

    def test_flipped_leaf_is_named_by_the_fabric_path(
        self, equivalence_run, client
    ):
        settlement = equivalence_run["sharded"][0]
        bundle = settlement.fabric
        lane_id, lane_bundle = bundle.lanes[0]
        flipped = list(lane_bundle.records)
        flipped[0] = flipped[0].flipped()
        forged_lane = build_checkpoint(settlement.epoch, tuple(flipped))
        forged_fabric = build_fabric_checkpoint(
            settlement.epoch,
            [(lane_id, forged_lane)]
            + [(l, b) for l, b in bundle.lanes if l != lane_id],
        )
        proof = forged_fabric.prove(flipped[0].name)
        outcome = client.verify_fabric_inclusion(
            forged_fabric.checkpoint, proof
        )
        assert not outcome.ok and outcome.reason == "verdict-flipped"
        # The forged lane cannot be proven into the honest fabric root.
        crossed = client.verify_fabric_inclusion(bundle.checkpoint, proof)
        assert not crossed.ok and crossed.reason == "lane-not-included"

    def test_proof_must_open_the_record_it_claims(self, equivalence_run, client):
        """A DA server cannot answer a query about file X with some other
        (genuinely included, genuinely accepted) record."""
        from repro.rollup import FabricInclusionProof

        bundle = equivalence_run["sharded"][0].fabric
        _, lane_bundle = bundle.lanes[0]
        names = [record.name for record in lane_bundle.records]
        target = next(
            r.name
            for _, b in bundle.lanes
            for r in b.records
            if r.name not in names
        )
        honest_other = bundle.prove(names[0])
        forged = FabricInclusionProof(
            name=target,
            lane_id=honest_other.lane_id,
            lane_proof=honest_other.lane_proof,
            leaf_proof=honest_other.leaf_proof,
        )
        outcome = client.verify_fabric_inclusion(bundle.checkpoint, forged)
        assert not outcome.ok and outcome.reason == "name-mismatch"

    def test_placement_rule_enforced_when_lane_count_known(
        self, equivalence_run
    ):
        from repro.rollup import FabricInclusionProof

        strict = CheckpointLightClient(
            equivalence_run["aggregator"].export_instance_registry(),
            equivalence_run["params"],
            equivalence_run["beacon"],
            fabric_lanes=LANES,
        )
        bundle = equivalence_run["sharded"][0].fabric
        record = bundle.lanes[0][1].records[0]
        honest = bundle.prove(record.name)
        assert strict.verify_fabric_inclusion(bundle.checkpoint, honest).ok
        misplaced = FabricInclusionProof(
            name=honest.name,
            lane_id=(honest.lane_id + 1) % LANES,
            lane_proof=honest.lane_proof,
            leaf_proof=honest.leaf_proof,
        )
        outcome = strict.verify_fabric_inclusion(bundle.checkpoint, misplaced)
        assert not outcome.ok and outcome.reason == "lane-misplaced"

    def test_epoch_crossed_lane_commitment_is_rejected(
        self, equivalence_run, client
    ):
        first = equivalence_run["sharded"][0].fabric
        second = equivalence_run["sharded"][1].fabric
        lane_id, _ = first.lanes[0]
        # Graft epoch 1's lane bundle under epoch 0's other lanes.
        mixed = build_fabric_checkpoint(
            second.checkpoint.epoch,
            [(lane_id, second.lane_bundle(lane_id))]
            + [(l, b) for l, b in second.lanes if l != lane_id],
        )
        proof = mixed.prove(second.lane_bundle(lane_id).records[0].name)
        # Proof verifies against its own commitment...
        assert client.verify_fabric_inclusion(mixed.checkpoint, proof).ok
        # ...but a stale fabric commitment rejects the crossed lane.
        outcome = client.verify_fabric_inclusion(first.checkpoint, proof)
        assert not outcome.ok and outcome.reason == "lane-not-included"

    def test_build_rejects_mixed_epochs_and_duplicate_lanes(
        self, equivalence_run
    ):
        first = equivalence_run["sharded"][0].fabric
        second = equivalence_run["sharded"][1].fabric
        with pytest.raises(ValueError):
            build_fabric_checkpoint(0, list(first.lanes) + [second.lanes[0]])
        with pytest.raises(ValueError):
            build_fabric_checkpoint(0, [first.lanes[0], first.lanes[0]])
        with pytest.raises(ValueError):
            build_fabric_checkpoint(0, [])

    def test_fabric_replay_is_consistent(self, equivalence_run):
        report = audit_the_auditor_fabric(equivalence_run["aggregator"])
        assert report.consistent
        assert report.checkpoints_checked == EPOCHS * len(
            equivalence_run["aggregator"].pipelines
        )


class TestPerLaneFraudGrounds:
    def test_forged_lane_checkpoint_is_slashed_on_its_lane(
        self, equivalence_run
    ):
        aggregator = equivalence_run["aggregator"]
        fabric = equivalence_run["fabric"]
        lane_id = min(aggregator.pipelines)
        pipeline = aggregator.pipelines[lane_id]
        lane = fabric.lane(lane_id)
        result = aggregator.schedulers[lane_id].run_epoch(EPOCHS)
        records = list(result.checkpoint.records)
        records[0] = records[0].flipped()
        forged = build_checkpoint(EPOCHS, tuple(records))
        receipt = lane.transact(
            Transaction(
                sender=pipeline.aggregator,
                to=pipeline.contract_address,
                method="post_checkpoint",
                args=(forged.checkpoint.to_bytes(),),
                value=pipeline.contract.posting_bond_wei,
            ),
            payload_bytes=forged.checkpoint.byte_size(),
        )
        assert receipt.success
        challenger = lane.create_account(1.0, label="challenger")
        opening = forged.prove(records[0].name)
        challenge_receipt = lane.transact(
            Transaction(
                sender=challenger,
                to=pipeline.contract_address,
                method="challenge_leaf",
                args=(
                    receipt.return_value,
                    opening.leaf_data,
                    opening.leaf_index,
                    opening.siblings,
                    opening.directions,
                ),
                value=pipeline.contract.challenge_bond_wei,
            ),
            payload_bytes=len(opening.leaf_data) + 32 * len(opening.siblings),
        )
        assert challenge_receipt.success
        assert any(
            e.name == "checkpoint_slashed" for e in challenge_receipt.events
        )
