"""CheckpointContract: bonded posting, fraud proofs, slashing, finality.

The acceptance property under test: a tampered checkpoint — flipped
verdict (either direction), substituted challenge, unregistered file — is
caught and slashed via the fraud-proof window, while honest checkpoints
finalize and frivolous challenges forfeit their bond.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import (
    Blockchain,
    CheckpointContract,
    CheckpointStatus,
    ReputationRegistry,
    Transaction,
)
from repro.core import DataOwner
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.randomness import HashChainBeacon
from repro.rollup import RoundRecord, build_checkpoint
from repro.sim.workloads import archive_file

WINDOW = 500.0


@pytest.fixture(scope="module")
def rollup_env(params):
    """Three settled epochs' worth of bundles over a 4-file fleet.

    Epoch 2 includes one withheld response (override returning ``None``),
    so its bundle carries a genuine ``no-proof`` rejection — the leaf the
    reject->accept forgery test flips.
    """
    rng = random.Random(0xC4E0)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(4):
        package = owner.prepare(
            archive_file(900, tag=f"ckpt-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="ckpt"))
    beacon = HashChainBeacon(b"checkpoint-contract-test")
    with AuditExecutor(instances, workers=1) as executor:
        scheduler = EpochScheduler(
            executor, params, beacon, rng=rng, checkpoint_mode=True
        )
        bundles = {
            0: scheduler.run_epoch(0).checkpoint,
            1: scheduler.run_epoch(1).checkpoint,
        }
        withheld_name = instances[-1].name
        scheduler.set_override(withheld_name, lambda challenge, epoch: None)
        bundles[2] = scheduler.run_epoch(2).checkpoint
    return {
        "params": params,
        "beacon": beacon,
        "instances": instances,
        "bundles": bundles,
        "withheld_name": withheld_name,
    }


@pytest.fixture()
def deployed(rollup_env):
    """A fresh chain + contract with every instance registered."""
    chain = Blockchain(block_time=15.0)
    aggregator = chain.create_account(10.0, label="aggregator")
    challenger = chain.create_account(10.0, label="challenger")
    contract = CheckpointContract(
        rollup_env["beacon"], rollup_env["params"], fraud_window=WINDOW
    )
    address = chain.deploy(contract, deployer=aggregator)
    for instance in rollup_env["instances"]:
        receipt = chain.transact(
            Transaction(
                sender=aggregator,
                to=address,
                method="register_instance",
                args=(instance.name, instance.public.to_bytes(), instance.num_chunks),
            )
        )
        assert receipt.success, receipt.error
    return chain, contract, address, aggregator, challenger


def _post(chain, contract, address, sender, bundle):
    receipt = chain.transact(
        Transaction(
            sender=sender,
            to=address,
            method="post_checkpoint",
            args=(bundle.checkpoint.to_bytes(),),
            value=contract.posting_bond_wei,
        ),
        payload_bytes=bundle.checkpoint.byte_size(),
    )
    assert receipt.success, receipt.error
    return receipt.return_value


def _challenge(chain, contract, address, sender, checkpoint_id, proof):
    return chain.transact(
        Transaction(
            sender=sender,
            to=address,
            method="challenge_leaf",
            args=(
                checkpoint_id,
                proof.leaf_data,
                proof.leaf_index,
                proof.siblings,
                proof.directions,
            ),
            value=contract.challenge_bond_wei,
        ),
        payload_bytes=len(proof.leaf_data) + 32 * len(proof.siblings),
    )


class TestPostingAndFinality:
    def test_honest_checkpoint_finalizes_and_refunds_bond(self, rollup_env, deployed):
        chain, contract, address, aggregator, _ = deployed
        supply = chain.total_supply()
        checkpoint_id = _post(
            chain, contract, address, aggregator, rollup_env["bundles"][0]
        )
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.OPEN
        assert entry.bond_wei == contract.posting_bond_wei

        early = chain.transact(
            Transaction(sender=aggregator, to=address,
                        method="finalize_checkpoint", args=(checkpoint_id,))
        )
        assert not early.success and "window still open" in early.error

        chain.advance_time(WINDOW + chain.block_time)
        receipt = chain.transact(
            Transaction(sender=aggregator, to=address,
                        method="finalize_checkpoint", args=(checkpoint_id,))
        )
        assert receipt.success, receipt.error
        assert entry.status is CheckpointStatus.FINAL
        assert entry.bond_wei == 0
        assert chain.total_supply() == supply  # nothing minted or burned

    def test_commitment_is_85_bytes_per_epoch(self, rollup_env, deployed):
        chain, contract, address, aggregator, _ = deployed
        for epoch in (0, 1):
            _post(chain, contract, address, aggregator, rollup_env["bundles"][epoch])
        assert contract.total_commitment_bytes() == 2 * 85
        assert contract.audited_rounds() == 8  # 4 files x 2 epochs

    def test_duplicate_epoch_and_bad_commitment_rejected(self, rollup_env, deployed):
        chain, contract, address, aggregator, _ = deployed
        _post(chain, contract, address, aggregator, rollup_env["bundles"][0])
        duplicate = chain.transact(
            Transaction(
                sender=aggregator, to=address, method="post_checkpoint",
                args=(rollup_env["bundles"][0].checkpoint.to_bytes(),),
                value=contract.posting_bond_wei,
            )
        )
        assert not duplicate.success and "already checkpointed" in duplicate.error
        garbage = chain.transact(
            Transaction(
                sender=aggregator, to=address, method="post_checkpoint",
                args=(b"\x00" * 10,), value=contract.posting_bond_wei,
            )
        )
        assert not garbage.success and "bad commitment" in garbage.error
        unbonded = chain.transact(
            Transaction(
                sender=aggregator, to=address, method="post_checkpoint",
                args=(rollup_env["bundles"][1].checkpoint.to_bytes(),), value=0,
            )
        )
        assert not unbonded.success and "posting bond" in unbonded.error


class TestFraudProofs:
    def test_flipped_accept_to_reject_is_slashed(self, rollup_env, deployed):
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        records = list(bundle.records)
        records[1] = records[1].flipped()  # honest pass committed as fail
        forged = build_checkpoint(0, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)

        before = chain.balance_of(challenger)
        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(records[1].name),
        )
        assert receipt.success, receipt.error
        names = [e.name for e in receipt.events]
        assert names == ["checkpoint_challenged", "checkpoint_slashed"]
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.SLASHED
        assert "verdict-flipped" in entry.fraud_reason
        # Bounty: the poster's bond net of gas fees lands with the challenger.
        assert chain.balance_of(challenger) > before

    def test_flipped_reject_to_accept_is_slashed(self, rollup_env, deployed):
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][2]
        withheld = rollup_env["withheld_name"]
        records = list(bundle.records)
        index = next(i for i, r in enumerate(records) if r.name == withheld)
        assert not records[index].verdict  # genuine no-proof rejection
        records[index] = records[index].flipped()  # forged into a pass
        forged = build_checkpoint(2, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)

        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(withheld),
        )
        assert receipt.success, receipt.error
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.SLASHED
        assert "committed pass, re-verification says fail" in entry.fraud_reason

    def test_substituted_challenge_is_slashed(self, rollup_env, deployed):
        """An aggregator cannot swap in a favorable (non-beacon) challenge."""
        chain, contract, address, aggregator, challenger = deployed
        bundle0, bundle1 = rollup_env["bundles"][0], rollup_env["bundles"][1]
        victim = bundle1.records[0]
        wrong_challenge = bundle0.record_for(victim.name).challenge_bytes
        records = list(bundle1.records)
        records[0] = RoundRecord(
            name=victim.name,
            epoch=victim.epoch,
            challenge_bytes=wrong_challenge,  # epoch 0's challenge in epoch 1
            proof_bytes=victim.proof_bytes,
            verdict=victim.verdict,
            reject_code=victim.reject_code,
        )
        forged = build_checkpoint(1, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)
        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(victim.name),
        )
        assert receipt.success, receipt.error
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.SLASHED
        assert "challenge-mismatch" in entry.fraud_reason

    def test_frivolous_challenge_forfeits_bond(self, rollup_env, deployed):
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        checkpoint_id = _post(chain, contract, address, aggregator, bundle)
        poster_before = chain.balance_of(aggregator)
        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            bundle.prove(bundle.records[0].name),
        )
        assert receipt.success, receipt.error
        assert [e.name for e in receipt.events] == [
            "checkpoint_challenged", "checkpoint_upheld",
        ]
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.OPEN  # still challengeable
        assert (
            chain.balance_of(aggregator)
            == poster_before + contract.challenge_bond_wei
        )

    def test_bogus_inclusion_proof_reverts(self, rollup_env, deployed):
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        checkpoint_id = _post(chain, contract, address, aggregator, bundle)
        proof = bundle.prove(bundle.records[0].name)
        tampered = type(proof)(
            leaf_index=proof.leaf_index,
            leaf_data=proof.leaf_data + b"\x00",  # not the committed leaf
            siblings=proof.siblings,
            directions=proof.directions,
        )
        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id, tampered
        )
        assert not receipt.success
        assert "does not open the committed root" in receipt.error
        assert contract.checkpoints[checkpoint_id].status is CheckpointStatus.OPEN

    def test_window_closes_challenges(self, rollup_env, deployed):
        chain, contract, address, aggregator, challenger = deployed
        records = list(rollup_env["bundles"][0].records)
        records[0] = records[0].flipped()
        forged = build_checkpoint(0, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)
        chain.advance_time(WINDOW + chain.block_time)
        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(records[0].name),
        )
        assert not receipt.success and "window closed" in receipt.error
        # The forgery survives only as a *finalized* commitment — the
        # window is the trust assumption, exactly as in optimistic rollups.

    def test_slashed_checkpoint_cannot_finalize(self, rollup_env, deployed):
        chain, contract, address, aggregator, challenger = deployed
        records = list(rollup_env["bundles"][0].records)
        records[0] = records[0].flipped()
        forged = build_checkpoint(0, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)
        assert _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(records[0].name),
        ).success
        chain.advance_time(WINDOW + chain.block_time)
        receipt = chain.transact(
            Transaction(sender=aggregator, to=address,
                        method="finalize_checkpoint", args=(checkpoint_id,))
        )
        assert not receipt.success and "slashed" in receipt.error


class TestSlanderAndCounts:
    """The fraud grounds a single honest leaf opening cannot expose."""

    def test_no_proof_slander_rebutted_with_counterproof(
        self, rollup_env, deployed
    ):
        """An aggregator marking an *answered* round as withheld is caught.

        The slanderous leaf is internally consistent (empty proof
        re-verifies to reject), so a plain opening is upheld — the wronged
        provider instead submits the real proof for the epoch's beacon
        challenge as a counterproof, which a correct aggregator's
        ``no-proof`` record could never coexist with.
        """
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        victim = bundle.records[0]
        assert victim.verdict and victim.proof_bytes  # genuinely answered
        slander = RoundRecord(
            name=victim.name,
            epoch=victim.epoch,
            challenge_bytes=victim.challenge_bytes,
            proof_bytes=b"",
            verdict=False,
            reject_code="no-proof",
        )
        records = list(bundle.records)
        records[0] = slander
        forged = build_checkpoint(0, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)

        # Without the counterproof the slander is self-consistent: upheld.
        plain = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(victim.name),
        )
        assert plain.success and "checkpoint_upheld" in [
            e.name for e in plain.events
        ]
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.OPEN

        # With the provider's real proof attached, the lie is provable.
        opening = forged.prove(victim.name)
        receipt = chain.transact(
            Transaction(
                sender=challenger,
                to=address,
                method="challenge_leaf",
                args=(
                    checkpoint_id,
                    opening.leaf_data,
                    opening.leaf_index,
                    opening.siblings,
                    opening.directions,
                    victim.proof_bytes,  # the counterproof
                ),
                value=contract.challenge_bond_wei,
            )
        )
        assert receipt.success, receipt.error
        assert entry.status is CheckpointStatus.SLASHED
        assert "rejection-rebutted" in entry.fraud_reason
        # The voided epoch is settleable again: a correct aggregator can
        # post the honest checkpoint for the same epoch afterwards.
        assert contract.checkpoint_for_epoch(None, 0) is None
        honest_id = _post(chain, contract, address, aggregator, bundle)
        assert contract.checkpoints[honest_id].status is CheckpointStatus.OPEN
        assert contract.checkpoint_for_epoch(None, 0) == bundle.checkpoint

    def test_garbage_proof_slander_rebutted_with_counterproof(
        self, rollup_env, deployed
    ):
        """Slander variant: the aggregator substitutes garbage proof bytes
        (a self-consistent 'pairing-mismatch' rejection) for a round the
        provider answered.  The counterproof still wins."""
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        victim = bundle.records[0]
        assert victim.verdict
        slander = RoundRecord(
            name=victim.name,
            epoch=victim.epoch,
            challenge_bytes=victim.challenge_bytes,
            proof_bytes=b"\x00" * len(victim.proof_bytes),
            verdict=False,
            reject_code="pairing-mismatch",
        )
        records = list(bundle.records)
        records[0] = slander
        forged = build_checkpoint(0, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)
        opening = forged.prove(victim.name)
        receipt = chain.transact(
            Transaction(
                sender=challenger,
                to=address,
                method="challenge_leaf",
                args=(
                    checkpoint_id,
                    opening.leaf_data,
                    opening.leaf_index,
                    opening.siblings,
                    opening.directions,
                    victim.proof_bytes,
                ),
                value=contract.challenge_bond_wei,
            )
        )
        assert receipt.success, receipt.error
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.SLASHED
        assert "rejection-rebutted" in entry.fraud_reason

    def test_garbage_counterproof_does_not_slash(self, rollup_env, deployed):
        """A bogus counterproof cannot turn an honest withheld leaf into
        fraud: epoch 2's genuine no-proof rejection stands."""
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][2]
        withheld = rollup_env["withheld_name"]
        checkpoint_id = _post(chain, contract, address, aggregator, bundle)
        opening = bundle.prove(withheld)
        receipt = chain.transact(
            Transaction(
                sender=challenger,
                to=address,
                method="challenge_leaf",
                args=(
                    checkpoint_id,
                    opening.leaf_data,
                    opening.leaf_index,
                    opening.siblings,
                    opening.directions,
                    b"\x07" * 288,  # structurally plausible, cryptographically junk
                ),
                value=contract.challenge_bond_wei,
            )
        )
        assert receipt.success, receipt.error
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.OPEN  # upheld, not slashed

    def test_forged_counts_slashed_via_full_data_challenge(
        self, rollup_env, deployed
    ):
        """Forged accepted/rejected counts over an honest root are caught
        by the full-leaf-set challenge (hashing only, no pairings)."""
        from repro.rollup import Checkpoint

        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        honest = bundle.checkpoint
        forged = Checkpoint(
            epoch=honest.epoch,
            root=honest.root,                      # honest tree...
            accepted=0,                            # ...libellous summary
            rejected=honest.num_leaves,
            num_leaves=honest.num_leaves,
            proof_digest=honest.proof_digest,
        )
        receipt = chain.transact(
            Transaction(
                sender=aggregator, to=address, method="post_checkpoint",
                args=(forged.to_bytes(),), value=contract.posting_bond_wei,
            )
        )
        assert receipt.success
        checkpoint_id = receipt.return_value
        leaves = tuple(r.to_bytes() for r in bundle.records)
        challenge = chain.transact(
            Transaction(
                sender=challenger, to=address, method="challenge_counts",
                args=(checkpoint_id, leaves),
                value=contract.challenge_bond_wei,
            ),
            payload_bytes=sum(len(leaf) for leaf in leaves),
        )
        assert challenge.success, challenge.error
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.SLASHED
        assert "count-mismatch" in entry.fraud_reason

    def test_counts_challenge_needs_the_committed_leaves(
        self, rollup_env, deployed
    ):
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        checkpoint_id = _post(chain, contract, address, aggregator, bundle)
        wrong = tuple(r.to_bytes() for r in rollup_env["bundles"][1].records)
        receipt = chain.transact(
            Transaction(
                sender=challenger, to=address, method="challenge_counts",
                args=(checkpoint_id, wrong),
                value=contract.challenge_bond_wei,
            )
        )
        assert not receipt.success
        assert "do not rebuild the committed root" in receipt.error

    def test_frivolous_counts_challenge_forfeits_bond(
        self, rollup_env, deployed
    ):
        chain, contract, address, aggregator, challenger = deployed
        bundle = rollup_env["bundles"][0]
        checkpoint_id = _post(chain, contract, address, aggregator, bundle)
        poster_before = chain.balance_of(aggregator)
        leaves = tuple(r.to_bytes() for r in bundle.records)
        receipt = chain.transact(
            Transaction(
                sender=challenger, to=address, method="challenge_counts",
                args=(checkpoint_id, leaves),
                value=contract.challenge_bond_wei,
            )
        )
        assert receipt.success, receipt.error
        entry = contract.checkpoints[checkpoint_id]
        assert entry.status is CheckpointStatus.OPEN
        assert (
            chain.balance_of(aggregator)
            == poster_before + contract.challenge_bond_wei
        )


class TestRegistryWiring:
    def test_fraud_also_slashes_reputation_stake(self, rollup_env):
        chain = Blockchain(block_time=15.0)
        aggregator = chain.create_account(10.0, label="aggregator")
        challenger = chain.create_account(10.0, label="challenger")
        registry = ReputationRegistry(min_stake_wei=10**18)
        registry_address = chain.deploy(registry, deployer=aggregator)
        contract = CheckpointContract(
            rollup_env["beacon"],
            rollup_env["params"],
            fraud_window=WINDOW,
            registry_address=registry_address,
        )
        address = chain.deploy(contract, deployer=aggregator)
        for instance in rollup_env["instances"]:
            chain.transact(
                Transaction(
                    sender=aggregator, to=address, method="register_instance",
                    args=(instance.name, instance.public.to_bytes(),
                          instance.num_chunks),
                )
            )
        assert chain.transact(
            Transaction(sender=aggregator, to=registry_address,
                        method="register", value=10**18)
        ).success
        assert chain.transact(
            Transaction(sender=aggregator, to=registry_address,
                        method="authorize_reporter", args=(address,))
        ).success

        records = list(rollup_env["bundles"][0].records)
        records[0] = records[0].flipped()
        forged = build_checkpoint(0, tuple(records))
        checkpoint_id = _post(chain, contract, address, aggregator, forged)
        stake_before = registry.providers[aggregator].stake_wei
        receipt = _challenge(
            chain, contract, address, challenger, checkpoint_id,
            forged.prove(records[0].name),
        )
        assert receipt.success, receipt.error
        assert "stake_slashed" in [e.name for e in receipt.events]
        assert registry.providers[aggregator].stake_wei < stake_before
