"""Shared fixtures.

Pairing operations cost tens of milliseconds in pure Python, so expensive
artefacts (keypairs, outsourcing packages, SNARK setups) are built once per
session with small-but-representative parameters.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DataOwner,
    OutsourcingPackage,
    ProtocolParams,
    StorageProvider,
    generate_keypair,
)
from repro.sim.workloads import archive_file


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running soak/endurance tests (deselect with -m 'not slow')",
    )


@pytest.fixture(scope="session")
def rng() -> random.Random:
    return random.Random(0xA0D17)


@pytest.fixture(scope="session")
def params() -> ProtocolParams:
    """Small protocol parameters: s=6 blocks/chunk, k=4 challenged."""
    return ProtocolParams(s=6, k=4)


@pytest.fixture(scope="session")
def keypair(params, rng):
    return generate_keypair(params.s, private_auditing=True, rng=rng)


@pytest.fixture(scope="session")
def file_bytes() -> bytes:
    return archive_file(1200, tag="test-archive").data


@pytest.fixture(scope="session")
def owner(params, rng) -> DataOwner:
    return DataOwner(params, rng=rng)


@pytest.fixture(scope="session")
def package(owner, file_bytes) -> OutsourcingPackage:
    return owner.prepare(file_bytes)


@pytest.fixture()
def provider(rng) -> StorageProvider:
    return StorageProvider(rng=rng)


@pytest.fixture(scope="session")
def accepted_provider(package, rng) -> StorageProvider:
    """A provider that has validated and stored the session package."""
    provider = StorageProvider(rng=rng)
    assert provider.accept(package)
    return provider
