"""Economics and throughput models versus the paper's reported numbers."""

from __future__ import annotations

import pytest

from repro.sim import (
    AnnualCostReport,
    ChainCapacityModel,
    DROPBOX_BUSINESS_USD_PER_YEAR,
    ProviderLoadModel,
    archive_file,
    audit_gas,
    enterprise_backup,
    figure6_series,
    one_time_storage_cost,
    photo_collection,
    public_key_bytes,
    total_bytes,
    usd_per_audit,
)


class TestEconomics:
    def test_public_key_size_matches_fig4(self):
        """Fig. 4: s=100 w/ privacy lands around 3.5 KB."""
        assert 3.3 * 1024 < public_key_bytes(100, True) < 3.7 * 1024
        assert public_key_bytes(100, True) - public_key_bytes(100, False) == 192

    def test_pk_size_scales_linearly_in_s(self):
        sizes = [public_key_bytes(s, True) for s in (10, 20, 50, 100)]
        assert sizes == sorted(sizes)
        assert sizes[3] - sizes[2] == 50 * 32

    def test_one_time_cost_few_dollars(self):
        """Paper: 'this cost would be no more than a few US dollars'."""
        for s in (10, 20, 50, 100):
            report = one_time_storage_cost(s)
            assert report["usd"] < 5.0

    def test_audit_gas_anchor(self):
        assert audit_gas() == 589_000

    def test_usd_per_audit_readings(self):
        # Footnote pricing (5 Gwei, 143 USD/ETH) -> ~$0.43 incl. randomness.
        assert 0.40 < usd_per_audit() < 0.46
        # Abstract's $0.1 reading at ~1.2 Gwei.
        assert 0.09 < usd_per_audit(gas_price_gwei=1.2) < 0.13

    def test_figure6_series_shape(self):
        series = figure6_series()
        daily = [point.total_usd for point in series["daily"]]
        weekly = [point.total_usd for point in series["weekly"]]
        assert daily == sorted(daily)          # increasing in duration
        assert all(d > w for d, w in zip(daily, weekly))
        # Paper's visual anchor: daily auditing for 360 days ~ $150.
        point_360 = next(p for p in series["daily"] if p.duration_days == 360)
        assert 120 < point_360.total_usd < 180

    def test_annual_report_vs_dropbox(self):
        """Daily auditing of one provider costs Dropbox-class money."""
        report = AnnualCostReport(audits_per_day=1.0).compute()
        assert report["yearly_auditing_usd"] == pytest.approx(
            365 * usd_per_audit(), rel=1e-6
        )
        assert report["competitive"]
        assert report["dropbox_business_usd"] == DROPBOX_BUSINESS_USD_PER_YEAR

    def test_batched_redundancy_cheaper(self):
        solo = AnnualCostReport(redundancy_providers=10).compute()
        batched = AnnualCostReport(
            redundancy_providers=10, batch_redundant_audits=True
        ).compute()
        assert batched["yearly_auditing_usd"] * 9 < solo["yearly_auditing_usd"] * 10


class TestThroughput:
    def test_two_tx_per_second(self):
        model = ChainCapacityModel()
        assert 1.8 < model.tx_per_second < 2.5  # paper: "2 transactions/s"

    def test_supports_5000_users(self):
        model = ChainCapacityModel()
        assert model.max_concurrent_users(1.0, redundancy_providers=10) >= 5000

    def test_annual_growth_matches_fig10(self):
        model = ChainCapacityModel()
        growth = model.annual_chain_growth_bytes(10_000)
        assert 1.0 * 2**30 < growth < 1.3 * 2**30  # ~1.1 GB/year
        # Linear in users.
        assert model.annual_chain_growth_bytes(5_000) == pytest.approx(
            growth / 2, rel=1e-9
        )

    def test_provider_load_matches_fig10_right(self):
        model = ProviderLoadModel()
        # Paper: ~20 s of proving when serving ~300 users.
        assert 15 < model.proving_time_for_all(300) < 25
        assert model.users_per_provider(1000) == 30
        assert model.users_per_provider(5000) == 150

    def test_tolerability_threshold(self):
        model = ProviderLoadModel()
        assert model.tolerable(300)      # ~20 s vs ~30 s budget
        assert not model.tolerable(1000)  # ~65 s: too slow


class TestCheckpointedThroughput:
    """The rollup lever: capacity scales with the checkpoint batch size."""

    def test_max_users_scales_linearly_with_batch_size(self):
        from repro.sim.throughput import CheckpointedChainCapacityModel

        base = ChainCapacityModel().max_concurrent_users()
        users_at = {
            batch: CheckpointedChainCapacityModel(
                rounds_per_checkpoint=batch
            ).max_concurrent_users()
            for batch in (1, 64, 256, 1024)
        }
        # Strictly increasing in the batch, and linear: 4x the batch is 4x
        # the sustainable user base (same chain, same blocks).
        assert users_at[1] < users_at[64] < users_at[256] < users_at[1024]
        assert users_at[256] == pytest.approx(users_at[64] * 4, rel=0.01)
        assert users_at[1024] == pytest.approx(users_at[256] * 4, rel=0.01)
        # At fleet-scale batches the rollup clears the per-round ceiling by
        # orders of magnitude (the paper's 5,000-user figure, amortized).
        assert users_at[256] > 100 * base

    def test_amortized_round_footprint_shrinks(self):
        from repro.sim.throughput import CheckpointedChainCapacityModel

        per_round = ChainCapacityModel().bytes_per_round
        checkpointed = CheckpointedChainCapacityModel(rounds_per_checkpoint=256)
        assert checkpointed.bytes_per_round * 10 < per_round
        # One commitment tx is *smaller* than one per-round tx pair even
        # before amortization: 85 B calldata vs 336 B of trail.
        assert checkpointed.bytes_per_checkpoint_tx < per_round

    def test_annual_growth_amortizes(self):
        from repro.sim.throughput import CheckpointedChainCapacityModel

        base = ChainCapacityModel().annual_chain_growth_bytes(10_000)
        rolled = CheckpointedChainCapacityModel(
            rounds_per_checkpoint=256
        ).annual_chain_growth_bytes(10_000)
        assert rolled * 100 < base

    def test_batch_of_one_rejects_nothing_weird(self):
        from repro.sim.throughput import CheckpointedChainCapacityModel

        with pytest.raises(ValueError):
            CheckpointedChainCapacityModel(rounds_per_checkpoint=0)
        one = CheckpointedChainCapacityModel(rounds_per_checkpoint=1)
        assert one.bytes_per_round == one.bytes_per_checkpoint_tx


class TestShardedThroughput:
    def test_user_ceiling_scales_linearly_with_lanes(self):
        from repro.sim.throughput import (
            CheckpointedChainCapacityModel,
            ShardedChainCapacityModel,
        )

        base = CheckpointedChainCapacityModel().max_concurrent_users()
        for lanes in (1, 2, 4, 8):
            sharded = ShardedChainCapacityModel(lanes=lanes)
            assert sharded.max_concurrent_users() == lanes * base
            assert sharded.tx_per_second == pytest.approx(
                lanes * CheckpointedChainCapacityModel().tx_per_second
            )

    def test_growth_adds_only_fixed_per_epoch_fabric_bytes(self):
        from repro.sim.throughput import (
            CheckpointedChainCapacityModel,
            ShardedChainCapacityModel,
        )

        users = 100_000
        unsharded = CheckpointedChainCapacityModel().annual_chain_growth_bytes(
            users
        )
        sharded = ShardedChainCapacityModel(lanes=8).annual_chain_growth_bytes(
            users
        )
        # 7 extra lane commitments + 1 fabric commitment per daily epoch.
        expected_overhead = 365 * (7 * 85 + 87)
        assert sharded == unsharded + expected_overhead
        # Sharding 8x the user ceiling costs ~2% extra bytes at this scale.
        assert sharded < unsharded * 1.03

    def test_single_lane_degenerates_to_fabric_commitment_only(self):
        from repro.sim.throughput import (
            CheckpointedChainCapacityModel,
            ShardedChainCapacityModel,
        )

        users = 10_000
        unsharded = CheckpointedChainCapacityModel()
        one_lane = ShardedChainCapacityModel(lanes=1)
        assert one_lane.max_concurrent_users() == unsharded.max_concurrent_users()
        assert one_lane.annual_chain_growth_bytes(
            users
        ) == unsharded.annual_chain_growth_bytes(users) + 365 * 87

    def test_rejects_zero_lanes(self):
        from repro.sim.throughput import ShardedChainCapacityModel

        with pytest.raises(ValueError):
            ShardedChainCapacityModel(lanes=0)


class TestWorkloads:
    def test_archive_deterministic(self):
        a = archive_file(1000)
        b = archive_file(1000)
        assert a.data == b.data
        assert a.size == 1000

    def test_photo_collection_distribution(self):
        photos = photo_collection(50, seed=7)
        assert len(photos) == 50
        sizes = [p.size for p in photos]
        assert all(4 * 1024 <= size <= 4 * 1024 * 1024 for size in sizes)
        assert photo_collection(50, seed=7)[10].data == photos[10].data
        assert len({p.name for p in photos}) == 50

    def test_enterprise_backup(self):
        docs = enterprise_backup(10)
        assert len(docs) == 10
        assert total_bytes(docs) == sum(d.size for d in docs)
