"""LifecycleCapacityModel: durability + chain-growth projection invariants."""

from __future__ import annotations

import pytest

from repro.sim.durability import DurabilityModel
from repro.sim.throughput import LifecycleCapacityModel


def test_loss_rate_compounds_to_annual_churn():
    model = LifecycleCapacityModel(churn=0.2, epochs_per_year=12)
    p = model.shard_loss_rate_per_epoch
    assert (1 - p) ** 12 == pytest.approx(0.8)


def test_projected_durability_matches_markov_model():
    model = LifecycleCapacityModel(
        churn=0.3, epochs_per_year=6, erasure_n=4, erasure_k=2
    )
    direct = DurabilityModel(
        n=4, k=2, shard_loss_rate=model.shard_loss_rate_per_epoch
    ).survival_probability(12)
    assert model.projected_durability(2) == pytest.approx(direct)


def test_durability_improves_with_redundancy():
    low = LifecycleCapacityModel(erasure_n=3, erasure_k=2, churn=0.4)
    high = LifecycleCapacityModel(erasure_n=6, erasure_k=2, churn=0.4)
    assert high.projected_durability(5) > low.projected_durability(5)


def test_durability_decreases_with_horizon():
    model = LifecycleCapacityModel(erasure_n=4, erasure_k=2, churn=0.4)
    values = [model.projected_durability(years) for years in (1, 3, 10)]
    assert values == sorted(values, reverse=True)


def test_faster_audits_improve_durability():
    """More epochs per year = faster detection + repair = fewer deaths."""
    slow = LifecycleCapacityModel(churn=0.5, epochs_per_year=2)
    fast = LifecycleCapacityModel(churn=0.5, epochs_per_year=24)
    assert fast.projected_durability(3) > slow.projected_durability(3)


def test_cumulative_bytes_decompose_exactly():
    model = LifecycleCapacityModel(
        lanes=3, epochs_per_year=12, churn=0.2, erasure_n=4, erasure_k=2
    )
    files = 40
    years = 7
    assert model.cumulative_chain_bytes(years, files) == int(
        years
        * (model.settlement_bytes_per_year() + model.repair_bytes_per_year(files))
    )


def test_settlement_bytes_scale_with_lanes_and_cadence():
    base = LifecycleCapacityModel(lanes=1, epochs_per_year=12)
    wide = LifecycleCapacityModel(lanes=4, epochs_per_year=12)
    fast = LifecycleCapacityModel(lanes=1, epochs_per_year=24)
    assert wide.settlement_bytes_per_year() > base.settlement_bytes_per_year()
    assert fast.settlement_bytes_per_year() == 2 * base.settlement_bytes_per_year()


def test_expected_repairs_scale_linearly_with_files():
    model = LifecycleCapacityModel(churn=0.25, erasure_n=5, erasure_k=3)
    assert model.expected_repairs_per_year(20) == pytest.approx(
        2 * model.expected_repairs_per_year(10)
    )


def test_validation():
    with pytest.raises(ValueError):
        LifecycleCapacityModel(churn=1.5)
    with pytest.raises(ValueError):
        LifecycleCapacityModel(erasure_n=2, erasure_k=3)
    with pytest.raises(ValueError):
        LifecycleCapacityModel(epochs_per_year=0)


def test_zero_churn_means_perfect_projection_and_no_repairs():
    model = LifecycleCapacityModel(churn=0.0)
    assert model.projected_durability(10) == pytest.approx(1.0)
    assert model.expected_repairs_per_year(100) == 0.0
    assert model.repair_bytes_per_year(100) == 0
