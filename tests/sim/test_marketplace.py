"""The measured marketplace simulation validates the analytic Fig. 10 models."""

from __future__ import annotations

import pytest

from repro.core import ProtocolParams
from repro.randomness import HashChainBeacon
from repro.sim.marketplace import MarketplaceSimulation, extrapolate_annual_growth
from repro.sim.throughput import ChainCapacityModel


@pytest.fixture(scope="module")
def result():
    simulation = MarketplaceSimulation(
        HashChainBeacon(b"marketplace-test"),
        params=ProtocolParams(s=5, k=3),
        users=6,
        providers=2,
        rounds_per_user=2,
        file_bytes=500,
        seed=3,
    )
    return simulation.run()


def test_all_audits_pass(result):
    assert result.passes == 6 * 2
    assert result.fails == 0


def test_measured_trail_matches_model(result):
    """Measured bytes/round == the 336 B the ChainCapacityModel assumes."""
    model = ChainCapacityModel()
    assert result.bytes_per_round == model.challenge_bytes + model.proof_bytes


def test_measured_gas_matches_anchor(result):
    assert result.gas_per_round == 589_000


def test_provider_load_tracked(result):
    assert set(result.prove_seconds_by_provider) == {"provider-0", "provider-1"}
    assert all(v > 0 for v in result.prove_seconds_by_provider.values())
    # 3 users x 2 rounds per provider; each proof is well under a second
    # at bench scale.
    assert result.max_provider_load_seconds() < 10


def test_extrapolation_consistent_with_analytic_model(result):
    """Scaling the measurement to 10k users must land on Fig. 10 left."""
    measured = extrapolate_annual_growth(result, users=10_000)
    analytic = ChainCapacityModel().annual_chain_growth_bytes(10_000) / 2**30
    assert measured == pytest.approx(analytic, rel=1e-9)


def test_chain_accounting(result):
    assert result.chain_bytes > result.trail_bytes
    assert result.blocks > result.rounds_per_user
