"""The audits + erasure-coding durability model."""

from __future__ import annotations

import math

import pytest

from repro.sim.durability import DurabilityModel, compare_redundancy_levels


class TestDurabilityModel:
    def test_no_loss_means_certain_survival(self):
        model = DurabilityModel(n=4, k=2, shard_loss_rate=0.0)
        assert model.survival_probability(100) == pytest.approx(1.0)

    def test_certain_loss_kills_quickly(self):
        model = DurabilityModel(n=2, k=2, shard_loss_rate=1.0)
        assert model.survival_probability(1) == pytest.approx(0.0)

    def test_zero_periods_always_survive(self):
        model = DurabilityModel(n=3, k=2, shard_loss_rate=0.5)
        assert model.survival_probability(0) == 1.0

    def test_monotone_decreasing_in_time(self):
        model = DurabilityModel(n=4, k=2, shard_loss_rate=0.1)
        values = [model.survival_probability(t) for t in (1, 5, 20, 80)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_in_loss_rate(self):
        safe = DurabilityModel(n=4, k=2, shard_loss_rate=0.01)
        risky = DurabilityModel(n=4, k=2, shard_loss_rate=0.2)
        assert safe.survival_probability(30) > risky.survival_probability(30)

    def test_redundancy_helps(self):
        """The paper's RS(10,3) massively outlives no-redundancy storage."""
        loss = 0.02
        bare = DurabilityModel(n=1, k=1, shard_loss_rate=loss)
        coded = DurabilityModel(n=10, k=3, shard_loss_rate=loss)
        assert coded.survival_probability(365) > 0.999999
        assert bare.survival_probability(365) < 0.001

    def test_repair_requires_detection(self):
        """With blind audits (detection=0) losses accumulate and kill the
        file; with perfect detection the same code survives."""
        blind = DurabilityModel(n=4, k=3, shard_loss_rate=0.05, detection=0.0)
        sighted = DurabilityModel(n=4, k=3, shard_loss_rate=0.05, detection=1.0)
        assert sighted.survival_probability(100) > blind.survival_probability(100)

    def test_detection_probability_interpolates(self):
        half = DurabilityModel(n=4, k=3, shard_loss_rate=0.05, detection=0.5)
        none = DurabilityModel(n=4, k=3, shard_loss_rate=0.05, detection=0.0)
        full = DurabilityModel(n=4, k=3, shard_loss_rate=0.05, detection=1.0)
        t = 50
        assert (
            none.survival_probability(t)
            < half.survival_probability(t)
            < full.survival_probability(t)
        )

    def test_exactly_k_shards_is_alive(self):
        """State k is alive (decoding possible) but fragile."""
        model = DurabilityModel(n=2, k=2, shard_loss_rate=0.1)
        one_period = model.survival_probability(1)
        # Survives iff neither shard lost: (1-0.1)^2.
        assert one_period == pytest.approx(0.81, abs=1e-9)

    def test_nines(self):
        model = DurabilityModel(n=6, k=3, shard_loss_rate=0.01)
        nines = model.nines(365)
        assert nines > 4  # comfortably better than 99.99%
        zero = DurabilityModel(n=1, k=1, shard_loss_rate=0.0)
        assert zero.nines(10) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            DurabilityModel(n=2, k=3, shard_loss_rate=0.1)
        with pytest.raises(ValueError):
            DurabilityModel(n=2, k=1, shard_loss_rate=1.5)
        with pytest.raises(ValueError):
            DurabilityModel(n=2, k=1, shard_loss_rate=0.1).survival_probability(-1)


def test_compare_redundancy_levels():
    table = compare_redundancy_levels(shard_loss_rate=0.02, periods=365)
    assert set(table) == {"RS(1,1)", "RS(3,2)", "RS(6,3)", "RS(10,3)"}
    assert table["RS(10,3)"] > table["RS(3,2)"] > table["RS(1,1)"]
