"""Strategy library: every tampered answer is rejected, honest ones pass.

The "zero false accepts" acceptance criterion lives here: for each
byzantine strategy the cryptographic verdict must match the ground truth
exactly — tampered/challenged data always rejected, untouched data always
accepted — and rejections must carry structured reasons.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import (
    BitRotProver,
    ChurnProver,
    ReplayingProver,
    SelectiveStorageProver,
    StrategySpec,
    TagForgeryProver,
    expected_detection_rate,
    make_prover,
    measured_detection_rate,
)
from repro.core import (
    DataOwner,
    ProtocolParams,
    ResponseWithheld,
    Verifier,
    random_challenge,
)
from repro.sim.workloads import archive_file


@pytest.fixture(scope="module")
def adv_params() -> ProtocolParams:
    return ProtocolParams(s=4, k=4)


@pytest.fixture(scope="module")
def adv_rng() -> random.Random:
    return random.Random(0xBAD)


@pytest.fixture(scope="module")
def adv_package(adv_params, adv_rng):
    # 4960 bytes -> 160 blocks -> 40 chunks at s=4: big enough for the
    # selective/bitrot strategies to have a meaningful challenged-set miss
    # probability.
    owner = DataOwner(adv_params, rng=adv_rng)
    return owner.prepare(archive_file(4960, tag="adversary").data)


@pytest.fixture(scope="module")
def adv_verifier(adv_package):
    return Verifier(adv_package.public, adv_package.name, adv_package.num_chunks)


class TestForgedTags:
    def test_every_forged_proof_rejected(
        self, adv_params, adv_package, adv_verifier, adv_rng
    ):
        forger = make_prover("forge", adv_package, rng=adv_rng)
        assert isinstance(forger, TagForgeryProver)
        for _ in range(3):
            challenge = random_challenge(adv_params, rng=adv_rng)
            outcome = adv_verifier.verify_private(
                challenge, forger.respond_private(challenge)
            )
            assert not outcome
            assert outcome.reason is not None
            assert outcome.reason.code == "pairing-mismatch"
            assert outcome.reason.equation == "Eq.2"

    def test_rejection_reason_names_pairing_groups(
        self, adv_params, adv_package, adv_verifier, adv_rng
    ):
        forger = make_prover("forge", adv_package, rng=adv_rng)
        challenge = random_challenge(adv_params, rng=adv_rng)
        outcome = adv_verifier.verify_private(
            challenge, forger.respond_private(challenge)
        )
        labels = [label for label, _ in outcome.reason.pairing_groups]
        assert labels == [
            "zeta*sigma*g2",
            "(y',chi,r*psi)*epsilon",
            "zeta*psi*delta",
            "commitment-R",
        ]
        # every leg has a non-empty residual fingerprint
        assert all(fp for _, fp in outcome.reason.pairing_groups)
        assert "pairing-mismatch" in outcome.reason.describe()


class TestReplay:
    def test_first_round_honest_then_replays_rejected(
        self, adv_params, adv_package, adv_verifier, adv_rng
    ):
        replayer = ReplayingProver(
            adv_package.chunked,
            adv_package.public,
            list(adv_package.authenticators),
            rng=adv_rng,
        )
        first = random_challenge(adv_params, rng=adv_rng)
        proof = replayer.respond_private(first)
        assert adv_verifier.verify_private(first, proof)
        for _ in range(2):
            stale_challenge = random_challenge(adv_params, rng=adv_rng)
            stale = replayer.respond_private(stale_challenge)
            assert stale.to_bytes() == proof.to_bytes()  # literally replayed
            assert not adv_verifier.verify_private(stale_challenge, stale)
        assert replayer.replays == 2


class TestSelectiveStorage:
    def test_verdict_matches_ground_truth_exactly(
        self, adv_params, adv_package, adv_verifier, adv_rng
    ):
        prover = SelectiveStorageProver(
            adv_package.chunked,
            adv_package.public,
            list(adv_package.authenticators),
            rng=adv_rng,
            rho=0.3,
        )
        assert len(prover.discarded) == round(adv_package.num_chunks * 0.3)
        hits = misses = 0
        for _ in range(8):
            challenge = random_challenge(adv_params, rng=adv_rng)
            outcome = adv_verifier.verify_private(
                challenge, prover.respond_private(challenge)
            )
            should_fail = prover.would_be_detected(challenge)
            # zero false accepts AND zero false rejects
            assert bool(outcome) == (not should_fail)
            hits += should_fail
            misses += not should_fail
        # the sample sizes make both branches overwhelmingly likely; guard
        # so a silent fixture change cannot hollow the test out
        assert hits > 0

    def test_detection_rate_matches_closed_form(self):
        # >= 200 trials within +/-5% of 1-(1-rho)^c (acceptance criterion);
        # we run 2000 sampled challenge expansions.
        params = ProtocolParams(s=4, k=6)
        measured, predicted = measured_detection_rate(
            num_chunks=80, rho=0.25, params=params, trials=2000, seed=7
        )
        assert predicted == pytest.approx(1 - (1 - 0.25) ** 6)
        assert abs(measured - predicted) <= 0.05


class TestBitRot:
    def test_corruption_detected_iff_challenged(
        self, adv_params, adv_package, adv_verifier, adv_rng
    ):
        prover = BitRotProver(
            adv_package.chunked,
            adv_package.public,
            list(adv_package.authenticators),
            rng=adv_rng,
            rho=0.4,
        )
        assert prover.discarded  # some chunks rotted at rho=0.4 over 40
        for _ in range(4):
            challenge = random_challenge(adv_params, rng=adv_rng)
            outcome = adv_verifier.verify_private(
                challenge, prover.respond_private(challenge)
            )
            assert bool(outcome) == (not prover.would_be_detected(challenge))


class TestChurn:
    def test_offline_rounds_withhold_response(
        self, adv_params, adv_package, adv_verifier, adv_rng
    ):
        always_offline = ChurnProver(
            adv_package.chunked,
            adv_package.public,
            list(adv_package.authenticators),
            rng=adv_rng,
            rho=1.0,
        )
        with pytest.raises(ResponseWithheld):
            always_offline.respond_private(random_challenge(adv_params, rng=adv_rng))

        always_online = ChurnProver(
            adv_package.chunked,
            adv_package.public,
            list(adv_package.authenticators),
            rng=adv_rng,
            rho=0.0,
        )
        challenge = random_challenge(adv_params, rng=adv_rng)
        assert adv_verifier.verify_private(
            challenge, always_online.respond_private(challenge)
        )


class TestSpecsAndFactories:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            StrategySpec("nonsense")
        with pytest.raises(ValueError):
            StrategySpec("forge", count=0)
        with pytest.raises(ValueError):
            StrategySpec("selective", rho=1.5)

    def test_make_prover_rejects_unknown_kind(self, adv_package):
        with pytest.raises(ValueError):
            make_prover("nonsense", adv_package)

    def test_expected_rates(self):
        assert expected_detection_rate("honest", 0.3, 6) == 0.0
        assert expected_detection_rate("forge", 0.3, 6) == 1.0
        assert expected_detection_rate("offline", 0.3, 6) == 0.3
        assert expected_detection_rate("replay", 0.3, 6, epochs=3) == pytest.approx(
            2 / 3
        )
        assert expected_detection_rate("selective", 0.3, 6) == pytest.approx(
            1 - 0.7**6
        )
