"""ScenarioRunner through the engine, plus the byzantine DSN node."""

from __future__ import annotations

import pytest

from repro.adversary import ByzantineStorageNode, ScenarioRunner, StrategySpec
from repro.core import ProtocolParams
from repro.sim.workloads import adversarial_fleet_mix
from repro.storage import DsnClient, DsnCluster


@pytest.fixture(scope="module")
def full_mix_report():
    runner = ScenarioRunner(
        [
            StrategySpec("honest", count=2),
            StrategySpec("forge"),
            StrategySpec("replay"),
            StrategySpec("selective", rho=0.4),
            StrategySpec("bitrot", rho=0.4),
            StrategySpec("offline", rho=1.0),
        ],
        params=ProtocolParams(s=4, k=4),
        file_bytes=1200,
    )
    return runner, runner.run(epochs=2)


class TestScenarioRunner:
    def test_no_false_accepts_or_rejects_across_the_mix(self, full_mix_report):
        _, report = full_mix_report
        assert report.zero_false_accepts
        assert report.zero_false_rejects

    def test_per_strategy_detection_counts(self, full_mix_report):
        _, report = full_mix_report
        assert report.stats["honest"].detected == 0
        assert report.stats["forge"].detected == report.epochs
        # replay: honest in its first answered epoch, caught afterwards
        assert report.stats["replay"].detected == report.epochs - 1
        # churn at rho=1.0 never answers: every audit is a timeout detection
        assert report.stats["offline"].detected == report.epochs

    def test_rejections_localize_to_adversarial_files(self, full_mix_report):
        runner, report = full_mix_report
        adversarial = {
            name for name, (kind, _) in runner.kinds.items() if kind != "honest"
        }
        for _, rejected in report.rejected_log:
            assert set(rejected) <= adversarial

    def test_summary_lines_render(self, full_mix_report):
        _, report = full_mix_report
        text = "\n".join(report.summary_lines())
        for kind in ("honest", "forge", "replay", "selective", "bitrot"):
            assert kind in text
        assert "false accepts: 0" in text

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError):
            ScenarioRunner(
                [StrategySpec("forge"), StrategySpec("forge")],
                params=ProtocolParams(s=4, k=3),
            )


class TestByzantineStorageNode:
    def _cluster_with(self, mode: str, rho: float) -> tuple[DsnCluster, DsnClient]:
        cluster = DsnCluster()
        for index in range(6):
            if index == 0:
                node = ByzantineStorageNode(
                    name=f"node-{index}", mode=mode, rho=rho
                )
                cluster.nodes[node.name] = node
                cluster.ring.join(node.name)
            else:
                cluster.add_node(f"node-{index}")
        return cluster, DsnClient("owner", cluster)

    @pytest.mark.parametrize("mode", ["selective", "bitrot", "offline"])
    def test_redundancy_rides_out_one_byzantine_node(self, mode):
        cluster, client = self._cluster_with(mode, rho=1.0)
        payload = b"adversarial shard payload " * 40
        manifest = client.store("file-x", payload, n=6, k=2)
        assert client.retrieve(manifest) == payload

    def test_bitrot_shard_fails_checksum(self):
        cluster, client = self._cluster_with("honest", rho=0.0)
        payload = b"checksummed payload " * 32
        manifest = client.store("file-y", payload, n=6, k=2)
        victim = manifest.shards[0]
        assert cluster.node(victim.provider).corrupt_shard(
            "file-y", victim.shard_index
        )
        # retrieval skips the corrupted shard and still succeeds
        assert client.retrieve(manifest) == payload

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ByzantineStorageNode(name="bad", mode="nonsense")


def test_runner_accepts_plain_pairs_from_workloads():
    """The sim.workloads mix shape feeds ScenarioRunner directly."""
    runner = ScenarioRunner(
        adversarial_fleet_mix(
            honest=1, cheaters_per_strategy=1, strategies=("forge",)
        ),
        params=ProtocolParams(s=4, k=3),
        file_bytes=600,
    )
    assert {kind for kind, _ in runner.kinds.values()} == {"honest", "forge"}


def test_adversarial_fleet_mix_shape():
    mix = adversarial_fleet_mix(honest=4, cheaters_per_strategy=1)
    assert ("honest", 4) in mix
    kinds = [kind for kind, _ in mix]
    for kind in ("forge", "replay", "selective", "bitrot", "offline"):
        assert kind in kinds
    assert adversarial_fleet_mix(honest=0)[0][0] == "forge"
    with pytest.raises(ValueError):
        adversarial_fleet_mix(honest=-1)
