"""Replay freshness: a proof valid in epoch e must fail in epoch e+1.

Covers the beacon-derived challenge freshness argument on both execution
surfaces — the sequential verifier path and the parallel engine's grouped
batch path (with failure pinpointing down to the replayed file).
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import ReplayingProver
from repro.core import DataOwner, ProtocolParams, Verifier, epoch_challenge
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.randomness import HashChainBeacon
from repro.sim.workloads import archive_file


@pytest.fixture(scope="module")
def replay_params():
    return ProtocolParams(s=4, k=3)


@pytest.fixture(scope="module")
def replay_packages(replay_params):
    rng = random.Random(0xF5E5)
    owner = DataOwner(replay_params, rng=rng)
    return [
        owner.prepare(
            archive_file(900, tag=f"replay-{i}").data, fresh_keypair=i == 0
        )
        for i in range(3)
    ]


class TestSequentialPath:
    def test_epoch_e_proof_fails_in_epoch_e_plus_one(
        self, replay_params, replay_packages
    ):
        package = replay_packages[0]
        beacon = HashChainBeacon(b"replay-sequential")
        prover = ReplayingProver(
            package.chunked, package.public, list(package.authenticators)
        )
        verifier = Verifier(package.public, package.name, package.num_chunks)

        challenge_e = epoch_challenge(beacon.output(0), replay_params, package.name)
        proof = prover.respond_private(challenge_e)
        assert verifier.verify_private(challenge_e, proof)

        challenge_next = epoch_challenge(
            beacon.output(1), replay_params, package.name
        )
        replayed = prover.respond_private(challenge_next)
        assert replayed.to_bytes() == proof.to_bytes()
        outcome = verifier.verify_private(challenge_next, replayed)
        assert not outcome
        assert outcome.reason.code == "pairing-mismatch"


class TestParallelEnginePath:
    def test_unregistered_override_rejected_at_construction(
        self, replay_params, replay_packages
    ):
        instances = [AuditInstance.from_package(replay_packages[0])]
        with AuditExecutor(instances, workers=1) as executor:
            with pytest.raises(KeyError):
                EpochScheduler(
                    executor,
                    replay_params,
                    HashChainBeacon(b"bad-override"),
                    overrides={0xBEEF: lambda challenge, epoch: None},
                )

    def test_replay_caught_by_grouped_batch_and_pinpointed(
        self, replay_params, replay_packages
    ):
        instances = [
            AuditInstance.from_package(p, owner_id="replay-owner")
            for p in replay_packages
        ]
        cheater = replay_packages[-1]
        prover = ReplayingProver(
            cheater.chunked, cheater.public, list(cheater.authenticators)
        )
        # workers=2: honest proofs genuinely travel through the process
        # pool while the replayed one comes from the override.
        with AuditExecutor(instances, workers=2) as executor:
            scheduler = EpochScheduler(
                executor,
                replay_params,
                HashChainBeacon(b"replay-parallel"),
                rng=random.Random(99),
            )
            scheduler.set_override(
                cheater.name, lambda challenge, epoch: prover.respond_private(challenge)
            )
            first = scheduler.run_epoch(0)
            assert first.batch_ok  # the cached epoch-0 answer is honest
            assert first.rejected_names() == ()

            second = scheduler.run_epoch(1)
            assert not second.batch_ok
            assert second.batch_ok.checked == len(instances)
            rejections = second.batch_ok.pinpoint(scheduler.cache)
            assert [r.name for r in rejections] == [cheater.name]
            assert rejections[0].reason.code == "pairing-mismatch"
            assert second.rejected_names() == (cheater.name,)
            # honest files were unaffected across both epochs
            honest = {p.name for p in replay_packages[:-1]}
            assert honest.isdisjoint(second.rejected_names())
