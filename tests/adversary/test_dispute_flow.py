"""On-chain dispute/arbitration: rejection reasons, bonds, slashing."""

from __future__ import annotations

import pytest

from repro.adversary import run_onchain_dispute
from repro.chain import (
    Blockchain,
    ContractTerms,
    State,
    Transaction,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon


@pytest.fixture(scope="module")
def dispute_params():
    return ProtocolParams(s=4, k=3)


@pytest.fixture(scope="module")
def replay_demo(dispute_params):
    return run_onchain_dispute(
        strategy="replay", rounds=3, params=dispute_params, file_bytes=800
    )


class TestDisputeDemo:
    def test_failed_rounds_record_structured_reasons(self, replay_demo):
        assert replay_demo.passes == 1
        assert replay_demo.fails == 2
        assert replay_demo.reject_reasons == ("replayed-proof", "replayed-proof")

    def test_dispute_slashes_collateral_and_stake(self, replay_demo):
        assert replay_demo.disputes_raised == 2
        assert replay_demo.collateral_slashed_wei > 0
        # the dispute reserve held back at finalize gives even the final
        # round's dispute collateral to slash: one event per failed round
        slashes = [
            event
            for event in replay_demo.explorer.dispute_log()
            if event["name"] == "collateral_slashed"
        ]
        assert len(slashes) == 2
        assert all(e["payload"]["slashed_wei"] > 0 for e in slashes)
        assert replay_demo.stake_after_wei < replay_demo.stake_before_wei
        assert replay_demo.score_after < replay_demo.score_before

    def test_explorer_surfaces_the_dispute_trail(self, replay_demo):
        explorer = replay_demo.explorer
        names = {event["name"] for event in explorer.dispute_log()}
        assert {"disputed", "dispute_upheld", "collateral_slashed",
                "stake_slashed"} <= names
        summary = explorer.audit_contracts()[0]
        assert summary.disputes == 2
        assert "replayed-proof" in summary.reject_reasons
        exported = explorer.export_json()
        assert '"disputes"' in exported and '"reputation"' in exported
        assert "stake_slashed" in exported

    def test_reputation_snapshot_shows_the_slash(self, replay_demo):
        snapshot = replay_demo.explorer.reputation_snapshot()
        assert len(snapshot) == 1
        record = snapshot[0]
        assert record["stake_wei"] == replay_demo.stake_after_wei
        assert record["fails"] == 2

    def test_summary_lines_render(self, replay_demo):
        text = "\n".join(replay_demo.summary_lines())
        assert "collateral slashed" in text
        assert "reputation score" in text


class TestOfflineStrategyOnChain:
    def test_silent_provider_fails_with_no_proof_reason(self, dispute_params):
        result = run_onchain_dispute(
            strategy="offline",
            rho=1.0,
            rounds=2,
            params=dispute_params,
            file_bytes=800,
        )
        assert result.passes == 0
        assert result.fails == 2
        assert set(result.reject_reasons) == {"no-proof"}
        assert result.stake_after_wei < result.stake_before_wei


@pytest.fixture()
def closed_failed_contract(dispute_params, rng):
    """An honest deployment whose provider dropped the file after round 1."""
    owner = DataOwner(dispute_params, rng=rng)
    package = owner.prepare(b"\x5b" * 600)
    provider = StorageProvider(rng=rng)
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=2, audit_interval=100.0, response_window=30.0)
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"dispute-guards"),
        dispute_params,
    )
    deployment.provider_agent.misbehave_after_round = 1
    contract = run_contract_to_completion(chain, deployment)
    assert contract.state is State.CLOSED
    assert contract.fails == 1
    return chain, deployment, contract, terms


class TestDisputeGuards:
    def test_non_party_cannot_dispute(self, closed_failed_contract):
        chain, deployment, contract, terms = closed_failed_contract
        outsider = chain.create_account(1.0, label="outsider")
        receipt = chain.transact(
            Transaction(
                sender=outsider,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(1,),
                value=terms.dispute_bond_wei,
            )
        )
        assert not receipt.success and "not a party" in receipt.error

    def test_insufficient_bond_reverts(self, closed_failed_contract):
        chain, deployment, _, terms = closed_failed_contract
        receipt = chain.transact(
            Transaction(
                sender=deployment.owner_account,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(1,),
                value=terms.dispute_bond_wei - 1,
            )
        )
        assert not receipt.success and "dispute bond" in receipt.error

    def test_provider_contesting_genuine_failure_loses_bond(
        self, closed_failed_contract
    ):
        chain, deployment, contract, terms = closed_failed_contract
        owner_before = chain.balance_of(deployment.owner_account)
        provider_before = chain.balance_of(deployment.provider_account)
        receipt = chain.transact(
            Transaction(
                sender=deployment.provider_account,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(1,),
                value=terms.dispute_bond_wei,
            )
        )
        assert receipt.success
        record = contract.rounds[1]
        assert record.dispute_verdict == "upheld"
        # the bond (minus gas) moved to the owner
        assert chain.balance_of(deployment.owner_account) == (
            owner_before + terms.dispute_bond_wei
        )
        assert chain.balance_of(deployment.provider_account) < provider_before

    def test_round_cannot_be_disputed_twice(self, closed_failed_contract):
        chain, deployment, _, terms = closed_failed_contract

        def dispute():
            return chain.transact(
                Transaction(
                    sender=deployment.owner_account,
                    to=deployment.contract_address,
                    method="raise_dispute",
                    args=(1,),
                    value=terms.dispute_bond_wei,
                )
            )

        assert dispute().success
        second = dispute()
        assert not second.success and "already disputed" in second.error

    def test_owner_contesting_genuine_pass_loses_bond(
        self, closed_failed_contract
    ):
        chain, deployment, contract, terms = closed_failed_contract
        provider_before = chain.balance_of(deployment.provider_account)
        receipt = chain.transact(
            Transaction(
                sender=deployment.owner_account,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(0,),  # round 0 genuinely passed
                value=terms.dispute_bond_wei,
            )
        )
        assert receipt.success
        assert contract.rounds[0].dispute_verdict == "upheld"
        assert contract.rounds[0].passed is True
        assert chain.balance_of(deployment.provider_account) == (
            provider_before + terms.dispute_bond_wei
        )

    def test_dispute_window_eventually_closes(self, closed_failed_contract):
        chain, deployment, _, terms = closed_failed_contract
        chain.advance_time(terms.dispute_window + chain.block_time)
        receipt = chain.transact(
            Transaction(
                sender=deployment.owner_account,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(1,),
                value=terms.dispute_bond_wei,
            )
        )
        assert not receipt.success and "dispute window closed" in receipt.error

    def test_reserve_withheld_then_reclaimable_after_window(
        self, closed_failed_contract
    ):
        chain, deployment, contract, terms = closed_failed_contract
        # round 1 failed undisputed -> finalize held back the dispute reserve
        reserve = contract.deposits[deployment.provider_account]
        assert reserve == terms.dispute_slash_wei

        early = chain.transact(
            Transaction(
                sender=deployment.provider_account,
                to=deployment.contract_address,
                method="withdraw_reserve",
            )
        )
        assert not early.success and "window still open" in early.error

        chain.advance_time(terms.dispute_window + chain.block_time)
        before = chain.balance_of(deployment.provider_account)
        receipt = chain.transact(
            Transaction(
                sender=deployment.provider_account,
                to=deployment.contract_address,
                method="withdraw_reserve",
            )
        )
        assert receipt.success
        assert chain.balance_of(deployment.provider_account) > before
        assert contract.deposits[deployment.provider_account] == 0

    def test_mis_recorded_trail_is_overturned(self, closed_failed_contract):
        chain, deployment, contract, terms = closed_failed_contract
        # Simulate a corrupted trail (the light-client disagreement case):
        # round 0 genuinely passed but the record claims it failed.
        contract.rounds[0].passed = False
        contract.passes -= 1
        contract.fails += 1
        receipt = chain.transact(
            Transaction(
                sender=deployment.provider_account,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(0,),
                value=terms.dispute_bond_wei,
            )
        )
        assert receipt.success
        assert contract.rounds[0].dispute_verdict == "overturned"
        assert contract.rounds[0].passed is True
        assert contract.passes == 1 and contract.fails == 1
        assert any(e.name == "dispute_overturned" for e in receipt.events)

    def test_unresolved_round_cannot_be_disputed(self, dispute_params, rng):
        owner = DataOwner(dispute_params, rng=rng)
        package = owner.prepare(b"\x5c" * 600)
        provider = StorageProvider(rng=rng)
        chain = Blockchain(block_time=15.0)
        terms = ContractTerms(
            num_audits=1, audit_interval=100.0, response_window=30.0
        )
        deployment = deploy_audit_contract(
            chain, package, provider, terms, HashChainBeacon(b"open-round"),
            dispute_params,
        )
        # advance until the challenge opens but do not let S answer
        contract = chain.contract_at(deployment.contract_address)
        while contract.state is not State.PROVE:
            chain.mine_block()
        receipt = chain.transact(
            Transaction(
                sender=deployment.owner_account,
                to=deployment.contract_address,
                method="raise_dispute",
                args=(0,),
                value=terms.dispute_bond_wei,
            )
        )
        assert not receipt.success and "not yet resolved" in receipt.error
