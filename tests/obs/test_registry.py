"""MetricsRegistry semantics: typed instruments, labels, exporters.

The registry is the process-wide aggregation point every layer records
into, so its contract has to be airtight: idempotent creation, type and
label-arity mismatches refused, thread-safe increments, and exposition
that Prometheus (text 0.0.4) and the JSON-lines reader both accept.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import MetricsRegistry, register_core_instruments
from repro.obs.registry import CORE_INSTRUMENTS, DEFAULT_BUCKETS


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_counts_up_and_only_up(self, registry):
        c = registry.counter("jobs_total", "jobs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("errs_total", "errors", ("code",))
        c.labels("busy").inc()
        c.labels("busy").inc()
        c.labels("full").inc(3)
        values = {
            key[0]: child.value for key, child in registry.get("errs_total").children()
        }
        assert values == {"busy": 2, "full": 3}

    def test_label_arity_enforced(self, registry):
        c = registry.counter("multi_total", "m", ("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("depth", "queue depth")
        g.set(7)
        assert g.value == 7
        g.set(3)
        assert g.value == 3

    def test_callback_gauge_samples_lazily(self, registry):
        state = {"v": 1}
        g = registry.gauge("live", "sampled", callback=lambda: state["v"])
        assert g.value == 1
        state["v"] = 42
        assert g.value == 42

    def test_callback_failure_degrades_to_last_resort_zero(self, registry):
        def boom():
            raise RuntimeError("dead source")

        g = registry.gauge("flaky", "sampled", callback=boom)
        assert g.value == 0.0


class TestHistogram:
    def test_cumulative_buckets_end_at_inf(self, registry):
        h = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        cumulative = h.cumulative()
        assert cumulative[-1][1] == 3
        assert math.isinf(cumulative[-1][0])
        assert [n for _le, n in cumulative] == [1, 2, 3]
        assert h.sum == pytest.approx(5.55)

    def test_quantiles_interpolate_and_clamp(self, registry):
        h = registry.histogram("q", "latency", buckets=(1.0, 2.0, 4.0))
        for v in (0.5,) * 50 + (1.5,) * 50:
            h.observe(v)
        assert 0.0 < h.quantile(0.50) <= 1.0
        assert 1.0 < h.quantile(0.99) <= 2.0
        h.observe(100.0)  # overflows every finite bound
        assert h.quantile(0.999) == 4.0  # clamped to last finite bucket

    def test_empty_histogram_quantile_is_zero(self, registry):
        h = registry.histogram("e", "latency")
        assert h.quantile(0.5) == 0.0


class TestRegistry:
    def test_same_name_returns_same_family(self, registry):
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "x")
        a.inc()
        assert b.value == 1

    def test_kind_mismatch_refused(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_label_mismatch_refused(self, registry):
        registry.counter("x_total", "x", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", ("b",))

    def test_bucket_mismatch_refused(self, registry):
        registry.histogram("h", "h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", "h", buckets=(1.0, 3.0))

    def test_thread_safe_increments(self, registry):
        c = registry.counter("race_total", "contended")
        h = registry.histogram("race_lat", "contended")

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000
        assert h.count == 8000

    def test_collect_hooks_refresh_and_detach(self, registry):
        g = registry.gauge("hooked", "refreshed")
        state = {"v": 0}

        def refresh():
            state["v"] += 1
            g.set(state["v"])

        registry.add_collect_hook(refresh)
        registry.snapshot()
        registry.snapshot()
        assert g.value == 2
        registry.remove_collect_hook(refresh)
        registry.snapshot()
        assert g.value == 2

    def test_failing_hook_never_breaks_exposition(self, registry):
        registry.counter("ok_total", "fine").inc()

        def bad_hook():
            raise RuntimeError("collector died")

        registry.add_collect_hook(bad_hook)
        assert "ok_total" in registry.snapshot()
        assert "ok_total" in registry.to_prometheus()


class TestExporters:
    def test_prometheus_text_format(self, registry):
        registry.counter("req_total", "requests", ("method",)).labels(
            "mine"
        ).inc(2)
        registry.gauge("depth", "pool depth").set(5)
        h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        text = registry.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{method="mine"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 5" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_label_values_escaped(self, registry):
        registry.counter("esc_total", "e", ("why",)).labels('a"b\\c\n').inc()
        text = registry.to_prometheus()
        assert 'why="a\\"b\\\\c\\n"' in text

    def test_snapshot_includes_quantiles(self, registry):
        h = registry.histogram("lat", "latency")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        point = registry.snapshot()["lat"]["series"][0]
        assert point["count"] == 3
        assert point["p50"] <= point["p95"] <= point["p99"]

    def test_json_lines_round_trip(self, registry):
        registry.counter("a_total", "a").inc()
        registry.histogram("b", "b").observe(0.5)
        lines = registry.to_json_lines().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"a_total", "b"}


class TestCoreInstruments:
    def test_registers_every_layer(self, registry):
        register_core_instruments(registry)
        names = set(registry.snapshot())
        layers = {name.split("_")[0] for name in names}
        assert {"rpc", "mempool", "fabric", "engine", "crypto",
                "lifecycle"} <= layers
        assert len(names) == len(CORE_INSTRUMENTS)

    def test_idempotent(self, registry):
        register_core_instruments(registry)
        register_core_instruments(registry)  # same types/labels: no raise

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
