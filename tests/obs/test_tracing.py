"""Tracer contract: hierarchical spans, deterministic export, no-op mode.

The tracer runs *inside* the deterministic lifecycle domain, so its
deterministic export mode must be a pure function of the span sequence —
logical-counter timestamps only, byte-identical JSONL across identical
runs — while wall-clock durations stay available in memory for the
decomposition checks.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import Tracer
from repro.obs.tracing import NULL_TRACER


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("epoch", epoch=3):
            with tracer.span("audit"):
                with tracer.span("prove"):
                    pass
                with tracer.span("verify"):
                    pass
            with tracer.span("settle"):
                pass
        (root,) = tracer.roots
        assert root.name == "epoch"
        assert root.attrs == {"epoch": 3}
        assert [c.name for c in root.children] == ["audit", "settle"]
        assert [c.name for c in root.children[0].children] == ["prove", "verify"]
        assert tracer.span_count == 5

    def test_wall_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        (root,) = tracer.roots
        assert root.wall_seconds >= root.child_wall_seconds() > 0.0

    def test_exception_still_closes_the_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.wall_end is not None

    def test_roots_trimmed_to_max(self):
        tracer = Tracer(max_roots=3)
        for i in range(10):
            with tracer.span("epoch", epoch=i):
                pass
        assert [r.attrs["epoch"] for r in tracer.roots] == [7, 8, 9]
        assert tracer.span_count == 10  # the counter survives the trim


class TestDeterministicExport:
    def _run(self):
        tracer = Tracer(deterministic=True)
        for epoch in range(3):
            with tracer.span("epoch", epoch=epoch):
                with tracer.span("audit"):
                    time.sleep(0.001 * (epoch + 1))  # wall noise
        return tracer

    def test_byte_identical_across_runs(self):
        assert self._run().export_jsonl() == self._run().export_jsonl()
        assert self._run().digest() == self._run().digest()

    def test_logical_timestamps_not_wall(self):
        lines = self._run().export_lines()
        for line in lines:
            record = json.loads(line)
            assert "wall0" not in record and "seconds" not in record
            assert isinstance(record["t0"], int)

    def test_wall_mode_exports_durations(self):
        tracer = Tracer(deterministic=False)
        with tracer.span("epoch"):
            pass
        record = json.loads(next(iter(tracer.export_lines())))
        assert "seconds" in record and record["seconds"] >= 0.0

    def test_write_jsonl(self, tmp_path):
        tracer = self._run()
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        assert path.read_text() == tracer.export_jsonl()


class TestDisabled:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("epoch", epoch=1):
            with NULL_TRACER.span("audit"):
                pass
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.span_count == 0

    def test_disabled_tracer_context_is_reused(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("x")
        b = tracer.span("y")
        assert a is b  # one shared null context: no per-span allocation

    def test_tree_dicts_renders_last_n(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span("epoch", epoch=i):
                pass
        trees = tracer.tree_dicts(last=2)
        assert [t["attrs"]["epoch"] for t in trees] == [3, 4]
