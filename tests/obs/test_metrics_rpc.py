"""Observability over the wire: metrics_get, trace_get, rpc_metrics, HTTP.

The dispatcher's registry instruments, the tracer's span trees, and the
Prometheus endpoint are all read back through real sockets — the same
surfaces ``repro serve`` and ``repro top`` use.
"""

from __future__ import annotations

from urllib.request import urlopen

import pytest

from repro.chain import Blockchain
from repro.chain.mempool import MempoolConfig
from repro.obs import (
    MetricsHttpServer,
    MetricsRegistry,
    Tracer,
    get_registry,
    register_core_instruments,
)
from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE
from repro.rpc import RpcClient, RpcDispatcher, RpcTcpServer, ServiceNode


@pytest.fixture()
def stack():
    """A pooled chain behind a live server with a shared registry+tracer."""
    registry = MetricsRegistry()
    register_core_instruments(registry)
    tracer = Tracer(deterministic=True)
    chain = Blockchain(mempool=MempoolConfig())
    node = ServiceNode(chain)
    dispatcher = RpcDispatcher(registry=registry, tracer=tracer)
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher)
    server.serve_in_thread()
    client = RpcClient(*server.address)
    yield client, registry, tracer
    client.close()
    server.close()


class TestMetricsGet:
    def test_snapshot_covers_every_layer(self, stack):
        client, _registry, _tracer = stack
        client.call("node_status")
        snapshot = client.call("metrics_get")
        layers = {name.split("_")[0] for name in snapshot}
        assert {"rpc", "mempool", "fabric", "engine", "crypto",
                "lifecycle"} <= layers

    def test_rpc_counters_advance_per_call(self, stack):
        client, _registry, _tracer = stack
        client.call("node_status")
        client.call("node_status")
        snapshot = client.call("metrics_get")
        series = snapshot["rpc_requests_total"]["series"]
        by_method = {
            point["labels"]["method"]: point["value"] for point in series
        }
        assert by_method["node_status"] == 2

    def test_json_safe(self, stack):
        client, _registry, _tracer = stack
        snapshot = client.call("metrics_get")  # survived json round-trip
        assert isinstance(snapshot, dict) and snapshot


class TestRpcMetricsMethod:
    def test_old_keys_kept_and_quantiles_added(self, stack):
        client, _registry, _tracer = stack
        for _ in range(3):
            client.call("node_status")
        metrics = client.call("rpc_metrics")
        entry = metrics["node_status"]
        # Pre-registry dashboard keys survive the migration ...
        assert entry["calls"] == 3
        assert entry["errors"] == 0
        assert entry["seconds"] >= 0.0
        assert entry["mean"] == pytest.approx(entry["seconds"] / 3)
        # ... and the registry histogram adds the latency quantiles.
        assert 0.0 <= entry["p50"] <= entry["p95"] <= entry["p99"]

    def test_errors_counted(self, stack):
        client, _registry, _tracer = stack
        with pytest.raises(Exception):
            client.call("state_get", {"address": 42})
        metrics = client.call("rpc_metrics")
        assert metrics["state_get"]["errors"] == 1


class TestTraceGet:
    def test_without_tracer_reports_disabled(self):
        dispatcher = RpcDispatcher()
        assert dispatcher._trace_get() == {
            "enabled": False,
            "spans": 0,
            "roots": [],
        }

    def test_span_trees_over_the_wire(self, stack):
        client, _registry, tracer = stack
        for epoch in range(3):
            with tracer.span("epoch", epoch=epoch):
                with tracer.span("audit"):
                    pass
        trace = client.call("trace_get", {"last": 2})
        assert trace["enabled"] and trace["deterministic"]
        assert trace["spans"] == 6
        assert [root["attrs"]["epoch"] for root in trace["roots"]] == [1, 2]
        assert trace["roots"][0]["children"][0]["name"] == "audit"
        assert trace["digest"] == tracer.digest()


class TestPrometheusEndpoint:
    def test_serves_text_exposition(self, stack):
        client, registry, _tracer = stack
        client.call("node_status")
        with MetricsHttpServer(registry) as http:
            url = f"http://{http.host}:{http.port}/metrics"
            with urlopen(url) as response:
                assert response.headers["Content-Type"] == (
                    PROMETHEUS_CONTENT_TYPE
                )
                text = response.read().decode("utf-8")
        assert 'rpc_requests_total{method="node_status"} 1' in text
        assert "# TYPE mempool_depth gauge" in text

    def test_serves_json_lines_and_404(self, stack):
        _client, registry, _tracer = stack
        with MetricsHttpServer(registry) as http:
            base = f"http://{http.host}:{http.port}"
            with urlopen(f"{base}/metrics.jsonl") as response:
                assert b'"name"' in response.read()
            with pytest.raises(Exception):
                urlopen(f"{base}/nope")

    def test_default_registry_is_process_wide(self):
        with MetricsHttpServer() as http:
            assert http.registry is get_registry()
