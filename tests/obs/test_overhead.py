"""The observability layer must be (nearly) free when idle.

Two guards, both against the ≤3% budget the issue sets:

* the crypto hot-path gate, disabled (the production default), must cost
  no more than one attribute check per call — measured by timing the
  gated public entry point against the ungated implementation it wraps;
* a fully instrumented epoch pipeline (registry instruments live, tracer
  attached) must stay within budget of the same pipeline run bare
  (NULL tracer, profiler off).

Timings interleave the two sides per call, park the GC, and compare the
minimum total over repeats: the minimum is the noise-robust estimator
for "how fast can this go", and per-call interleaving makes frequency
and scheduler drift hit both sides equally.
"""

from __future__ import annotations

import gc
import random
import time

import pytest

from repro.core import DataOwner, ProtocolParams
from repro.crypto.bn254 import G1Point, G2Point
from repro.crypto.bn254.msm import _multi_scalar_mul, multi_scalar_mul
from repro.crypto.bn254.pairing import _miller_loop, miller_loop, prepare_g2
from repro.engine import AuditExecutor, AuditInstance
from repro.engine.scheduler import EpochScheduler
from repro.obs import Tracer
from repro.obs.hotpath import HOTPATH
from repro.randomness import HashChainBeacon
from repro.sim.workloads import archive_file

OVERHEAD_BUDGET = 0.03
REPEATS = 5


def _paired_min(fn_a, fn_b, calls=1, repeats=REPEATS):
    """Best-of-N totals, a/b interleaved per call with the GC parked."""
    best_a = best_b = float("inf")
    gc.disable()
    try:
        for _ in range(repeats):
            total_a = total_b = 0.0
            for _ in range(calls):
                t0 = time.perf_counter()
                fn_a()
                total_a += time.perf_counter() - t0
                t0 = time.perf_counter()
                fn_b()
                total_b += time.perf_counter() - t0
            best_a, best_b = min(best_a, total_a), min(best_b, total_b)
    finally:
        gc.enable()
    return best_a, best_b


def test_disabled_hotpath_gate_is_within_budget():
    HOTPATH.disable()
    rng = random.Random(11)
    points = [G1Point.generator() * rng.randrange(1, 2**64) for _ in range(8)]
    scalars = [rng.randrange(1, 2**128) for _ in range(8)]

    gated_s, bare_s = _paired_min(
        lambda: multi_scalar_mul(points, scalars),
        lambda: _multi_scalar_mul(points, scalars),
        calls=10,
    )
    overhead = gated_s / bare_s - 1.0
    assert overhead <= OVERHEAD_BUDGET, (
        f"disabled hot-path gate costs {overhead:.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


def test_disabled_gate_on_prepared_pairing_is_within_budget():
    """The prepared-line Miller loop is the new warm verify path; its
    HOTPATH gate must stay one attribute check when profiling is off."""
    HOTPATH.disable()
    p = G1Point.generator() * 123456789
    prepared = prepare_g2(G2Point.generator() * 987654321)

    gated_s, bare_s = _paired_min(
        lambda: miller_loop(p, prepared),
        lambda: _miller_loop(p, prepared),
        calls=3,
    )
    overhead = gated_s / bare_s - 1.0
    assert overhead <= OVERHEAD_BUDGET, (
        f"disabled prepared-pairing gate costs {overhead:.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


def test_hotpath_reports_prepared_miller_loop_leg():
    """Profiling on: the prepared path must attribute time to the
    bn254.miller_loop leg so `repro top` / fig8 stay truthful."""
    HOTPATH.enable()
    try:
        HOTPATH.reset()
        p = G1Point.generator() * 31337
        prepared = prepare_g2(G2Point.generator() * 271828)
        miller_loop(p, prepared)
        snapshot = HOTPATH.snapshot()
    finally:
        HOTPATH.disable()
    leg = snapshot["bn254.miller_loop"]
    assert leg["calls"] == 1 and leg["seconds"] > 0.0


def test_instrumented_epoch_pipeline_is_within_budget():
    params = ProtocolParams(s=3, k=2)
    owner = DataOwner(params, rng=random.Random(5))
    instances = [
        AuditInstance.from_package(
            owner.prepare(
                archive_file(400, tag=f"ovh-{i}").data, fresh_keypair=i == 0
            ),
            owner_id="ovh",
        )
        for i in range(2)
    ]
    with AuditExecutor(instances, workers=1) as executor:
        beacon = HashChainBeacon(b"overhead")

        def run(tracer, profiled):
            if profiled:
                HOTPATH.enable()
            try:
                scheduler = EpochScheduler(
                    executor,
                    params,
                    beacon,
                    deterministic=True,
                    keep_history=False,
                    tracer=tracer,
                )
                scheduler.run(2)
            finally:
                HOTPATH.disable()

        bare_s, instrumented_s = _paired_min(
            lambda: run(None, profiled=False),
            lambda: run(Tracer(deterministic=True), profiled=True),
        )
    overhead = instrumented_s / bare_s - 1.0
    assert overhead <= OVERHEAD_BUDGET, (
        f"instrumented pipeline costs {overhead:.1%} over bare "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


def test_null_tracer_span_is_allocation_free():
    tracer_span = Tracer(enabled=False).span
    contexts = {id(tracer_span("a")), id(tracer_span("b", epoch=1))}
    assert len(contexts) == 1
