"""Crypto hot-path profiling: gated, per-leg, delta-published.

The profiler must be invisible when disabled (the production default: one
attribute check per call) and, when enabled, attribute wall time to the
paper's fig. 8 legs — BN254 MSM, Miller loop, final exponentiation, and
GF(256) erasure coding — from live traffic, without perturbing results.
"""

from __future__ import annotations

import pytest

from repro.crypto.bn254 import G1Point, G2Point
from repro.crypto.bn254.msm import multi_scalar_mul
from repro.crypto.bn254.pairing import final_exponentiation, miller_loop
from repro.obs import MetricsRegistry
from repro.obs.hotpath import HOTPATH, LEGS, HotPathProfiler
from repro.storage.erasure import ReedSolomonCode


@pytest.fixture(autouse=True)
def clean_profiler():
    HOTPATH.disable()
    HOTPATH.reset()
    yield
    HOTPATH.disable()
    HOTPATH.reset()


def test_disabled_records_nothing():
    multi_scalar_mul([G1Point.generator(), G1Point.generator()], [3, 5])
    assert HOTPATH.total_seconds() == 0.0
    assert all(s["calls"] == 0 for s in HOTPATH.snapshot().values())


def test_msm_leg_recorded():
    HOTPATH.enable()
    multi_scalar_mul([G1Point.generator(), G1Point.generator()], [3, 5])
    snap = HOTPATH.snapshot()
    assert snap["bn254.msm"]["calls"] == 1
    assert snap["bn254.msm"]["seconds"] > 0.0


def test_pairing_legs_recorded():
    HOTPATH.enable()
    f = miller_loop(G1Point.generator(), G2Point.generator())
    final_exponentiation(f)
    snap = HOTPATH.snapshot()
    assert snap["bn254.miller_loop"]["calls"] == 1
    assert snap["bn254.final_exp"]["calls"] == 1


def test_erasure_legs_recorded():
    HOTPATH.enable()
    code = ReedSolomonCode(n=5, k=3)
    payload = b"hot path profiling payload!"
    shards = code.encode(payload)
    code.decode([shards[i] for i in (0, 2, 4)], len(payload))
    snap = HOTPATH.snapshot()
    assert snap["gf256.encode"]["calls"] == 1
    assert snap["gf256.decode"]["calls"] == 1


def test_profiling_does_not_change_results():
    code = ReedSolomonCode(n=5, k=3)
    plain = code.encode(b"same bytes either way")
    HOTPATH.enable()
    profiled = code.encode(b"same bytes either way")
    assert plain == profiled


def test_breakdown_fractions_sum_to_one():
    profiler = HotPathProfiler()
    profiler.enable()
    profiler.add("bn254.msm", 0.6)
    profiler.add("bn254.final_exp", 0.3)
    profiler.add("gf256.encode", 0.1)
    breakdown = profiler.breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["bn254.msm"] == pytest.approx(0.6)


def test_unknown_leg_refused():
    profiler = HotPathProfiler()
    profiler.enable()
    with pytest.raises(KeyError):
        profiler.add("sha3.absorb", 0.1)


def test_publish_pushes_deltas_not_totals():
    registry = MetricsRegistry()
    profiler = HotPathProfiler()
    profiler.enable()
    profiler.add("bn254.msm", 0.5)
    profiler.publish(registry)
    profiler.publish(registry)  # second publish with no new work: no-op
    seconds = registry.get("crypto_leg_seconds_total")
    calls = registry.get("crypto_leg_calls_total")
    by_leg = {key[0]: child.value for key, child in seconds.children()}
    assert by_leg["bn254.msm"] == pytest.approx(0.5)
    assert {key[0]: child.value for key, child in calls.children()} == {
        "bn254.msm": 1
    }
    profiler.add("bn254.msm", 0.25)
    profiler.publish(registry)
    by_leg = {key[0]: child.value for key, child in seconds.children()}
    assert by_leg["bn254.msm"] == pytest.approx(0.75)


def test_legs_cover_the_fig8_decomposition():
    assert set(LEGS) == {
        "bn254.msm",
        "bn254.miller_loop",
        "bn254.final_exp",
        "gf256.encode",
        "gf256.decode",
    }
