"""Tracing the deterministic lifecycle: identical results, decomposed time.

The acceptance contract for the observability layer: switching the epoch
tracer on must not move a single byte of the determinism domain (trail
digest, fabric state hash), deterministic span export must itself be
byte-identical across identical-seed runs, and the span tree must account
for ≥95% of each epoch's wall clock in named phases.
"""

from __future__ import annotations

import pytest

from repro.lifecycle import LifecycleConfig, LifecycleEngine
from repro.obs import Tracer, get_registry

CONFIG = dict(
    years=0.25,
    epochs_per_year=8,
    files=1,
    file_bytes=400,
    erasure_n=3,
    erasure_k=2,
    providers=5,
    lanes=2,
    s=3,
    k=2,
    seed=7,
)


def _run(tracer=None):
    engine = LifecycleEngine(LifecycleConfig(**CONFIG), tracer=tracer)
    try:
        outcome = engine.run()
    finally:
        engine.close()
    return outcome


@pytest.fixture(scope="module")
def untraced():
    return _run()


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer(deterministic=True)
    return _run(tracer), tracer


class TestDeterminismPreserved:
    def test_trail_digest_identical(self, untraced, traced):
        outcome, _ = traced
        assert outcome.trail_digest == untraced.trail_digest

    def test_state_hash_identical(self, untraced, traced):
        outcome, _ = traced
        assert outcome.state_hash == untraced.state_hash

    def test_deterministic_export_byte_identical_across_runs(self, traced):
        _, tracer = traced
        repeat = Tracer(deterministic=True)
        _run(repeat)
        assert repeat.export_jsonl() == tracer.export_jsonl()
        assert repeat.digest() == tracer.digest()


class TestSpanTree:
    def test_one_root_per_epoch(self, traced):
        _, tracer = traced
        assert [root.name for root in tracer.roots] == ["epoch", "epoch"]
        assert [root.attrs["epoch"] for root in tracer.roots] == [1, 2]

    def test_pipeline_phases_present(self, traced):
        _, tracer = traced
        root = tracer.roots[0]
        phases = [child.name for child in root.children]
        for phase in ("churn", "audit", "settle", "mine"):
            assert phase in phases, f"missing epoch phase {phase!r}"
        audit = next(c for c in root.children if c.name == "audit")
        nested = [c.name for c in audit.children]
        for phase in ("challenge", "prove", "verify"):
            assert phase in nested, f"missing audit sub-phase {phase!r}"
        settle = next(c for c in root.children if c.name == "settle")
        assert {"checkpoint_build", "post"} <= {
            c.name for c in settle.children
        }

    def test_at_least_95_percent_of_epoch_decomposed(self, traced):
        _, tracer = traced
        for root in tracer.roots:
            coverage = root.child_wall_seconds() / root.wall_seconds
            assert coverage >= 0.95, (
                f"epoch {root.attrs['epoch']}: only {coverage:.1%} of wall "
                f"clock attributed to named phases"
            )


class TestLifecycleMetrics:
    def test_epoch_counters_advance(self):
        registry = get_registry()
        epochs = registry.counter("lifecycle_epochs_total", "lifecycle epochs")
        events = registry.counter(
            "lifecycle_events_total", "trail events by kind", ("kind",)
        )
        before = epochs.value
        events_before = sum(
            child.value for _k, child in
            registry.get("lifecycle_events_total").children()
        )
        _run()
        assert epochs.value == before + 2
        events_after = sum(
            child.value for _k, child in
            registry.get("lifecycle_events_total").children()
        )
        assert events_after > events_before
