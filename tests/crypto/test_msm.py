"""Multi-scalar multiplication: Pippenger vs naive, fixed-base tables."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254 import CURVE_ORDER, G1Point, G2Point
from repro.crypto.bn254.msm import (
    FixedBaseMul,
    multi_scalar_mul,
    multi_scalar_mul_naive,
)

G1 = G1Point.generator()

scalars = st.integers(min_value=0, max_value=CURVE_ORDER - 1)


@settings(max_examples=8, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=12))
def test_pippenger_matches_naive(scalar_list):
    points = [G1 * (i + 1) for i in range(len(scalar_list))]
    assert multi_scalar_mul(points, scalar_list) == multi_scalar_mul_naive(
        points, scalar_list
    )


def test_empty_input_requires_explicit_identity():
    """The old G1-infinity default silently mis-typed empty G2 aggregations."""
    with pytest.raises(ValueError, match="identity"):
        multi_scalar_mul([], [])
    with pytest.raises(ValueError, match="identity"):
        multi_scalar_mul_naive([], [])


def test_empty_input_with_identity():
    g1_id = multi_scalar_mul([], [], identity=G1Point.infinity())
    assert isinstance(g1_id, G1Point) and g1_id.is_infinity()
    g2_id = multi_scalar_mul([], [], identity=G2Point.infinity())
    assert isinstance(g2_id, G2Point) and g2_id.is_infinity()
    naive = multi_scalar_mul_naive([], [], identity=G2Point.infinity())
    assert isinstance(naive, G2Point) and naive.is_infinity()


def test_all_zero_scalars():
    points = [G1, G1 * 2]
    assert multi_scalar_mul(points, [0, 0]).is_infinity()


def test_single_pair():
    assert multi_scalar_mul([G1], [7]) == G1 * 7


def test_includes_infinity_points():
    points = [G1, G1Point.infinity(), G1 * 3]
    assert multi_scalar_mul(points, [2, 5, 1]) == G1 * 5


def test_scalars_reduced_mod_order():
    assert multi_scalar_mul([G1], [CURVE_ORDER + 3]) == G1 * 3


def test_length_mismatch_raises():
    with pytest.raises(ValueError):
        multi_scalar_mul([G1], [1, 2])


def test_large_msm():
    count = 64
    points = [G1 * (3 * i + 1) for i in range(count)]
    values = [(7 * i + 11) for i in range(count)]
    expected_scalar = sum((3 * i + 1) * (7 * i + 11) for i in range(count))
    assert multi_scalar_mul(points, values) == G1 * expected_scalar


def test_g2_msm():
    g2 = G2Point.generator()
    points = [g2, g2 * 2, g2 * 3]
    assert multi_scalar_mul(points, [1, 1, 1]) == g2 * 6


class TestFixedBase:
    def test_matches_direct(self):
        table = FixedBaseMul(G1)
        for scalar in (1, 2, 255, 2**64 + 17, CURVE_ORDER - 1):
            assert table.mul(scalar) == G1 * scalar

    def test_zero(self):
        assert FixedBaseMul(G1).mul(0).is_infinity()

    def test_window_bounds(self):
        with pytest.raises(ValueError):
            FixedBaseMul(G1, window=0)
        with pytest.raises(ValueError):
            FixedBaseMul(G1, window=9)

    def test_wider_window(self):
        table = FixedBaseMul(G1, window=6)
        assert table.mul(123456789) == G1 * 123456789
