"""Hash-to-curve, PRF/PRP, ChaCha20, Merkle, MiMC and field helpers."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254 import CURVE_ORDER, hash_gt_to_scalar, hash_to_g1, hash_to_scalar
from repro.crypto.bn254.curve import G1Point, G2Point
from repro.crypto.bn254.pairing import pairing
from repro.crypto.chacha20 import chacha20_block, chacha20_xor, convergent_key
from repro.crypto.field import (
    BLOCK_BYTES,
    MODULUS,
    batch_inverse,
    blocks_to_bytes,
    bytes_to_blocks,
)
from repro.crypto.merkle import MerkleTree, verify_merkle_proof
from repro.crypto.mimc import mimc_hash, mimc_hash2, mimc_permutation
from repro.crypto.prf import FeistelPrp, Prf


class TestHashToCurve:
    def test_on_curve_and_deterministic(self):
        point = hash_to_g1(b"name||0")
        assert point.is_on_curve()
        assert hash_to_g1(b"name||0") == point

    def test_distinct_inputs_distinct_points(self):
        points = {hash_to_g1(f"m{i}".encode()).to_affine() for i in range(20)}
        assert len(points) == 20

    def test_hash_to_scalar_range(self):
        for i in range(10):
            value = hash_to_scalar(f"x{i}".encode())
            assert 0 <= value < CURVE_ORDER

    def test_hash_gt_deterministic(self):
        e = pairing(G1Point.generator(), G2Point.generator())
        assert hash_gt_to_scalar(e) == hash_gt_to_scalar(e)
        assert hash_gt_to_scalar(e) != hash_gt_to_scalar(e * e)


class TestPrf:
    def test_deterministic(self):
        assert Prf(b"k").scalar(5) == Prf(b"k").scalar(5)

    def test_key_separation(self):
        assert Prf(b"k1").scalar(5) != Prf(b"k2").scalar(5)

    def test_scalars_batch(self):
        assert Prf(b"k").scalars(4) == [Prf(b"k").scalar(i) for i in range(4)]


class TestFeistelPrp:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=400), st.binary(min_size=1, max_size=8))
    def test_is_permutation(self, domain, key):
        prp = FeistelPrp(key, domain)
        images = [prp.permute(i) for i in range(domain)]
        assert sorted(images) == list(range(domain))

    def test_sample_indices_distinct(self):
        prp = FeistelPrp(b"c1", 1000)
        indices = prp.sample_indices(300)
        assert len(set(indices)) == 300
        assert all(0 <= i < 1000 for i in indices)

    def test_sample_clamped_to_domain(self):
        prp = FeistelPrp(b"c1", 5)
        assert sorted(prp.sample_indices(300)) == list(range(5))

    def test_out_of_domain_raises(self):
        with pytest.raises(ValueError):
            FeistelPrp(b"k", 10).permute(10)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            FeistelPrp(b"k", 0)


class TestChaCha20:
    def test_rfc7539_block_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        assert block[:16] == bytes.fromhex("10f1e7e4d13b5915500fdd1fa32071c4")

    def test_rfc7539_encryption_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_xor(key, nonce, plaintext, counter=1)
        assert ciphertext[:16] == bytes.fromhex("6e2e359a2568f98041ba0728dd0d6981")

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_roundtrip(self, data):
        key, nonce = b"\x07" * 32, b"\x01" * 12
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 0, b"\x00" * 12)

    def test_convergent_key_deterministic(self):
        assert convergent_key(b"same") == convergent_key(b"same")
        assert convergent_key(b"same") != convergent_key(b"different")


class TestMerkle:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=40))
    def test_all_proofs_verify(self, count):
        leaves = [bytes([i]) * 8 for i in range(count)]
        tree = MerkleTree(leaves)
        for index in range(count):
            assert verify_merkle_proof(tree.root, tree.prove(index))

    def test_tampered_leaf_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        proof = dataclasses.replace(tree.prove(1), leaf_data=b"x")
        assert not verify_merkle_proof(tree.root, proof)

    def test_wrong_root_fails(self):
        tree = MerkleTree([b"a", b"b"])
        assert not verify_merkle_proof(b"\x00" * 32, tree.prove(0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_out_of_range_leaf(self):
        with pytest.raises(IndexError):
            MerkleTree([b"a"]).prove(1)

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert verify_merkle_proof(tree.root, tree.prove(0))

    def test_leaf_node_domain_separation(self):
        """A leaf equal to an interior-node preimage must not collide."""
        t1 = MerkleTree([b"a", b"b"])
        fake_leaf = t1.levels[0][0] + t1.levels[0][1]
        t2 = MerkleTree([fake_leaf])
        assert t1.root != t2.root


class TestMiMC:
    def test_deterministic_and_asymmetric(self):
        assert mimc_hash2(1, 2) == mimc_hash2(1, 2)
        assert mimc_hash2(1, 2) != mimc_hash2(2, 1)

    def test_permutation_is_injective_sample(self):
        outputs = {mimc_permutation(x, 7) for x in range(50)}
        assert len(outputs) == 50

    def test_hash_chain(self):
        assert mimc_hash([1, 2, 3]) != mimc_hash([1, 2])
        assert mimc_hash([1, 2, 3]) == mimc_hash([1, 2, 3])

    def test_range(self):
        assert 0 <= mimc_hash2(MODULUS - 1, MODULUS - 2) < MODULUS


class TestFieldHelpers:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=200))
    def test_block_roundtrip(self, data):
        blocks = bytes_to_blocks(data)
        assert blocks_to_bytes(blocks, len(data)) == data
        assert all(0 <= b < MODULUS for b in blocks)

    def test_block_bound(self):
        assert 256**BLOCK_BYTES < MODULUS

    def test_blocks_to_bytes_insufficient(self):
        with pytest.raises(ValueError):
            blocks_to_bytes([1], 100)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=MODULUS - 1), min_size=1, max_size=30))
    def test_batch_inverse(self, values):
        inverses = batch_inverse(values)
        assert all(v * i % MODULUS == 1 for v, i in zip(values, inverses))

    def test_batch_inverse_empty(self):
        assert batch_inverse([]) == []

    def test_batch_inverse_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            batch_inverse([1, 0, 2])
