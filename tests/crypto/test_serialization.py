"""Canonical encodings: roundtrips, exact paper sizes, malformed inputs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    DeserializationError,
    g1_from_bytes,
    g1_to_bytes,
    g1_to_bytes_uncompressed,
    g2_from_bytes,
    g2_to_bytes,
    g2_to_bytes_uncompressed,
    gt_from_bytes,
    gt_to_bytes,
    gt_to_bytes_uncompressed,
    pairing,
)
from repro.crypto.bn254.fields import Fp12

G1 = G1Point.generator()
G2 = G2Point.generator()

small = st.integers(min_value=1, max_value=2**48)


class TestG1Serialization:
    @settings(max_examples=15, deadline=None)
    @given(small)
    def test_roundtrip(self, k):
        point = G1 * k
        assert g1_from_bytes(g1_to_bytes(point)) == point

    def test_sizes_match_paper(self):
        assert len(g1_to_bytes(G1)) == 32           # |G1| = 256 bits
        assert len(g1_to_bytes_uncompressed(G1)) == 64

    def test_infinity_roundtrip(self):
        data = g1_to_bytes(G1Point.infinity())
        assert g1_from_bytes(data).is_infinity()

    def test_wrong_length_rejected(self):
        with pytest.raises(DeserializationError):
            g1_from_bytes(b"\x00" * 31)

    def test_not_on_curve_rejected(self):
        # x = 0 gives y^2 = 3, a non-residue mod p.
        with pytest.raises(DeserializationError):
            g1_from_bytes(b"\x00" * 32)

    def test_noncanonical_field_element_rejected(self):
        data = b"\x3f" + b"\xff" * 31  # > p with flags stripped
        with pytest.raises(DeserializationError):
            g1_from_bytes(data)

    def test_malformed_infinity_rejected(self):
        data = bytearray(g1_to_bytes(G1Point.infinity()))
        data[5] = 1
        with pytest.raises(DeserializationError):
            g1_from_bytes(bytes(data))

    def test_sign_bit_distinguishes_negation(self):
        point = G1 * 99
        assert g1_to_bytes(point) != g1_to_bytes(-point)
        assert g1_from_bytes(g1_to_bytes(-point)) == -point


class TestG2Serialization:
    @settings(max_examples=6, deadline=None)
    @given(small)
    def test_roundtrip(self, k):
        point = G2 * k
        assert g2_from_bytes(g2_to_bytes(point)) == point

    def test_sizes_match_paper(self):
        assert len(g2_to_bytes(G2)) == 64           # |G2| = 512 bits
        assert len(g2_to_bytes_uncompressed(G2)) == 128

    def test_infinity_roundtrip(self):
        assert g2_from_bytes(g2_to_bytes(G2Point.infinity())).is_infinity()

    def test_subgroup_check_option(self):
        data = g2_to_bytes(G2 * 7)
        assert g2_from_bytes(data, check_subgroup=True) == G2 * 7

    def test_wrong_length_rejected(self):
        with pytest.raises(DeserializationError):
            g2_from_bytes(b"\x00" * 63)


class TestGTSerialization:
    def test_roundtrip(self):
        element = pairing(G1, G2)
        data = gt_to_bytes(element)
        assert gt_from_bytes(data) == element

    def test_sizes_match_paper(self):
        element = pairing(G1, G2)
        assert len(gt_to_bytes(element)) == 192      # |GT| = 1536 bits
        assert len(gt_to_bytes_uncompressed(element)) == 384

    def test_identity_reserved_encoding(self):
        data = gt_to_bytes(Fp12.one())
        assert data == bytes(192)
        assert gt_from_bytes(data).is_one()

    def test_roundtrip_powers(self):
        base = pairing(G1, G2)
        for exponent in (2, 3, 12345, CURVE_ORDER - 1):
            element = base**exponent
            assert gt_from_bytes(gt_to_bytes(element)) == element

    def test_decompressed_is_unitary(self):
        element = pairing(G1 * 5, G2 * 9)
        recovered = gt_from_bytes(gt_to_bytes(element))
        assert (recovered * recovered.conjugate()).is_one()

    def test_wrong_length_rejected(self):
        with pytest.raises(DeserializationError):
            gt_from_bytes(b"\x01" * 191)

    def test_compression_halves_size(self):
        element = pairing(G1, G2)
        assert len(gt_to_bytes(element)) * 2 == len(
            gt_to_bytes_uncompressed(element)
        )
