"""Batch Schnorr verification (block-level signature checking)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.schnorr import SigningKey, verify_batch


@pytest.fixture(scope="module")
def signed_items(rng):
    items = []
    for index in range(5):
        key = SigningKey.generate(rng=rng)
        message = f"tx-{index}".encode()
        items.append((key.public, message, key.sign(message, rng=rng)))
    return items


def test_batch_accepts_all_valid(signed_items, rng):
    assert verify_batch(signed_items, rng=rng)


def test_batch_rejects_one_forged(signed_items, rng):
    forged = list(signed_items)
    key, message, signature = forged[2]
    forged[2] = (key, message, dataclasses.replace(signature, s=signature.s + 1))
    assert not verify_batch(forged, rng=rng)


def test_batch_rejects_swapped_messages(signed_items, rng):
    swapped = list(signed_items)
    k0, m0, s0 = swapped[0]
    k1, m1, s1 = swapped[1]
    swapped[0] = (k0, m1, s0)
    swapped[1] = (k1, m0, s1)
    assert not verify_batch(swapped, rng=rng)


def test_batch_rejects_key_substitution(signed_items, rng):
    substituted = list(signed_items)
    other = SigningKey.generate(rng=rng)
    _, message, signature = substituted[3]
    substituted[3] = (other.public, message, signature)
    assert not verify_batch(substituted, rng=rng)


def test_empty_batch(rng):
    assert verify_batch([], rng=rng)


def test_single_item_batch(signed_items, rng):
    assert verify_batch(signed_items[:1], rng=rng)


def test_cancellation_attack_defeated(rng):
    """Two invalid signatures crafted so their *unweighted* sum cancels
    must not pass: the random weights break the cancellation."""
    from repro.crypto.bn254 import CURVE_ORDER

    key = SigningKey.generate(rng=rng)
    message = b"target"
    good = key.sign(message, rng=rng)
    # Shift one signature up and another down by the same delta.
    delta = 12345
    up = dataclasses.replace(good, s=(good.s + delta) % CURVE_ORDER)
    down = dataclasses.replace(good, s=(good.s - delta) % CURVE_ORDER)
    items = [(key.public, message, up), (key.public, message, down)]
    assert not verify_batch(items, rng=rng)
