"""Randomized differential suite for the raw-speed crypto paths.

Every optimisation in the BN254 hot path (signed-window MSM with
batch-affine buckets, cached wNAF tables, prepared Miller-loop lines,
memoized affine coordinates) must return the *exact* group element the
slow reference produces — proofs are hashed into the chain, so "close"
is not a thing.  These tests drive the fast and reference paths over the
same randomized inputs, with the edge scalars {0, 1, order-1, duplicate
points, all-identical points} the issue calls out, over both G1 and G2.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    PrecomputeCache,
    multi_scalar_mul,
    multi_scalar_mul_naive,
    multi_scalar_mul_tables,
    pairing,
    pairing_check,
    wnaf_table_g1,
)
from repro.crypto.bn254.msm import MAX_WINDOW, _window_size
from repro.crypto.bn254.pairing import G2Prepared, prepare_g2

G1 = G1Point.generator()
G2 = G2Point.generator()

EDGE_SCALARS = (0, 1, 2, CURVE_ORDER - 1, CURVE_ORDER, CURVE_ORDER + 5)


def _random_scalars(rng: random.Random, count: int) -> list[int]:
    """Mix of edge scalars and full-width random ones."""
    pool = list(EDGE_SCALARS) + [rng.randrange(CURVE_ORDER) for _ in range(4)]
    return [rng.choice(pool) for _ in range(count)]


class TestMSMDifferential:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("count", [1, 3, 17, 64])
    def test_g1_fast_vs_naive(self, seed, count):
        rng = random.Random(1000 * seed + count)
        points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(count)]
        scalars = _random_scalars(rng, count)
        assert multi_scalar_mul(points, scalars) == multi_scalar_mul_naive(
            points, scalars
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_g2_fast_vs_naive(self, seed):
        rng = random.Random(seed + 77)
        points = [G2 * rng.randrange(1, 2**40) for _ in range(9)]
        scalars = _random_scalars(rng, 9)
        assert multi_scalar_mul(points, scalars) == multi_scalar_mul_naive(
            points, scalars
        )

    def test_edge_scalars_exactly(self):
        points = [G1 * (i + 1) for i in range(len(EDGE_SCALARS))]
        expected = multi_scalar_mul_naive(points, list(EDGE_SCALARS))
        assert multi_scalar_mul(points, list(EDGE_SCALARS)) == expected

    def test_duplicate_points(self):
        point = G1 * 123457
        points = [point] * 8 + [G1 * 99]
        scalars = [3, 0, CURVE_ORDER - 1, 1, 7, 7, 2**200, 5, 11]
        assert multi_scalar_mul(points, scalars) == multi_scalar_mul_naive(
            points, scalars
        )

    def test_all_identical_points(self):
        point = G2 * 31337
        scalars = [CURVE_ORDER - 1, 1, 0, 2, 2]
        assert multi_scalar_mul([point] * 5, scalars) == point * (
            sum(scalars) % CURVE_ORDER
        )

    def test_infinity_points_mixed_in(self):
        points = [G1, G1Point.infinity(), G1 * 5, G1Point.infinity()]
        scalars = [7, CURVE_ORDER - 1, 3, 12]
        assert multi_scalar_mul(points, scalars) == G1 * (7 + 15)


class TestCachedWnafTables:
    """multi_scalar_mul_tables with precomputed wNAF tables == naive."""

    @pytest.mark.parametrize("width", [2, 4, 6])
    def test_tables_match_naive(self, width):
        rng = random.Random(width)
        points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(7)]
        scalars = _random_scalars(rng, 7)
        tables = [wnaf_table_g1(p, width) for p in points]
        assert multi_scalar_mul_tables(
            points, scalars, tables
        ) == multi_scalar_mul_naive(points, scalars)

    def test_mixed_cached_and_uncached(self):
        rng = random.Random(5)
        points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(6)]
        scalars = _random_scalars(rng, 6)
        tables = [
            wnaf_table_g1(p, 6) if i % 2 == 0 else None
            for i, p in enumerate(points)
        ]
        assert multi_scalar_mul_tables(
            points, scalars, tables
        ) == multi_scalar_mul_naive(points, scalars)

    def test_cache_wnaf_msm_matches(self):
        cache = PrecomputeCache()
        rng = random.Random(17)
        points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(8)]
        scalars = _random_scalars(rng, 8)
        first = cache.wnaf_msm(points, scalars)
        again = cache.wnaf_msm(points, scalars)  # warm-path: tables cached
        expected = multi_scalar_mul_naive(points, scalars)
        assert first == expected and again == expected


class TestWindowSchedule:
    """Satellite: the bucket-window schedule is capped and tuned."""

    def test_measured_crossovers(self):
        # The crossovers the msm.py cost model documents.
        assert _window_size(64) == 4
        assert _window_size(256) == 5
        assert _window_size(1024) == 6

    def test_window_is_capped(self):
        # Window 16 would allocate 65,535 bucket slots per 256-bit pass;
        # the cap bounds allocation no matter how large n grows.
        for n in (10**6, 10**9, 2**62):
            assert _window_size(n) <= MAX_WINDOW
        assert MAX_WINDOW <= 12

    def test_schedule_monotone_nondecreasing(self):
        sizes = [_window_size(n) for n in (1, 4, 16, 64, 256, 1024, 4096)]
        assert sizes == sorted(sizes)


class TestPreparedPairing:
    """Prepared-G2 Miller lines give the same pairing as the direct path."""

    @pytest.mark.parametrize("seed", range(3))
    def test_prepared_equals_direct(self, seed):
        rng = random.Random(seed + 400)
        p = G1 * rng.randrange(1, CURVE_ORDER)
        q = G2 * rng.randrange(1, CURVE_ORDER)
        assert pairing(p, prepare_g2(q)) == pairing(p, q)

    def test_prepared_infinity(self):
        prepared = prepare_g2(G2Point.infinity())
        assert pairing(G1 * 7, prepared) == pairing(G1 * 7, G2Point.infinity())

    def test_prepare_is_idempotent(self):
        prepared = prepare_g2(G2 * 9)
        assert prepare_g2(prepared) is prepared

    def test_state_roundtrip(self):
        prepared = G2Prepared(G2 * 1234567)
        restored = G2Prepared._from_state(*prepared._state())
        assert restored.infinity == prepared.infinity
        assert restored.coeffs == prepared.coeffs
        assert pairing(G1 * 3, restored) == pairing(G1 * 3, G2 * 1234567)

    def test_pairing_check_with_prepared_mix(self):
        # e(aP, Q) * e(-P, aQ) == 1, with one leg prepared and one raw.
        a = 987654321
        assert pairing_check(
            [(G1 * a, prepare_g2(G2)), (-G1, G2 * a)]
        )
        assert not pairing_check([(G1 * a, prepare_g2(G2)), (-G1, G2 * (a + 1))])

    def test_cache_prepared_g2_reuses_instance(self):
        cache = PrecomputeCache()
        q = G2 * 42
        first = cache.prepared_g2(q)
        assert cache.prepared_g2(q) is first


class TestAffineBatchAndHashMemo:
    """to_affine_batch and the memoized-hash satellite."""

    def test_g1_batch_matches_scalar_path(self):
        rng = random.Random(8)
        points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(9)]
        # Fresh copies so no point carries a memoized affine form in.
        fresh = [G1Point(p.x, p.y, p.z) for p in points]
        assert G1Point.to_affine_batch(fresh) == [p.to_affine() for p in points]

    def test_g2_batch_matches_scalar_path(self):
        rng = random.Random(9)
        points = [G2 * rng.randrange(1, 2**48) for _ in range(5)]
        fresh = [G2Point(p.x, p.y, p.z) for p in points]
        assert G2Point.to_affine_batch(fresh) == [p.to_affine() for p in points]

    def test_batch_rejects_infinity(self):
        with pytest.raises(ValueError, match="infinity"):
            G1Point.to_affine_batch([G1, G1Point.infinity()])

    @pytest.mark.parametrize("cls, gen", [(G1Point, G1), (G2Point, G2)])
    def test_hash_memoizes_affine_form(self, cls, gen):
        # Regression for the satellite: hashing must not re-run a modular
        # inversion per call.  After the first hash the affine form is
        # memoized, and repeated to_affine calls return the same tuple
        # object (no recomputation).
        point = gen * 123456789  # Jacobian, z != 1
        assert point._affine is None
        hash(point)
        memo = point._affine
        assert memo is not None
        hash(point)
        hash(point)
        assert point.to_affine() is memo

    def test_hashing_large_point_set_does_no_per_call_inversions(self):
        points = [G1 * (i + 2) for i in range(32)]
        for p in points:
            hash(p)
        memos = [p._affine for p in points]
        # Re-hashing the whole set must leave every memo untouched.
        for p in points:
            hash(p)
            hash(p)
        assert [p._affine for p in points] == memos
        assert all(m is n for m, n in zip(memos, [p._affine for p in points]))
