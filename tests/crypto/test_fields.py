"""Field-tower tests: axioms, Frobenius, cyclotomic squaring, square roots."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254.constants import CURVE_ORDER, FIELD_MODULUS as P
from repro.crypto.bn254.fields import Fp2, Fp6, Fp12, fp_sqrt
from repro.crypto.bn254.curve import G1Point, G2Point
from repro.crypto.bn254.pairing import pairing

fp_elements = st.integers(min_value=0, max_value=P - 1)


def fp2_strategy():
    return st.builds(Fp2, fp_elements, fp_elements)


def fp6_strategy():
    return st.builds(Fp6, fp2_strategy(), fp2_strategy(), fp2_strategy())


def fp12_strategy():
    return st.builds(Fp12, fp6_strategy(), fp6_strategy())


class TestFp:
    def test_sqrt_roundtrip(self):
        for value in (4, 9, 1234567, P - 5):
            square = value * value % P
            root = fp_sqrt(square)
            assert root is not None
            assert root * root % P == square

    def test_sqrt_of_non_residue_is_none(self):
        # -1 is a QR iff p = 1 mod 4; BN254's p = 3 mod 4, so it is not.
        assert P % 4 == 3
        assert fp_sqrt(P - 1) is None

    def test_sqrt_zero(self):
        assert fp_sqrt(0) == 0


class TestFp2:
    @settings(max_examples=50, deadline=None)
    @given(fp2_strategy(), fp2_strategy(), fp2_strategy())
    def test_ring_axioms(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a
        assert (a * b) * c == a * (b * c)
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c

    @settings(max_examples=25, deadline=None)
    @given(fp2_strategy())
    def test_inverse(self, a):
        if a.is_zero():
            with pytest.raises(ZeroDivisionError):
                a.inverse()
        else:
            assert a * a.inverse() == Fp2.one()

    @settings(max_examples=25, deadline=None)
    @given(fp2_strategy())
    def test_square_matches_mul(self, a):
        assert a.square() == a * a

    @settings(max_examples=25, deadline=None)
    @given(fp2_strategy())
    def test_conjugate_is_frobenius(self, a):
        assert a.conjugate() == a ** P

    @settings(max_examples=20, deadline=None)
    @given(fp2_strategy())
    def test_sqrt_of_square(self, a):
        root = a.square().sqrt()
        assert root is not None
        assert root.square() == a.square()

    def test_sqrt_nonresidue_returns_none(self):
        # Exhibit a non-residue: if x has no root, sqrt must say so.
        candidate = Fp2(5, 7)
        root = candidate.sqrt()
        if root is not None:
            assert root.square() == candidate

    @settings(max_examples=25, deadline=None)
    @given(fp2_strategy())
    def test_mul_by_xi_matches_explicit(self, a):
        from repro.crypto.bn254.fields import XI

        assert a.mul_by_xi() == a * XI


class TestFp6:
    @settings(max_examples=20, deadline=None)
    @given(fp6_strategy(), fp6_strategy(), fp6_strategy())
    def test_ring_axioms(self, a, b, c):
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c

    @settings(max_examples=15, deadline=None)
    @given(fp6_strategy())
    def test_inverse(self, a):
        if a.is_zero():
            return
        assert a * a.inverse() == Fp6.one()

    @settings(max_examples=15, deadline=None)
    @given(fp6_strategy())
    def test_square_matches_mul(self, a):
        assert a.square() == a * a

    @settings(max_examples=15, deadline=None)
    @given(fp6_strategy())
    def test_mul_by_v_matches_shift(self, a):
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        assert a.mul_by_v() == a * v


class TestFp12:
    @settings(max_examples=10, deadline=None)
    @given(fp12_strategy(), fp12_strategy(), fp12_strategy())
    def test_ring_axioms(self, a, b, c):
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c

    @settings(max_examples=10, deadline=None)
    @given(fp12_strategy())
    def test_inverse(self, a):
        if a.is_zero():
            return
        assert a * a.inverse() == Fp12.one()

    @settings(max_examples=10, deadline=None)
    @given(fp12_strategy())
    def test_square_matches_mul(self, a):
        assert a.square() == a * a

    @settings(max_examples=3, deadline=None)
    @given(fp12_strategy())
    def test_frobenius_matches_pow(self, a):
        assert a.frobenius(1) == a ** P

    def test_frobenius_powers_compose(self):
        g = pairing(G1Point.generator(), G2Point.generator())
        assert g.frobenius(1).frobenius(1) == g.frobenius(2)
        assert g.frobenius(2).frobenius(1) == g.frobenius(3)

    def test_frobenius_invalid_power(self):
        with pytest.raises(ValueError):
            Fp12.one().frobenius(4)

    def test_cyclotomic_square_in_gt(self):
        """Granger-Scott squaring agrees with generic squaring on GT."""
        g = pairing(G1Point.generator(), G2Point.generator())
        current = g
        for _ in range(4):
            assert current.cyclotomic_square() == current.square()
            current = current * g

    def test_unitary_conjugate_is_inverse(self):
        g = pairing(G1Point.generator(), G2Point.generator())
        assert g * g.conjugate() == Fp12.one()

    def test_pow_t_matches_pow(self):
        from repro.crypto.bn254.constants import BN_T

        g = pairing(G1Point.generator(), G2Point.generator())
        assert g.pow_t(BN_T) == g**BN_T

    def test_pow_negative_exponent(self):
        g = pairing(G1Point.generator(), G2Point.generator())
        assert g ** (-3) == (g**3).inverse()

    def test_pow_modular_consistency(self):
        g = pairing(G1Point.generator(), G2Point.generator())
        assert g**CURVE_ORDER == Fp12.one()
        assert g ** (CURVE_ORDER + 5) == g**5
