"""Fixed-base precomputation cache: correctness and reuse semantics."""

from __future__ import annotations

import random

import pytest

from repro.crypto.bn254 import (
    CURVE_ORDER,
    FixedBaseMSM,
    G1Point,
    G2Point,
    PrecomputeCache,
    multi_scalar_mul_naive,
    pairing,
)

G1 = G1Point.generator()
G2 = G2Point.generator()


class TestFixedBaseMSM:
    def test_matches_naive_on_random_scalars(self):
        rng = random.Random(11)
        bases = [G1 * (i + 2) for i in range(6)]
        table = FixedBaseMSM(bases)
        for _ in range(3):
            scalars = [rng.randrange(CURVE_ORDER) for _ in range(6)]
            assert table.msm(scalars) == multi_scalar_mul_naive(bases, scalars)

    def test_short_scalar_vector_uses_prefix(self):
        bases = [G1, G1 * 2, G1 * 3]
        table = FixedBaseMSM(bases)
        assert table.msm([5, 7]) == G1 * (5 + 14)
        # Only the touched bases get tables (lazy build).
        assert table.builds == 2

    def test_zero_scalars_skip_table_builds(self):
        table = FixedBaseMSM([G1, G1 * 2])
        assert table.msm([0, 0]).is_infinity()
        assert table.builds == 0

    def test_too_many_scalars_rejected(self):
        with pytest.raises(ValueError):
            FixedBaseMSM([G1]).msm([1, 2])

    def test_empty_bases_rejected(self):
        with pytest.raises(ValueError):
            FixedBaseMSM([])

    def test_g2_bases(self):
        bases = [G2, G2 * 5]
        table = FixedBaseMSM(bases)
        assert table.msm([3, 2]) == G2 * 13


class TestPrecomputeCache:
    def test_gt_context_reused_across_proof_like_calls(self):
        cache = PrecomputeCache()
        base = pairing(G1, G2 * 9)
        first = cache.gt_context(base)
        second = cache.gt_context(base)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        rng = random.Random(3)
        exponent = rng.randrange(CURVE_ORDER)
        assert first.pow(exponent) == second.pow(exponent)

    def test_gt_context_shared_across_equal_keys(self):
        """Two files under one owner key share e(g1, epsilon): one table."""
        cache = PrecomputeCache()
        epsilon = G2 * 1234
        base_file_a = pairing(G1, epsilon)
        base_file_b = pairing(G1, epsilon)
        assert cache.gt_context(base_file_a) is cache.gt_context(base_file_b)

    def test_powers_msm_cached_by_value(self):
        cache = PrecomputeCache()
        powers = tuple(G1 * (3**j) for j in range(4))
        assert cache.powers_msm(powers) is cache.powers_msm(tuple(powers))
        scalars = [7, 0, 5, 1]
        assert cache.powers_msm(powers).msm(scalars) == multi_scalar_mul_naive(
            list(powers), scalars
        )

    def test_g1_and_g2_tables(self):
        cache = PrecomputeCache()
        assert cache.g1_table(G1) is cache.g1_table(G1)
        assert cache.g1_table(G1).mul(42) == G1 * 42
        assert cache.g2_table(G2).mul(17) == G2 * 17

    def test_block_digest_memoized(self):
        from repro.core.authenticator import block_digest_point

        cache = PrecomputeCache()
        point = cache.block_digest(99, 3)
        assert point == block_digest_point(99, 3)
        assert cache.block_digest(99, 3) is point
        assert cache.block_digest(99, 4) != point


class TestProverCacheIntegration:
    def test_cache_reuse_across_proofs_and_files(self):
        """Two files of one owner + two rounds: identical results to the
        cache-less seed path, with the GT context built exactly once."""
        from repro.core import (
            DataOwner,
            ProtocolParams,
            Prover,
            StorageProvider,
            random_challenge,
        )

        rng = random.Random(5)
        params = ProtocolParams(s=5, k=3)
        owner = DataOwner(params, rng=rng)
        packages = [
            owner.prepare(bytes([40 + i]) * 900, fresh_keypair=i == 0)
            for i in range(2)
        ]
        assert packages[0].public.pairing_base == packages[1].public.pairing_base

        cache = PrecomputeCache()
        cached_provider = StorageProvider(rng=random.Random(1), precompute=cache)
        seed_provider = StorageProvider(rng=random.Random(1))
        for package in packages:
            assert cached_provider.accept(package, validate=False)
            assert seed_provider.accept(package, validate=False)

        for round_index in range(2):
            challenge = random_challenge(params, rng=rng)
            for package in packages:
                nonce_rng_a = random.Random(round_index)
                nonce_rng_b = random.Random(round_index)
                cached_prover = cached_provider.prover_for(package.name)
                seed_prover = seed_provider.prover_for(package.name)
                cached_prover._rng = nonce_rng_a
                seed_prover._rng = nonce_rng_b
                cached = cached_prover.respond_private(challenge)
                plain = seed_prover.respond_private(challenge)
                assert cached.to_bytes() == plain.to_bytes()
        # One GT context for the shared owner key, then pure hits.
        assert len(cache._gt) == 1
