"""Persistent precompute store: roundtrips, rejection, cache wiring.

The on-disk store must never be able to take the auditor down: a missing,
truncated, corrupted or version-mismatched file reads as a cache miss and
the table is rebuilt from scratch.  And what it *does* serve back must be
the exact tables the cache would have built — verified here by comparing
group-element outputs across a fresh process-simulating cache reload.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    PrecomputeCache,
    PrecomputeStore,
    multi_scalar_mul_naive,
    pairing,
)
from repro.crypto.bn254.fields import Fp12
from repro.crypto.bn254.store import FORMAT_VERSION, MAGIC, _HEADER_LEN

G1 = G1Point.generator()
G2 = G2Point.generator()


class TestStoreRoundtrip:
    def test_save_then_load(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        payload = [(1, 2), (3, 4)]
        store.save("wnaf", b"key-a", payload)
        assert store.load("wnaf", b"key-a") == payload
        assert store.saves == 1 and store.loads == 1 and store.rejects == 0

    def test_missing_file_is_none(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        assert store.load("wnaf", b"never-saved") is None
        assert store.rejects == 0

    def test_kinds_do_not_collide(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        store.save("wnaf", b"k", [1])
        store.save("gt", b"k", [2])
        assert store.load("wnaf", b"k") == [1]
        assert store.load("gt", b"k") == [2]

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        PrecomputeStore(nested).save("wnaf", b"k", [1])
        assert PrecomputeStore(nested).load("wnaf", b"k") == [1]


class TestStoreRejection:
    """Malformed files are ignored — never raised, never unpickled."""

    def _file(self, store, kind=b"wnaf"):
        paths = list(store.directory.glob("*.bin"))
        assert len(paths) == 1
        return paths[0]

    def test_corrupted_payload_rejected(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        store.save("wnaf", b"k", [(1, 2)])
        path = self._file(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte -> checksum mismatch
        path.write_bytes(bytes(blob))
        assert store.load("wnaf", b"k") is None
        assert store.rejects == 1

    def test_version_mismatch_rejected(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        store.save("wnaf", b"k", [(1, 2)])
        path = self._file(store)
        blob = bytearray(path.read_bytes())
        future = (FORMAT_VERSION + 1).to_bytes(2, "big")
        blob[len(MAGIC) : len(MAGIC) + 2] = future
        path.write_bytes(bytes(blob))
        assert store.load("wnaf", b"k") is None
        assert store.rejects == 1

    def test_truncated_file_rejected(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        store.save("wnaf", b"k", [(1, 2)])
        path = self._file(store)
        path.write_bytes(path.read_bytes()[: _HEADER_LEN - 5])
        assert store.load("wnaf", b"k") is None
        assert store.rejects == 1

    def test_wrong_magic_rejected(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        store.save("wnaf", b"k", [(1, 2)])
        path = self._file(store)
        blob = path.read_bytes()
        path.write_bytes(b"XXXXXXXX" + blob[8:])
        assert store.load("wnaf", b"k") is None

    def test_checksummed_garbage_with_bad_pickle_rejected(self, tmp_path):
        # Valid header + checksum over a non-pickle payload: the unpickle
        # failure itself must read as a miss.
        store = PrecomputeStore(tmp_path)
        payload = b"\x00not a pickle"
        blob = (
            MAGIC
            + FORMAT_VERSION.to_bytes(2, "big")
            + hashlib.sha256(payload).digest()
            + payload
        )
        path = store._path("wnaf", b"k")
        path.write_bytes(blob)
        assert store.load("wnaf", b"k") is None

    def test_corrupted_store_degrades_to_cold_start(self, tmp_path):
        """A cache backed by a trashed store still computes correct results."""
        store = PrecomputeStore(tmp_path)
        warm = PrecomputeCache(store=store)
        point = G1 * 424242
        warm.g1_wnaf_table(point)
        for path in tmp_path.glob("*.bin"):
            path.write_bytes(b"garbage" * 10)
        reloaded = PrecomputeCache(store=PrecomputeStore(tmp_path))
        scalars = [7, CURVE_ORDER - 1]
        points = [point, G1 * 5]
        assert reloaded.wnaf_msm(points, scalars) == multi_scalar_mul_naive(
            points, scalars
        )


class TestCachePersistence:
    """A second cache instance over the same directory starts warm and
    serves the exact same group elements."""

    def test_wnaf_tables_persist(self, tmp_path):
        rng = random.Random(3)
        points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(4)]
        scalars = [rng.randrange(CURVE_ORDER) for _ in range(4)]

        first = PrecomputeCache(store=PrecomputeStore(tmp_path))
        cold = first.wnaf_msm(points, scalars)
        assert first.store.saves > 0

        second = PrecomputeCache(store=PrecomputeStore(tmp_path))
        warm = second.wnaf_msm(points, scalars)
        assert warm == cold == multi_scalar_mul_naive(points, scalars)
        # Every table came off disk: loads counted, nothing re-saved.
        assert second.store.loads == len(points)
        assert second.store.saves == 0

    def test_prepared_g2_lines_persist(self, tmp_path):
        q = G2 * 987654321
        p = G1 * 13

        first = PrecomputeCache(store=PrecomputeStore(tmp_path))
        direct = pairing(p, first.prepared_g2(q))

        second = PrecomputeCache(store=PrecomputeStore(tmp_path))
        restored = pairing(p, second.prepared_g2(q))
        assert restored == direct == pairing(p, q)
        assert second.store.loads == 1

    def test_gt_tables_persist(self, tmp_path):
        base = pairing(G1, G2)
        exponent = 123456789123456789

        first = PrecomputeCache(store=PrecomputeStore(tmp_path))
        cold = first.gt_context(base).pow(exponent)

        second = PrecomputeCache(store=PrecomputeStore(tmp_path))
        warm = second.gt_context(base).pow(exponent)
        assert warm == cold
        assert second.store.loads == 1

    def test_storeless_cache_unaffected(self):
        cache = PrecomputeCache()
        assert cache.store is None
        table = cache.g1_wnaf_table(G1 * 3)
        assert cache.g1_wnaf_table(G1 * 3) is table

    def test_width_change_is_a_different_key(self, tmp_path):
        PrecomputeCache(
            store=PrecomputeStore(tmp_path), wnaf_width=5
        ).g1_wnaf_table(G1 * 3)
        wider = PrecomputeCache(store=PrecomputeStore(tmp_path), wnaf_width=6)
        wider.g1_wnaf_table(G1 * 3)
        # Second cache found no table for its width: it saved a fresh one.
        assert wider.store.saves == 1
