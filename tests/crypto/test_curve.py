"""Group-law tests for G1 and G2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254.constants import CURVE_ORDER
from repro.crypto.bn254.curve import G1Point, G2Point, TWIST_B

scalars = st.integers(min_value=1, max_value=CURVE_ORDER - 1)
small_scalars = st.integers(min_value=1, max_value=10**6)

G1 = G1Point.generator()
G2 = G2Point.generator()


class TestG1:
    def test_generator_on_curve(self):
        assert G1.is_on_curve()

    def test_identity_laws(self):
        inf = G1Point.infinity()
        assert (G1 + inf) == G1
        assert (inf + G1) == G1
        assert (G1 - G1).is_infinity()
        assert (inf + inf).is_infinity()

    def test_order(self):
        assert (G1 * (CURVE_ORDER - 1) + G1).is_infinity()

    @settings(max_examples=15, deadline=None)
    @given(small_scalars, small_scalars)
    def test_scalar_distributivity(self, a, b):
        assert G1 * a + G1 * b == G1 * (a + b)

    @settings(max_examples=10, deadline=None)
    @given(small_scalars)
    def test_double_matches_add(self, a):
        p = G1 * a
        assert p.double() == p + p

    @settings(max_examples=10, deadline=None)
    @given(small_scalars)
    def test_scalar_mul_matches_naive(self, a):
        small = a % 257
        expected = G1Point.infinity()
        for _ in range(small):
            expected = expected + G1
        assert G1 * small == expected

    def test_neg(self):
        p = G1 * 12345
        assert (p + (-p)).is_infinity()
        assert -(-p) == p

    def test_affine_of_infinity_raises(self):
        with pytest.raises(ValueError):
            G1Point.infinity().to_affine()

    def test_points_on_curve_after_ops(self):
        p = G1 * 987654321
        q = p.double() + G1
        assert q.is_on_curve()

    def test_eq_different_z(self):
        """Jacobian comparison must ignore the projective representative."""
        p = G1 * 7
        doubled_then_halved = (p.double() + p.double()) + (-(p.double()))
        assert doubled_then_halved == p.double()

    def test_hash_consistency(self):
        a = G1 * 5
        b = G1 + G1 + G1 + G1 + G1
        assert a == b
        assert hash(a) == hash(b)


class TestG2:
    def test_generator_on_curve(self):
        assert G2.is_on_curve()

    def test_generator_in_subgroup(self):
        assert G2.is_in_subgroup()

    def test_order(self):
        assert (G2 * (CURVE_ORDER - 1) + G2).is_infinity()

    def test_identity_laws(self):
        inf = G2Point.infinity()
        assert (G2 + inf) == G2
        assert (G2 - G2).is_infinity()

    @settings(max_examples=8, deadline=None)
    @given(small_scalars, small_scalars)
    def test_scalar_distributivity(self, a, b):
        assert G2 * a + G2 * b == G2 * (a + b)

    @settings(max_examples=5, deadline=None)
    @given(small_scalars)
    def test_double_matches_add(self, a):
        p = G2 * a
        assert p.double() == p + p

    def test_non_subgroup_point_detected(self):
        """A curve point off the r-order subgroup must fail the check."""
        from repro.crypto.bn254.fields import Fp2

        # Scan for a twist point and test; the twist's full group order is
        # not r, so a random point is (overwhelmingly) outside the subgroup.
        x = Fp2(1, 0)
        found = None
        for trial in range(200):
            candidate = (x.square() * x + TWIST_B).sqrt()
            if candidate is not None:
                found = G2Point(x, candidate)
                break
            x = x + Fp2.one()
        assert found is not None
        assert found.is_on_curve()
        assert not found.is_in_subgroup()

    def test_wnaf_vs_binary(self):
        scalar = 0xDEADBEEFCAFEBABE1234567890
        binary = G2Point.infinity()
        base = G2
        s = scalar
        while s:
            if s & 1:
                binary = binary + base
            base = base.double()
            s >>= 1
        assert G2 * scalar == binary
