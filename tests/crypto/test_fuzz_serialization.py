"""Property-based fuzz sweep over the BN254 canonical encodings.

Seeded-random round-trip and malformed-input properties for every wire
format the protocol puts on chain: scalars (via the Fp6 coefficient
encoding), compressed G1/G2 points and torus-compressed GT elements.
All generators are seeded (no flake); the sweep sizes add up to well over
500 randomized cases per run.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.bn254 import (
    CURVE_ORDER,
    FIELD_MODULUS,
    G1Point,
    G2Point,
    gt_pow,
    pairing,
)
from repro.crypto.bn254.fields import Fp2, Fp6
from repro.crypto.bn254.serialization import (
    DeserializationError,
    fp6_from_bytes,
    fp6_to_bytes,
    g1_from_bytes,
    g1_to_bytes,
    g1_to_bytes_uncompressed,
    g2_from_bytes,
    g2_to_bytes,
    gt_from_bytes,
    gt_to_bytes,
)

SEED = 0xC0FFEE


@pytest.fixture(scope="module")
def rng():
    return random.Random(SEED)


@pytest.fixture(scope="module")
def gt_generator():
    """One pairing evaluation shared by the whole GT sweep (it is slow)."""
    return pairing(G1Point.generator(), G2Point.generator())


class TestScalarAndFieldRoundTrip:
    def test_fp6_round_trip_500_random_elements(self, rng):
        for _ in range(500):
            element = Fp6(
                Fp2(rng.randrange(FIELD_MODULUS), rng.randrange(FIELD_MODULUS)),
                Fp2(rng.randrange(FIELD_MODULUS), rng.randrange(FIELD_MODULUS)),
                Fp2(rng.randrange(FIELD_MODULUS), rng.randrange(FIELD_MODULUS)),
            )
            encoded = fp6_to_bytes(element)
            assert len(encoded) == 192
            assert fp6_from_bytes(encoded) == element

    def test_fp6_rejects_non_canonical_limbs(self, rng):
        for _ in range(64):
            # Force one limb >= p: encode p + small, which stays in 32 bytes.
            limbs = [rng.randrange(FIELD_MODULUS) for _ in range(6)]
            victim = rng.randrange(6)
            limbs[victim] = FIELD_MODULUS + rng.randrange(1 << 20)
            blob = b"".join(value.to_bytes(32, "big") for value in limbs)
            with pytest.raises(DeserializationError):
                fp6_from_bytes(blob)

    def test_fp6_rejects_wrong_length(self):
        with pytest.raises(DeserializationError):
            fp6_from_bytes(b"\x00" * 191)


class TestG1RoundTrip:
    def test_random_points_round_trip(self, rng):
        base = G1Point.generator()
        for _ in range(128):
            point = base * rng.randrange(1, CURVE_ORDER)
            encoded = g1_to_bytes(point)
            assert len(encoded) == 32
            decoded = g1_from_bytes(encoded)
            assert decoded == point
            # canonical: re-encoding reproduces the same bytes
            assert g1_to_bytes(decoded) == encoded

    def test_infinity_round_trip(self):
        encoded = g1_to_bytes(G1Point.infinity())
        assert g1_from_bytes(encoded).is_infinity()

    def test_malformed_infinity_rejected(self, rng):
        for _ in range(32):
            blob = bytearray(g1_to_bytes(G1Point.infinity()))
            blob[1 + rng.randrange(31)] = 1 + rng.randrange(255)
            with pytest.raises(DeserializationError):
                g1_from_bytes(bytes(blob))

    def test_random_32_bytes_decode_or_reject_but_never_lie(self, rng):
        """Fuzz decode: any accepted blob must re-encode canonically."""
        accepted = 0
        for _ in range(256):
            blob = bytes(rng.randrange(256) for _ in range(32))
            try:
                point = g1_from_bytes(blob)
            except DeserializationError:
                continue
            accepted += 1
            assert g1_to_bytes(point) == blob
        # about half of random x values are on the curve
        assert accepted > 32

    def test_uncompressed_matches_affine(self, rng):
        point = G1Point.generator() * rng.randrange(1, CURVE_ORDER)
        encoded = g1_to_bytes_uncompressed(point)
        x, y = point.to_affine()
        assert encoded == x.to_bytes(32, "big") + y.to_bytes(32, "big")

    def test_wrong_length_rejected(self):
        for size in (0, 31, 33, 64):
            with pytest.raises(DeserializationError):
                g1_from_bytes(b"\x00" * size)


class TestG2RoundTrip:
    def test_random_points_round_trip(self, rng):
        base = G2Point.generator()
        for _ in range(48):
            point = base * rng.randrange(1, CURVE_ORDER)
            encoded = g2_to_bytes(point)
            assert len(encoded) == 64
            decoded = g2_from_bytes(encoded, check_subgroup=False)
            assert decoded == point
            assert g2_to_bytes(decoded) == encoded

    def test_infinity_round_trip(self):
        encoded = g2_to_bytes(G2Point.infinity())
        assert g2_from_bytes(encoded).is_infinity()

    def test_subgroup_check_accepts_honest_points(self, rng):
        point = G2Point.generator() * rng.randrange(1, CURVE_ORDER)
        assert g2_from_bytes(g2_to_bytes(point), check_subgroup=True) == point

    def test_wrong_length_rejected(self):
        with pytest.raises(DeserializationError):
            g2_from_bytes(b"\x00" * 63)

    def test_random_64_bytes_never_decode_to_invalid_curve_point(self, rng):
        for _ in range(64):
            blob = bytes(rng.randrange(256) for _ in range(64))
            try:
                point = g2_from_bytes(blob)
            except DeserializationError:
                continue
            x, y = point.to_affine()
            from repro.crypto.bn254.curve import TWIST_B

            assert y.square() == x.square() * x + TWIST_B


class TestGTRoundTrip:
    def test_random_unitary_elements_round_trip(self, rng, gt_generator):
        for _ in range(24):
            element = gt_pow(gt_generator, rng.randrange(1, CURVE_ORDER))
            encoded = gt_to_bytes(element)
            assert len(encoded) == 192
            decoded = gt_from_bytes(encoded)
            assert decoded == element
            assert gt_to_bytes(decoded) == encoded

    def test_identity_has_reserved_encoding(self, gt_generator):
        identity = gt_pow(gt_generator, CURVE_ORDER)
        assert identity.is_one()
        assert gt_to_bytes(identity) == bytes(192)
        assert gt_from_bytes(bytes(192)).is_one()

    def test_decompressed_elements_are_unitary(self, rng, gt_generator):
        """m -> g -> m round-trips even for random torus values."""
        for _ in range(16):
            element = gt_pow(gt_generator, rng.randrange(1, CURVE_ORDER))
            m_bytes = gt_to_bytes(element)
            g = gt_from_bytes(m_bytes)
            # unitary elements satisfy g * conj(g) == 1; round-trip is enough
            assert gt_to_bytes(g) == m_bytes

    def test_wrong_length_rejected(self):
        with pytest.raises(DeserializationError):
            gt_from_bytes(b"\x00" * 100)
