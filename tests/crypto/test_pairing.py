"""Pairing tests: bilinearity, non-degeneracy, product optimisation."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    final_exponentiation,
    miller_loop,
    miller_loop_product,
    pairing,
    pairing_check,
    pairing_product,
)
from repro.crypto.bn254.fields import Fp12

G1 = G1Point.generator()
G2 = G2Point.generator()
E = pairing(G1, G2)

small = st.integers(min_value=1, max_value=2**20)


def test_non_degenerate():
    assert not E.is_one()


def test_order_r():
    assert (E**CURVE_ORDER).is_one()
    assert not (E ** (CURVE_ORDER - 1)).is_one()


@settings(max_examples=5, deadline=None)
@given(small, small)
def test_bilinearity(a, b):
    assert pairing(G1 * a, G2 * b) == E ** (a * b)


def test_bilinearity_left_linear():
    a, b = 91, 17
    lhs = pairing(G1 * a + G1 * b, G2)
    assert lhs == pairing(G1 * a, G2) * pairing(G1 * b, G2)


def test_bilinearity_right_linear():
    a, b = 5, 44
    lhs = pairing(G1, G2 * a + G2 * b)
    assert lhs == pairing(G1, G2 * a) * pairing(G1, G2 * b)


def test_infinity_pairs_to_one():
    assert pairing(G1Point.infinity(), G2).is_one()
    assert pairing(G1, G2Point.infinity()).is_one()


def test_pairing_product_matches_individual():
    pairs = [(G1 * 3, G2 * 5), (G1 * 7, G2 * 2), (-G1, G2 * 4)]
    individual = Fp12.one()
    for p, q in pairs:
        individual = individual * pairing(p, q)
    assert pairing_product(pairs) == individual


def test_pairing_check_cancellation():
    assert pairing_check([(G1 * 6, G2), (-G1, G2 * 6)])
    assert not pairing_check([(G1 * 6, G2), (-G1, G2 * 5)])


def test_pairing_check_empty():
    assert pairing_check([])


def test_miller_loop_product_shares_final_exp():
    pairs = [(G1 * 2, G2 * 3), (G1 * 4, G2)]
    combined = final_exponentiation(miller_loop_product(pairs))
    assert combined == pairing(G1 * 2, G2 * 3) * pairing(G1 * 4, G2)


def test_negation_symmetry():
    assert pairing(-G1, G2) == pairing(G1, -G2)
    assert pairing(-G1, G2) == E.conjugate()


def test_output_is_unitary():
    assert (E * E.conjugate()).is_one()


def test_miller_loop_raw_not_normalized():
    """Before final exponentiation, values are not comparable."""
    raw = miller_loop(G1, G2)
    assert final_exponentiation(raw) == E
