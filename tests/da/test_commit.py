"""DA commitments and k-of-n reconstruction against the checkpoint root.

The differential property under test: a leaf set reconstructed from *any*
k of the n erasure-coded chunks hashes back to exactly the committed
checkpoint root — and every corruption (tampered chunk, garbled blob,
mixed-up commitment) surfaces as a structured
:class:`~repro.da.errors.DaReconstructionMismatch`, never as silent
acceptance.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.da import (
    DA_COMMITMENT_BYTES,
    DaCommitment,
    DaParams,
    DaReconstruction,
    DaReconstructionMismatch,
    DaUnreconstructed,
    build_da_bundle,
    make_namespace,
    reconstruct_records,
    records_blob,
    records_from_blob,
    rs_code,
)
from repro.rollup import RoundRecord, build_checkpoint


def synthetic_records(epoch: int, count: int) -> tuple[RoundRecord, ...]:
    """Deterministic record set: no crypto, real wire encodings."""
    records = []
    for i in range(count):
        accepted = i % 3 != 0
        records.append(
            RoundRecord(
                name=1000 + i,
                epoch=epoch,
                challenge_bytes=bytes([i]) * 48,
                proof_bytes=bytes([0x70 + i]) * 32 if accepted else b"",
                verdict=accepted,
                reject_code="" if accepted else "no-proof",
            )
        )
    return tuple(records)


def synthetic_bundle(epoch: int = 4, count: int = 5):
    return build_checkpoint(epoch, synthetic_records(epoch, count))


PARAMS = DaParams(n=12, k=4)


# --------------------------------------------------------------------- #
# Wire formats                                                          #
# --------------------------------------------------------------------- #

def test_da_params_validation():
    DaParams(n=2, k=1)
    DaParams(n=255, k=254)
    for n, k in [(1, 1), (4, 4), (4, 5), (256, 16), (0, 0)]:
        with pytest.raises(ValueError, match="1 <= k < n <= 255"):
            DaParams(n=n, k=k)


def test_rs_code_is_cached_per_params():
    assert rs_code(PARAMS) is rs_code(DaParams(n=12, k=4))
    assert rs_code(PARAMS) is not rs_code(DaParams(n=12, k=5))


def test_commitment_wire_roundtrip():
    bundle = build_da_bundle(3, 4, synthetic_bundle(epoch=4), PARAMS)
    commitment = bundle.commitment
    encoded = commitment.to_bytes()
    assert len(encoded) == DA_COMMITMENT_BYTES == commitment.byte_size()
    assert DaCommitment.from_bytes(encoded) == commitment
    assert commitment.namespace == make_namespace(3, 4)
    assert commitment.params == PARAMS


def test_commitment_wire_rejects_garbage():
    bundle = build_da_bundle(0, 4, synthetic_bundle(epoch=4), PARAMS)
    encoded = bundle.commitment.to_bytes()
    with pytest.raises(ValueError, match="must be .* bytes"):
        DaCommitment.from_bytes(encoded[:-1])
    with pytest.raises(ValueError, match="unknown DA commitment version"):
        DaCommitment.from_bytes(b"\x7f" + encoded[1:])


def test_records_blob_roundtrip():
    records = synthetic_records(2, 7)
    blob = records_blob(records)
    assert records_from_blob(blob) == records
    # Empty record sets frame and parse (build_da_bundle never emits one,
    # but the codec itself is total).
    assert records_from_blob(records_blob(())) == ()


def test_records_blob_strictness():
    blob = records_blob(synthetic_records(2, 3))
    with pytest.raises(ValueError, match="trailing bytes"):
        records_from_blob(blob + b"\x00")
    with pytest.raises(ValueError, match="truncated DA blob"):
        records_from_blob(blob[:-1])
    with pytest.raises(ValueError, match="too short"):
        records_from_blob(b"\x00")


# --------------------------------------------------------------------- #
# Bundle building                                                       #
# --------------------------------------------------------------------- #

def test_build_da_bundle_shape():
    checkpoint_bundle = synthetic_bundle(epoch=9, count=6)
    bundle = build_da_bundle(2, 9, checkpoint_bundle, PARAMS)
    assert len(bundle.chunks) == PARAMS.n
    assert all(len(c) == bundle.commitment.chunk_bytes for c in bundle.chunks)
    assert bundle.commitment.checkpoint_root == checkpoint_bundle.checkpoint.root
    assert bundle.commitment.root == bundle.tree.root
    assert bundle.available_indices() == tuple(range(PARAMS.n))
    assert bundle.chunk_payload_bytes() == sum(len(c) for c in bundle.chunks)


def test_build_da_bundle_epoch_mismatch():
    with pytest.raises(ValueError, match="does not belong"):
        build_da_bundle(0, 5, synthetic_bundle(epoch=4), PARAMS)


def test_withholding_mode():
    bundle = build_da_bundle(0, 4, synthetic_bundle(epoch=4), PARAMS)
    bundle.withhold([0, 3])
    assert bundle.chunk_with_proof(0) is None
    assert bundle.chunk_with_proof(1) is not None
    assert 0 not in bundle.available_indices()
    with pytest.raises(IndexError):
        bundle.chunk_with_proof(PARAMS.n)
    with pytest.raises(IndexError):
        bundle.withhold([PARAMS.n])


# --------------------------------------------------------------------- #
# Reconstruction (the differential test)                                #
# --------------------------------------------------------------------- #

def test_any_k_subset_rebuilds_the_committed_root():
    checkpoint_bundle = synthetic_bundle(epoch=4, count=5)
    bundle = build_da_bundle(1, 4, checkpoint_bundle, PARAMS)
    rng = random.Random(0xDA)
    subsets = list(itertools.combinations(range(PARAMS.n), PARAMS.k))
    rng.shuffle(subsets)
    for subset in subsets[:20]:  # 20 random k-subsets of the 495
        chunks = {i: bundle.chunks[i] for i in subset}
        reconstruction = reconstruct_records(bundle.commitment, chunks)
        assert reconstruction.verified
        assert reconstruction.records == checkpoint_bundle.records
        assert reconstruction.chunks_used == PARAMS.k
        # The differential: reconstructed leaves re-derive the exact
        # 85-byte checkpoint the chain settled.
        rebuilt = build_checkpoint(4, reconstruction.records)
        assert rebuilt.checkpoint == checkpoint_bundle.checkpoint
        assert (
            reconstruction.counts_challenge_leaves()
            == tuple(r.to_bytes() for r in checkpoint_bundle.records)
        )


def test_extra_chunks_beyond_k_still_decode():
    bundle = build_da_bundle(1, 4, synthetic_bundle(epoch=4), PARAMS)
    chunks = {i: bundle.chunks[i] for i in range(PARAMS.k + 3)}
    reconstruction = reconstruct_records(bundle.commitment, chunks)
    assert reconstruction.verified
    assert reconstruction.chunks_used == PARAMS.k + 3


def test_tampered_chunk_fails_the_root_check():
    bundle = build_da_bundle(1, 4, synthetic_bundle(epoch=4), PARAMS)
    chunks = {i: bundle.chunks[i] for i in range(PARAMS.k)}
    corrupted = bytearray(chunks[0])
    corrupted[-1] ^= 0xFF
    chunks[0] = bytes(corrupted)
    with pytest.raises(DaReconstructionMismatch):
        reconstruct_records(bundle.commitment, chunks)


def test_chunks_from_the_wrong_epoch_fail():
    bundle_a = build_da_bundle(0, 4, synthetic_bundle(epoch=4, count=5), PARAMS)
    bundle_b = build_da_bundle(0, 5, synthetic_bundle(epoch=5, count=5), PARAMS)
    chunks = {i: bundle_b.chunks[i] for i in range(PARAMS.k)}
    with pytest.raises(DaReconstructionMismatch):
        reconstruct_records(bundle_a.commitment, chunks)


def test_chunk_size_mismatch_is_structured():
    bundle = build_da_bundle(0, 4, synthetic_bundle(epoch=4), PARAMS)
    chunks = {i: bundle.chunks[i] for i in range(PARAMS.k)}
    chunks[1] = chunks[1] + b"\x00"
    with pytest.raises(DaReconstructionMismatch, match="commitment says"):
        reconstruct_records(bundle.commitment, chunks)


def test_chunk_index_out_of_range():
    bundle = build_da_bundle(0, 4, synthetic_bundle(epoch=4), PARAMS)
    chunks = {PARAMS.n: bundle.chunks[0]}
    with pytest.raises(ValueError, match="out of range"):
        reconstruct_records(bundle.commitment, chunks)


def test_too_few_chunks_propagates_decoder_error():
    bundle = build_da_bundle(0, 4, synthetic_bundle(epoch=4), PARAMS)
    chunks = {i: bundle.chunks[i] for i in range(PARAMS.k - 1)}
    with pytest.raises(DaReconstructionMismatch, match="record blob"):
        reconstruct_records(bundle.commitment, chunks)


def test_unverified_reconstruction_refuses_to_back_a_challenge():
    bundle = build_da_bundle(0, 4, synthetic_bundle(epoch=4), PARAMS)
    honest = reconstruct_records(
        bundle.commitment, {i: bundle.chunks[i] for i in range(PARAMS.k)}
    )
    shaky = DaReconstruction(
        commitment=honest.commitment,
        records=honest.records,
        chunks_used=honest.chunks_used,
        verified=False,
    )
    with pytest.raises(DaUnreconstructed, match="unverified"):
        shaky.counts_challenge_leaves()
