"""Namespaced Merkle tree properties: ordering, inclusion, absence, tamper.

The acceptance property: every chunk a sampling client accepts opened
against the committed 64-byte root at the exact sampled position under
the exact lane‖epoch namespace — and every tamper class (flipped chunk
bytes, substituted namespace, truncated path, relabeled position, lying
sibling ranges) is rejected by the stateless verifier.
"""

from __future__ import annotations

import pytest

from repro.da.nmt import (
    NAMESPACE_BYTES,
    NMT_ROOT_BYTES,
    NS_PAD,
    NamespacedMerkleTree,
    NmtAbsenceProof,
    NmtProof,
    NmtRoot,
    make_namespace,
    split_namespace,
    verify_nmt_absence,
    verify_nmt_proof,
)


def leaves_for(lane_epochs, payload=b"chunk"):
    """Sorted (namespace, data) leaves for a list of (lane, epoch) pairs."""
    return [
        (make_namespace(lane, epoch), payload + bytes([i]))
        for i, (lane, epoch) in enumerate(lane_epochs)
    ]


# --------------------------------------------------------------------- #
# Namespaces                                                            #
# --------------------------------------------------------------------- #

def test_namespace_roundtrip_and_ordering():
    ns = make_namespace(3, 7)
    assert len(ns) == NAMESPACE_BYTES
    assert split_namespace(ns) == (3, 7)
    # lane is the high half: lane ordering dominates epoch ordering.
    assert make_namespace(1, 2**40) < make_namespace(2, 0)
    assert make_namespace(0, 5) < make_namespace(0, 6)


def test_namespace_rejects_pad_and_out_of_range():
    with pytest.raises(ValueError, match="reserved for padding"):
        make_namespace(2**64 - 1, 2**64 - 1)
    with pytest.raises(ValueError, match="lane_id out of range"):
        make_namespace(2**64, 0)
    with pytest.raises(ValueError, match="epoch out of range"):
        make_namespace(0, -1)
    with pytest.raises(ValueError, match="must be"):
        split_namespace(b"\x00" * 7)


# --------------------------------------------------------------------- #
# Construction invariants                                               #
# --------------------------------------------------------------------- #

def test_empty_tree_rejected():
    with pytest.raises(ValueError, match="no leaves"):
        NamespacedMerkleTree([])


def test_ordering_invariant_enforced():
    good = leaves_for([(0, 0), (0, 1), (1, 0)])
    NamespacedMerkleTree(good)  # sorted: fine
    with pytest.raises(ValueError, match="namespace ordering violated"):
        NamespacedMerkleTree([good[2], good[0], good[1]])


def test_pad_namespace_cannot_be_a_real_leaf():
    with pytest.raises(ValueError, match="reserved for padding"):
        NamespacedMerkleTree([(NS_PAD, b"smuggled")])


def test_wrong_size_namespace_rejected():
    with pytest.raises(ValueError, match="namespace must be"):
        NamespacedMerkleTree([(b"\x00" * 8, b"x")])


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 9])
def test_padding_to_perfect_tree(count):
    tree = NamespacedMerkleTree(leaves_for([(0, e) for e in range(count)]))
    assert tree.num_leaves == count
    assert tree.padded_size >= count
    assert tree.padded_size & (tree.padded_size - 1) == 0  # power of two
    assert tree.depth == tree.padded_size.bit_length() - 1
    root = tree.root
    assert root.min_ns == make_namespace(0, 0)
    # max range is NS_PAD exactly when padding leaves exist.
    if tree.padded_size > count:
        assert root.max_ns == NS_PAD
    else:
        assert root.max_ns == make_namespace(0, count - 1)


# --------------------------------------------------------------------- #
# Inclusion proofs                                                      #
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 11])
def test_every_leaf_proves_and_verifies(count):
    tree = NamespacedMerkleTree(
        leaves_for([(lane, 2 * lane) for lane in range(count)])
    )
    for index in range(tree.padded_size):  # pad leaves are provable too
        proof = tree.prove(index)
        assert proof.leaf_index == index
        assert len(proof.siblings) == tree.depth
        assert verify_nmt_proof(tree.root, proof)


def test_prove_out_of_range():
    tree = NamespacedMerkleTree(leaves_for([(0, 0), (0, 1)]))
    with pytest.raises(IndexError):
        tree.prove(tree.padded_size)
    with pytest.raises(IndexError):
        tree.prove(-1)


def test_proof_json_roundtrip():
    tree = NamespacedMerkleTree(leaves_for([(0, e) for e in range(5)]))
    proof = tree.prove(3)
    restored = NmtProof.from_object(proof.to_object())
    assert restored == proof
    assert verify_nmt_proof(tree.root, restored)
    assert restored.byte_size() == proof.byte_size()


def test_root_wire_roundtrip():
    tree = NamespacedMerkleTree(leaves_for([(4, 2), (4, 3)]))
    root = tree.root
    encoded = root.to_bytes()
    assert len(encoded) == NMT_ROOT_BYTES
    assert NmtRoot.from_bytes(encoded) == root
    with pytest.raises(ValueError, match="must be"):
        NmtRoot.from_bytes(encoded[:-1])


# --------------------------------------------------------------------- #
# Tamper classes                                                        #
# --------------------------------------------------------------------- #

@pytest.fixture()
def tree_and_proof():
    tree = NamespacedMerkleTree(leaves_for([(1, e) for e in range(6)]))
    return tree, tree.prove(2)


def _mutate(proof: NmtProof, **changes) -> NmtProof:
    fields = {
        "leaf_index": proof.leaf_index,
        "namespace": proof.namespace,
        "leaf_data": proof.leaf_data,
        "siblings": proof.siblings,
        "directions": proof.directions,
    }
    fields.update(changes)
    return NmtProof(**fields)


def test_flipped_chunk_data_rejected(tree_and_proof):
    tree, proof = tree_and_proof
    data = bytearray(proof.leaf_data)
    data[0] ^= 0x01
    assert not verify_nmt_proof(tree.root, _mutate(proof, leaf_data=bytes(data)))


def test_wrong_namespace_rejected(tree_and_proof):
    tree, proof = tree_and_proof
    assert not verify_nmt_proof(
        tree.root, _mutate(proof, namespace=make_namespace(9, 9))
    )


def test_truncated_proof_rejected(tree_and_proof):
    tree, proof = tree_and_proof
    truncated = _mutate(
        proof,
        siblings=proof.siblings[:-1],
        directions=proof.directions[:-1],
    )
    assert not verify_nmt_proof(tree.root, truncated)
    # Mismatched sibling/direction counts are rejected outright.
    assert not verify_nmt_proof(
        tree.root, _mutate(proof, siblings=proof.siblings[:-1])
    )


def test_relabeled_position_rejected(tree_and_proof):
    """A prover cannot serve chunk 2 under the name of sampled index 5."""
    tree, proof = tree_and_proof
    assert not verify_nmt_proof(tree.root, _mutate(proof, leaf_index=5))


def test_position_swap_between_real_leaves_rejected():
    tree = NamespacedMerkleTree(leaves_for([(1, e) for e in range(4)]))
    stolen = tree.prove(1)
    # Claim leaf 1's path belongs to index 2 by relabeling + redirecting:
    # directions no longer encode the claimed index, or the digest walk
    # lands elsewhere. Either way the verifier refuses.
    forged = _mutate(stolen, leaf_index=2)
    assert not verify_nmt_proof(tree.root, forged)
    forged = _mutate(stolen, leaf_index=2, directions=(False, True))
    assert not verify_nmt_proof(tree.root, forged)


def test_tampered_sibling_digest_rejected(tree_and_proof):
    tree, proof = tree_and_proof
    mn, mx, digest = proof.siblings[0]
    bad = ((mn, mx, bytes(32)),) + proof.siblings[1:]
    assert not verify_nmt_proof(tree.root, _mutate(proof, siblings=bad))


def test_lying_sibling_ranges_rejected(tree_and_proof):
    """Digest-correct trees that misreport ranges are still rejected."""
    tree, proof = tree_and_proof
    mn, mx, digest = proof.siblings[-1]
    # Claim the last sibling's range undercuts ours (ordering violation).
    bad = proof.siblings[:-1] + ((b"\x00" * 16, b"\x00" * 16, digest),)
    tampered = _mutate(proof, siblings=bad)
    # proof at index 2 has a final right-side sibling; range check fires
    # before the digest comparison could.
    assert not verify_nmt_proof(tree.root, tampered)
    # Inverted (min > max) ranges are malformed outright.
    bad = ((mx, mn, digest),) if mx != mn else None
    if bad is not None:
        tampered = _mutate(proof, siblings=bad + proof.siblings[1:])
        assert not verify_nmt_proof(tree.root, tampered)


def test_proof_against_wrong_root_rejected():
    tree_a = NamespacedMerkleTree(leaves_for([(0, e) for e in range(4)]))
    tree_b = NamespacedMerkleTree(
        leaves_for([(0, e) for e in range(4)], payload=b"other")
    )
    proof = tree_a.prove(0)
    assert verify_nmt_proof(tree_a.root, proof)
    assert not verify_nmt_proof(tree_b.root, proof)


# --------------------------------------------------------------------- #
# Absence proofs                                                        #
# --------------------------------------------------------------------- #

def test_absence_in_a_gap_verifies():
    tree = NamespacedMerkleTree(leaves_for([(0, 0), (0, 2), (0, 5)]))
    for lane, epoch in [(0, 1), (0, 3), (0, 4)]:
        absent = make_namespace(lane, epoch)
        proof = tree.prove_absence(absent)
        assert verify_nmt_absence(tree.root, proof)
        assert proof.left is not None and proof.right is not None
        assert proof.left.leaf_index + 1 == proof.right.leaf_index


def test_absence_below_the_committed_range():
    tree = NamespacedMerkleTree(leaves_for([(2, 0), (2, 1)]))
    proof = tree.prove_absence(make_namespace(1, 99))
    assert proof.left is None and proof.right is not None
    assert proof.right.leaf_index == 0
    assert verify_nmt_absence(tree.root, proof)


def test_absence_above_the_range_straddles_padding():
    tree = NamespacedMerkleTree(leaves_for([(0, 0), (0, 1), (0, 2)]))
    # 3 leaves pad to 4: the straddle's right side is a pad leaf.
    proof = tree.prove_absence(make_namespace(0, 9))
    assert proof.right is not None
    assert proof.right.namespace == NS_PAD
    assert verify_nmt_absence(tree.root, proof)


def test_absence_above_a_full_tree_uses_the_root_bound():
    tree = NamespacedMerkleTree(leaves_for([(0, e) for e in range(4)]))
    proof = tree.prove_absence(make_namespace(7, 7))
    assert proof.right is None and proof.left is None
    assert verify_nmt_absence(tree.root, proof)
    # The same empty proof fails against a root whose range covers it.
    taller = NamespacedMerkleTree(leaves_for([(7, e) for e in range(8)]))
    assert not verify_nmt_absence(taller.root, proof)


def test_absence_of_a_present_namespace_refused():
    tree = NamespacedMerkleTree(leaves_for([(0, 0), (0, 1)]))
    with pytest.raises(ValueError, match="namespace is present"):
        tree.prove_absence(make_namespace(0, 1))
    with pytest.raises(ValueError, match="padding namespace"):
        tree.prove_absence(NS_PAD)


def test_forged_absence_of_a_present_namespace_rejected():
    """A straddle built from non-adjacent leaves does not verify."""
    tree = NamespacedMerkleTree(leaves_for([(0, 0), (0, 1), (0, 2), (0, 3)]))
    forged = NmtAbsenceProof(
        namespace=make_namespace(0, 1),  # actually present at index 1
        left=tree.prove(0),
        right=tree.prove(2),
    )
    assert not verify_nmt_absence(tree.root, forged)


def test_absence_proof_sides_must_really_straddle():
    tree = NamespacedMerkleTree(leaves_for([(0, 0), (0, 2), (0, 4), (0, 6)]))
    honest = tree.prove_absence(make_namespace(0, 3))
    # Shifting the straddle one position left breaks adjacency/range.
    shifted = NmtAbsenceProof(
        namespace=honest.namespace,
        left=tree.prove(0),
        right=tree.prove(1),
    )
    assert not verify_nmt_absence(tree.root, shifted)
