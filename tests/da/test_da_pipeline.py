"""End-to-end DA over the real stack: pipeline, contract, light client.

Settles real engine epochs through a :class:`CheckpointPipeline` with DA
enabled, then exercises the full availability story the ISSUE promises:
the 119-byte commitment lands on chain bound to its checkpoint, sampling
catches withholding, a k-of-n reconstruction drives ``challenge_counts``
against a counts-forging aggregator without trusting it, and every miss
(unknown epoch, partial leaf set, unverified reconstruction) surfaces as
a structured, actionable error instead of a bare KeyError or an opaque
revert.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import (
    Blockchain,
    CheckpointContract,
    CheckpointStatus,
    Transaction,
)
from repro.chain.light_client import CheckpointLightClient
from repro.core import DataOwner
from repro.da import (
    DaParams,
    DaReconstruction,
    DaReconstructionMismatch,
    DaSampler,
    DaUnreconstructed,
    DaWithholdingDetected,
    build_da_bundle,
    bundle_fetch,
)
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.obs import MetricsRegistry
from repro.randomness import HashChainBeacon
from repro.rollup import Checkpoint
from repro.rollup.pipeline import CheckpointPipeline, EpochNotSettled
from repro.sim.workloads import archive_file

DA_PARAMS = DaParams(n=12, k=4)
WINDOW = 500.0
SEED = b"\x11" * 8


@pytest.fixture(scope="module")
def da_env(params):
    """Two DA-settled epochs plus one settled without DA, on one chain."""
    rng = random.Random(0xDA7A)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(2):
        package = owner.prepare(
            archive_file(600, tag=f"da-pipe-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="da"))
    beacon = HashChainBeacon(b"da-pipeline-test")
    chain = Blockchain(block_time=15.0)
    aggregator = chain.create_account(10.0, label="aggregator")
    challenger = chain.create_account(10.0, label="challenger")
    contract = CheckpointContract(beacon, params, fraud_window=WINDOW)
    address = chain.deploy(contract, deployer=aggregator)
    with AuditExecutor(instances, workers=1) as executor:
        scheduler = EpochScheduler(
            executor, params, beacon, rng=rng, checkpoint_mode=True
        )
        pipeline = CheckpointPipeline(
            scheduler, chain, address, aggregator,
            da_params=DA_PARAMS, lane_id=0,
        )
        pipeline.register_fleet()
        settled = pipeline.run(2)
        # A second aggregator on the same contract, DA disabled: the
        # configuration the availability sweep's errors must name clearly.
        plain = CheckpointPipeline(scheduler, chain, address, aggregator)
        plain_settled = plain.settle_epoch(2)
        # One more engine epoch, kept OFF chain: the counts-fraud test
        # posts a forged commitment for it (epochs are unique on chain).
        fraud_bundle = scheduler.run_epoch(3).checkpoint
    return {
        "fraud_bundle": fraud_bundle,
        "params": params,
        "beacon": beacon,
        "instances": instances,
        "chain": chain,
        "contract": contract,
        "address": address,
        "aggregator": aggregator,
        "challenger": challenger,
        "pipeline": pipeline,
        "settled": settled,
        "plain": plain,
        "plain_settled": plain_settled,
    }


def _registry_of(env):
    return {
        instance.name: (instance.public.to_bytes(), instance.num_chunks)
        for instance in env["instances"]
    }


def _sampler_for(env, epoch):
    settled = env["pipeline"].settled_for_epoch(epoch)
    fetch = bundle_fetch({(0, epoch): settled.da})
    return DaSampler(fetch, registry=MetricsRegistry()), settled


# --------------------------------------------------------------------- #
# Settlement wiring                                                     #
# --------------------------------------------------------------------- #

def test_settlement_posts_the_da_commitment(da_env):
    for settled in da_env["settled"]:
        assert settled.da is not None
        assert settled.da_receipt is not None and settled.da_receipt.success
        entry = da_env["contract"].checkpoints[settled.checkpoint_id]
        assert entry.da_commitment == settled.da.commitment
        assert entry.da_commitment.checkpoint_root == settled.bundle.checkpoint.root
        assert entry.da_commitment.n == DA_PARAMS.n
        assert entry.da_commitment.epoch == settled.epoch


def test_da_commitment_view(da_env):
    chain, address = da_env["chain"], da_env["address"]
    commitment = chain.call(address, "da_commitment_for_epoch", 0)
    assert commitment == da_env["settled"][0].da.commitment
    # The DA-less epoch reports None rather than erroring.
    assert chain.call(address, "da_commitment_for_epoch", 2) is None


def test_epoch_lookup_is_indexed_and_structured(da_env):
    pipeline = da_env["pipeline"]
    assert pipeline.bundle_for_epoch(1) is pipeline.settled[1].bundle
    with pytest.raises(EpochNotSettled) as excinfo:
        pipeline.settled_for_epoch(99)
    err = excinfo.value
    assert isinstance(err, KeyError)  # legacy except-KeyError callers
    assert err.epoch == 99
    assert err.code == "epoch-not-settled"
    # Unlike a bare KeyError, the message renders without quote-wrapping.
    assert str(err) == "epoch 99 not settled by this pipeline"


def test_da_bundle_lookup_names_the_da_less_configuration(da_env):
    plain = da_env["plain"]
    assert plain.settled_for_epoch(2).da is None
    with pytest.raises(ValueError, match="da_params unset"):
        plain.da_bundle_for_epoch(2)
    with pytest.raises(EpochNotSettled):
        plain.da_bundle_for_epoch(0)  # epoch 0 settled by the *other* pipeline


# --------------------------------------------------------------------- #
# post_da_root guards                                                   #
# --------------------------------------------------------------------- #

def _post_da(env, sender, checkpoint_id, commitment_bytes):
    return env["chain"].transact(
        Transaction(
            sender=sender,
            to=env["address"],
            method="post_da_root",
            args=(checkpoint_id, commitment_bytes),
        ),
        payload_bytes=len(commitment_bytes),
    )


def test_post_da_root_guards(da_env):
    plain_settled = da_env["plain_settled"]
    checkpoint_id = plain_settled.checkpoint_id
    honest = build_da_bundle(0, 2, plain_settled.bundle, DA_PARAMS)
    good_bytes = honest.commitment.to_bytes()

    receipt = _post_da(da_env, da_env["challenger"], checkpoint_id, good_bytes)
    assert not receipt.success
    assert "only the checkpoint poster" in receipt.error

    receipt = _post_da(da_env, da_env["aggregator"], 10_000, good_bytes)
    assert not receipt.success and "unknown checkpoint" in receipt.error

    receipt = _post_da(da_env, da_env["aggregator"], checkpoint_id, b"\x00\x01")
    assert not receipt.success and "bad DA commitment" in receipt.error

    # A commitment binding a different checkpoint's root is refused.
    foreign = da_env["settled"][0].da.commitment.to_bytes()
    receipt = _post_da(da_env, da_env["aggregator"], checkpoint_id, foreign)
    assert not receipt.success
    assert "does not bind the committed checkpoint root" in receipt.error

    # The honest posting lands; a second binding is refused.
    receipt = _post_da(da_env, da_env["aggregator"], checkpoint_id, good_bytes)
    assert receipt.success, receipt.error
    receipt = _post_da(da_env, da_env["aggregator"], checkpoint_id, good_bytes)
    assert not receipt.success and "already posted" in receipt.error


# --------------------------------------------------------------------- #
# Sampling + reconstruction over pipeline-served bundles                #
# --------------------------------------------------------------------- #

def test_sampling_a_faithful_pipeline_is_clean(da_env):
    sampler, settled = _sampler_for(da_env, 0)
    report = sampler.sample(settled.da.commitment, SEED, budget=8)
    assert report.available
    report.raise_if_withheld()
    # O(samples) download: a light client never pulls the full leaf set.
    assert report.chunk_bytes == 8 * settled.da.commitment.chunk_bytes


def test_withholding_pipeline_chunks_is_detected(da_env):
    sampler, settled = _sampler_for(da_env, 1)
    settled.da.withheld.clear()
    try:
        settled.da.withhold(range(DA_PARAMS.n - DA_PARAMS.k + 1))
        report = sampler.sample(settled.da.commitment, SEED, budget=DA_PARAMS.n)
        with pytest.raises(DaWithholdingDetected):
            report.raise_if_withheld()
    finally:
        settled.da.withheld.clear()


def test_reconstruction_replays_through_the_light_client(da_env):
    sampler, settled = _sampler_for(da_env, 0)
    reconstruction = sampler.reconstruct(settled.da.commitment, SEED)
    assert reconstruction.verified
    assert reconstruction.records == settled.bundle.records
    client = CheckpointLightClient(
        _registry_of(da_env), da_env["params"], da_env["beacon"]
    )
    report = client.replay_reconstructed(
        settled.bundle.checkpoint, reconstruction
    )
    assert report.consistent
    assert report.rounds_checked == len(settled.bundle.records)


def test_replay_refuses_unverified_or_mismatched_reconstructions(da_env):
    sampler, settled = _sampler_for(da_env, 0)
    reconstruction = sampler.reconstruct(settled.da.commitment, SEED)
    client = CheckpointLightClient(
        _registry_of(da_env), da_env["params"], da_env["beacon"]
    )
    shaky = DaReconstruction(
        commitment=reconstruction.commitment,
        records=reconstruction.records,
        chunks_used=reconstruction.chunks_used,
        verified=False,
    )
    with pytest.raises(DaUnreconstructed, match="sample and"):
        client.replay_reconstructed(settled.bundle.checkpoint, shaky)
    other = da_env["pipeline"].settled_for_epoch(1)
    with pytest.raises(DaReconstructionMismatch, match="different checkpoint"):
        client.replay_reconstructed(other.bundle.checkpoint, reconstruction)


# --------------------------------------------------------------------- #
# challenge_counts: the partial-set guard and the DA-powered way in     #
# --------------------------------------------------------------------- #

def _challenge_counts(env, checkpoint_id, leaves):
    return env["chain"].transact(
        Transaction(
            sender=env["challenger"],
            to=env["address"],
            method="challenge_counts",
            args=(checkpoint_id, tuple(leaves)),
            value=env["contract"].challenge_bond_wei,
        ),
        payload_bytes=sum(len(leaf) for leaf in leaves),
    )


def test_partial_leaf_set_gets_a_structured_refusal(da_env):
    settled = da_env["settled"][0]
    leaves = [r.to_bytes() for r in settled.bundle.records][:-1]
    receipt = _challenge_counts(da_env, settled.checkpoint_id, leaves)
    assert not receipt.success
    assert "partial-leaf-set" in receipt.error
    assert "da_sample_get" in receipt.error  # the documented way in
    # The checkpoint is untouched by the refused challenge.
    entry = da_env["contract"].checkpoints[settled.checkpoint_id]
    assert entry.status is CheckpointStatus.OPEN


def test_equal_size_wrong_leaves_keep_the_legacy_revert(da_env):
    settled = da_env["settled"][0]
    other = da_env["pipeline"].settled_for_epoch(1)
    wrong = [r.to_bytes() for r in other.bundle.records]
    assert len(wrong) == settled.bundle.checkpoint.num_leaves
    receipt = _challenge_counts(da_env, settled.checkpoint_id, wrong)
    assert not receipt.success
    assert "do not rebuild the committed root" in receipt.error


def test_counts_fraud_slashed_from_da_reconstruction_alone(da_env):
    """The tentpole acceptance path: a counts-forging aggregator is slashed
    by a challenger who never saw the leaf set — only DA chunks."""
    bundle = da_env["fraud_bundle"]
    honest = bundle.checkpoint
    forged = Checkpoint(
        epoch=honest.epoch,
        root=honest.root,                       # honest tree...
        accepted=honest.rejected,               # ...swapped summary
        rejected=honest.accepted,
        num_leaves=honest.num_leaves,
        proof_digest=honest.proof_digest,
    )
    assert forged != honest  # the fleet has >= 1 accept and 0 rejects
    receipt = da_env["chain"].transact(
        Transaction(
            sender=da_env["aggregator"],
            to=da_env["address"],
            method="post_checkpoint",
            args=(forged.to_bytes(),),
            value=da_env["contract"].posting_bond_wei,
        )
    )
    assert receipt.success, receipt.error
    checkpoint_id = receipt.return_value
    # The DA obligation still binds the (honest) root, so the commitment
    # posts cleanly — and hands challengers the evidence.
    da_bundle = build_da_bundle(0, honest.epoch, bundle, DA_PARAMS)
    da_receipt = _post_da(
        da_env, da_env["aggregator"], checkpoint_id,
        da_bundle.commitment.to_bytes(),
    )
    assert da_receipt.success, da_receipt.error
    sampler = DaSampler(
        bundle_fetch({(0, honest.epoch): da_bundle}),
        registry=MetricsRegistry(),
    )
    reconstruction = sampler.reconstruct(da_bundle.commitment, SEED)
    challenge = _challenge_counts(
        da_env, checkpoint_id, reconstruction.counts_challenge_leaves()
    )
    assert challenge.success, challenge.error
    entry = da_env["contract"].checkpoints[checkpoint_id]
    assert entry.status is CheckpointStatus.SLASHED
    assert "count-mismatch" in entry.fraud_reason
