"""Light-client DA sampling: determinism, withholding detection, escalation.

The acceptance properties: the sample schedule is a pure function of
(seed, committed root); a withholding aggregator is flagged — never
silently tolerated — and the escalation path gathers any k verified
chunks to rebuild the full leaf set, raising ``DaUnavailable`` exactly
when the epoch's data is unrecoverable.
"""

from __future__ import annotations

import pytest

from repro.da import (
    DaParams,
    DaSampler,
    DaUnavailable,
    DaWithholdingDetected,
    build_da_bundle,
    bundle_fetch,
    detection_probability,
    sample_indices,
)
from repro.obs import MetricsRegistry
from repro.rollup import RoundRecord, build_checkpoint

PARAMS = DaParams(n=16, k=4)
SEED = b"\x00" * 7 + b"\x2a"


def make_bundle(lane: int = 0, epoch: int = 3, count: int = 4):
    records = tuple(
        RoundRecord(
            name=500 + i,
            epoch=epoch,
            challenge_bytes=bytes([i]) * 48,
            proof_bytes=bytes([i]) * 16,
            verdict=True,
        )
        for i in range(count)
    )
    return build_da_bundle(lane, epoch, build_checkpoint(epoch, records), PARAMS)


def make_sampler(bundle, registry=None):
    fetch = bundle_fetch({(bundle.commitment.lane_id, bundle.commitment.epoch): bundle})
    return DaSampler(fetch, registry=registry or MetricsRegistry())


# --------------------------------------------------------------------- #
# Schedule + analytics                                                  #
# --------------------------------------------------------------------- #

def test_detection_probability_values():
    assert detection_probability(0.0, 18) == 0.0
    assert detection_probability(1.0, 1) == 1.0
    assert detection_probability(0.25, 18) == pytest.approx(1 - 0.75**18)
    assert detection_probability(0.25, 18) > 0.99
    with pytest.raises(ValueError):
        detection_probability(1.5, 3)
    with pytest.raises(ValueError):
        detection_probability(0.5, -1)


def test_sample_indices_deterministic_without_replacement():
    root = make_bundle().commitment.root
    first = sample_indices(SEED, root, PARAMS.n, 10)
    second = sample_indices(SEED, root, PARAMS.n, 10)
    assert first == second
    assert len(first) == 10
    assert len(set(first)) == 10
    assert all(0 <= i < PARAMS.n for i in first)


def test_sample_indices_bind_seed_and_root():
    bundle_a = make_bundle(epoch=3)
    bundle_b = make_bundle(epoch=4)
    schedule = sample_indices(SEED, bundle_a.commitment.root, PARAMS.n, 12)
    assert schedule != sample_indices(
        b"\xff" * 8, bundle_a.commitment.root, PARAMS.n, 12
    )
    assert schedule != sample_indices(
        SEED, bundle_b.commitment.root, PARAMS.n, 12
    )


def test_sample_indices_budget_clamps_to_chunk_count():
    root = make_bundle().commitment.root
    full = sample_indices(SEED, root, PARAMS.n, 10 * PARAMS.n)
    assert sorted(full) == list(range(PARAMS.n))
    with pytest.raises(ValueError):
        sample_indices(SEED, root, 0, 4)
    with pytest.raises(ValueError):
        sample_indices(SEED, root, PARAMS.n, 0)


# --------------------------------------------------------------------- #
# Sampling runs                                                         #
# --------------------------------------------------------------------- #

def test_happy_path_sampling():
    bundle = make_bundle()
    registry = MetricsRegistry()
    sampler = make_sampler(bundle, registry)
    report = sampler.sample(bundle.commitment, SEED, budget=9)
    assert report.available
    assert report.failures == ()
    assert len(report.outcomes) == 9
    assert report.chunk_bytes == 9 * bundle.commitment.chunk_bytes
    assert report.proof_bytes > 0
    assert report.downloaded_bytes == report.chunk_bytes + report.proof_bytes
    report.raise_if_withheld()  # no-op when everything verified
    obj = report.to_object()
    assert obj["available"] is True
    assert obj["failed_indices"] == []
    assert obj["downloaded_bytes"] == report.downloaded_bytes


def test_sampling_is_reproducible():
    bundle = make_bundle()
    sampler = make_sampler(bundle)
    first = sampler.sample(bundle.commitment, SEED, budget=7)
    second = sampler.sample(bundle.commitment, SEED, budget=7)
    assert first.indices == second.indices
    assert first.outcomes == second.outcomes


def test_withholding_is_flagged_and_raised():
    bundle = make_bundle()
    bundle.withhold(range(PARAMS.n // 2))
    registry = MetricsRegistry()
    sampler = make_sampler(bundle, registry)
    # Sampling every chunk guarantees the withheld half is hit.
    report = sampler.sample(bundle.commitment, SEED, budget=PARAMS.n)
    assert not report.available
    assert {o.index for o in report.failures} == set(range(PARAMS.n // 2))
    assert all(o.reason == "missing" for o in report.failures)
    with pytest.raises(DaWithholdingDetected) as excinfo:
        report.raise_if_withheld()
    assert excinfo.value.failures == report.failures
    assert "sampled chunks failed" in str(excinfo.value)
    assert report.to_object()["available"] is False


def test_sampler_metrics_track_outcomes():
    bundle = make_bundle()
    bundle.withhold([0, 1, 2, 3])
    registry = MetricsRegistry()
    sampler = make_sampler(bundle, registry)
    sampler.sample(bundle.commitment, SEED, budget=PARAMS.n)
    rendered = registry.to_prometheus()
    assert 'da_samples_total{outcome="ok"} 12' in rendered
    assert 'da_samples_total{outcome="missing"} 4' in rendered
    assert "da_withholding_detected_total 1" in rendered


def test_forged_chunk_reads_as_bad_proof():
    bundle = make_bundle()
    honest = bundle_fetch(
        {(bundle.commitment.lane_id, bundle.commitment.epoch): bundle}
    )

    def forging(lane_id, epoch, indices):
        responses = honest(lane_id, epoch, indices)
        # Serve a different chunk's bytes under each sampled index, keeping
        # that other chunk's (valid!) proof — position binding must catch it.
        return {
            index: bundle.chunk_with_proof((index + 1) % PARAMS.n)
            for index in responses
        }

    sampler = DaSampler(forging, registry=MetricsRegistry())
    report = sampler.sample(bundle.commitment, SEED, budget=6)
    assert not report.available
    assert all(o.reason == "bad-proof" for o in report.outcomes)


def test_truncated_chunk_reads_as_bad_proof():
    bundle = make_bundle()
    honest = bundle_fetch(
        {(bundle.commitment.lane_id, bundle.commitment.epoch): bundle}
    )

    def truncating(lane_id, epoch, indices):
        return {
            index: None if resp is None else (resp[0][:-1], resp[1])
            for index, resp in honest(lane_id, epoch, indices).items()
        }

    sampler = DaSampler(truncating, registry=MetricsRegistry())
    report = sampler.sample(bundle.commitment, SEED, budget=4)
    assert {o.reason for o in report.outcomes} == {"bad-proof"}


def test_unknown_epoch_samples_as_missing():
    bundle = make_bundle(epoch=3)
    sampler = make_sampler(bundle)
    other = make_bundle(epoch=8)
    report = sampler.sample(other.commitment, SEED, budget=5)
    assert not report.available
    assert all(o.reason == "missing" for o in report.outcomes)


# --------------------------------------------------------------------- #
# Escalation: reconstruction                                            #
# --------------------------------------------------------------------- #

def test_reconstruct_tolerates_maximum_withholding():
    bundle = make_bundle()
    # Withhold everything the code can tolerate: n - k chunks.
    bundle.withhold(range(PARAMS.n - PARAMS.k))
    registry = MetricsRegistry()
    sampler = make_sampler(bundle, registry)
    reconstruction = sampler.reconstruct(bundle.commitment, SEED, batch=3)
    assert reconstruction.verified
    assert reconstruction.records == bundle_records(bundle)
    assert 'da_reconstructions_total{outcome="ok"} 1' in (
        registry.to_prometheus()
    )


def bundle_records(bundle):
    """Decode the bundle's own chunks: the ground-truth record set."""
    from repro.da import reconstruct_records

    chunks = {i: bundle.chunks[i] for i in range(bundle.commitment.k)}
    return reconstruct_records(bundle.commitment, chunks).records


def test_reconstruct_unavailable_below_k():
    bundle = make_bundle()
    bundle.withhold(range(PARAMS.n - PARAMS.k + 1))  # one too many
    registry = MetricsRegistry()
    sampler = make_sampler(bundle, registry)
    with pytest.raises(DaUnavailable, match="of the required"):
        sampler.reconstruct(bundle.commitment, SEED)
    assert 'da_reconstructions_total{outcome="unavailable"} 1' in (
        registry.to_prometheus()
    )


def test_reconstruct_happy_path_uses_k_chunks():
    bundle = make_bundle()
    sampler = make_sampler(bundle)
    reconstruction = sampler.reconstruct(bundle.commitment, SEED, batch=2)
    assert reconstruction.verified
    assert reconstruction.chunks_used >= bundle.commitment.k
