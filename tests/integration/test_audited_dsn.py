"""The full orchestration loop: storage + audits + reputation + auto-repair."""

from __future__ import annotations

import random

import pytest

from repro.chain import Blockchain, ContractTerms, WEI_PER_ETH
from repro.chain.contracts.reputation import ReputationRegistry
from repro.core import ProtocolParams
from repro.dsn import AuditedDsn
from repro.randomness import HashChainBeacon
from repro.storage import DsnCluster, SimulatedNetwork


@pytest.fixture()
def dsn():
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(3)))
    for index in range(8):
        cluster.add_node(f"node-{index}")
    chain = Blockchain(block_time=15.0)
    system = AuditedDsn(
        cluster,
        chain,
        HashChainBeacon(b"audited-dsn"),
        params=ProtocolParams(s=5, k=3),
        terms=ContractTerms(num_audits=2, audit_interval=60.0, response_window=20.0),
        rng=random.Random(4),
    )
    return system


def test_store_and_audit_honest(dsn):
    payload = b"orchestrated archive " * 40
    audited = dsn.store("alice", "backup-1", payload, n=4, k=2)
    assert len(audited.shard_audits) == 4
    for _ in range(2000):
        dsn.step()
        if dsn.all_contracts_closed():
            break
    assert dsn.all_contracts_closed()
    for shard_audit in audited.shard_audits:
        contract = dsn.chain.contract_at(shard_audit.deployment.contract_address)
        assert contract.passes == 2 and contract.fails == 0
    assert dsn.retrieve("backup-1") == payload


def test_auto_repair_after_data_loss(dsn):
    payload = b"self-healing archive " * 40
    audited = dsn.store("bob", "backup-2", payload, n=4, k=2)
    victim = audited.shard_audits[1]
    # Provider silently drops both the shard and the audit-layer copy.
    victim.deployment.provider_agent.misbehave_after_round = 0
    dsn.cluster.node(victim.provider).drop_file("backup-2")

    repaired_files = []
    for _ in range(3000):
        repaired_files.extend(dsn.step())
        if dsn.all_contracts_closed():
            break
    assert "backup-2" in repaired_files
    assert victim.replaced
    # A replacement contract exists for the same shard index on a new node.
    replacement = [
        sa
        for sa in audited.shard_audits
        if sa.shard_index == victim.shard_index and not sa.replaced
    ]
    assert len(replacement) == 1
    assert replacement[0].provider != victim.provider
    # The file survived the loss and the repair.
    assert dsn.retrieve("backup-2") == payload
    # The failed contract recorded the failure (owner got compensated).
    failed_contract = dsn.chain.contract_at(victim.deployment.contract_address)
    assert failed_contract.fails >= 1


def test_reputation_bridge():
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(5)))
    for index in range(6):
        cluster.add_node(f"node-{index}")
    chain = Blockchain(block_time=15.0)
    registry = ReputationRegistry(min_stake_wei=WEI_PER_ETH)
    system = AuditedDsn(
        cluster,
        chain,
        HashChainBeacon(b"rep-bridge"),
        params=ProtocolParams(s=5, k=3),
        terms=ContractTerms(num_audits=2, audit_interval=60.0, response_window=20.0),
        reputation=registry,
        rng=random.Random(6),
    )
    # Register the storage nodes as reputation-bearing providers and allow
    # the audit contracts to report.
    accounts = {}
    for name in cluster.nodes:
        account = chain.create_account(3.0, label=name)
        accounts[name] = account
    payload = b"scored archive " * 30
    audited = system.store("carol", "backup-3", payload, n=3, k=2)
    # Bridge: nodes must exist in the registry under their cluster names.
    from repro.chain import Transaction

    for shard_audit in audited.shard_audits:
        funder = chain.create_account(3.0)
        chain.transact(
            Transaction(sender=funder, to=system._reputation_address,
                        method="register", value=WEI_PER_ETH)
        )
        # Rename the record to the cluster node name for the bridge lookup.
        registry.providers[shard_audit.provider] = registry.providers.pop(funder)
        registry.reporters.add(
            shard_audit.deployment.contract_address
        )
    for _ in range(2000):
        system.step()
        if system.all_contracts_closed():
            break
    assert system.all_contracts_closed()
    for shard_audit in audited.shard_audits:
        record = registry.providers[shard_audit.provider]
        assert record.passes == 2
        assert record.score > 0.5
