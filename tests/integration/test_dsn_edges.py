"""AuditedDsn edge cases and the CLI-level orchestration surface."""

from __future__ import annotations

import random

import pytest

from repro.chain import Blockchain, ContractTerms
from repro.core import ProtocolParams
from repro.dsn import AuditedDsn
from repro.randomness import HashChainBeacon
from repro.storage import DsnCluster, SimulatedNetwork


def _system(nodes: int = 6, seed: int = 11) -> AuditedDsn:
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(seed)))
    for index in range(nodes):
        cluster.add_node(f"node-{index}")
    return AuditedDsn(
        cluster,
        Blockchain(block_time=15.0),
        HashChainBeacon(b"edges"),
        params=ProtocolParams(s=5, k=3),
        terms=ContractTerms(num_audits=1, audit_interval=45.0, response_window=15.0),
        rng=random.Random(seed + 1),
    )


def test_step_with_no_files_is_noop():
    system = _system()
    assert system.step() == []
    assert system.all_contracts_closed()  # vacuously


def test_multiple_files_independent():
    system = _system(nodes=8)
    a = system.store("alice", "file-a", b"\x01" * 900, n=3, k=2)
    b = system.store("bob", "file-b", b"\x02" * 900, n=3, k=2)
    for _ in range(1500):
        system.step()
        if system.all_contracts_closed():
            break
    assert system.all_contracts_closed()
    assert system.retrieve("file-a") == b"\x01" * 900
    assert system.retrieve("file-b") == b"\x02" * 900
    # Contracts belong to the right files.
    assert len(a.shard_audits) == 3
    assert len(b.shard_audits) == 3
    names_a = {sa.file_name for sa in a.shard_audits}
    names_b = {sa.file_name for sa in b.shard_audits}
    assert names_a.isdisjoint(names_b)


def test_audit_names_recorded_in_manifest():
    system = _system()
    audited = system.store("carol", "file-c", b"\x03" * 600, n=3, k=2)
    for location in audited.manifest.shards:
        key = f"{location.provider}:{location.shard_index}"
        assert key in audited.manifest.audit_names


def test_missing_shard_at_deploy_raises():
    system = _system()
    audited = system.store("dave", "file-d", b"\x04" * 600, n=3, k=2)
    with pytest.raises(RuntimeError):
        system._deploy_shard_contract(audited, "node-0", shard_index=99)


def test_retrieve_unknown_file_raises():
    system = _system()
    with pytest.raises(KeyError):
        system.retrieve("never-stored")
