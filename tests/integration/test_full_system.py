"""Full-system integration: DSN storage + per-provider on-chain auditing.

The end-to-end scenario the paper's architecture (Fig. 1) describes:

1. the owner encrypts + erasure-codes a file and distributes shards to
   providers found via the DHT,
2. each shard gets its own audit contract on the chain,
3. one provider silently drops its shard mid-contract,
4. the audits catch it, the owner is compensated, and the file is still
   retrievable from the surviving shards.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import (
    Blockchain,
    ContractTerms,
    State,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon
from repro.storage import DsnClient, DsnCluster, SimulatedNetwork


@pytest.mark.slow
def test_dsn_with_onchain_audits():
    rng = random.Random(99)
    params = ProtocolParams(s=5, k=3)
    beacon = HashChainBeacon(b"integration")

    # --- storage layer: 6 providers, RS(4, 2) ---
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(1)))
    for index in range(6):
        cluster.add_node(f"provider-{index}")
    client = DsnClient("alice", cluster)
    payload = bytes(rng.randrange(256) for _ in range(3000))
    manifest = client.store("family-photos", payload, n=4, k=2)
    assert client.retrieve(manifest) == payload

    # --- audit layer: one contract per shard-holding provider ---
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=2, audit_interval=90.0, response_window=30.0)
    owner = DataOwner(params, rng=rng)
    deployments = []
    core_providers = {}
    for location in manifest.shards:
        shard_data = cluster.node(location.provider).get(
            "family-photos", location.shard_index
        )
        package = owner.prepare(shard_data)
        manifest.audit_names[f"{location.provider}:{location.shard_index}"] = (
            package.name
        )
        provider_role = StorageProvider(rng=rng)
        deployment = deploy_audit_contract(
            chain, package, provider_role, terms, beacon, params
        )
        deployments.append((location, deployment))
        core_providers[location.provider] = provider_role

    # --- provider-3-equivalent drops its shard after the first round ---
    victim_location, victim_deployment = deployments[0]
    victim_deployment.provider_agent.misbehave_after_round = 1
    cluster.node(victim_location.provider).drop_file("family-photos")

    # --- run every contract concurrently on the shared chain ---
    from repro.chain.agents import run_contracts_to_completion

    results = run_contracts_to_completion(
        chain, [deployment for _, deployment in deployments]
    )

    # Honest providers: all passes; the victim: one pass then a failure.
    assert results[0].passes == 1 and results[0].fails == 1
    for contract in results[1:]:
        assert contract.passes == 2 and contract.fails == 0
        assert contract.state is State.CLOSED

    # The owner was compensated on the failing contract.
    assert chain.events_named("fail")
    owner_balance = chain.balance_of(victim_deployment.owner_account)
    assert owner_balance > 0

    # Despite the loss, the file is recoverable (RS(4,2) tolerates 2 losses).
    assert client.retrieve(manifest) == payload

    # Chain accounting is conserved across everything that happened.
    total = chain.total_supply()
    chain.mine_block()
    assert chain.total_supply() == total


def test_quickstart_example_flow(rng):
    """The README quickstart, as a regression test."""
    params = ProtocolParams(s=8, k=4)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(b"my archive " * 200)
    provider = StorageProvider(rng=rng)
    assert provider.accept(package)
    from repro.core import OffchainAuditSession

    session = OffchainAuditSession(owner, provider, package, rng=rng)
    result = session.run_round()
    assert result.passed
    assert result.proof.byte_size() == 288
