"""Docs-link check: README/docs cross-references must stay valid.

Verifies that every relative markdown link in README.md and docs/*.md
resolves to a real file (anchors are checked against the target's
headings), and that every repository path the docs mention in backticks
actually exists — so renames can't silently orphan the documentation.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
BACKTICK_PATH_RE = re.compile(
    r"`((?:src|docs|tests|benchmarks|examples|\.github)/[A-Za-z0-9_./-]+)`"
)


def _headings(markdown: str) -> set[str]:
    anchors = set()
    for line in markdown.splitlines():
        if line.startswith("#"):
            title = line.lstrip("#").strip().lower()
            anchor = re.sub(r"[^a-z0-9 _-]", "", title).replace(" ", "-")
            anchors.add(anchor)
    return anchors


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc: Path):
    text = doc.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        assert resolved.exists(), f"{doc.name}: broken link -> {target}"
        if anchor and resolved.suffix == ".md":
            assert anchor in _headings(resolved.read_text()), (
                f"{doc.name}: dead anchor -> {target}"
            )


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_mentioned_repo_paths_exist(doc: Path):
    text = doc.read_text()
    for match in BACKTICK_PATH_RE.finditer(text):
        mention = match.group(1).rstrip("/.")
        assert (REPO_ROOT / mention).exists(), (
            f"{doc.name}: mentions nonexistent path `{mention}`"
        )


def test_docs_exist():
    for doc in DOC_FILES:
        assert doc.exists()
    assert len(DOC_FILES) >= 3  # README + ARCHITECTURE + BENCHMARKS
