"""Docs-link check: README/docs cross-references must stay valid.

Verifies that every relative markdown link in README.md and docs/*.md
resolves to a real file (anchors are checked against the target's
headings), and that every repository path the docs mention in backticks
actually exists — so renames can't silently orphan the documentation.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
BACKTICK_PATH_RE = re.compile(
    r"`((?:src|docs|tests|benchmarks|examples|\.github)/[A-Za-z0-9_./-]+)`"
)


def _headings(markdown: str) -> set[str]:
    anchors = set()
    for line in markdown.splitlines():
        if line.startswith("#"):
            title = line.lstrip("#").strip().lower()
            anchor = re.sub(r"[^a-z0-9 _-]", "", title).replace(" ", "-")
            anchors.add(anchor)
    return anchors


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc: Path):
    text = doc.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        assert resolved.exists(), f"{doc.name}: broken link -> {target}"
        if anchor and resolved.suffix == ".md":
            assert anchor in _headings(resolved.read_text()), (
                f"{doc.name}: dead anchor -> {target}"
            )


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_mentioned_repo_paths_exist(doc: Path):
    text = doc.read_text()
    for match in BACKTICK_PATH_RE.finditer(text):
        mention = match.group(1).rstrip("/.")
        assert (REPO_ROOT / mention).exists(), (
            f"{doc.name}: mentions nonexistent path `{mention}`"
        )


def test_docs_exist():
    for doc in DOC_FILES:
        assert doc.exists()
    # README + ARCHITECTURE + BENCHMARKS + PROTOCOL + SCENARIOS
    assert len(DOC_FILES) >= 5
    names = {doc.name for doc in DOC_FILES}
    assert {"PROTOCOL.md", "SCENARIOS.md"} <= names


def test_protocol_spec_covers_the_verifier_facing_surface():
    """PROTOCOL.md must keep its spec sections and message field tables."""
    text = (REPO_ROOT / "docs" / "PROTOCOL.md").read_text()
    for required_heading in (
        "Challenge derivation",
        "Proof generation",
        "Verification",
        "Dispute and arbitration flow",
        "On-chain message summary",
    ):
        assert required_heading in text, f"PROTOCOL.md lost: {required_heading}"
    # the wire-format tables quote the paper's headline byte sizes
    for anchor_fact in ("288 bytes", "48 bytes", "1 − (1 − ρ)^c"):
        assert anchor_fact in text, f"PROTOCOL.md lost: {anchor_fact}"


def test_scenarios_doc_lists_every_strategy_with_a_command():
    """Each catalogued strategy documents a runnable `python -m repro` line."""
    text = (REPO_ROOT / "docs" / "SCENARIOS.md").read_text()
    for strategy in ("forge", "replay", "selective", "bitrot", "offline"):
        assert f"--strategy {strategy}" in text, (
            f"SCENARIOS.md lost the {strategy} reproduction command"
        )
    assert "--onchain" in text
    assert "1 − (1 − ρ)^c" in text


def test_scenarios_cli_commands_parse():
    """Every `python -m repro ...` invocation in the docs must still parse."""
    from repro.cli import build_parser

    # subcommand names may be hyphenated (e.g. ``da-sample``)
    command_re = re.compile(r"python -m repro ([a-z][a-z-]*(?: [^\n`#]*)?)")
    parser = build_parser()
    checked = 0
    for doc in DOC_FILES:
        for match in command_re.finditer(doc.read_text()):
            argv = match.group(1).split()
            # parse_args exits on unknown flags; catch to name the doc
            try:
                parser.parse_args(argv)
            except SystemExit:
                raise AssertionError(
                    f"{doc.name}: documented command no longer parses: "
                    f"python -m repro {' '.join(argv)}"
                ) from None
            checked += 1
    assert checked >= 6  # README + SCENARIOS carry the canonical commands
