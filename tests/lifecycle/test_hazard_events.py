"""Unit tests for the lifecycle event trail and the churn hazard model."""

from __future__ import annotations

import random

import pytest

from repro.lifecycle import (
    EVENT_KINDS,
    ChurnModel,
    EventTrail,
    HazardConfig,
    LifecycleEvent,
    per_epoch_probability,
)


class TestEvents:
    def test_round_trip_line_encoding(self):
        event = LifecycleEvent.make(
            7, "repaired", "archive-01", shard=3, source="node-001",
            target="node-005", ratio=0.25,
        )
        line = event.to_line()
        assert LifecycleEvent.from_line(line) == event

    def test_detail_values_are_sanitized(self):
        event = LifecycleEvent.make(1, "deferred", "a|b,c=d", why="x\ny")
        parsed = LifecycleEvent.from_line(event.to_line())
        assert parsed.subject == "a_b_c_d"
        assert parsed.get("why") == "x_y"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LifecycleEvent.make(0, "exploded", "x")

    def test_trail_digest_is_order_sensitive(self):
        a, b = EventTrail(), EventTrail()
        a.emit(1, "joined", "n0")
        a.emit(1, "crashed", "n1")
        b.emit(1, "crashed", "n1")
        b.emit(1, "joined", "n0")
        assert a.digest() != b.digest()

    def test_trail_round_trips_through_lines(self):
        trail = EventTrail()
        trail.emit(1, "joined", "n0", stake_eth=1.0)
        trail.emit(2, "settled", "epoch-2", gas=12345, root="ab" * 8)
        replayed = EventTrail.from_lines(trail.to_lines())
        assert replayed.digest() == trail.digest()
        assert len(replayed) == 2

    def test_trail_filters(self):
        trail = EventTrail()
        trail.emit(1, "joined", "n0")
        trail.emit(2, "evicted", "n1")
        trail.emit(2, "joined", "n2")
        assert [e.subject for e in trail.of_kind("joined")] == ["n0", "n2"]
        assert len(trail.for_epoch(2)) == 2

    def test_float_details_render_exactly(self):
        event = LifecycleEvent.make(0, "flaky", "n0", rho=0.1 + 0.2)
        assert event.get("rho") == repr(0.1 + 0.2)

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_every_kind_encodes(self, kind):
        event = LifecycleEvent.make(3, kind, "subject", note="x")
        assert LifecycleEvent.from_line(event.to_line()).kind == kind


class TestHazard:
    def test_per_epoch_probability_compounds_to_annual(self):
        annual = 0.2
        p = per_epoch_probability(annual, 12)
        assert (1 - p) ** 12 == pytest.approx(1 - annual)

    def test_per_epoch_probability_validates(self):
        with pytest.raises(ValueError):
            per_epoch_probability(1.5, 12)
        with pytest.raises(ValueError):
            per_epoch_probability(0.2, 0)

    def test_exponential_hazard_is_age_independent(self):
        config = HazardConfig(churn=0.3, epochs_per_year=6)
        assert config.departure_probability(0) == config.departure_probability(40)

    def test_weibull_hazard_grows_with_age(self):
        config = HazardConfig(
            churn=0.3, epochs_per_year=6, hazard="weibull", weibull_shape=2.0
        )
        young = config.departure_probability(0)
        old = config.departure_probability(24)
        assert old > young

    def test_weibull_mean_matches_exponential_over_first_year(self):
        exp = HazardConfig(churn=0.3, epochs_per_year=6)
        wei = HazardConfig(
            churn=0.3, epochs_per_year=6, hazard="weibull", weibull_shape=2.0
        )
        mean = sum(wei.departure_probability(t) for t in range(6)) / 6
        assert mean == pytest.approx(exp.leave_probability_per_epoch, rel=1e-9)

    def test_unknown_hazard_rejected(self):
        with pytest.raises(ValueError):
            HazardConfig(hazard="lognormal")

    def test_draws_are_seed_deterministic(self):
        providers = [(f"n{i}", i) for i in range(20)]
        draws_a = ChurnModel(
            HazardConfig(churn=0.5, epochs_per_year=2), random.Random(5)
        )
        draws_b = ChurnModel(
            HazardConfig(churn=0.5, epochs_per_year=2), random.Random(5)
        )
        for _ in range(10):
            assert draws_a.draw(providers) == draws_b.draw(providers)

    def test_departures_capped_at_tolerance(self):
        model = ChurnModel(
            HazardConfig(churn=0.99, epochs_per_year=1), random.Random(1)
        )
        providers = [(f"n{i}", 1) for i in range(30)]
        draw = model.draw(providers, max_departures=2)
        assert len(draw.leaves) + len(draw.crashes) <= 2

    def test_flaky_providers_not_redrawn(self):
        model = ChurnModel(
            HazardConfig(churn=0.0, flake_rate=0.999, epochs_per_year=1),
            random.Random(3),
        )
        providers = [("n0", 1), ("n1", 1)]
        draw = model.draw(providers, flaky={"n0", "n1"})
        assert draw.flakes == ()

    def test_withholds_draw_subset(self):
        model = ChurnModel(HazardConfig(), random.Random(9))
        names = list(range(100))
        held = model.withholds(names, 0.5)
        assert set(held) <= set(names)
        assert 20 < len(held) < 80  # seeded, so this is a fixed outcome
