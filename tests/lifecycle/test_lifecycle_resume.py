"""Crash/reopen durability: a persisted lifecycle run continues bit-identically.

The engine checkpoints itself at every epoch boundary and records each
lane's WAL size; reopening truncates the logs back to that boundary and
replays.  These tests kill the run at three different points — between
epochs, mid-epoch after chain writes, and immediately after setup — and
require the continuation to reach the exact trail digest and fabric
``state_hash`` of an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.lifecycle import LifecycleConfig, LifecycleEngine
from repro.lifecycle.persist import LifecycleResumeError, load_engine

BASE = dict(
    years=0.75,
    epochs_per_year=4,
    files=1,
    file_bytes=400,
    erasure_n=3,
    erasure_k=2,
    providers=6,
    lanes=2,
    seed=11,
    s=3,
    k=2,
    churn=0.5,
    flake_rate=0.4,
)


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted run every resumed run must reproduce."""
    engine = LifecycleEngine(LifecycleConfig(**BASE))
    outcome = engine.run()
    engine.close()
    return outcome


def _persisted_config(tmp_path) -> LifecycleConfig:
    return LifecycleConfig(persist_dir=str(tmp_path / "state"), **BASE)


def test_kill_between_epochs_continues_to_same_hashes(tmp_path, reference):
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.run_epoch()
    engine.fabric.close()  # the process dies; no orderly shutdown

    reopened = LifecycleEngine.open(config.persist_dir)
    assert reopened.next_epoch == 2
    outcome = reopened.run()
    reopened.close()
    assert outcome.trail_digest == reference.trail_digest
    assert outcome.state_hash == reference.state_hash
    assert outcome.files_intact


def test_kill_mid_epoch_discards_the_torn_tail(tmp_path, reference):
    """Chain writes landed for a half-finished epoch; resume must rewind."""
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.run_epoch()
    # Start epoch 2 by hand and die after settlement hit the WAL.
    epoch = engine.next_epoch
    engine._churn_step(epoch)
    _, records = engine._audit_step(epoch)
    engine._settle_step(epoch, records)
    engine.fabric.close()

    reopened = LifecycleEngine.open(config.persist_dir)
    assert reopened.next_epoch == 2  # rewound to the boundary
    outcome = reopened.run()
    reopened.close()
    assert outcome.trail_digest == reference.trail_digest
    assert outcome.state_hash == reference.state_hash


def test_kill_right_after_setup(tmp_path, reference):
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.fabric.close()  # died before the first epoch

    reopened = LifecycleEngine.open(config.persist_dir)
    assert reopened.next_epoch == 1
    outcome = reopened.run()
    reopened.close()
    assert outcome.trail_digest == reference.trail_digest
    assert outcome.state_hash == reference.state_hash


def test_resume_after_completion_is_a_noop_run(tmp_path, reference):
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    outcome = engine.run()
    engine.close()

    reopened = LifecycleEngine.open(config.persist_dir)
    assert reopened.next_epoch == reopened.config.total_epochs + 1
    resumed = reopened.run()
    reopened.close()
    assert resumed.trail_digest == outcome.trail_digest == reference.trail_digest
    assert resumed.state_hash == outcome.state_hash == reference.state_hash


def test_resume_restores_engine_bookkeeping(tmp_path):
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.run_epoch()
    live_shards = sorted(engine._shards)
    live_providers = {
        name: (s.alive, s.flaky, s.dead) for name, s in engine.providers.items()
    }
    trail_len = len(engine.trail)
    engine.fabric.close()

    reopened = LifecycleEngine.open(config.persist_dir)
    assert sorted(reopened._shards) == live_shards
    assert {
        name: (s.alive, s.flaky, s.dead)
        for name, s in reopened.providers.items()
    } == live_providers
    assert len(reopened.trail) == trail_len
    assert sorted(reopened.executor.instances) == live_shards
    reopened.close()


def test_fresh_run_refuses_a_dirty_persist_dir(tmp_path):
    """Building a new run on old WALs would silently break determinism."""
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.run_epoch()
    engine.close()
    with pytest.raises(ValueError, match="already holds"):
        LifecycleEngine(config)


def test_determinism_override_refused_on_resume(tmp_path):
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.run_epoch()
    engine.fabric.close()
    with pytest.raises(ValueError, match="determinism"):
        load_engine(config.persist_dir, seed=99)


def test_corrupted_chain_state_is_refused(tmp_path):
    config = _persisted_config(tmp_path)
    engine = LifecycleEngine(config)
    engine.run_epoch()
    engine.fabric.close()
    # Vandalize one lane's WAL *behind* the recorded boundary.
    lane_dir = tmp_path / "state" / "lanes" / "lane-000"
    wal = lane_dir / "wal.log"
    data = bytearray(wal.read_bytes())
    assert data, "fixture needs a non-empty WAL"
    data[len(data) // 2] ^= 0xFF
    wal.write_bytes(bytes(data))
    with pytest.raises((LifecycleResumeError, Exception)):
        LifecycleEngine.open(config.persist_dir)
