"""The long-horizon engine: determinism, durability, eviction, settlement.

One moderately-churny run is shared module-wide (engine runs are the
expensive fixture); separate small runs cover determinism and edge
behaviour.  Every assertion here maps to an acceptance criterion of the
lifecycle issue: same seed ⇒ same trail + state hash, zero shards lost
while churn ≤ erasure tolerance, every evicted provider has an on-chain
slashing record, and every epoch settles through the checkpoint rollup.
"""

from __future__ import annotations

import pytest

from repro.chain.contracts.checkpoint_contract import (
    CheckpointContract,
    CheckpointStatus,
)
from repro.lifecycle import LifecycleConfig, LifecycleEngine

BASE = dict(
    years=1.0,
    epochs_per_year=4,
    files=1,
    file_bytes=400,
    erasure_n=3,
    erasure_k=2,
    providers=6,
    lanes=2,
    seed=13,
    s=3,
    k=2,
    churn=0.5,
    flake_rate=0.6,
    flake_rho=0.9,
)


@pytest.fixture(scope="module")
def finished():
    """One churny 4-epoch run plus its (kept-alive) engine."""
    engine = LifecycleEngine(LifecycleConfig(**BASE))
    outcome = engine.run()
    yield engine, outcome
    engine.close()


class TestDeterminism:
    def test_same_seed_same_trail_and_state(self, finished):
        _, reference = finished
        repeat = LifecycleEngine(LifecycleConfig(**BASE)).run()
        assert repeat.trail_digest == reference.trail_digest
        assert repeat.state_hash == reference.state_hash
        assert repeat.trail.to_lines() == reference.trail.to_lines()

    def test_different_seed_diverges(self, finished):
        _, reference = finished
        other = LifecycleEngine(
            LifecycleConfig(**{**BASE, "seed": 14})
        ).run()
        assert other.trail_digest != reference.trail_digest


class TestDurability:
    def test_no_file_lost_under_tolerable_churn(self, finished):
        _, outcome = finished
        assert outcome.files_intact
        config = LifecycleConfig(**BASE)
        floor = min(s.min_healthy_shards for s in outcome.summaries)
        assert floor >= config.erasure_k

    def test_every_rejected_audit_is_repaired_or_deferred(self, finished):
        _, outcome = finished
        rejected = sum(s.rejected for s in outcome.summaries)
        repaired = sum(s.repaired for s in outcome.summaries)
        deferred = sum(s.deferred for s in outcome.summaries)
        assert rejected > 0, "the churny fixture must exercise failures"
        # Graceful leaves also repair, so repaired can exceed rejected.
        assert repaired + deferred >= rejected

    def test_repair_rekeys_and_redeploys(self, finished):
        engine, outcome = finished
        rekeys = outcome.trail.of_kind("rekeyed")
        repairs = outcome.trail.of_kind("repaired")
        assert len(rekeys) == len(repairs) > 0
        for event in rekeys:
            assert event.get("old") != event.get("new")
            # the replacement contract is live on the fabric
            address_prefix = event.get("contract")
            assert address_prefix and address_prefix.startswith("0xc")

    def test_repair_target_never_equals_source(self, finished):
        _, outcome = finished
        for event in outcome.trail.of_kind("repaired"):
            assert event.get("source") != event.get("target")


class TestEviction:
    def test_engine_evicts_under_churn(self, finished):
        _, outcome = finished
        assert outcome.total_evictions > 0

    def test_every_eviction_has_an_onchain_slashing_record(self, finished):
        engine, outcome = finished
        evicted = {e.subject for e in outcome.trail.of_kind("evicted")}
        slashed_trail = {e.subject for e in outcome.trail.of_kind("slashed")}
        assert evicted <= slashed_trail
        # ...and the slash is a real on-chain event, not just trail talk.
        onchain = {
            event.payload["provider"]
            for event in engine.fabric.events_named("stake_slashed")
        }
        assert evicted <= onchain

    def test_evicted_providers_leave_the_cluster_and_hold_nothing(
        self, finished
    ):
        engine, outcome = finished
        for event in outcome.trail.of_kind("evicted"):
            name = event.subject
            assert name not in {
                audit.provider for _, audit in engine._shards.values()
            }


class TestSettlement:
    def test_every_epoch_settles_through_the_rollup(self, finished):
        engine, outcome = finished
        settled = outcome.trail.of_kind("settled")
        assert len(settled) == outcome.epochs_run
        for event in settled:
            assert int(event.get("audits")) > 0
            assert event.get("root")

    def test_lane_contracts_hold_the_checkpoints(self, finished):
        engine, outcome = finished
        total = 0
        for lane_id, (_, address) in engine.lane_settlement.items():
            contract = engine.fabric.lane(lane_id).contract_at(address)
            assert isinstance(contract, CheckpointContract)
            total += len(contract.checkpoints)
            for entry in contract.checkpoints:
                assert entry.status in (
                    CheckpointStatus.OPEN,
                    CheckpointStatus.FINAL,
                )
        expected = sum(int(e.get("lanes")) for e in outcome.trail.of_kind("settled"))
        assert total == expected

    def test_old_checkpoints_finalize_and_release_bonds(self, finished):
        engine, _ = finished
        finalized = [
            entry
            for lane_id, (_, address) in engine.lane_settlement.items()
            for entry in engine.fabric.lane(lane_id)
            .contract_at(address)
            .checkpoints
            if entry.status is CheckpointStatus.FINAL
        ]
        assert finalized, "epochs beyond the fraud window must finalize"
        assert all(entry.bond_wei == 0 for entry in finalized)

    def test_fabric_super_commitment_covers_the_last_epoch(self, finished):
        engine, outcome = finished
        bundle = engine.last_fabric_bundle
        assert bundle.checkpoint.epoch == outcome.epochs_run
        assert (
            bundle.checkpoint.accepted + bundle.checkpoint.rejected
            == bundle.checkpoint.num_leaves
        )
        # a light-client style inclusion proof opens against the super-root
        name = bundle.accepted_names()[0]
        proof = bundle.prove(name)
        assert bundle.verify_inclusion(proof)

    def test_settlement_gas_decomposes_into_epochs(self, finished):
        _, outcome = finished
        assert outcome.total_commitment_gas == sum(
            s.commitment_gas for s in outcome.summaries
        )


class TestEvictionDrain:
    def test_partially_deferred_eviction_is_drained_later(self):
        """An evicted-but-alive provider's leftover shards keep migrating
        until it holds nothing, at which point it leaves the cluster."""
        engine = LifecycleEngine(
            LifecycleConfig(**{**BASE, "seed": 99, "churn": 0.0,
                               "flake_rate": 0.0})
        )
        # Force the partial-eviction state by hand: a provider that was
        # slashed while migration could not complete.
        victim = next(
            audit.provider
            for _, (_file_id, audit) in sorted(engine._shards.items())
        )
        state = engine.providers[victim]
        state.evicted = True
        assert state.alive and engine._names_held_by(victim)
        engine._evict_step(epoch=1)
        assert engine._names_held_by(victim) == []
        assert not state.alive
        assert victim not in engine.dsn.cluster.nodes
        # the migrated shards are live somewhere else
        assert all(
            audit.provider != victim for _, audit in engine._shards.values()
        )
        engine.close()


class TestConfigValidation:
    def test_rejects_zero_years(self):
        with pytest.raises(ValueError):
            LifecycleConfig(years=0)

    def test_rejects_impossible_erasure(self):
        with pytest.raises(ValueError):
            LifecycleConfig(erasure_n=2, erasure_k=3)

    def test_rejects_too_few_providers(self):
        with pytest.raises(ValueError):
            LifecycleConfig(erasure_n=4, erasure_k=2, providers=4)

    def test_total_epochs_rounds(self):
        assert LifecycleConfig(years=0.5, epochs_per_year=4).total_epochs == 2
        assert LifecycleConfig(years=2, epochs_per_year=12).total_epochs == 24
