"""The JSON-RPC audit service end to end: methods, errors, audit layers.

One server per fixture scope, real sockets throughout.  Covers the
ingress path (``submit_tx`` success and every reachable rejection code),
the read family (state, explorer, fee suggestions), the audit layer
(``audit_status`` / ``checkpoint_get`` / ``fabric_proof_get`` against a
settled aggregator), the service-hosted lifecycle mode, and the
per-method metrics counters.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import Blockchain
from repro.chain.fabric import ShardedChainFabric
from repro.chain.mempool import FeeMarketConfig, MempoolConfig
from repro.core import DataOwner, ProtocolParams
from repro.engine import AuditExecutor, AuditInstance
from repro.randomness import HashChainBeacon
from repro.rollup import CrossShardAggregator
from repro.rpc import (
    SERVICE_METHODS,
    RpcClient,
    RpcClientError,
    RpcDispatcher,
    RpcTcpServer,
    ServiceNode,
)
from repro.sim.workloads import archive_file


def _serve(node: ServiceNode) -> RpcTcpServer:
    dispatcher = RpcDispatcher()
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher)
    server.serve_in_thread()
    return server


@pytest.fixture()
def pooled_node():
    """Single pooled chain behind a live server, with funded accounts."""
    chain = Blockchain(
        mempool=MempoolConfig(max_per_sender=3, fee_market=FeeMarketConfig())
    )
    accounts = {
        "alice": chain.create_account(100.0, label="alice"),
        "poor": chain.create_account(0.0, label="poor"),
        "sink": chain.create_account(0.0, label="sink"),
    }
    node = ServiceNode(chain)
    server = _serve(node)
    client = RpcClient(*server.address)
    yield client, accounts, chain
    client.close()
    server.close()


class TestIngress:
    def test_submit_mine_state_roundtrip(self, pooled_node):
        client, accounts, chain = pooled_node
        result = client.call(
            "submit_tx",
            {"sender": accounts["alice"], "to": accounts["sink"], "value": 7},
        )
        assert result["lane"] == 0 and result["escrow_wei"] > 0
        assert client.call("pending_pool")["pending_total"] == 1
        mined = client.call("mine", {"blocks": 1})
        assert mined["pending_total"] == 0
        state = client.call("state_get", {"address": accounts["sink"]})
        assert state["balance_wei"] == 7
        totals = client.call("state_get")
        assert totals["total_supply_wei"] == chain.total_supply()

    @pytest.mark.parametrize(
        "mutation, code, reason",
        [
            ({"max_fee_gwei": 1e-6}, -32002, "underpriced"),
            ({"sender": "poor"}, -32008, "insufficient-funds"),
        ],
    )
    def test_rejections_map_to_taxonomy_codes(
        self, pooled_node, mutation, code, reason
    ):
        client, accounts, _ = pooled_node
        params = {"sender": accounts["alice"], "to": accounts["sink"], "value": 1}
        params.update(mutation)
        if params["sender"] == "poor":
            params["sender"] = accounts["poor"]
        with pytest.raises(RpcClientError) as excinfo:
            client.call("submit_tx", params)
        assert excinfo.value.code == code
        assert excinfo.value.data["reason"] == reason

    def test_sender_limit_and_replacement_taxonomy(self, pooled_node):
        client, accounts, _ = pooled_node
        base = {"sender": accounts["alice"], "to": accounts["sink"], "value": 1}
        nonces = [client.call("submit_tx", base)["nonce"] for _ in range(3)]
        with pytest.raises(RpcClientError) as excinfo:
            client.call("submit_tx", base)
        assert excinfo.value.code == -32007  # sender-limit
        with pytest.raises(RpcClientError) as excinfo:
            client.call("submit_tx", {**base, "nonce": 99, "replace": True})
        assert excinfo.value.code == -32004  # nonce-gap (replace path)
        with pytest.raises(RpcClientError) as excinfo:
            client.call("submit_tx", {**base, "nonce": nonces[0], "replace": True})
        assert excinfo.value.code == -32006  # replacement-underpriced
        replaced = client.call(
            "submit_tx",
            {**base, "nonce": nonces[0], "replace": True,
             "max_fee_gwei": 50.0, "priority_fee_gwei": 10.0},
        )
        assert replaced["nonce"] == nonces[0]

    def test_invalid_params_rejected_before_the_pool(self, pooled_node):
        client, accounts, _ = pooled_node
        for params in (
            {"to": accounts["sink"]},  # no sender
            {"sender": accounts["alice"], "value": -1},
            {"sender": accounts["alice"], "gas_limit": True},
            {"sender": accounts["alice"], "surprise": 1},
            {"sender": accounts["alice"], "max_fee_gwei": "cheap"},
        ):
            with pytest.raises(RpcClientError) as excinfo:
                client.call("submit_tx", params)
            assert excinfo.value.code == -32602, params

    def test_fee_suggest_tracks_base_fee(self, pooled_node):
        client, _, chain = pooled_node
        suggestion = client.call("fee_suggest", {"tip_gwei": 2.0})
        assert suggestion["base_fee_wei"] == chain.base_fee_wei
        assert suggestion["priority_fee_gwei"] == pytest.approx(2.0)
        assert suggestion["max_fee_gwei"] > 2.0


class TestMetaAndMetrics:
    def test_methods_lists_the_full_namespace(self, pooled_node):
        client, _, _ = pooled_node
        methods = client.call("rpc_methods")
        assert set(SERVICE_METHODS) <= set(methods)

    def test_metrics_count_calls_and_errors(self, pooled_node):
        client, accounts, _ = pooled_node
        client.call("node_status")
        client.call("node_status")
        with pytest.raises(RpcClientError):
            client.call("submit_tx", {"sender": accounts["poor"], "value": 1})
        metrics = client.call("rpc_metrics")
        assert metrics["node_status"]["calls"] == 2
        assert metrics["node_status"]["errors"] == 0
        assert metrics["submit_tx"]["errors"] == 1
        assert metrics["node_status"]["seconds"] >= 0.0

    def test_batch_preserves_order_and_isolation(self, pooled_node):
        client, accounts, _ = pooled_node
        responses = client.batch(
            [
                ("node_status", None),
                ("no_such_method", None),
                ("state_get", {"address": accounts["alice"]}),
            ]
        )
        assert len(responses) == 3
        by_id = {response["id"]: response for response in responses}
        ids = sorted(by_id)
        assert "result" in by_id[ids[0]]
        assert by_id[ids[1]]["error"]["code"] == -32601
        assert by_id[ids[2]]["result"]["address"] == accounts["alice"]

    def test_unsupported_audit_layer_is_structured(self, pooled_node):
        client, _, _ = pooled_node
        for method in ("audit_status", "checkpoint_get"):
            with pytest.raises(RpcClientError) as excinfo:
                client.call(method)
            assert excinfo.value.code == -32011  # UNSUPPORTED


@pytest.fixture(scope="module")
def aggregator_stack(params):
    """A 2-lane fabric with one settled epoch behind a live server."""
    rng = random.Random(0x5E87)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(3):
        package = owner.prepare(
            archive_file(700, tag=f"svc-{index}").data, fresh_keypair=index == 0
        )
        instances.append(AuditInstance.from_package(package, owner_id="svc"))
    fabric = ShardedChainFabric(num_lanes=2, mempool=MempoolConfig())
    with AuditExecutor(instances, workers=1) as executor:
        aggregator = CrossShardAggregator(
            fabric, executor, params, HashChainBeacon(b"svc"), rng=rng
        )
        aggregator.run(2)
        node = ServiceNode(fabric, aggregator=aggregator)
        server = _serve(node)
        client = RpcClient(*server.address)
        yield client, instances, aggregator
        client.close()
        server.close()
        aggregator.close()
    fabric.close()


class TestAuditLayer:
    def test_audit_status_reports_settled_epochs(self, aggregator_stack):
        client, instances, _ = aggregator_stack
        status = client.call("audit_status")
        assert status["mode"] == "aggregator"
        assert status["epochs_settled"] == 2
        assert status["accepted"] == 2 * len(instances)
        assert status["rejected"] == 0

    def test_checkpoint_get_latest_and_by_epoch(self, aggregator_stack):
        client, _, aggregator = aggregator_stack
        latest = client.call("checkpoint_get")
        assert latest["epoch"] == 1
        first = client.call("checkpoint_get", {"epoch": 0})
        assert first["epoch"] == 0
        expected = aggregator.settled[0].fabric.checkpoint
        assert first["fabric_root"] == expected.fabric_root.hex()
        assert first["commitment"] == expected.to_bytes().hex()
        assert len(first["lanes"]) == latest["num_lanes"]
        with pytest.raises(RpcClientError) as excinfo:
            client.call("checkpoint_get", {"epoch": 9})
        assert excinfo.value.code == -32010  # NOT_FOUND

    def test_fabric_proof_get_verifies_and_takes_string_names(
        self, aggregator_stack
    ):
        client, instances, _ = aggregator_stack
        name = instances[0].name
        proof = client.call("fabric_proof_get", {"name": str(name)})
        assert proof["verified"] is True
        assert proof["name"] == str(name)  # Zp ids ship as decimal strings
        assert proof["lane_proof"]["siblings"] is not None
        with pytest.raises(RpcClientError) as excinfo:
            client.call("fabric_proof_get", {"name": 12345})
        assert excinfo.value.code == -32010  # unknown file

    def test_unroutable_sender_is_not_found_not_internal(self, aggregator_stack):
        client, _, _ = aggregator_stack
        with pytest.raises(RpcClientError) as excinfo:
            client.call("submit_tx", {"sender": "0xnobody", "value": 1})
        assert excinfo.value.code == -32010  # unroutable, not -32603

    def test_explorer_family_sees_the_settlement(self, aggregator_stack):
        client, _, _ = aggregator_stack
        client.call("mine", {"blocks": 1})  # seal the settlement txs
        summary = client.call("explorer_summary")
        assert summary["num_lanes"] == 2 and summary["height"] > 0
        lanes = client.call("explorer_lanes")
        assert len(lanes) == 2
        checkpoints = client.call("explorer_checkpoints")
        assert len(checkpoints) == 4  # one row per (lane, epoch): 2 x 2


def test_lifecycle_hosted_mode_exposes_reputation():
    from repro.lifecycle import LifecycleConfig, LifecycleEngine

    engine = LifecycleEngine(
        LifecycleConfig(
            years=0.5, epochs_per_year=2, files=1, file_bytes=400,
            erasure_n=3, erasure_k=2, providers=6, lanes=2, s=3, k=2,
        )
    )
    try:
        engine.run_epoch()
        node = engine.service_node()
        server = _serve(node)
        try:
            with RpcClient(*server.address) as client:
                status = client.call("audit_status")
                assert status["mode"] == "lifecycle"
                assert status["epochs_run"] == 1
                assert status["files_intact"] is True
                assert status["accepted"] > 0
                provider = next(iter(engine.providers))
                state = client.call("state_get", {"address": provider})
                assert state["reputation"] is not None
                assert state["reputation"]["stake_wei"] > 0
                civilian = client.call(
                    "state_get", {"address": engine.oracle}
                )
                assert civilian["reputation"] is None
        finally:
            server.close()
    finally:
        engine.close()
