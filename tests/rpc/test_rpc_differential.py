"""Differential: the RPC ingress is bit-identical to in-process submission.

The same deterministic workload is driven twice against identically-built
chains — once through ``chain.submit`` in process, once through
``submit_tx`` over a real socket — with the same interleaved mining.  The
wire must be a pure transport: same accept/reject trace (codes included),
same assigned nonces, same final ``state_hash``, and the same canonical
digest over the surviving pending pool.  Checked on a single pooled chain
and on a 4-lane fabric (where the service also routes each transaction to
its settlement lane).
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.chain import Blockchain, Transaction
from repro.chain.fabric import ShardedChainFabric
from repro.chain.mempool import GasSinkContract, MempoolConfig, MempoolRejection
from repro.rpc import RpcClient, RpcClientError, RpcDispatcher, RpcTcpServer, ServiceNode

BLOCKS = 6


def _build(lanes: int):
    """One pooled chain or fabric with per-lane sinks and senders."""
    config = MempoolConfig(high_watermark=24, low_watermark=16, max_per_sender=8)
    if lanes == 1:
        chain = ShardedChainFabric(num_lanes=1, mempool=config)
    else:
        chain = ShardedChainFabric(num_lanes=lanes, mempool=config)
    sinks, senders = [], []
    for lane_id, lane in enumerate(chain.lanes):
        deployer = lane.create_account(10.0, label=f"deploy-{lane_id}")
        sinks.append(lane.deploy(GasSinkContract(), deployer=deployer))
        senders.append(
            [lane.create_account(50.0, label=f"d{lane_id}-{i}") for i in range(3)]
        )
    return chain, sinks, senders


def _workload(rng: random.Random, sinks, senders, base_fees):
    """One deterministic batch of submission descriptors for one block."""
    batch = []
    for lane_id, lane_senders in enumerate(senders):
        for sender in lane_senders:
            roll = rng.random()
            if roll < 0.1:  # a lowball bid: must reject identically
                batch.append(
                    {
                        "sender": sender,
                        "to": sinks[lane_id],
                        "method": "consume",
                        "args": [40_000, "lowball"],
                        "gas_limit": 65_000,
                        "max_fee_gwei": 1e-6,
                        "priority_fee_gwei": 1e-7,
                    }
                )
            elif roll < 0.8:
                gas = rng.choice((60_000, 120_000, 300_000))
                tip = round(rng.uniform(0.1, 4.0), 3)
                batch.append(
                    {
                        "sender": sender,
                        "to": sinks[lane_id],
                        "method": "consume",
                        "args": [gas - 25_000, "diff"],
                        "gas_limit": gas,
                        "max_fee_gwei": round(
                            base_fees[lane_id] / 10**9 * rng.uniform(0.9, 2.5)
                            + tip,
                            3,
                        ),
                        "priority_fee_gwei": tip,
                    }
                )
            else:
                other = lane_senders[
                    (lane_senders.index(sender) + 1) % len(lane_senders)
                ]
                batch.append(
                    {
                        "sender": sender,
                        "to": other,
                        "value": 10**15,
                        "gas_limit": 30_000,
                        "max_fee_gwei": 4.0,
                        "priority_fee_gwei": 0.5,
                    }
                )
    return batch


def _pool_digest(chain) -> str:
    """Canonical digest of every lane's surviving pending entries."""
    hasher = hashlib.sha256()
    for lane_id, lane in enumerate(chain.lanes):
        for (sender, nonce) in sorted(lane.store.pool):
            entry = lane.store.pool[(sender, nonce)]
            tx = entry.tx
            hasher.update(
                repr(
                    (
                        lane_id, sender, nonce, tx.to, tx.method, tx.args,
                        tx.value, tx.gas_limit, entry.max_fee_wei,
                        entry.tip_cap_wei, entry.escrow_wei,
                    )
                ).encode()
            )
    return hasher.hexdigest()


def _run_inprocess(lanes: int, seed: int):
    chain, sinks, senders = _build(lanes)
    try:
        rng = random.Random(f"rpc-diff:{seed}")
        trace = []
        for _ in range(BLOCKS):
            base_fees = [lane.base_fee_wei for lane in chain.lanes]
            for spec in _workload(rng, sinks, senders, base_fees):
                tx = Transaction(
                    sender=spec["sender"],
                    to=spec["to"],
                    method=spec.get("method"),
                    args=tuple(spec.get("args", ())),
                    value=spec.get("value", 0),
                    gas_limit=spec["gas_limit"],
                    max_fee_gwei=spec["max_fee_gwei"],
                    priority_fee_gwei=spec["priority_fee_gwei"],
                )
                lane = chain.lanes[chain.lane_index_for_tx(tx)]
                try:
                    entry = lane.submit(tx)
                    trace.append(("ok", spec["sender"], entry.tx.nonce))
                except MempoolRejection as rejection:
                    trace.append(("rej", spec["sender"], rejection.code))
            chain.mine_block()
        # The last workload round stays pending: the pool digest is live.
        base_fees = [lane.base_fee_wei for lane in chain.lanes]
        for spec in _workload(rng, sinks, senders, base_fees):
            tx = Transaction(
                sender=spec["sender"], to=spec["to"], method=spec.get("method"),
                args=tuple(spec.get("args", ())), value=spec.get("value", 0),
                gas_limit=spec["gas_limit"], max_fee_gwei=spec["max_fee_gwei"],
                priority_fee_gwei=spec["priority_fee_gwei"],
            )
            lane = chain.lanes[chain.lane_index_for_tx(tx)]
            try:
                entry = lane.submit(tx)
                trace.append(("ok", spec["sender"], entry.tx.nonce))
            except MempoolRejection as rejection:
                trace.append(("rej", spec["sender"], rejection.code))
        return trace, chain.state_hash(), _pool_digest(chain)
    finally:
        chain.close()


def _run_rpc(lanes: int, seed: int):
    chain, sinks, senders = _build(lanes)
    node = ServiceNode(chain)
    dispatcher = RpcDispatcher()
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher)
    host, port = server.serve_in_thread()
    try:
        client = RpcClient(host, port)
        rng = random.Random(f"rpc-diff:{seed}")
        trace = []

        def submit_round():
            base_fees = [lane.base_fee_wei for lane in chain.lanes]
            for spec in _workload(rng, sinks, senders, base_fees):
                try:
                    result = client.call("submit_tx", spec)
                    trace.append(("ok", spec["sender"], result["nonce"]))
                except RpcClientError as exc:
                    trace.append(("rej", spec["sender"], exc.data["reason"]))

        for _ in range(BLOCKS):
            submit_round()
            client.call("mine", {"blocks": 1})
        submit_round()  # left pending, mirroring the in-process run
        client.close()
        return trace, chain.state_hash(), _pool_digest(chain)
    finally:
        server.close()
        chain.close()


@pytest.mark.parametrize("lanes", [1, 4], ids=["sequential", "4-lane"])
def test_rpc_ingress_matches_inprocess(lanes):
    trace_direct, hash_direct, pool_direct = _run_inprocess(lanes, seed=1)
    trace_rpc, hash_rpc, pool_rpc = _run_rpc(lanes, seed=1)
    assert trace_direct == trace_rpc  # accept/reject sets, codes, nonces
    assert hash_direct == hash_rpc
    assert pool_direct == pool_rpc
    # Non-vacuity: the workload exercised both outcomes and left a backlog.
    assert any(kind == "rej" for kind, _, _ in trace_direct)
    assert any(kind == "ok" for kind, _, _ in trace_direct)
    assert pool_direct != hashlib.sha256().hexdigest()
