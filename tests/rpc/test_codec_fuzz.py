"""Codec fuzz: every malformed frame becomes a structured JSON-RPC error.

A seeded generator sweeps >= 500 hostile frames — truncated JSON, raw
binary, wrong-typed ``id``, unknown methods, oversized params, batches
inside batches, absurd nesting — through the dispatcher, and a sample of
them through a real server socket.  The contract under test is absolute:
the service never raises past the dispatch boundary, never leaks a
traceback onto the wire, never hangs a connection, and every response
decodes as a JSON-RPC 2.0 error object with a known code.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.rpc import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    MAX_BATCH_ITEMS,
    MAX_FRAME_BYTES,
    METHOD_NOT_FOUND,
    NOT_FOUND,
    PARSE_ERROR,
    REJECTION_RPC_CODES,
    UNSUPPORTED,
    RpcClient,
    RpcDispatcher,
    RpcTcpServer,
)

CASES = 600

#: Every code the service is allowed to emit.
KNOWN_CODES = frozenset(
    {
        PARSE_ERROR,
        INVALID_REQUEST,
        METHOD_NOT_FOUND,
        INVALID_PARAMS,
        INTERNAL_ERROR,
        NOT_FOUND,
        UNSUPPORTED,
        *REJECTION_RPC_CODES.values(),
    }
)


def _dispatcher() -> RpcDispatcher:
    dispatcher = RpcDispatcher()
    dispatcher.register("echo", lambda value=None: value)
    dispatcher.register("boom", _boom)
    return dispatcher


def _boom() -> None:
    raise RuntimeError("handler exploded (secret internals)")


def _garbage_value(rng: random.Random, depth: int = 0):
    roll = rng.random()
    if depth > 3 or roll < 0.35:
        return rng.choice(
            [None, True, False, rng.randrange(-(2**70), 2**70),
             rng.random() * 1e300, "x" * rng.randrange(0, 40),
             "\x00\xff\ud800"[: rng.randrange(0, 3)]]
        )
    if roll < 0.7:
        return [_garbage_value(rng, depth + 1) for _ in range(rng.randrange(0, 4))]
    return {
        f"k{index}": _garbage_value(rng, depth + 1)
        for index in range(rng.randrange(0, 4))
    }


def _mutate_bytes(rng: random.Random, frame: bytes) -> bytes:
    if not frame:
        return b"\xff\xfe"
    mode = rng.randrange(4)
    if mode == 0:  # truncate mid-token
        return frame[: rng.randrange(1, len(frame) + 1)]
    if mode == 1:  # flip a byte
        index = rng.randrange(len(frame))
        return frame[:index] + bytes([frame[index] ^ 0x5A]) + frame[index + 1 :]
    if mode == 2:  # duplicate a slice (unbalanced braces)
        index = rng.randrange(len(frame))
        return frame + frame[index:]
    return bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))


def _hostile_frame(rng: random.Random) -> "tuple[bytes, bool]":
    """One adversarial frame, plus whether an error response is mandatory.

    Byte-level mutations of a valid frame occasionally survive as valid
    JSON-RPC (a flip inside a string payload); those cases still assert
    the no-crash/no-hang/well-formed-response contract, just not the
    error code.  Every structurally-hostile kind must produce an error.
    """
    kind = rng.randrange(12)
    if kind == 0:  # truncated / bit-flipped / raw-binary JSON
        base = json.dumps(
            {"jsonrpc": "2.0", "id": 1, "method": "echo", "params": {"value": 1}}
        ).encode()
        return _mutate_bytes(rng, base), False
    if kind == 1:  # wrong-typed id (bool, object, array)
        # (A fractional number id is discouraged but legal per the spec,
        # so it is deliberately absent here.)
        bad_id = rng.choice([True, False, [1], {"id": 1}])
        return (
            json.dumps({"jsonrpc": "2.0", "id": bad_id, "method": "echo"}).encode(),
            True,
        )
    if kind == 2:  # unknown method (including non-string methods)
        method = rng.choice(
            ["nope", "", "rpc.reserved", 42, None, ["echo"], {"m": 1}]
        )
        return json.dumps({"jsonrpc": "2.0", "id": 1, "method": method}).encode(), True
    if kind == 3:  # oversized params (but inside the frame cap)
        request = {
            "jsonrpc": "2.0",
            "id": 1,
            "method": "echo",
            # Past the params cap (MAX_FRAME_BYTES // 2) but inside the
            # frame cap: rejected by validation, not by framing.
            "params": {"value": "y" * rng.randrange(520_000, 600_000)},
        }
        return json.dumps(request).encode(), True
    if kind == 4:  # batch-in-batch: nested arrays are not request objects
        inner = {"jsonrpc": "2.0", "id": 1, "method": "echo"}
        return json.dumps([[inner], [inner, inner]]).encode(), True
    if kind == 5:  # wrong version / missing members / extra members
        request = {"jsonrpc": rng.choice(["1.0", "2.1", 2.0, None]), "id": 1}
        if rng.random() < 0.5:
            request["method"] = "echo"
        if rng.random() < 0.5:
            request["extra"] = _garbage_value(rng)
        return json.dumps(request).encode(), True
    if kind == 6:  # params of a wrong type
        params = rng.choice(["string", 42, True, 3.14])
        return (
            json.dumps(
                {"jsonrpc": "2.0", "id": 1, "method": "echo", "params": params}
            ).encode(),
            True,
        )
    if kind == 7:  # non-object, non-array top level
        return json.dumps(rng.choice([42, "frame", True, None, 2.5])).encode(), True
    if kind == 8:  # empty or oversized batch
        if rng.random() < 0.5:
            return b"[]", True
        item = '{"jsonrpc":"2.0","id":1,"method":"echo"}'
        return ("[" + ",".join([item] * (MAX_BATCH_ITEMS + 1)) + "]").encode(), True
    if kind == 9:  # deep nesting (parser recursion pressure)
        depth = rng.randrange(50, 300)
        return ("[" * depth + "]" * depth).encode(), True
    if kind == 10:  # handler explosion: internals must not leak
        return json.dumps({"jsonrpc": "2.0", "id": 1, "method": "boom"}).encode(), True
    # pure garbage object
    return json.dumps(_garbage_value(rng)).encode(), True


def _assert_response_frame(raw: bytes, case: bytes, must_error: bool) -> None:
    decoded = json.loads(raw)
    responses = decoded if isinstance(decoded, list) else [decoded]
    assert responses, f"empty response for {case[:80]!r}"
    for response in responses:
        assert response["jsonrpc"] == "2.0", case[:80]
        if must_error:
            assert "error" in response, f"no error for {case[:80]!r}: {response}"
        if "error" not in response:
            continue
        error = response["error"]
        assert error["code"] in KNOWN_CODES, (case[:80], error)
        assert isinstance(error["message"], str)
        # No tracebacks, no internals: the secret string stays server-side.
        assert "secret internals" not in json.dumps(error)
        assert "Traceback" not in json.dumps(error)
        assert response["id"] is None or isinstance(response["id"], (str, int))


@pytest.mark.parametrize("seed", range(4))
def test_dispatcher_survives_hostile_frames(seed):
    """>= 500 hostile frames in-process: structured error out, every time."""
    rng = random.Random(f"codec-fuzz:{seed}")
    dispatcher = _dispatcher()
    required = 0
    for index in range(CASES):
        case, must_error = _hostile_frame(rng)
        required += must_error
        raw = dispatcher.handle_raw(case)
        assert raw is not None, f"case {index} swallowed: {case[:80]!r}"
        _assert_response_frame(raw, case, must_error)
    assert required > CASES * 2 // 3  # the sweep was mostly must-error kinds
    # The sweep's failures were all metered.
    metrics = dispatcher._rpc_metrics()
    assert sum(row["errors"] for row in metrics.values()) > 0


def test_socket_survives_hostile_frames():
    """A sample of the sweep through a real socket: reply, never hang."""
    rng = random.Random("codec-fuzz:socket")
    server = RpcTcpServer(_dispatcher())
    host, port = server.serve_in_thread()
    try:
        client = RpcClient(host, port, timeout=10.0)
        for _ in range(60):
            case, must_error = _hostile_frame(rng)
            case = case.replace(b"\n", b" ")
            raw = client.send_raw_line(case)
            assert raw, f"connection dropped on {case[:80]!r}"
            _assert_response_frame(raw, case, must_error)
        # The connection survived the whole barrage.
        assert client.call("echo", {"value": "still-alive"}) == "still-alive"
        client.close()
    finally:
        server.close()


def test_oversized_frame_answers_then_closes():
    """A line past MAX_FRAME_BYTES gets a parse error, then a clean close."""
    server = RpcTcpServer(_dispatcher())
    host, port = server.serve_in_thread()
    try:
        client = RpcClient(host, port, timeout=10.0)
        raw = client.send_raw_line(b"x" * (MAX_FRAME_BYTES + 10))
        response = json.loads(raw)
        assert response["error"]["code"] == PARSE_ERROR
        assert response["id"] is None
        client.close()
    finally:
        server.close()


def test_notification_gets_no_response_but_connection_lives():
    server = RpcTcpServer(_dispatcher())
    host, port = server.serve_in_thread()
    try:
        client = RpcClient(host, port, timeout=10.0)
        client.notify("echo", {"value": 1})
        assert client.call("echo", {"value": 2}) == 2
        client.close()
    finally:
        server.close()
