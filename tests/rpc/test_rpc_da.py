"""DA over JSON-RPC: commitments, sampled chunks, and the error taxonomy.

Regression net for the availability-path sweep: unknown epochs answer
NOT_FOUND with the structured ``EpochNotSettled`` message (not a
quote-wrapped KeyError repr bubbling up as INTERNAL), DA-less aggregators
answer UNSUPPORTED, and a real :class:`~repro.da.sampling.DaSampler`
works end to end over the ``da_sample_get`` wire — withheld chunks
arriving as ``available: false`` *answers* the client holds against the
aggregator.
"""

from __future__ import annotations

import random

import pytest

from repro.chain.fabric import ShardedChainFabric
from repro.chain.mempool import MempoolConfig
from repro.core import DataOwner
from repro.da import DaCommitment, DaParams, DaSampler, NmtProof, verify_nmt_proof
from repro.engine import AuditExecutor, AuditInstance
from repro.obs import MetricsRegistry
from repro.randomness import HashChainBeacon
from repro.rollup import CrossShardAggregator
from repro.rpc import (
    SERVICE_METHODS,
    RpcClient,
    RpcClientError,
    RpcDispatcher,
    RpcTcpServer,
    ServiceNode,
)
from repro.sim.workloads import archive_file

DA_PARAMS = DaParams(n=16, k=4)
NOT_FOUND = -32010
UNSUPPORTED = -32011
INVALID_PARAMS = -32602


@pytest.fixture(scope="module")
def da_stack(params):
    """A 2-lane DA-enabled fabric with two settled epochs, behind a server."""
    rng = random.Random(0xDA5E)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(3):
        package = owner.prepare(
            archive_file(700, tag=f"dasvc-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="dasvc"))
    fabric = ShardedChainFabric(num_lanes=2, mempool=MempoolConfig())
    with AuditExecutor(instances, workers=1) as executor:
        aggregator = CrossShardAggregator(
            fabric, executor, params, HashChainBeacon(b"dasvc"),
            rng=rng, da_params=DA_PARAMS,
        )
        aggregator.run(2)
        node = ServiceNode(fabric, aggregator=aggregator)
        dispatcher = RpcDispatcher()
        node.register_on(dispatcher)
        server = RpcTcpServer(dispatcher)
        server.serve_in_thread()
        client = RpcClient(*server.address)
        yield client, instances, aggregator
        client.close()
        server.close()
        aggregator.close()
    fabric.close()


def _rpc_fetch(client):
    """A DaSampler FetchFn speaking the da_sample_get wire."""

    def fetch(lane_id, epoch, indices):
        result = client.call(
            "da_sample_get",
            {"epoch": epoch, "lane": lane_id, "indices": list(indices)},
        )
        out = {}
        for row in result["chunks"]:
            if row["available"]:
                out[row["index"]] = (
                    bytes.fromhex(row["data"]),
                    NmtProof.from_object(row["proof"]),
                )
            else:
                out[row["index"]] = None
        return out

    return fetch


def _lane_bundle(aggregator, epoch, lane):
    return aggregator.settlement_for_epoch(epoch).lanes[lane].da


# --------------------------------------------------------------------- #
# The availability-path error taxonomy                                  #
# --------------------------------------------------------------------- #

def test_checkpoint_get_unknown_epoch_maps_to_not_found(da_stack):
    client, _, _ = da_stack
    with pytest.raises(RpcClientError) as excinfo:
        client.call("checkpoint_get", {"epoch": 9})
    assert excinfo.value.code == NOT_FOUND
    # The structured EpochNotSettled message, verbatim: a bare KeyError
    # would render quote-wrapped ("'epoch 9 ...'") or, worse, surface as
    # INTERNAL from the dispatcher.
    assert str(excinfo.value) == "[-32010] epoch 9 not settled by this aggregator"


def test_da_methods_are_registered(da_stack):
    assert "da_commitment_get" in SERVICE_METHODS
    assert "da_sample_get" in SERVICE_METHODS


def test_da_commitment_get_latest_covers_every_lane(da_stack):
    client, _, aggregator = da_stack
    result = client.call("da_commitment_get")
    assert result["epoch"] == 1
    assert [row["lane"] for row in result["lanes"]] == [0, 1]
    for row in result["lanes"]:
        commitment = DaCommitment.from_bytes(bytes.fromhex(row["commitment"]))
        expected = _lane_bundle(aggregator, 1, row["lane"]).commitment
        assert commitment == expected
        assert row["n"] == DA_PARAMS.n and row["k"] == DA_PARAMS.k
        assert row["checkpoint_root"] == expected.checkpoint_root.hex()
        assert row["nmt_root"] == expected.root.to_bytes().hex()


def test_da_commitment_get_by_epoch_and_lane(da_stack):
    client, _, aggregator = da_stack
    result = client.call("da_commitment_get", {"epoch": 0, "lane": 1})
    assert result["epoch"] == 0
    assert len(result["lanes"]) == 1
    assert result["lanes"][0]["lane"] == 1
    with pytest.raises(RpcClientError) as excinfo:
        client.call("da_commitment_get", {"epoch": 0, "lane": 7})
    assert excinfo.value.code == NOT_FOUND
    assert "no lane 7" in str(excinfo.value)
    with pytest.raises(RpcClientError) as excinfo:
        client.call("da_commitment_get", {"epoch": 5})
    assert excinfo.value.code == NOT_FOUND


def test_da_less_aggregator_answers_unsupported(da_stack):
    client, _, aggregator = da_stack
    settlement = aggregator.settlement_for_epoch(0)
    hidden = {lane: settled.da for lane, settled in settlement.lanes.items()}
    try:
        for settled in settlement.lanes.values():
            settled.da = None
        with pytest.raises(RpcClientError) as excinfo:
            client.call("da_commitment_get", {"epoch": 0})
        assert excinfo.value.code == UNSUPPORTED
        assert "da_params unset" in str(excinfo.value)
        with pytest.raises(RpcClientError) as excinfo:
            client.call(
                "da_sample_get", {"epoch": 0, "lane": 0, "indices": [0]}
            )
        assert excinfo.value.code == UNSUPPORTED
    finally:
        for lane, settled in settlement.lanes.items():
            settled.da = hidden[lane]


def test_da_sample_get_validation(da_stack):
    client, _, _ = da_stack
    cases = [
        ({"epoch": 0, "lane": 0, "indices": []}, "non-empty"),
        ({"epoch": 0, "lane": 0, "indices": list(range(65))}, "at most 64"),
        ({"epoch": 0, "lane": 0, "indices": [-1]}, "non-negative"),
        ({"epoch": 0, "lane": 0, "indices": [DA_PARAMS.n]}, "below n="),
        ({"epoch": 0, "lane": "zero", "indices": [0]}, "lane must be"),
        ({"epoch": "zero", "lane": 0, "indices": [0]}, "epoch must be"),
    ]
    for bad_params, needle in cases:
        with pytest.raises(RpcClientError) as excinfo:
            client.call("da_sample_get", bad_params)
        assert excinfo.value.code == INVALID_PARAMS, bad_params
        assert needle in str(excinfo.value)
    with pytest.raises(RpcClientError) as excinfo:
        client.call("da_sample_get", {"epoch": 9, "lane": 0, "indices": [0]})
    assert excinfo.value.code == NOT_FOUND


# --------------------------------------------------------------------- #
# Chunks over the wire                                                  #
# --------------------------------------------------------------------- #

def test_da_sample_get_serves_verifiable_chunks(da_stack):
    client, _, aggregator = da_stack
    bundle = _lane_bundle(aggregator, 0, 0)
    result = client.call(
        "da_sample_get", {"epoch": 0, "lane": 0, "indices": [0, 3, 11]}
    )
    assert result["n"] == DA_PARAMS.n and result["k"] == DA_PARAMS.k
    for row in result["chunks"]:
        assert row["available"] is True
        chunk = bytes.fromhex(row["data"])
        proof = NmtProof.from_object(row["proof"])
        assert chunk == bundle.chunks[row["index"]]
        assert proof.leaf_index == row["index"]
        assert verify_nmt_proof(bundle.commitment.root, proof)


def test_sampler_runs_end_to_end_over_rpc(da_stack):
    client, _, aggregator = da_stack
    sampler = DaSampler(_rpc_fetch(client), registry=MetricsRegistry())
    for lane in (0, 1):
        commitment = _lane_bundle(aggregator, 1, lane).commitment
        report = sampler.sample(commitment, b"\x07" * 8, budget=6)
        assert report.available, report.to_object()
    # Escalation works over the same wire: full k-of-n reconstruction.
    commitment = _lane_bundle(aggregator, 1, 0).commitment
    reconstruction = sampler.reconstruct(commitment, b"\x07" * 8)
    assert reconstruction.verified
    expected = aggregator.settlement_for_epoch(1).lanes[0].bundle.records
    assert reconstruction.records == expected


def test_withheld_chunks_are_answers_not_errors(da_stack):
    client, _, aggregator = da_stack
    bundle = _lane_bundle(aggregator, 0, 1)
    try:
        bundle.withhold([2, 5])
        result = client.call(
            "da_sample_get", {"epoch": 0, "lane": 1, "indices": [2, 4, 5]}
        )
        by_index = {row["index"]: row for row in result["chunks"]}
        assert by_index[2] == {"index": 2, "available": False}
        assert by_index[5] == {"index": 5, "available": False}
        assert by_index[4]["available"] is True
        # And the sampling client books them as withholding evidence.
        sampler = DaSampler(_rpc_fetch(client), registry=MetricsRegistry())
        report = sampler.sample(
            bundle.commitment, b"\x01" * 8, budget=DA_PARAMS.n
        )
        assert {o.index for o in report.failures} == {2, 5}
        assert all(o.reason == "missing" for o in report.failures)
    finally:
        bundle.withheld.clear()
