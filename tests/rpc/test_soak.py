"""Soak: the service under sustained concurrent load, invariants held.

Hundreds-to-thousands of client threads hammer one service (4-lane
concurrent fabric, auto-mining) with mixed traffic — submissions,
reads, deliberate rejections, malformed frames.  The pass criteria:

* **zero dropped responses** — every request gets its matching-id reply
  (the client raises on anything else),
* **structured failures only** — rejections arrive as taxonomy codes,
  malformed frames as JSON-RPC errors, never a closed socket,
* **watermarks held** — no lane's pool ever exceeds its high watermark
  (checked against the pool's own lifetime stats, not a sample),
* **chain laws hold at the end** — gapless nonces, exact escrow, supply
  conservation, and a clean drain to empty.

Two sizes: the default quick profile keeps CI under half a minute; the
full profile (``RPC_SOAK=1``) runs >= 1000 concurrent clients for
>= 30 seconds and is the acceptance gate for the service layer.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.chain.fabric import ShardedChainFabric
from repro.chain.mempool import ESCROW_ACCOUNT, MempoolConfig
from repro.rpc import (
    RpcClient,
    RpcClientError,
    RpcDispatcher,
    RpcTcpServer,
    ServiceNode,
)

FULL = os.environ.get("RPC_SOAK", "") == "1"
LANES = 4
CLIENTS = 1000 if FULL else 32
SOAK_SECONDS = 30.0 if FULL else 3.0
HIGH_WATERMARK = 4096 if FULL else 256

pytestmark = pytest.mark.slow


def _known_reason(exc: RpcClientError) -> bool:
    return isinstance(exc.data, dict) and "reason" in exc.data


def test_soak_sustained_concurrent_clients():
    fabric = ShardedChainFabric(
        num_lanes=LANES,
        mempool=MempoolConfig(
            high_watermark=HIGH_WATERMARK,
            low_watermark=HIGH_WATERMARK * 3 // 4,
            max_per_sender=64,
        ),
        concurrent=True,
    )
    accounts = [
        lane.create_account(200.0, label=f"soak-{lane_id}-{i}")
        for lane_id, lane in enumerate(fabric.lanes)
        for i in range(max(4, CLIENTS // LANES // 4))
    ]
    supply0 = sum(lane.total_supply() for lane in fabric.lanes)
    node = ServiceNode(fabric)
    dispatcher = RpcDispatcher()
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher)
    host, port = server.serve_in_thread()
    node.start_auto_mine(interval=0.05)

    if FULL:
        threading.stack_size(256 * 1024)  # 1000+ threads: shrink stacks
    stats_lock = threading.Lock()
    totals = {"requests": 0, "accepted": 0, "rejected": 0, "errors": 0}
    failures: list[str] = []
    stop = threading.Event()
    barrier = threading.Barrier(CLIENTS + 1)

    def client_session(index: int) -> None:
        rng = random.Random(f"soak:{index}")
        sender = accounts[index % len(accounts)]
        local = {"requests": 0, "accepted": 0, "rejected": 0, "errors": 0}
        try:
            client = RpcClient(host, port, timeout=60.0)
        except OSError as exc:
            failures.append(f"client {index} failed to connect: {exc}")
            barrier.wait()
            return
        barrier.wait()
        try:
            while not stop.is_set():
                roll = rng.random()
                local["requests"] += 1
                try:
                    if roll < 0.55:
                        client.call(
                            "submit_tx",
                            {
                                "sender": sender,
                                "to": accounts[rng.randrange(len(accounts))],
                                "value": 10**12,
                                "gas_limit": 30_000,
                                "max_fee_gwei": round(rng.uniform(2.0, 8.0), 2),
                                "priority_fee_gwei": round(rng.uniform(0.1, 2.0), 2),
                            },
                        )
                        local["accepted"] += 1
                    elif roll < 0.65:  # deliberate lowball: taxonomy reject
                        client.call(
                            "submit_tx",
                            {"sender": sender, "to": sender, "value": 1,
                             "max_fee_gwei": 1e-9},
                        )
                        local["accepted"] += 1  # (possible if base fee hit 0)
                    elif roll < 0.8:
                        client.call("node_status")
                    elif roll < 0.9:
                        client.call("pending_pool")
                    elif roll < 0.97:
                        client.call(
                            "state_get", {"address": sender}
                        )
                    else:  # malformed frame: structured error, live socket
                        raw = client.send_raw_line(b'{"jsonrpc":"2.0","id":')
                        response = json.loads(raw)
                        assert response["error"]["code"] == -32700
                except RpcClientError as exc:
                    if _known_reason(exc):
                        local["rejected"] += 1
                    else:
                        local["errors"] += 1
                if FULL:
                    time.sleep(rng.uniform(0.0, 0.05))
        except BaseException as exc:  # noqa: BLE001 — any drop is a failure
            failures.append(f"client {index}: {type(exc).__name__}: {exc}")
        finally:
            try:
                client.close()
            except OSError:
                pass
        with stats_lock:
            for key, value in local.items():
                totals[key] += value

    threads = [
        threading.Thread(target=client_session, args=(index,), daemon=True)
        for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    if FULL:
        threading.stack_size(0)  # restore the default for later tests
    barrier.wait()
    time.sleep(SOAK_SECONDS)
    stop.set()
    for thread in threads:
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "client thread hung (dropped response?)"
    node.stop_auto_mine()

    try:
        assert not failures, failures[:5]
        assert totals["errors"] == 0, totals
        assert totals["requests"] >= CLIENTS  # everyone got at least one reply
        assert totals["accepted"] > 0

        # Watermarks held for the whole run: the pool's lifetime accounting
        # balances, and nothing ever exceeded the high watermark.
        for lane in fabric.lanes:
            pool = lane.pool
            assert len(pool) <= pool.config.high_watermark
            stats = pool.stats
            assert stats["submitted"] == (
                stats["drained"] + stats["evicted"] + stats["expired"] + len(pool)
                + stats["replaced"]
            )

        # Final structural laws, then drain to empty.
        fabric.mine_until_pools_drain()
        for lane in fabric.lanes:
            assert len(lane.pool) == 0
            assert lane.store.balances.get(ESCROW_ACCOUNT, 0) == 0
            for sender, nonce in lane.store.pool:
                raise AssertionError(f"stranded entry {(sender, nonce)}")
        assert sum(lane.total_supply() for lane in fabric.lanes) == supply0

        # The service metered (nearly) every call it answered — malformed
        # frames never reach a method, hence the small allowance.
        metrics = dispatcher._rpc_metrics()
        assert sum(row["calls"] for row in metrics.values()) >= (
            totals["requests"] * 0.9
        )
        assert metrics["submit_tx"]["calls"] > 0
    finally:
        server.close()
        fabric.close()
