"""Schnorr signatures and the signature-enforcing chain mode."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain, Transaction, WEI_PER_ETH
from repro.crypto.schnorr import Signature, SigningKey, VerifyingKey


class TestSchnorr:
    @pytest.fixture(scope="class")
    def keypair(self, rng):
        return SigningKey.generate(rng=rng)

    def test_sign_verify_roundtrip(self, keypair, rng):
        message = b"audit contract negotiation"
        signature = keypair.sign(message, rng=rng)
        assert keypair.public.verify(message, signature)

    def test_wrong_message_rejected(self, keypair, rng):
        signature = keypair.sign(b"message A", rng=rng)
        assert not keypair.public.verify(b"message B", signature)

    def test_wrong_key_rejected(self, keypair, rng):
        other = SigningKey.generate(rng=rng)
        signature = keypair.sign(b"msg", rng=rng)
        assert not other.public.verify(b"msg", signature)

    def test_tampered_signature_rejected(self, keypair, rng):
        signature = keypair.sign(b"msg", rng=rng)
        tampered = dataclasses.replace(signature, s=(signature.s + 1))
        assert not keypair.public.verify(b"msg", tampered)

    def test_signature_serialization(self, keypair, rng):
        signature = keypair.sign(b"msg", rng=rng)
        blob = signature.to_bytes()
        assert len(blob) == 64
        assert Signature.from_bytes(blob) == signature

    def test_verifying_key_serialization(self, keypair):
        blob = keypair.public.to_bytes()
        restored = VerifyingKey.from_bytes(blob)
        assert restored.point == keypair.public.point
        assert restored.address() == keypair.public.address()

    def test_fresh_nonce_per_signature(self, keypair, rng):
        s1 = keypair.sign(b"msg", rng=rng)
        s2 = keypair.sign(b"msg", rng=rng)
        assert s1.nonce_point != s2.nonce_point  # nonce reuse leaks the key

    @settings(max_examples=5, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_arbitrary_messages(self, message):
        key = SigningKey(secret=123456789)
        assert key.public.verify(message, key.sign(message))

    def test_malformed_signature_bytes(self):
        with pytest.raises(ValueError):
            Signature.from_bytes(b"\x00" * 63)


def _signed_tx(chain, signing_key, address, to, value=0, method=None, args=()):
    tx = Transaction(
        sender=address, to=to, method=method, args=args, value=value,
        nonce=chain.nonce_of(address), public_key=signing_key.public.to_bytes(),
    )
    tx.signature = signing_key.sign(tx.signing_payload()).to_bytes()
    return tx


class TestSignedChain:
    @pytest.fixture()
    def signed_chain(self, rng):
        chain = Blockchain(require_signatures=True)
        alice_key = SigningKey.generate(rng=rng)
        alice = chain.register_signer(alice_key.public.to_bytes(), balance_eth=5.0)
        bob_key = SigningKey.generate(rng=rng)
        bob = chain.register_signer(bob_key.public.to_bytes(), balance_eth=1.0)
        return chain, alice_key, alice, bob_key, bob

    def test_signed_transfer_succeeds(self, signed_chain):
        chain, alice_key, alice, _, bob = signed_chain
        tx = _signed_tx(chain, alice_key, alice, bob, value=WEI_PER_ETH)
        receipt = chain.transact(tx)
        assert receipt.success, receipt.error
        assert chain.balance_of_eth(bob) == 2.0

    def test_unsigned_transfer_rejected(self, signed_chain):
        chain, _, alice, _, bob = signed_chain
        receipt = chain.transact(
            Transaction(sender=alice, to=bob, value=WEI_PER_ETH)
        )
        assert not receipt.success
        assert "authentication" in receipt.error
        assert chain.balance_of_eth(bob) == 1.0

    def test_forged_sender_rejected(self, signed_chain):
        """Bob signs, but claims to be Alice: must fail."""
        chain, _, alice, bob_key, bob = signed_chain
        tx = Transaction(
            sender=alice, to=bob, value=WEI_PER_ETH,
            nonce=chain.nonce_of(alice),
            public_key=bob_key.public.to_bytes(),
        )
        tx.signature = bob_key.sign(tx.signing_payload()).to_bytes()
        receipt = chain.transact(tx)
        assert not receipt.success
        assert "does not match" in receipt.error

    def test_replay_rejected_by_nonce(self, signed_chain):
        chain, alice_key, alice, _, bob = signed_chain
        tx = _signed_tx(chain, alice_key, alice, bob, value=WEI_PER_ETH // 10)
        assert chain.transact(tx).success
        replay = chain.transact(tx)  # identical bytes, stale nonce
        assert not replay.success
        assert "nonce" in replay.error

    def test_tampered_value_rejected(self, signed_chain):
        chain, alice_key, alice, _, bob = signed_chain
        tx = _signed_tx(chain, alice_key, alice, bob, value=WEI_PER_ETH // 10)
        tx.value = WEI_PER_ETH  # mutate after signing
        receipt = chain.transact(tx)
        assert not receipt.success

    def test_unknown_account_rejected(self, signed_chain, rng):
        chain, _, _, _, bob = signed_chain
        mallory_key = SigningKey.generate(rng=rng)
        tx = Transaction(
            sender="0x" + "ab" * 20, to=bob, value=1,
            public_key=mallory_key.public.to_bytes(),
        )
        tx.signature = mallory_key.sign(tx.signing_payload()).to_bytes()
        receipt = chain.transact(tx)
        assert not receipt.success

    def test_scheduler_exempt(self, signed_chain):
        """Scheduled (system) calls keep working in strict mode."""
        chain, alice_key, alice, _, _ = signed_chain
        from repro.chain.blockchain import Contract

        class Ping(Contract):
            count = 0

            def ping(self, ctx):
                Ping.count += 1

        contract = Ping()
        address = chain.deploy(contract, deployer=alice)
        chain.schedule_call(address, "ping", delay=1.0)
        chain.mine_block()
        assert Ping.count == 1

    def test_permissive_mode_unchanged(self, rng):
        """Default chains accept unsigned transactions as before."""
        chain = Blockchain()
        a = chain.create_account(1.0)
        b = chain.create_account(0.0)
        assert chain.transact(Transaction(sender=a, to=b, value=10**17)).success
