"""Light-client replay (public verifiability) and the contract factory."""

from __future__ import annotations

import pytest

from repro.chain import (
    Blockchain,
    ContractTerms,
    Transaction,
    WEI_PER_ETH,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.chain.contracts.factory import AuditContractFactory, report_round_outcomes
from repro.chain.contracts.reputation import ReputationRegistry
from repro.chain.light_client import LightClient, audit_the_auditor, export_trail
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon


@pytest.fixture(scope="module")
def finished_contract(rng):
    params = ProtocolParams(s=5, k=3)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(b"\x91" * 600)
    provider = StorageProvider(rng=rng)
    chain = Blockchain()
    terms = ContractTerms(num_audits=2, audit_interval=60.0, response_window=20.0)
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"lc"), params
    )
    contract = run_contract_to_completion(chain, deployment)
    return params, contract


class TestLightClient:
    def test_replay_agrees_with_contract(self, finished_contract):
        params, contract = finished_contract
        report = audit_the_auditor(contract, params)
        assert report.rounds_checked == 2
        assert report.consistent

    def test_trail_export_is_pure_bytes(self, finished_contract):
        _, contract = finished_contract
        trail = export_trail(contract)
        assert all(isinstance(r.challenge_bytes, bytes) for r in trail)
        assert all(len(r.challenge_bytes) == 48 for r in trail)
        assert all(len(r.proof_bytes) == 288 for r in trail)

    def test_forged_verdict_detected(self, finished_contract):
        """A trail claiming PASS for a garbage proof must be flagged."""
        import dataclasses

        params, contract = finished_contract
        trail = export_trail(contract)
        garbage = bytearray(288)
        garbage[0] = 0x80  # sigma = infinity
        garbage[64] = 0x80  # psi = infinity
        forged = [
            dataclasses.replace(
                trail[0], proof_bytes=bytes(garbage), claimed_verdict=True
            )
        ] + trail[1:]
        client = LightClient(
            public_key_bytes=contract.public_key.to_bytes(),
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        report = client.replay(forged)
        assert not report.consistent
        assert report.disagreements == [0]

    def test_missing_proof_counts_as_fail(self, finished_contract):
        import dataclasses

        params, contract = finished_contract
        trail = export_trail(contract)
        silent = [dataclasses.replace(trail[0], proof_bytes=None,
                                      claimed_verdict=False)]
        client = LightClient(
            public_key_bytes=contract.public_key.to_bytes(),
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        report = client.replay(silent)
        assert report.consistent  # fail claimed, fail recomputed

    def test_third_party_needs_only_public_material(self, finished_contract):
        """The client is constructed from bytes alone — no objects shared
        with the contract (public verifiability in the strict sense)."""
        params, contract = finished_contract
        blob = contract.public_key.to_bytes()
        client = LightClient(
            public_key_bytes=bytes(blob),  # a fresh copy
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        assert client.replay(export_trail(contract)).consistent


class TestFactory:
    def test_factory_deploys_and_wires_reputation(self, rng):
        params = ProtocolParams(s=5, k=3)
        chain = Blockchain()
        operator = chain.create_account(5.0)
        registry = ReputationRegistry(min_stake_wei=WEI_PER_ETH)
        registry_address = chain.deploy(registry, deployer=operator)
        factory = AuditContractFactory(
            beacon=HashChainBeacon(b"factory"),
            params=params,
            registry_address=registry_address,
        )
        factory_address = chain.deploy(factory, deployer=operator)

        owner_account = chain.create_account(10.0)
        provider_account = chain.create_account(10.0)
        chain.transact(
            Transaction(sender=provider_account, to=registry_address,
                        method="register", value=WEI_PER_ETH)
        )
        terms = ContractTerms(num_audits=2, audit_interval=60.0,
                              response_window=20.0)
        receipt = chain.transact(
            Transaction(sender=owner_account, to=factory_address,
                        method="create_contract",
                        args=(provider_account, terms))
        )
        assert receipt.success
        contract_address = receipt.return_value
        # The factory auto-authorized the new contract as a reporter.
        assert contract_address in registry.reporters
        assert chain.call(factory_address, "contracts_for_provider",
                          provider_account) == [contract_address]
        assert chain.call(factory_address, "contracts_for_owner",
                          owner_account) == [contract_address]

    def test_outcome_reporting_updates_reputation(self, rng):
        params = ProtocolParams(s=5, k=3)
        chain = Blockchain()
        operator = chain.create_account(5.0)
        registry = ReputationRegistry(min_stake_wei=WEI_PER_ETH)
        registry_address = chain.deploy(registry, deployer=operator)
        factory = AuditContractFactory(
            beacon=HashChainBeacon(b"factory2"),
            params=params,
            registry_address=registry_address,
        )
        chain.deploy(factory, deployer=operator)

        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x13" * 500)
        provider_role = StorageProvider(rng=rng)
        terms = ContractTerms(num_audits=2, audit_interval=60.0,
                              response_window=20.0)
        deployment = deploy_audit_contract(
            chain, package, provider_role, terms,
            HashChainBeacon(b"factory2"), params,
        )
        # Register the provider account and adopt the contract into the
        # factory's book-keeping + reporter set.
        chain.transact(
            Transaction(sender=deployment.provider_account,
                        to=registry_address, method="register",
                        value=WEI_PER_ETH)
        )
        from repro.chain.contracts.factory import FactoryRecord

        factory.deployed.append(
            FactoryRecord(
                contract_address=deployment.contract_address,
                owner=deployment.owner_account,
                provider=deployment.provider_account,
            )
        )
        registry.reporters.add(deployment.contract_address)
        contract = run_contract_to_completion(chain, deployment)
        sent = report_round_outcomes(chain, factory, registry_address)
        assert sent == 2
        record = registry.providers[deployment.provider_account]
        assert record.passes == 2
        assert record.score > 0.5
        # Idempotent: nothing new to report.
        assert report_round_outcomes(chain, factory, registry_address) == 0
