"""Pluggable state persistence: WAL replay must be bit-identical.

Acceptance properties (ISSUE 4 tentpole, part 1):

* a chain's canonical ``state_hash()`` survives the round trip through
  the file-backed WAL store — including a crash *between* ``transact``
  and ``mine_block`` (the mid-epoch case),
* a recovered chain is functionally live: agents, scheduled calls and
  contracts keep working after reopen,
* snapshots fold the log without changing the hash, and a torn final WAL
  frame (killed mid-append) is ignored rather than corrupting recovery.
"""

from __future__ import annotations

import pickle
import random
import struct

import pytest

from repro.chain import (
    Blockchain,
    Contract,
    ContractTerms,
    MemoryStateStore,
    Transaction,
    WalStateStore,
    deploy_audit_contract,
    run_contract_to_completion,
)


class Pinger(Contract):
    """Module-level (hence picklable) contract for scheduler tests."""

    def __init__(self):
        super().__init__()
        self.pings = 0

    def ping(self, ctx):
        self.pings += 1
from repro.chain.contracts.audit_contract import State
from repro.chain.state import canonical_state_digest
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon

TERMS = ContractTerms(num_audits=2, audit_interval=30.0, response_window=15.0)


def _fresh_system(params, seed=0x57A7E):
    rng = random.Random(seed)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(bytes(rng.randrange(256) for _ in range(800)))
    provider = StorageProvider(rng=rng)
    provider.accept(package)
    return package, provider


class TestCanonicalEncoding:
    def test_digest_is_deterministic_and_order_insensitive(self):
        assert canonical_state_digest({"a": 1, "b": 2}) == canonical_state_digest(
            {"b": 2, "a": 1}
        )
        assert canonical_state_digest([1, 2]) != canonical_state_digest([2, 1])

    def test_digest_distinguishes_types(self):
        assert canonical_state_digest(1) != canonical_state_digest(True)
        assert canonical_state_digest(b"x") != canonical_state_digest("x")
        assert canonical_state_digest(1) != canonical_state_digest(1.0)

    def test_slots_objects_are_encodable(self):
        from repro.crypto.bn254 import G1Point

        point = G1Point.generator()
        assert canonical_state_digest(point) == canonical_state_digest(
            G1Point.generator()
        )

    def test_memory_store_hash_tracks_mutations(self):
        chain = Blockchain()
        before = chain.state_hash()
        chain.create_account(1.0, label="alice")
        assert chain.state_hash() != before
        # Same traffic on a fresh chain reproduces the same hash.
        other = Blockchain()
        other.create_account(1.0, label="alice")
        assert other.state_hash() == chain.state_hash()


class TestWalRoundTrip:
    def test_full_contract_run_recovers_bit_identical(self, tmp_path, params):
        package, provider = _fresh_system(params)
        chain = Blockchain.open(tmp_path / "chain")
        deployment = deploy_audit_contract(
            chain, package, provider, TERMS, HashChainBeacon(b"wal"), params
        )
        contract = run_contract_to_completion(chain, deployment)
        assert contract.passes == TERMS.num_audits
        live_hash = chain.state_hash()
        chain.close()

        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == live_hash
        # Receipts, balances and the schedule all made the trip.
        assert recovered.total_supply() == chain.total_supply()
        assert len(recovered.blocks) == len(chain.blocks)
        replayed = recovered.contract_at(deployment.contract_address)
        assert replayed.state is State.CLOSED
        assert replayed.passes == contract.passes

    def test_crash_between_transact_and_mine_block(self, tmp_path, params):
        """The mid-epoch crash: committed txs in the *pending* block survive."""
        package, provider = _fresh_system(params)
        chain = Blockchain.open(tmp_path / "chain")
        deployment = deploy_audit_contract(
            chain, package, provider, TERMS, HashChainBeacon(b"crash"), params
        )
        # Advance until the first challenge is open, then answer it but
        # crash before the block that would trigger verification.
        agent = deployment.provider_agent
        for _ in range(40):
            chain.mine_block()
            if agent.pending_challenge() is not None:
                break
        challenge = agent.pending_challenge()
        assert challenge is not None
        proof = provider.respond(package.name, challenge)
        agent.submit(proof)  # a transact with NO mine_block after it
        mid_epoch_hash = chain.state_hash()
        # Simulated crash: drop the process state without closing cleanly.
        del chain

        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == mid_epoch_hash
        # The submitted proof is in the recovered pending block.
        assert recovered.blocks[-1].receipts, "pending tx lost in replay"
        # And the recovered chain is live: drive the contract to the end.
        recovered_deployment = deployment
        recovered_deployment.provider_agent.chain = recovered
        recovered_deployment.provider_agent.provider = provider
        contract = run_contract_to_completion(recovered, recovered_deployment)
        assert contract.state is State.CLOSED
        assert contract.fails == 0

    def test_snapshot_folds_wal_without_changing_hash(self, tmp_path, params):
        package, provider = _fresh_system(params)
        chain = Blockchain.open(tmp_path / "chain")
        deployment = deploy_audit_contract(
            chain, package, provider, TERMS, HashChainBeacon(b"snap"), params
        )
        chain.mine_block()
        chain.snapshot()
        assert (tmp_path / "chain" / "snapshot.pkl").exists()
        assert (tmp_path / "chain" / "wal.log").stat().st_size == 0
        pre_hash = chain.state_hash()
        # Post-snapshot traffic lands in the (fresh) WAL tail.
        chain.mine_block()
        chain.mine_block()
        post_hash = chain.state_hash()
        assert post_hash != pre_hash
        chain.close()
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == post_hash
        assert recovered.contract_at(deployment.contract_address) is not None

    def test_torn_wal_frame_is_ignored(self, tmp_path):
        chain = Blockchain.open(tmp_path / "chain")
        chain.create_account(2.0, label="alice")
        committed_hash = chain.state_hash()
        chain.close()
        # A crash mid-append leaves a partial frame at the tail.
        with open(tmp_path / "chain" / "wal.log", "ab") as handle:
            handle.write(b"\x00\x00\x10\x00partial-frame")
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == committed_hash

    def test_recovers_wal_frames_from_pre_fee_market_builds(self, tmp_path):
        """Frames pickled before the mempool landed lack the fee-market
        fields entirely (dataclass defaults live on the class, not in the
        pickled ``__dict__``); replaying such a directory must not crash
        and must reproduce the same ledger state."""
        chain = Blockchain.open(tmp_path / "chain")
        alice = chain.create_account(2.0, label="alice")
        bob = chain.create_account(1.0, label="bob")
        chain.transact(
            Transaction(sender=alice, to=bob, value=10**15, gas_limit=30_000)
        )
        chain.mine_block()
        committed_hash = chain.state_hash()
        chain.close()
        # Rewrite every frame as the previous build would have pickled it.
        header = struct.Struct(">I")
        wal_path = tmp_path / "chain" / "wal.log"
        data = wal_path.read_bytes()
        frames = []
        offset = 0
        while offset < len(data):
            (length,) = header.unpack_from(data, offset)
            offset += header.size
            record = pickle.loads(data[offset : offset + length])
            offset += length
            for name in ("base_fee_wei", "burned", "pool_seq",
                         "mined_nonces", "pool_add", "pool_remove"):
                record.__dict__.pop(name, None)
            frame = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            frames.append(header.pack(len(frame)) + frame)
        wal_path.write_bytes(b"".join(frames))
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == committed_hash

    def test_writes_after_torn_tail_recovery_survive_the_next_reopen(
        self, tmp_path
    ):
        """The torn tail must be truncated on reopen: records appended
        after a crash recovery may not hide behind the garbage frame."""
        chain = Blockchain.open(tmp_path / "chain")
        chain.create_account(2.0, label="alice")
        chain.close()
        with open(tmp_path / "chain" / "wal.log", "ab") as handle:
            handle.write(b"\x00\x00\x20\x00torn")
        survivor = Blockchain.open(tmp_path / "chain")
        survivor.create_account(1.0, label="bob")
        survivor.mine_block()
        post_recovery_hash = survivor.state_hash()
        survivor.close()
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == post_recovery_hash

    def test_failed_deploy_does_not_disable_wal_logging(self, tmp_path):
        """An exception inside a mutating entry point must still commit:
        otherwise the store's scope depth desyncs and every later record
        is silently dropped."""
        from repro.chain import Contract
        from repro.chain.transaction import RevertError

        chain = Blockchain.open(tmp_path / "chain")
        pauper = chain.create_account(0.0, label="pauper")
        with pytest.raises(RevertError):
            chain.deploy(Contract(), deployer=pauper, deposit_bytes=10_000)
        # Logging keeps working after the failed deploy.
        chain.create_account(5.0, label="after")
        chain.mine_block()
        live = chain.state_hash()
        chain.close()
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == live

    def test_crash_between_schedule_pop_and_call_refires_the_call(
        self, tmp_path, params
    ):
        """The scheduled-call pop and its transaction are one atomic WAL
        unit: recovery never loses a popped-but-unexecuted call."""
        chain = Blockchain.open(tmp_path / "chain")
        operator = chain.create_account(1.0, label="op")
        contract = Pinger()
        address = chain.deploy(contract, deployer=operator)
        chain.schedule_call(address, "ping", delay=10.0)
        pre_fire_hash = chain.state_hash()
        chain.mine_block()  # fires the call (pop + tx in one record set)
        assert contract.pings == 1
        chain.close()
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() != pre_fire_hash
        assert recovered.contract_at(address).pings == 1
        assert not recovered._scheduled

    def test_plain_transfers_and_signer_accounts_round_trip(self, tmp_path):
        from repro.crypto.schnorr import SigningKey

        chain = Blockchain.open(tmp_path / "chain")
        alice = chain.create_account(3.0, label="alice")
        bob = chain.create_account(0.0, label="bob")
        signer = SigningKey.generate(random.Random(0x51))
        chain.register_signer(signer.public.to_bytes(), balance_eth=1.0)
        chain.transact(Transaction(sender=alice, to=bob, value=10**18))
        chain.mine_block()
        live = chain.state_hash()
        chain.close()
        recovered = Blockchain.open(tmp_path / "chain")
        assert recovered.state_hash() == live
        assert recovered.balance_of(bob) == 10**18

    def test_wal_store_is_explicit_about_replay(self, tmp_path):
        chain = Blockchain.open(tmp_path / "chain")
        chain.create_account(1.0)
        chain.mine_block()
        chain.close()
        store = WalStateStore(tmp_path / "chain")
        assert store.replayed_records > 0
        store.close()

    def test_default_store_is_memory(self):
        assert isinstance(Blockchain().store, MemoryStateStore)


class TestStoreIsolation:
    def test_two_directories_do_not_interfere(self, tmp_path):
        a = Blockchain.open(tmp_path / "a")
        b = Blockchain.open(tmp_path / "b")
        a.create_account(1.0, label="only-a")
        assert a.state_hash() != b.state_hash()
        a.close(), b.close()

    def test_reopen_empty_directory_matches_fresh_chain(self, tmp_path):
        wal = Blockchain.open(tmp_path / "chain")
        memory = Blockchain()
        assert wal.state_hash() == memory.state_hash()
        wal.close()
