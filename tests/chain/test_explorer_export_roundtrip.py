"""Explorer JSON export round-trip over a sharded fabric run.

``export_json`` is the explorer's machine-readable surface; these tests
parse it back and require the per-lane gas sections to decompose *exactly*
to the fabric totals — the accounting invariant the lane summaries promise
— plus stable, JSON-clean structure (sorted keys, serializable types).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.chain import ChainExplorer, ShardedChainFabric
from repro.core import DataOwner, ProtocolParams
from repro.engine import AuditExecutor, AuditInstance
from repro.randomness import HashChainBeacon
from repro.rollup import CrossShardAggregator
from repro.sim.workloads import archive_file

LANES = 2
FLEET = 4


@pytest.fixture(scope="module")
def fabric_world():
    params = ProtocolParams(s=4, k=3)
    rng = random.Random(21)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(FLEET):
        package = owner.prepare(
            archive_file(500, tag=f"exp-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="exp"))
    fabric = ShardedChainFabric(num_lanes=LANES)
    with AuditExecutor(instances, workers=1) as executor:
        aggregator = CrossShardAggregator(
            fabric, executor, params, HashChainBeacon(b"export"), rng=rng
        )
        aggregator.run(2)
    explorer = ChainExplorer(fabric)
    payload = json.loads(explorer.export_json())
    return fabric, explorer, payload


def test_export_parses_and_has_lane_section(fabric_world):
    _, _, payload = fabric_world
    assert payload["height"] >= 0
    assert len(payload["lanes"]) == LANES
    assert [lane["lane"] for lane in payload["lanes"]] == list(range(LANES))


def test_lane_gas_decomposes_exactly_to_fabric_total(fabric_world):
    fabric, _, payload = fabric_world
    lane_gas = [lane["gas_used"] for lane in payload["lanes"]]
    assert sum(lane_gas) == fabric.total_gas_used()
    assert lane_gas == fabric.lane_gas_totals()


def test_lane_bytes_and_fees_decompose_exactly(fabric_world):
    fabric, _, payload = fabric_world
    assert sum(l["chain_bytes"] for l in payload["lanes"]) == payload[
        "chain_bytes"
    ]
    assert payload["chain_bytes"] == fabric.chain_bytes()
    assert sum(l["fee_sink_wei"] for l in payload["lanes"]) == payload[
        "fee_sink_wei"
    ]


def test_lane_transactions_decompose_to_explorer_count(fabric_world):
    _, explorer, payload = fabric_world
    assert (
        sum(lane["transactions"] for lane in payload["lanes"])
        == payload["transactions"]
        == explorer.transaction_count()
    )


def test_checkpoint_rows_cover_every_settled_epoch(fabric_world):
    _, _, payload = fabric_world
    checkpoints = payload["checkpoints"]
    assert len(checkpoints) == 2 * LANES  # 2 epochs x one commitment per lane
    for row in checkpoints:
        assert row["accepted"] + row["rejected"] == row["leaves"]
        assert row["lane"] in range(LANES)
    # checkpoint gas rows sit inside their lane's gas meter
    by_lane: dict[int, int] = {}
    for row in checkpoints:
        by_lane[row["lane"]] = by_lane.get(row["lane"], 0) + row["gas_used"]
    for lane_row in payload["lanes"]:
        assert by_lane.get(lane_row["lane"], 0) <= lane_row["gas_used"]


def test_export_is_stable_and_sorted(fabric_world):
    _, explorer, payload = fabric_world
    again = explorer.export_json()
    assert json.loads(again) == payload
    assert again == json.dumps(payload, indent=2, sort_keys=True)


def test_event_counts_match_lane_event_streams(fabric_world):
    fabric, _, payload = fabric_world
    total_events = sum(len(lane.events) for lane in fabric.lanes)
    assert sum(payload["events"].values()) == total_events
