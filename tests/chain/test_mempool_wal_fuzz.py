"""Torn-write sweep over the WAL with a live mempool in the frame stream.

Same discipline as ``test_wal_truncation_fuzz`` — truncate the log,
reopen, compare against the largest whole-frame prefix — but the
reference workload now drives the fee-market pool through every record
kind it persists: submissions, replace-by-fee, watermark eviction, age
expiry and priority drains.  Recovery is checked on **two** digests per
cut: ``state_hash`` (ledger) and ``pool_hash`` (admission queue), so a
crash can neither resurrect an evicted transaction nor drop a pending
one.  Pool frames are much larger than ledger frames, so the byte sweep
samples mid-frame offsets instead of visiting every byte.
"""

from __future__ import annotations

import shutil
import struct

import pytest

from repro.chain import Blockchain, Transaction
from repro.chain.mempool import GasSinkContract, MempoolConfig, MempoolRejection
from repro.chain.state import WalStateStore

POOL = dict(
    high_watermark=8, low_watermark=4, max_per_sender=8, max_age_seconds=30.0
)


def _pool_tx(sink, sender, *, gas=100_000, tip=0.5, max_fee=3.0, note="fuzz",
             nonce=None):
    return Transaction(
        sender=sender, to=sink, method="consume", args=(gas - 25_000, note),
        gas_limit=gas, max_fee_gwei=max_fee, priority_fee_gwei=tip,
        nonce=nonce,
    )


def _build_reference(directory) -> Blockchain:
    """A pooled chain touching every mempool record the WAL persists."""
    chain = Blockchain.open(
        directory, block_gas_limit=400_000, mempool=MempoolConfig(**POOL)
    )
    deployer = chain.create_account(10.0, label="deployer")
    sink = chain.deploy(GasSinkContract(), deployer=deployer)
    senders = [chain.create_account(50.0, label=f"fuzz-{i}") for i in range(3)]
    a, b, c = senders

    # Plain submissions + a priority drain.
    chain.submit(_pool_tx(sink, a, tip=2.0))
    chain.submit(_pool_tx(sink, b, tip=1.0))
    chain.mine_block()

    # Replace-by-fee on a pending slot.
    entry = chain.submit(_pool_tx(sink, a, tip=0.4, note="rbf-victim"))
    chain.submit(
        _pool_tx(sink, a, tip=1.2, max_fee=6.0, note="rbf-winner",
                 nonce=entry.tx.nonce),
        replace=True,
    )

    # Flood past the high watermark: cheap tail evicted for a rich bid.
    for index in range(7):
        try:
            chain.submit(_pool_tx(sink, b, tip=0.1, note=f"cheap-{index}"))
        except MempoolRejection:
            pass
    chain.submit(_pool_tx(sink, c, tip=5.0, max_fee=9.0, note="rich"))
    chain.mine_block()

    # Age out a backlog: near-block-size transactions drain one per block
    # (15s each), so the tail outlives the 30s age budget and expires.
    for index in range(4):
        chain.submit(
            _pool_tx(sink, a, gas=380_000, tip=0.05, note=f"slow-{index}")
        )
    for _ in range(4):
        chain.mine_block()
    chain.submit(_pool_tx(sink, c, tip=0.8, note="left-pending"))
    return chain


def _frame_boundaries(wal_bytes: bytes) -> list[int]:
    """Byte offsets after each complete frame (0 = empty prefix)."""
    header = struct.Struct(">I")
    boundaries = [0]
    offset = 0
    while offset + header.size <= len(wal_bytes):
        (length,) = header.unpack_from(wal_bytes, offset)
        if offset + header.size + length > len(wal_bytes):
            break
        offset += header.size + length
        boundaries.append(offset)
    assert boundaries[-1] == len(wal_bytes), "reference WAL must be untorn"
    return boundaries


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    base = tmp_path_factory.mktemp("mempool-wal-fuzz")
    ref_dir = base / "reference"
    chain = _build_reference(ref_dir)
    final = (chain.state_hash(), chain.store.pool_hash())
    stats = dict(chain.pool.stats)
    chain.close()
    wal_bytes = (ref_dir / "wal.log").read_bytes()
    boundaries = _frame_boundaries(wal_bytes)
    prefix = {}
    for index, boundary in enumerate(boundaries):
        prefix_dir = base / f"prefix-{index}"
        prefix_dir.mkdir()
        (prefix_dir / "wal.log").write_bytes(wal_bytes[:boundary])
        store = WalStateStore(prefix_dir)
        prefix[boundary] = (store.state_hash(), store.pool_hash())
        store.close()
    assert prefix[boundaries[-1]] == final
    return base, wal_bytes, boundaries, prefix, stats


def test_reference_workload_hits_every_pool_path(reference):
    """The sweep only proves something if the WAL really saw the churn."""
    _, _, boundaries, prefix, stats = reference
    assert stats["drained"] > 0
    assert stats["replaced"] > 0
    assert stats["evicted"] > 0
    assert stats["expired"] > 0
    assert len(boundaries) >= 12
    # The pool digest changes across the log (pending state is in frames).
    assert len({pool for _, pool in prefix.values()}) > 3


def _cut_offsets(wal_bytes: bytes, boundaries: list[int]) -> list[int]:
    """Every boundary +/-1, plus sampled mid-frame tears."""
    offsets = {
        cut
        for boundary in boundaries
        for cut in (boundary - 1, boundary, boundary + 1)
    }
    offsets.update(range(0, len(wal_bytes) + 1, 61))
    offsets.add(len(wal_bytes))
    return sorted(cut for cut in offsets if 0 <= cut <= len(wal_bytes))


def test_recovery_matches_whole_frame_prefix_on_both_digests(reference):
    base, wal_bytes, boundaries, prefix, _ = reference
    work = base / "cut"
    for offset in _cut_offsets(wal_bytes, boundaries):
        floor = max(b for b in boundaries if b <= offset)
        if work.exists():
            shutil.rmtree(work)
        work.mkdir()
        (work / "wal.log").write_bytes(wal_bytes[:offset])
        store = WalStateStore(work)
        assert store.state_hash() == prefix[floor][0], (
            f"ledger state at cut {offset} != {floor}-byte prefix"
        )
        assert store.pool_hash() == prefix[floor][1], (
            f"pool state at cut {offset} != {floor}-byte prefix"
        )
        assert store.wal_size() == floor  # torn tail cleanly cut
        store.close()


def test_pool_keeps_working_after_any_tear(reference):
    """Reopen at a tear, submit + mine + reopen again: still deterministic."""
    base, wal_bytes, boundaries, _, _ = reference
    offsets = sorted(
        {
            cut
            for boundary in boundaries[-6:]
            for cut in (boundary - 1, boundary)
            if 0 <= cut <= len(wal_bytes)
        }
    )
    for index, offset in enumerate(offsets):
        work = base / f"resume-{index}"
        work.mkdir()
        (work / "wal.log").write_bytes(wal_bytes[:offset])
        chain = Blockchain.open(
            work, block_gas_limit=400_000, mempool=MempoolConfig(**POOL)
        )
        survivor = chain.create_account(5.0, label="post-crash")
        chain.submit(
            Transaction(sender=survivor, to=survivor, value=0,
                        gas_limit=30_000, max_fee_gwei=4.0,
                        priority_fee_gwei=1.0)
        )
        chain.mine_block()
        expected = (chain.state_hash(), chain.store.pool_hash())
        chain.close()
        again = Blockchain.open(
            work, block_gas_limit=400_000, mempool=MempoolConfig(**POOL)
        )
        assert (again.state_hash(), again.store.pool_hash()) == expected
        again.close()
