"""CLI subcommands and the chain explorer."""

from __future__ import annotations

import json

import pytest

from repro.chain import (
    Blockchain,
    ContractTerms,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.chain.explorer import ChainExplorer
from repro.cli import main
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon


class TestCli:
    def test_keygen(self, tmp_path, capsys):
        out = tmp_path / "pk.bin"
        assert main(["keygen", "--s", "8", "--out", str(out)]) == 0
        assert out.stat().st_size > 8 * 32
        captured = capsys.readouterr().out
        assert "one-time recording cost" in captured

    def test_keygen_no_privacy_smaller(self, tmp_path):
        with_privacy = tmp_path / "a.bin"
        without = tmp_path / "b.bin"
        main(["keygen", "--s", "8", "--out", str(with_privacy)])
        main(["keygen", "--s", "8", "--no-privacy", "--out", str(without)])
        assert with_privacy.stat().st_size == without.stat().st_size + 192

    def test_prepare(self, tmp_path, capsys):
        target = tmp_path / "archive.bin"
        target.write_bytes(b"\x42" * 4000)
        assert main(["prepare", "--file", str(target), "--s", "5", "--k", "3"]) == 0
        captured = capsys.readouterr().out
        assert "chunks" in captured

    def test_audit_honest(self, capsys):
        assert main(
            ["audit", "--size", "600", "--rounds", "2", "--s", "5", "--k", "3"]
        ) == 0
        captured = capsys.readouterr().out
        assert "2 passes, 0 fails" in captured

    def test_audit_with_drop(self, capsys):
        main([
            "audit", "--size", "600", "--rounds", "2", "--s", "5", "--k", "3",
            "--drop-after", "1",
        ])
        captured = capsys.readouterr().out
        assert "1 passes, 1 fails" in captured

    def test_attack(self, capsys):
        assert main(["attack", "--s", "4", "--k", "3"]) == 0
        captured = capsys.readouterr().out
        assert "recovered 3/3 chunks" in captured

    def test_models(self, capsys):
        assert main(["models", "--users", "5000"]) == 0
        captured = capsys.readouterr().out
        assert "tx/s" in captured
        assert "users/provider" in captured

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestExplorer:
    @pytest.fixture(scope="class")
    def explored_chain(self, rng):
        params = ProtocolParams(s=5, k=3)
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(b"\x77" * 700)
        provider = StorageProvider(rng=rng)
        chain = Blockchain()
        terms = ContractTerms(num_audits=2, audit_interval=60.0, response_window=20.0)
        deployment = deploy_audit_contract(
            chain, package, provider, terms, HashChainBeacon(b"explorer"), params
        )
        run_contract_to_completion(chain, deployment)
        return chain

    def test_heights_and_counts(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        assert explorer.height() >= 2
        assert explorer.transaction_count() >= 4  # negotiate/ack/2 freezes...

    def test_contract_summaries(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        summaries = explorer.audit_contracts()
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.state == "closed"
        assert summary.passes == 2
        assert summary.trail_bytes == 2 * (48 + 288)
        assert explorer.total_audit_gas() == summary.total_gas

    def test_event_counts(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        counts = explorer.event_counts()
        assert counts["pass"] == 2
        assert counts["challenged"] == 2
        assert counts["negotiated"] == 1

    def test_event_log_filter(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        passes = explorer.event_log("pass")
        assert len(passes) == 2
        assert all(e["name"] == "pass" for e in passes)

    def test_json_export_roundtrips(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        payload = json.loads(explorer.export_json())
        assert payload["audit_contracts"][0]["passes"] == 2
        assert payload["events"]["pass"] == 2
        assert payload["chain_bytes"] > 0

    def test_no_failed_transactions_in_honest_run(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        assert explorer.failed_transactions() == []

    def test_block_summaries_monotone(self, explored_chain):
        explorer = ChainExplorer(explored_chain)
        numbers = [b["number"] for b in explorer.block_summaries()]
        assert numbers == sorted(numbers)
