"""Exhaustive torn-write sweep over the WAL state store.

Builds a small but representative WAL (accounts, a contract deploy, value
transfers, contract calls, sealed blocks), then reopens the store from a
copy truncated at *every* byte offset of the log.  Recovery must always
equal the state after the largest whole-frame prefix that survived — and
the reopened store must keep working (torn tail cleanly cut, appends
land where recovery can see them).
"""

from __future__ import annotations

import shutil
import struct

import pytest

from repro.chain import Blockchain, Transaction
from repro.chain.contracts.reputation import ReputationRegistry
from repro.chain.state import WalStateStore


def _build_reference(directory) -> Blockchain:
    """A small chain touching every record kind the WAL knows."""
    chain = Blockchain.open(directory)
    alice = chain.create_account(2.0, label="alice")
    bob = chain.create_account(1.0, label="bob")
    registry = ReputationRegistry(min_stake_wei=10**17)
    address = chain.deploy(registry, deployer=alice)
    chain.transact(
        Transaction(sender=alice, to=address, method="register",
                    args=("alice-node",), value=10**17)
    )
    chain.mine_block()
    chain.transact(Transaction(sender=alice, to=bob, value=10**16))
    chain.transact(
        Transaction(sender=bob, to=address, method="authorize_reporter",
                    args=(bob,))
    )
    chain.mine_block()
    return chain


def _frame_boundaries(wal_bytes: bytes) -> list[int]:
    """Byte offsets after each complete frame (0 = empty prefix)."""
    header = struct.Struct(">I")
    boundaries = [0]
    offset = 0
    while offset + header.size <= len(wal_bytes):
        (length,) = header.unpack_from(wal_bytes, offset)
        if offset + header.size + length > len(wal_bytes):
            break
        offset += header.size + length
        boundaries.append(offset)
    assert boundaries[-1] == len(wal_bytes), "reference WAL must be untorn"
    return boundaries


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    base = tmp_path_factory.mktemp("wal-fuzz")
    ref_dir = base / "reference"
    chain = _build_reference(ref_dir)
    final_hash = chain.state_hash()
    chain.close()
    wal_bytes = (ref_dir / "wal.log").read_bytes()
    boundaries = _frame_boundaries(wal_bytes)
    # State hash after each whole-frame prefix.
    prefix_hash = {}
    for index, boundary in enumerate(boundaries):
        prefix_dir = base / f"prefix-{index}"
        prefix_dir.mkdir()
        (prefix_dir / "wal.log").write_bytes(wal_bytes[:boundary])
        store = WalStateStore(prefix_dir)
        prefix_hash[boundary] = store.state_hash()
        store.close()
    assert prefix_hash[boundaries[-1]] == final_hash
    return base, wal_bytes, boundaries, prefix_hash


def test_reference_wal_is_interesting(reference):
    _, wal_bytes, boundaries, prefix_hash = reference
    assert len(boundaries) >= 8  # genesis + accounts + deploy + txs + blocks
    assert len(set(prefix_hash.values())) == len(boundaries)  # each frame matters


def test_recovery_at_every_byte_truncation_offset(reference):
    """The exhaustive sweep: every cut point, one reopened store each."""
    base, wal_bytes, boundaries, prefix_hash = reference
    work = base / "cut"
    replayed = 0
    for offset in range(len(wal_bytes) + 1):
        floor = max(b for b in boundaries if b <= offset)
        if work.exists():
            shutil.rmtree(work)
        work.mkdir()
        (work / "wal.log").write_bytes(wal_bytes[:offset])
        store = WalStateStore(work)
        assert store.state_hash() == prefix_hash[floor], (
            f"truncation at byte {offset} did not recover the state of the "
            f"{floor}-byte whole-frame prefix"
        )
        # Clean torn-tail contract: the garbage tail is gone from disk.
        assert store.wal_size() == floor
        store.close()
        replayed += 1
    assert replayed == len(wal_bytes) + 1


def test_reopened_store_accepts_new_appends_after_any_tear(reference):
    """Sparse sweep: after recovery the chain keeps running and re-recovers."""
    base, wal_bytes, boundaries, _ = reference
    # Offsets straddling each frame boundary, plus a mid-frame tear.
    offsets = sorted(
        {
            cut
            for boundary in boundaries[1:]
            for cut in (boundary - 1, boundary, boundary + 17)
            if 0 <= cut <= len(wal_bytes)
        }
    )
    for index, offset in enumerate(offsets):
        work = base / f"append-{index}"
        work.mkdir()
        (work / "wal.log").write_bytes(wal_bytes[:offset])
        chain = Blockchain.open(work)
        chain.create_account(1.0, label="post-crash")
        chain.mine_block()
        expected = chain.state_hash()
        chain.close()
        again = Blockchain.open(work)
        assert again.state_hash() == expected
        again.close()


def test_snapshot_plus_torn_wal(reference, tmp_path):
    """A folded snapshot underneath a torn WAL tail still recovers."""
    chain = _build_reference(tmp_path / "snap")
    chain.snapshot()  # folds the WAL into snapshot.pkl, truncates the log
    chain.create_account(5.0, label="after-snapshot")
    chain.mine_block()
    expected = chain.state_hash()
    chain.close()
    wal = tmp_path / "snap" / "wal.log"
    tail = wal.read_bytes()
    assert tail  # post-snapshot traffic
    # Tear the final frame in half: recovery must keep everything before it.
    boundaries = _frame_boundaries(tail)
    cut = (boundaries[-2] + boundaries[-1]) // 2
    wal.write_bytes(tail[:cut])
    store = WalStateStore(tmp_path / "snap")
    recovered = store.state_hash()
    store.close()
    assert recovered != expected  # the torn frame is gone...
    (tmp_path / "replay").mkdir()
    # ...but matches the exact whole-frame prefix state.
    shutil.copyfile(
        tmp_path / "snap" / "snapshot.pkl", tmp_path / "replay" / "snapshot.pkl"
    )
    (tmp_path / "replay" / "wal.log").write_bytes(tail[: boundaries[-2]])
    store = WalStateStore(tmp_path / "replay")
    assert store.state_hash() == recovered
    store.close()
