"""Sharded chain fabric: placement, routing, equivalence, gas honesty.

Acceptance properties (ISSUE 4 tentpole, part 2):

* contract→lane placement is a deterministic pure function every
  participant can recompute,
* the contract-driven audit path produces the *same* pass/fail outcome
  per deployment whether it runs on one chain or on a 4-lane fabric,
* per-lane explorer sections decompose the fabric's gas exactly (no
  double counting, nothing dropped),
* the DSN loop runs unmodified over a fabric, and WAL-persisted lanes
  recover bit-identically.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.chain import (
    Blockchain,
    ChainExplorer,
    ContractTerms,
    ShardedChainFabric,
    Transaction,
    deploy_audit_contract,
    lane_index_for_key,
    run_contracts_to_completion,
)
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon

TERMS = ContractTerms(num_audits=1, audit_interval=15.0, response_window=15.0)
FLEET = 6


def _deploy_fleet(chain, params, misbehave_last=True, seed=0xFAB):
    """Identical fleet (packages, providers, agents) on any chain-like."""
    rng = random.Random(seed)
    owner = DataOwner(params, rng=rng)
    beacon = HashChainBeacon(b"fabric-test")
    deployments = []
    for index in range(FLEET):
        package = owner.prepare(
            bytes(rng.randrange(256) for _ in range(700)),
            fresh_keypair=index == 0,
        )
        provider = StorageProvider(rng=rng)
        provider.accept(package)
        deployment = deploy_audit_contract(
            chain, package, provider, TERMS, beacon, params
        )
        if misbehave_last and index == FLEET - 1:
            deployment.provider_agent.misbehave_after_round = 0
        deployments.append(deployment)
    return deployments


class TestPlacement:
    def test_placement_is_deterministic(self):
        for key in (7, "file-x", b"\x01\x02"):
            assert lane_index_for_key(key, 8) == lane_index_for_key(key, 8)

    def test_placement_spreads_across_lanes(self):
        lanes = {lane_index_for_key(name, 4) for name in range(64)}
        assert lanes == {0, 1, 2, 3}

    def test_placement_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            lane_index_for_key(1, 0)

    def test_home_lane_matches_index(self):
        fabric = ShardedChainFabric(num_lanes=4)
        for key in (3, 9, "abc"):
            index = fabric.lane_index_for(key)
            assert fabric.home_lane(key) is fabric.lane(index)

    def test_addresses_never_collide_across_lanes(self):
        fabric = ShardedChainFabric(num_lanes=4)
        accounts = [lane.create_account(1.0, label="x") for lane in fabric]
        assert len(set(accounts)) == len(accounts)


class TestContractPathEquivalence:
    @pytest.fixture(scope="class")
    def outcomes(self, params):
        results = {}
        for label, chain in (
            ("single", Blockchain()),
            ("fabric", ShardedChainFabric(num_lanes=4)),
        ):
            deployments = _deploy_fleet(chain, params)
            contracts = run_contracts_to_completion(chain, deployments)
            results[label] = {
                "chain": chain,
                "deployments": deployments,
                "verdicts": [(c.passes, c.fails) for c in contracts],
            }
        return results

    def test_accept_reject_sets_match_single_lane_run(self, outcomes):
        assert outcomes["fabric"]["verdicts"] == outcomes["single"]["verdicts"]
        # The mix exercises both verdict classes.
        assert any(fails for _, fails in outcomes["single"]["verdicts"])
        assert any(passes for passes, _ in outcomes["single"]["verdicts"])

    def test_deployments_actually_spread_over_lanes(self, outcomes):
        fabric = outcomes["fabric"]["chain"]
        lanes_used = {
            fabric.lane_index_of_contract(d.contract_address)
            for d in outcomes["fabric"]["deployments"]
        }
        assert len(lanes_used) >= 2

    def test_agents_are_bound_to_their_home_lane(self, outcomes):
        fabric = outcomes["fabric"]["chain"]
        for deployment in outcomes["fabric"]["deployments"]:
            lane = fabric.lane(
                fabric.lane_index_of_contract(deployment.contract_address)
            )
            assert deployment.provider_agent.chain is lane

    def test_explorer_lane_sections_decompose_gas(self, outcomes):
        fabric = outcomes["fabric"]["chain"]
        explorer = ChainExplorer(fabric)
        summaries = explorer.lane_summaries()
        assert sum(s.gas_used for s in summaries) == fabric.total_gas_used()
        assert [s.gas_used for s in summaries] == fabric.lane_gas_totals()
        payload = json.loads(explorer.export_json())
        assert len(payload["lanes"]) == fabric.num_lanes
        assert len(payload["audit_contracts"]) == FLEET
        lanes_in_export = {c["lane"] for c in payload["audit_contracts"]}
        assert lanes_in_export == {
            fabric.lane_index_of_contract(d.contract_address)
            for d in outcomes["fabric"]["deployments"]
        }

    def test_single_chain_explorer_has_no_lane_section(self, outcomes):
        payload = json.loads(
            ChainExplorer(outcomes["single"]["chain"]).export_json()
        )
        assert "lanes" not in payload

    def test_settlement_chain_seconds_is_max_over_lanes(self, outcomes):
        fabric = outcomes["fabric"]["chain"]
        per_lane = [lane.congestion_seconds() for lane in fabric]
        assert fabric.settlement_chain_seconds() == max(per_lane)


class TestRouting:
    def test_transact_routes_to_recipient_lane(self):
        fabric = ShardedChainFabric(num_lanes=3)
        # Same placement key -> same lane: ordinary value transfer works.
        alice = fabric.create_account(2.0, key="payers", label="alice")
        bob = fabric.create_account(0.0, key="payers", label="bob")
        receipt = fabric.transact(Transaction(sender=alice, to=bob, value=10**18))
        assert receipt.success
        assert fabric.balance_of(bob) == 10**18
        bob_lane = fabric.lane(fabric.lane_index_of_account(bob))
        assert bob_lane.balance_of(bob) == 10**18

    def test_cross_lane_value_transfer_reverts_cleanly(self):
        """Value cannot cross a shard boundary without a bridge: the tx
        executes on the recipient's lane, where the sender holds nothing,
        and reverts instead of minting."""
        fabric = ShardedChainFabric(num_lanes=8)
        alice = fabric.create_account(2.0, key="alice")
        lane_of_alice = fabric.lane_index_of_account(alice)
        other_key = next(
            key for key in ("k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8")
            if fabric.lane_index_for(key) != lane_of_alice
        )
        carol = fabric.create_account(0.0, key=other_key)
        receipt = fabric.transact(Transaction(sender=alice, to=carol, value=10**18))
        assert not receipt.success
        assert "insufficient balance" in receipt.error
        assert fabric.balance_of(alice) == 2 * 10**18  # nothing minted or lost

    def test_contract_at_unknown_address_raises(self):
        fabric = ShardedChainFabric(num_lanes=2)
        with pytest.raises(KeyError):
            fabric.contract_at("0xc" + "0" * 39)

    def test_mine_block_advances_every_lane_in_lockstep(self):
        fabric = ShardedChainFabric(num_lanes=3)
        fabric.mine_block()
        fabric.advance_time(30.0)
        heights = {len(lane.blocks) for lane in fabric}
        assert len(heights) == 1
        times = {lane.time for lane in fabric}
        assert times == {fabric.time}


class TestPersistence:
    def test_persisted_fabric_recovers_bit_identical(self, tmp_path, params):
        fabric = ShardedChainFabric(num_lanes=2, persist_dir=tmp_path / "fab")
        deployments = _deploy_fleet(fabric, params, misbehave_last=False)
        run_contracts_to_completion(fabric, deployments)
        expected = fabric.state_hash()
        fabric.close()
        reopened = ShardedChainFabric(num_lanes=2, persist_dir=tmp_path / "fab")
        assert reopened.state_hash() == expected
        # Per-lane stores are distinct directories.
        assert (tmp_path / "fab" / "lane-000" / "wal.log").exists()
        assert (tmp_path / "fab" / "lane-001" / "wal.log").exists()
        reopened.close()


class TestDsnOnFabric:
    def test_audited_dsn_runs_over_a_fabric(self, params):
        from repro.dsn import AuditedDsn
        from repro.storage import DsnCluster, SimulatedNetwork

        rng = random.Random(0xD5)
        cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(3)))
        for index in range(5):
            cluster.add_node(f"node-{index}")
        fabric = ShardedChainFabric(num_lanes=2)
        dsn = AuditedDsn(
            cluster,
            fabric,
            HashChainBeacon(b"dsn-fabric"),
            params=params,
            terms=ContractTerms(
                num_audits=1, audit_interval=30.0, response_window=15.0
            ),
            rng=rng,
        )
        data = bytes(rng.randrange(256) for _ in range(900))
        audited = dsn.store("owner", "file-1", data, n=4, k=2)
        for _ in range(60):
            dsn.step()
            if dsn.all_contracts_closed():
                break
        assert dsn.all_contracts_closed()
        assert dsn.retrieve("file-1") == data
        lanes_used = {
            fabric.lane_index_of_contract(sa.deployment.contract_address)
            for sa in audited.shard_audits
        }
        assert lanes_used  # contracts resolved on the fabric
