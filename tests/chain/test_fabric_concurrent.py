"""Differential: concurrent lane execution is bit-identical to lockstep.

``ShardedChainFabric(concurrent=True)`` mines lanes on a worker-per-lane
thread pool.  Lanes share no mutable state (accounts and contracts are
partitioned by ``lane_index_for_key``), so interleaving their block
production must not change anything observable: the same pooled workload
driven through a lockstep fabric and a concurrent fabric has to produce
the same accept/reject sets, the same drain/eviction counters, and the
same ``state_hash`` — the whole-world digest over every lane.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import Transaction
from repro.chain.fabric import ShardedChainFabric
from repro.chain.mempool import GasSinkContract, MempoolConfig, MempoolRejection

LANES = 4


def _build(concurrent: bool):
    """One fabric plus per-lane sinks and senders, identically seeded."""
    fabric = ShardedChainFabric(
        num_lanes=LANES,
        mempool=MempoolConfig(high_watermark=24, low_watermark=16),
        concurrent=concurrent,
    )
    sinks, senders = [], []
    for lane_id, lane in enumerate(fabric.lanes):
        deployer = lane.create_account(10.0, label=f"deploy-{lane_id}")
        sinks.append(lane.deploy(GasSinkContract(), deployer=deployer))
        senders.append(
            [lane.create_account(50.0, label=f"s{lane_id}-{i}") for i in range(3)]
        )
    return fabric, sinks, senders


def _drive(fabric, sinks, senders, seed: int):
    """A deterministic pooled workload; returns the accept/reject trace."""
    rng = random.Random(f"fabric-diff:{seed}")
    trace = []
    for block in range(8):
        for lane_id in range(LANES):
            lane = fabric.lane(lane_id)
            for sender in senders[lane_id]:
                gas = rng.choice((60_000, 120_000, 300_000))
                tip = round(rng.uniform(0.1, 4.0), 3)
                tx = Transaction(
                    sender=sender,
                    to=sinks[lane_id],
                    method="consume",
                    args=(gas - 25_000, f"b{block}"),
                    gas_limit=gas,
                    max_fee_gwei=round(
                        lane.base_fee_wei / 10**9 * rng.uniform(0.9, 2.5) + tip, 3
                    ),
                    priority_fee_gwei=tip,
                )
                try:
                    entry = lane.submit(tx)
                    trace.append(("ok", lane_id, sender, entry.tx.nonce))
                except MempoolRejection as rejection:
                    trace.append(("rej", lane_id, sender, rejection.code))
        fabric.mine_block()
    fabric.mine_until_pools_drain()
    return trace


@pytest.mark.parametrize("seed", range(3))
def test_concurrent_fabric_matches_lockstep(seed):
    lockstep, sinks_a, senders_a = _build(concurrent=False)
    concurrent, sinks_b, senders_b = _build(concurrent=True)
    assert sinks_a == sinks_b and senders_a == senders_b
    try:
        trace_a = _drive(lockstep, sinks_a, senders_a, seed)
        trace_b = _drive(concurrent, sinks_b, senders_b, seed)
        assert trace_a == trace_b  # identical accept/reject sets, in order
        assert lockstep.state_hash() == concurrent.state_hash()
        for lane_id in range(LANES):
            stats_a = lockstep.lane(lane_id).pool.stats
            stats_b = concurrent.lane(lane_id).pool.stats
            assert dict(stats_a) == dict(stats_b)
        assert lockstep.lane_base_fees() == concurrent.lane_base_fees()
        assert lockstep.total_gas_used() == concurrent.total_gas_used()
    finally:
        lockstep.close()
        concurrent.close()


def test_concurrent_flag_single_lane_is_inert():
    """One lane: the concurrent path falls through to plain iteration."""
    fabric = ShardedChainFabric(num_lanes=1, concurrent=True)
    try:
        account = fabric.create_account(1.0, label="solo")
        fabric.mine_block()
        assert fabric.balance_of(account) == 10**18
    finally:
        fabric.close()
