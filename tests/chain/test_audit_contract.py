"""The Fig. 2 state machine: guards, lifecycle, payments, disputes."""

from __future__ import annotations

import pytest

from repro.chain import (
    Blockchain,
    ContractTerms,
    State,
    Transaction,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.chain.contracts.audit_contract import AuditContract
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon


@pytest.fixture(scope="module")
def contract_params():
    return ProtocolParams(s=6, k=3)


@pytest.fixture(scope="module")
def beacon():
    return HashChainBeacon(b"contract-test-beacon")


@pytest.fixture()
def fresh_deployment(contract_params, beacon, rng):
    owner = DataOwner(contract_params, rng=rng)
    package = owner.prepare(b"\x5a" * 800)
    provider = StorageProvider(rng=rng)
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=3, audit_interval=100.0, response_window=30.0)
    deployment = deploy_audit_contract(
        chain, package, provider, terms, beacon, contract_params
    )
    return chain, deployment, package, provider


class TestLifecycle:
    def test_honest_provider_full_contract(self, fresh_deployment):
        chain, deployment, _, _ = fresh_deployment
        supply = chain.total_supply()
        contract = run_contract_to_completion(chain, deployment)
        assert contract.state is State.CLOSED
        assert contract.passes == 3
        assert contract.fails == 0
        assert chain.total_supply() == supply  # no value minted or burned
        names = [e.name for e in chain.events]
        assert names[:3] == ["negotiated", "acked", "inited"]
        assert names.count("challenged") == 3
        assert names.count("proofposted") == 3
        assert names.count("pass") == 3
        assert names[-1] == "expired"

    def test_provider_paid_per_pass(self, fresh_deployment):
        chain, deployment, _, _ = fresh_deployment
        contract = run_contract_to_completion(chain, deployment)
        provider_balance = chain.balance_of(deployment.provider_account)
        # 10 ETH start - gas + deposit returned + 3 payments.
        expected_gain = 3 * contract.terms.payment_per_round_wei
        assert provider_balance > 10 * 10**18  # net positive despite gas
        assert provider_balance <= 10 * 10**18 + expected_gain

    def test_gas_matches_paper_anchor(self, fresh_deployment):
        from repro.chain import PAPER_AUDIT_GAS

        chain, deployment, _, _ = fresh_deployment
        contract = run_contract_to_completion(chain, deployment)
        assert all(r.gas_used == PAPER_AUDIT_GAS for r in contract.rounds)

    def test_trail_bytes(self, fresh_deployment):
        chain, deployment, _, _ = fresh_deployment
        contract = run_contract_to_completion(chain, deployment)
        # Each round: 48-byte challenge + 288-byte proof.
        assert contract.total_trail_bytes() == 3 * (48 + 288)

    def test_data_dropping_provider_slashed(self, fresh_deployment):
        chain, deployment, _, _ = fresh_deployment
        deployment.provider_agent.misbehave_after_round = 1
        contract = run_contract_to_completion(chain, deployment)
        assert contract.passes == 1
        assert contract.fails == 2
        owner_balance = chain.balance_of(deployment.owner_account)
        # Owner got compensation for the 2 failed rounds.
        assert len(chain.events_named("fail")) == 2
        assert owner_balance > 0

    def test_silent_provider_fails_by_timeout(self, fresh_deployment):
        chain, deployment, _, _ = fresh_deployment
        deployment.provider_agent.misbehave_after_round = 0
        contract = run_contract_to_completion(chain, deployment)
        assert contract.passes == 0
        assert contract.fails == 3
        assert all(r.proof_bytes is None for r in contract.rounds)


class TestStateMachineGuards:
    def _bare_contract(self, contract_params, beacon):
        chain = Blockchain()
        owner = chain.create_account(10.0)
        provider = chain.create_account(10.0)
        contract = AuditContract(
            owner=owner,
            provider=provider,
            terms=ContractTerms(num_audits=1),
            beacon=beacon,
            params=contract_params,
        )
        address = chain.deploy(contract, deployer=owner)
        return chain, contract, address, owner, provider

    def test_only_owner_negotiates(self, contract_params, beacon, package):
        chain, contract, address, _, provider = self._bare_contract(
            contract_params, beacon
        )
        receipt = chain.transact(
            Transaction(
                sender=provider, to=address, method="negotiate",
                args=(package.public, package.name, package.num_chunks),
            )
        )
        assert not receipt.success
        assert contract.state is State.NEGOTIATING

    def test_acknowledge_requires_ack_state(self, contract_params, beacon):
        chain, contract, address, _, provider = self._bare_contract(
            contract_params, beacon
        )
        receipt = chain.transact(
            Transaction(sender=provider, to=address, method="acknowledge")
        )
        assert not receipt.success

    def test_freeze_requires_party(self, contract_params, beacon, package):
        chain, contract, address, owner, provider = self._bare_contract(
            contract_params, beacon
        )
        chain.transact(
            Transaction(
                sender=owner, to=address, method="negotiate",
                args=(package.public, package.name, package.num_chunks),
            )
        )
        chain.transact(Transaction(sender=provider, to=address, method="acknowledge"))
        outsider = chain.create_account(10.0)
        receipt = chain.transact(
            Transaction(sender=outsider, to=address, method="freeze", value=10**18)
        )
        assert not receipt.success

    def test_provider_can_reject(self, contract_params, beacon, package):
        chain, contract, address, owner, provider = self._bare_contract(
            contract_params, beacon
        )
        chain.transact(
            Transaction(
                sender=owner, to=address, method="negotiate",
                args=(package.public, package.name, package.num_chunks),
            )
        )
        receipt = chain.transact(
            Transaction(sender=provider, to=address, method="reject")
        )
        assert receipt.success
        assert contract.state is State.CLOSED
        assert chain.events_named("rejected")

    def test_proof_before_challenge_rejected(self, contract_params, beacon, package):
        chain, contract, address, owner, provider = self._bare_contract(
            contract_params, beacon
        )
        chain.transact(
            Transaction(
                sender=owner, to=address, method="negotiate",
                args=(package.public, package.name, package.num_chunks),
            )
        )
        receipt = chain.transact(
            Transaction(
                sender=provider, to=address, method="submit_proof",
                args=(b"\x00" * 288,),
            )
        )
        assert not receipt.success

    def test_wrong_size_proof_rejected(self, fresh_deployment):
        chain, deployment, _, _ = fresh_deployment
        contract = chain.contract_at(deployment.contract_address)
        # Advance until a challenge is open.
        while contract.state is not State.PROVE:
            chain.mine_block()
        receipt = chain.transact(
            Transaction(
                sender=deployment.provider_account,
                to=deployment.contract_address,
                method="submit_proof",
                args=(b"\x01" * 100,),
            )
        )
        assert not receipt.success

    def test_garbage_proof_of_right_size_fails_audit(self, fresh_deployment):
        chain, deployment, _, provider = fresh_deployment
        contract = chain.contract_at(deployment.contract_address)
        while contract.state is not State.PROVE:
            chain.mine_block()
        # A syntactically valid but cryptographically garbage proof:
        # infinity points + zero scalar + identity GT element.
        garbage = bytearray(288)
        garbage[0] = 0x80
        garbage[64] = 0x80
        receipt = chain.transact(
            Transaction(
                sender=deployment.provider_account,
                to=deployment.contract_address,
                method="submit_proof",
                args=(bytes(garbage),),
            )
        )
        assert receipt.success  # posting succeeds...
        chain.advance_time(31.0)  # ...verification fails
        assert contract.fails >= 1
        assert chain.events_named("fail")
