"""Property sweep over the mempool: randomized ops, machine-checked laws.

A seeded driver throws submissions, replacements, value transfers, block
mining and aging at a pooled chain with deliberately tight watermarks and
block space, and re-checks the pool's structural invariants after every
operation:

* **bounded**: the pool never exceeds its high watermark,
* **gapless**: each sender's pending nonces are a contiguous run starting
  at its mined-nonce frontier (whole-tail eviction preserves this),
* **escrowed**: the escrow account holds exactly the sum of every pending
  entry's fee budget,
* **conservation**: ``total_supply()`` (balances + fee sink + burned) is
  constant through submit/evict/replace/drain/expire,
* **priority**: within each drained block the effective-tip sequence is
  non-increasing except for the inversions the pool itself counts (which
  only nonce-chain promotion can cause — with one pending transaction per
  sender the count is structurally zero).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.chain import Blockchain, Transaction
from repro.chain.mempool import (
    ESCROW_ACCOUNT,
    GasSinkContract,
    MempoolConfig,
    MempoolRejection,
    PoolFull,
    Underpriced,
)

SENDERS = 6


def _pooled_chain(block_gas_limit=600_000, **overrides):
    """A tight chain: small blocks force backlogs, small pool forces churn."""
    defaults = dict(
        high_watermark=24, low_watermark=16, max_per_sender=6,
        max_age_seconds=120.0,
    )
    defaults.update(overrides)
    chain = Blockchain(
        block_gas_limit=block_gas_limit, mempool=MempoolConfig(**defaults)
    )
    deployer = chain.create_account(10.0, label="deployer")
    sink = chain.deploy(GasSinkContract(), deployer=deployer)
    senders = [
        chain.create_account(50.0, label=f"prop-{i}") for i in range(SENDERS)
    ]
    return chain, sink, senders


def _check_invariants(chain, supply0):
    pool = chain.pool
    store = chain.store
    assert len(store.pool) <= pool.config.high_watermark
    by_sender: dict[str, list[int]] = {}
    for sender, nonce in store.pool:
        by_sender.setdefault(sender, []).append(nonce)
    for sender, nonces in by_sender.items():
        mined = store.mined_nonces.get(sender, 0)
        assert sorted(nonces) == list(range(mined, mined + len(nonces))), (
            f"{sender} pending nonces are not gapless from {mined}"
        )
        assert len(nonces) <= pool.config.max_per_sender
    escrowed = sum(entry.escrow_wei for entry in store.pool.values())
    assert store.balances[ESCROW_ACCOUNT] == escrowed
    assert chain.total_supply() == supply0


def _random_tx(rng, sink, sender, base_fee_gwei):
    gas = rng.choice((60_000, 120_000, 300_000, 500_000))
    if rng.random() < 0.15:  # legacy pricing: gas_price doubles as both caps
        max_fee = tip = None
    else:
        tip = round(rng.uniform(0.0, 5.0), 3)
        max_fee = round(base_fee_gwei * rng.uniform(0.8, 3.0) + tip, 3)
    return Transaction(
        sender=sender,
        to=sink,
        method="consume",
        args=(gas - 25_000, "prop"),
        gas_limit=gas,
        max_fee_gwei=max_fee,
        priority_fee_gwei=tip,
    )


@pytest.mark.parametrize("seed", range(5))
def test_randomized_ops_preserve_invariants(seed):
    rng = random.Random(f"mempool-prop:{seed}")
    chain, sink, senders = _pooled_chain()
    pool = chain.pool
    supply0 = chain.total_supply()
    rejected = 0
    for _ in range(150):
        op = rng.random()
        if op < 0.62:
            tx = _random_tx(rng, sink, rng.choice(senders),
                            chain.base_fee_wei / 10**9)
            try:
                chain.submit(tx)
            except MempoolRejection:
                rejected += 1
        elif op < 0.72 and chain.store.pool:
            # Replace-by-fee on a random pending slot with a generous bump.
            sender, nonce = rng.choice(sorted(chain.store.pool))
            old = chain.store.pool[(sender, nonce)]
            try:
                chain.submit(
                    Transaction(
                        sender=sender,
                        to=sink,
                        method="consume",
                        args=(old.tx.gas_limit - 25_000, "rbf"),
                        gas_limit=old.tx.gas_limit,
                        nonce=nonce,
                        max_fee_gwei=old.max_fee_wei * 1.5 / 10**9,
                        priority_fee_gwei=old.tip_cap_wei * 1.5 / 10**9 + 0.1,
                    ),
                    replace=True,
                )
            except MempoolRejection:
                rejected += 1
        elif op < 0.82:
            # A pooled value transfer between senders.
            src, dst = rng.sample(senders, 2)
            try:
                chain.submit(
                    Transaction(sender=src, to=dst, value=10**15,
                                gas_limit=30_000, max_fee_gwei=2.0,
                                priority_fee_gwei=0.5)
                )
            except MempoolRejection:
                rejected += 1
        else:
            chain.mine_block()
            # Tip increases caused by nonce-chain promotion are benign (the
            # higher-tip transaction only became *available* mid-drain); a
            # true inversion — an already-available higher-tip transaction
            # drained after a cheaper one — must never happen.
            assert pool.priority_inversions == 0
        _check_invariants(chain, supply0)
    # Drain everything left and re-check conservation end to end.
    for _ in range(200):
        if not chain.store.pool:
            break
        chain.mine_block()
        _check_invariants(chain, supply0)
    assert rejected == pool.rejection_total()
    assert pool.stats["drained"] > 20  # the sweep exercised the drain path


def test_drain_order_monotone_with_single_nonce_senders():
    """One pending tx per sender: tips drain non-increasing, 0 inversions."""
    rng = random.Random("monotone")
    chain, sink, senders = _pooled_chain(block_gas_limit=10_000_000)
    supply0 = chain.total_supply()
    for round_index in range(6):
        for sender in senders:
            tip = round(rng.uniform(0.1, 8.0), 3)
            chain.submit(
                Transaction(
                    sender=sender, to=sink, method="consume",
                    args=(100_000 - 25_000, f"r{round_index}"),
                    gas_limit=100_000,
                    max_fee_gwei=10.0 + tip, priority_fee_gwei=tip,
                )
            )
        chain.mine_block()
        # Receipts are numbered one past the pending block they land in,
        # hence the ``+ 1`` join (same convention as the explorer).
        tips = chain.pool.block_tips[chain.blocks[-2].number + 1]
        assert len(tips) == len(senders)
        assert all(a >= b for a, b in zip(tips, tips[1:])), tips
        _check_invariants(chain, supply0)
    assert chain.pool.priority_inversions == 0


def test_watermark_eviction_prefers_cheap_tails():
    """Flooding past the high watermark evicts lowest-tip senders first."""
    chain, sink, senders = _pooled_chain(
        high_watermark=8, low_watermark=4, max_per_sender=8,
        block_gas_limit=400_000,
    )
    supply0 = chain.total_supply()
    cheap, rich = senders[0], senders[1]
    for _ in range(8):
        chain.submit(
            Transaction(sender=cheap, to=sink, method="consume",
                        args=(75_000, "cheap"), gas_limit=100_000,
                        max_fee_gwei=3.0, priority_fee_gwei=0.1)
        )
    assert len(chain.pool) == 8
    # The 9th submission beats the floor: pool evicts down to low watermark.
    chain.submit(
        Transaction(sender=rich, to=sink, method="consume",
                    args=(75_000, "rich"), gas_limit=100_000,
                    max_fee_gwei=9.0, priority_fee_gwei=5.0)
    )
    assert len(chain.pool) == 5  # low watermark + the newcomer
    assert chain.pool.stats["evicted"] == 4
    _check_invariants(chain, supply0)
    # A bid at (or below) the floor is rejected outright once full again.
    for _ in range(3):
        chain.submit(
            Transaction(sender=cheap, to=sink, method="consume",
                        args=(75_000, "refill"), gas_limit=100_000,
                        max_fee_gwei=3.0, priority_fee_gwei=0.1)
        )
    with pytest.raises(PoolFull) as excinfo:
        chain.submit(
            Transaction(sender=senders[2], to=sink, method="consume",
                        args=(75_000, "floor"), gas_limit=100_000,
                        max_fee_gwei=3.0, priority_fee_gwei=0.05)
        )
    assert excinfo.value.code == "pool-full"
    _check_invariants(chain, supply0)


def test_watermark_eviction_never_gaps_the_submitting_sender():
    """Regression: a sender whose own entries are the pool's cheapest
    submits a high-tip transaction into a full pool.  Eviction must not
    shorten that sender's tail — the arrival's nonce (mined + pending)
    was fixed before eviction ran, so evicting the tail would strand the
    new entry at a gapped nonce that neither drains nor expires."""
    chain, sink, senders = _pooled_chain(
        high_watermark=8, low_watermark=4, max_per_sender=8,
    )
    supply0 = chain.total_supply()
    victim = senders[0]
    for index in range(3):  # the three cheapest entries in the pool
        chain.submit(
            Transaction(sender=victim, to=sink, method="consume",
                        args=(75_000, f"own-{index}"), gas_limit=100_000,
                        max_fee_gwei=3.0, priority_fee_gwei=0.1)
        )
    for other in senders[1:]:  # fill to the high watermark
        chain.submit(
            Transaction(sender=other, to=sink, method="consume",
                        args=(75_000, "filler"), gas_limit=100_000,
                        max_fee_gwei=4.0, priority_fee_gwei=1.0)
        )
    assert len(chain.pool) == 8
    entry = chain.submit(
        Transaction(sender=victim, to=sink, method="consume",
                    args=(75_000, "successor"), gas_limit=100_000,
                    max_fee_gwei=9.0, priority_fee_gwei=5.0)
    )
    # The arrival extends the sender's run (others' tails were evicted).
    assert entry.tx.nonce == 3
    own = sorted(n for s, n in chain.store.pool if s == victim)
    assert own == [0, 1, 2, 3]
    assert chain.pool.stats["evicted"] == 4
    _check_invariants(chain, supply0)
    # Nothing is stranded: the pool drains completely.
    for _ in range(10):
        if not chain.store.pool:
            break
        chain.mine_block()
        _check_invariants(chain, supply0)
    assert len(chain.pool) == 0
    # 9 admitted, 4 evicted: the 5 survivors (victim's full 0..3 run plus
    # one filler) all reach a block.
    assert chain.pool.stats["drained"] == 5
    assert chain.pool.stats["drained"] + chain.pool.stats["evicted"] == 9


def test_underpriced_rejection_below_base_fee():
    chain, sink, senders = _pooled_chain(block_gas_limit=10_000_000)
    # Inflate the base fee with a run of full blocks.
    for _ in range(6):
        for sender in senders:
            chain.submit(
                Transaction(sender=sender, to=sink, method="consume",
                            args=(1_800_000 - 25_000, "fill"),
                            gas_limit=1_800_000,
                            max_fee_gwei=50.0, priority_fee_gwei=2.0)
            )
        chain.mine_block()
    assert chain.base_fee_wei > 10**9
    with pytest.raises(Underpriced) as excinfo:
        chain.submit(
            Transaction(sender=senders[0], to=sink, method="consume",
                        args=(50_000, "late"), gas_limit=100_000,
                        max_fee_gwei=chain.base_fee_wei / 10**9 * 0.5,
                        priority_fee_gwei=0.1)
        )
    assert excinfo.value.code == "underpriced"


@pytest.mark.parametrize("seed", range(3))
def test_threaded_submissions_preserve_invariants(seed):
    """Interleaved multi-threaded submissions against one pooled lane.

    Many client threads race ``chain.submit`` (with replacements and value
    transfers mixed in) against a concurrent miner; the chain lock must
    serialize them so that every structural law — bounded pool, gapless
    per-sender nonces, exact escrow, supply conservation — holds at every
    quiesced observation point and after the final drain, and every
    rejection raised to a caller is counted exactly once by the pool.
    """
    chain, sink, senders = _pooled_chain(
        high_watermark=64, low_watermark=48, max_per_sender=16,
        block_gas_limit=2_000_000,
    )
    supply0 = chain.total_supply()
    rejections = [0] * len(senders)
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(senders) + 2)

    def submitter(index: int, sender: str) -> None:
        rng = random.Random(f"threaded:{seed}:{index}")
        barrier.wait()
        for _ in range(40):
            try:
                if rng.random() < 0.85:
                    chain.submit(
                        _random_tx(rng, sink, sender, chain.base_fee_wei / 10**9)
                    )
                else:
                    dst = senders[(index + 1) % len(senders)]
                    chain.submit(
                        Transaction(sender=sender, to=dst, value=10**15,
                                    gas_limit=30_000, max_fee_gwei=4.0,
                                    priority_fee_gwei=0.5)
                    )
            except MempoolRejection:
                rejections[index] += 1
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)
                return

    def miner() -> None:
        barrier.wait()
        for _ in range(10):
            try:
                chain.mine_block()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                return

    def checker() -> None:
        barrier.wait()
        for _ in range(20):
            # A quiesced read: the chain lock is the only thing needed to
            # observe a consistent pool + balance snapshot mid-flight.
            with chain.lock:
                _check_invariants(chain, supply0)

    threads = [
        threading.Thread(target=submitter, args=(index, sender))
        for index, sender in enumerate(senders)
    ]
    threads.append(threading.Thread(target=miner))
    threads.append(threading.Thread(target=checker))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "worker thread hung"
    assert not errors, errors[0]
    _check_invariants(chain, supply0)
    # Drain what survived the race and re-check conservation end to end.
    for _ in range(200):
        if not chain.store.pool:
            break
        chain.mine_block()
        _check_invariants(chain, supply0)
    assert len(chain.pool) == 0
    assert sum(rejections) == chain.pool.rejection_total()
    assert chain.pool.stats["drained"] > 0


def test_expiry_evicts_aged_entries_and_their_tails():
    chain, sink, senders = _pooled_chain(
        max_age_seconds=30.0, block_gas_limit=200_000,
    )
    supply0 = chain.total_supply()
    sender = senders[0]
    for index in range(4):
        chain.submit(
            Transaction(sender=sender, to=sink, method="consume",
                        args=(150_000, f"age-{index}"), gas_limit=180_000,
                        max_fee_gwei=2.0, priority_fee_gwei=0.2)
        )
    # Each block advances chain time by 15s; only one 180k-gas tx fits per
    # 200k block, so the tail outlives the 30s age budget and expires.
    drained_before_expiry = 0
    for _ in range(6):
        chain.mine_block()
        _check_invariants(chain, supply0)
    assert chain.pool.stats["expired"] > 0
    assert len(chain.pool) == 0
    drained_before_expiry = chain.pool.stats["drained"]
    assert drained_before_expiry + chain.pool.stats["expired"] == 4
