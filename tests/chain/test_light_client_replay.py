"""LightClient.replay / audit_the_auditor over a mixed honest+failed trail.

The per-round light client was previously only exercised indirectly
(factory tests); this suite drives it over a contract whose trail mixes
honest passes with genuine failures (provider drops the file mid-contract)
and over deliberately mis-recorded trails — the forged-trail /
mis-executing-contract case the auditor-of-the-auditor exists to catch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chain import (
    Blockchain,
    ContractTerms,
    audit_the_auditor,
    deploy_audit_contract,
    export_trail,
    run_contract_to_completion,
)
from repro.chain.light_client import LightClient
from repro.core import DataOwner, ProtocolParams, StorageProvider


@pytest.fixture(scope="module")
def mixed_trail_contract(rng):
    """A closed 3-round contract: round 0 passes, rounds 1-2 fail.

    The provider agent drops the file after round 0, so later rounds
    time out (``no-proof`` failures) — a trail mixing verdict classes.
    """
    from repro.randomness import HashChainBeacon

    params = ProtocolParams(s=6, k=3)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(b"\x3c" * 700)
    provider = StorageProvider(rng=rng)
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=3, audit_interval=100.0, response_window=30.0)
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"lc-mixed"), params
    )
    deployment.provider_agent.misbehave_after_round = 1
    contract = run_contract_to_completion(chain, deployment)
    assert contract.passes == 1 and contract.fails == 2  # genuinely mixed
    return contract, params


class TestReplayMixedTrail:
    def test_replay_agrees_with_honest_contract(self, mixed_trail_contract):
        contract, params = mixed_trail_contract
        report = audit_the_auditor(contract, params)
        assert report.consistent
        assert report.rounds_checked == 3
        assert report.agreements == 3
        assert report.disagreements == []

    def test_export_trail_carries_verdicts_and_bytes(self, mixed_trail_contract):
        contract, _ = mixed_trail_contract
        trail = export_trail(contract)
        assert [t.claimed_verdict for t in trail] == [True, False, False]
        assert trail[0].proof_bytes is not None
        assert trail[1].proof_bytes is None  # withheld: nothing on chain
        assert all(len(t.challenge_bytes) == 48 for t in trail)

    def test_forged_pass_verdict_is_flagged(self, mixed_trail_contract):
        """A trail claiming a timed-out round passed cannot replay clean."""
        contract, params = mixed_trail_contract
        trail = export_trail(contract)
        trail[1] = dataclasses.replace(trail[1], claimed_verdict=True)
        client = LightClient(
            public_key_bytes=contract.public_key.to_bytes(),
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        report = client.replay(trail)
        assert not report.consistent
        assert report.disagreements == [1]
        assert report.agreements == 2

    def test_forged_fail_verdict_is_flagged(self, mixed_trail_contract):
        """A trail claiming the honest round failed is equally caught."""
        contract, params = mixed_trail_contract
        trail = export_trail(contract)
        trail[0] = dataclasses.replace(trail[0], claimed_verdict=False)
        client = LightClient(
            public_key_bytes=contract.public_key.to_bytes(),
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        report = client.replay(trail)
        assert report.disagreements == [0]

    def test_substituted_proof_bytes_are_flagged(self, mixed_trail_contract):
        """Swapping round 0's proof for garbage flips its replayed verdict."""
        contract, params = mixed_trail_contract
        trail = export_trail(contract)
        trail[0] = dataclasses.replace(
            trail[0], proof_bytes=b"\x01" * len(trail[0].proof_bytes)
        )
        client = LightClient(
            public_key_bytes=contract.public_key.to_bytes(),
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        report = client.replay(trail)
        assert report.disagreements == [0]

    def test_verify_round_recomputes_each_verdict(self, mixed_trail_contract):
        contract, params = mixed_trail_contract
        trail = export_trail(contract)
        client = LightClient(
            public_key_bytes=contract.public_key.to_bytes(),
            file_name=contract.file_name,
            num_chunks=contract.num_chunks,
            params=params,
        )
        assert bool(client.verify_round(trail[0])) is True
        assert bool(client.verify_round(trail[1])) is False  # missing proof
        assert bool(client.verify_round(trail[2])) is False
