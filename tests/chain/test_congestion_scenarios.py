"""Congestion scenarios: storms, griefers and the base-fee controller.

Three end-to-end stories the fee market must survive:

* **epoch-boundary audit storm** — a live audit contract runs while storm
  traffic floods the pool at twice the gas target; a provider paying the
  default wallet tip policy (``Mempool.suggest_fees``) never misses a
  ``response_window``, so no round fails with the ``no-proof`` code and
  no dispute deadline is lost to underpricing,
* **fee-griefer detection** — adversaries overbidding for a block-space
  majority are flagged by drain telemetry alone, with no false positives
  on honest senders,
* **base-fee decay** — after a storm the controller walks the base fee
  back down to the floor within the closed-form envelope predicted by
  :class:`repro.sim.CongestionPricingModel`.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.adversary import FeeGriefer, detect_fee_griefers
from repro.chain import (
    ContractTerms,
    Transaction,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.chain.blockchain import Blockchain
from repro.chain.mempool import (
    GasSinkContract,
    MempoolConfig,
    MempoolRejection,
    StormTraffic,
)
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon
from repro.sim import CongestionPricingModel

PARAMS = ProtocolParams(s=4, k=3)


def _storm_world(num_senders=8, seed=0):
    chain = Blockchain(mempool=MempoolConfig())
    deployer = chain.create_account(10.0, label="deployer")
    sink = chain.deploy(GasSinkContract(), deployer=deployer)
    senders = [
        chain.create_account(200.0, label=f"storm-{i}")
        for i in range(num_senders)
    ]
    return chain, sink, StormTraffic(sink, senders, seed=seed)


def _storm_block(chain, storm, load=2.0, tip=1.0):
    """Submit one block's worth of storm traffic at ``load``x gas target.

    The storm bids *below* the wallet-suggested tip (uniform in
    ``[tip/2, tip)``): the suggestion exists precisely to outbid the bulk
    of pending background traffic, and a storm that systematically
    overbids it would model griefing, not organic congestion (that case
    is :func:`test_fee_griefers_detected_without_false_positives`).
    """
    market = chain.pool.config.fee_market
    offered = int(load * market.gas_target(chain.block_gas_limit))
    max_fee_gwei, tip_gwei = chain.pool.suggest_fees(tip)
    admitted = 0
    for tx in storm.txs_for_block(
        offered, max_fee_gwei=max_fee_gwei, priority_fee_gwei=tip_gwei / 2,
        jitter_gwei=tip / 2,
    ):
        try:
            chain.submit(tx)
            admitted += 1
        except MempoolRejection:
            pass
    return admitted


def test_audit_storm_never_misses_response_window():
    """Default tip policy keeps proofs inside the window under 2x load."""
    chain, _sink, storm = _storm_world()
    rng = random.Random(0x570)
    owner = DataOwner(PARAMS, rng=rng)
    package = owner.prepare(bytes(rng.randrange(256) for _ in range(500)))
    provider = StorageProvider(rng=rng)
    assert provider.accept(package)
    # response_window of two blocks: a proof delayed past one extra block
    # by underpricing would lapse the round.
    terms = ContractTerms(
        num_audits=4, audit_interval=15.0, response_window=30.0
    )
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"storm"), PARAMS,
        owner_funds_eth=50.0, provider_funds_eth=50.0,
    )
    agent = deployment.provider_agent
    agent.use_pool = True          # proofs compete for block space...
    agent.tip_gwei = 1.0           # ...at the default wallet tip policy

    storm_blocks = 0
    original_on_block = agent.on_block

    def stormy_on_block():
        nonlocal storm_blocks
        _storm_block(chain, storm, load=2.0)
        storm_blocks += 1
        original_on_block()

    agent.on_block = stormy_on_block
    contract = run_contract_to_completion(chain, deployment)

    assert storm_blocks > 0 and chain.base_fee_wei > 10**9  # real congestion
    assert len(contract.rounds) == terms.num_audits
    assert all(r.passed for r in contract.rounds)
    # A proof delayed past the window fails the round with "no-proof";
    # zero such rounds means no deadline was ever lost to underpricing.
    assert not any(r.reject_reason == "no-proof" for r in contract.rounds)
    assert all(r.resolved_at is not None for r in contract.rounds)


def test_fee_griefers_detected_without_false_positives():
    chain, sink, storm = _storm_world(num_senders=6, seed=1)
    griefers = []
    for index in range(2):
        account = chain.create_account(100_000.0, label=f"griefer-{index}")
        griefers.append(
            FeeGriefer(chain, account, sink, gas_share=0.4, aggression=5.0)
        )
    for _ in range(12):
        for griefer in griefers:
            griefer.on_block()
        _storm_block(chain, storm, load=1.0)
        chain.mine_block()
    reports = detect_fee_griefers(chain)
    flagged = {r.sender for r in reports if r.flagged}
    griefer_accounts = {g.account for g in griefers}
    assert flagged & griefer_accounts == griefer_accounts  # 100% detected
    assert not flagged - griefer_accounts                  # 0 false positives
    # The griefers paid for their block space: base fee burned, not free.
    assert chain.burned > 0
    assert all(g.spent_wei > 0 for g in griefers)


def test_base_fee_decays_to_floor_within_model_envelope():
    chain, _sink, storm = _storm_world(seed=2)
    market = chain.pool.config.fee_market
    for _ in range(14):
        _storm_block(chain, storm, load=2.0)
        chain.mine_block()
    peak = chain.base_fee_wei
    floor = market.base_fee_floor_wei
    assert peak > 2 * floor  # the storm genuinely escalated the price

    # Growth obeys the controller's per-block envelope (<= 12.5%/block).
    model = CongestionPricingModel.for_market(market, chain.block_gas_limit)
    growth_bound = 1.0 + 1.0 / market.max_change_denominator
    assert peak <= floor * growth_bound**14 * (1.0 + 1e-9)

    # Decay: drain the leftovers, then empty blocks walk the fee down
    # within the closed-form bound (integer floors only speed this up).
    while len(chain.pool):
        chain.mine_block()
    bound = math.ceil(model.decay_blocks_from_multiplier(peak / floor)) + 1
    decay_blocks = 0
    while chain.base_fee_wei > floor:
        chain.mine_block()
        decay_blocks += 1
        assert decay_blocks <= bound, (
            f"base fee stuck above the floor after {decay_blocks} empty "
            f"blocks (model bound {bound})"
        )
    assert chain.base_fee_wei == floor
    # And it stays there: empty blocks at the floor are a fixed point.
    chain.mine_block()
    assert chain.base_fee_wei == floor
