"""Gas models and the simulated chain's bookkeeping."""

from __future__ import annotations

import pytest

from repro.chain import (
    AuditPrecompileModel,
    Blockchain,
    CostModel,
    GasSchedule,
    PAPER_AUDIT_GAS,
    PAPER_VERIFY_MS,
    Transaction,
    WEI_PER_ETH,
    vanilla_evm_verification_gas,
)
from repro.chain.blockchain import Contract


class TestGasModels:
    def test_anchor_reproduced_exactly(self):
        """The calibrated model returns the paper's 589k at 7.2 ms / 288 B."""
        model = AuditPrecompileModel(GasSchedule.istanbul())
        assert model.private_audit_gas() == PAPER_AUDIT_GAS

    def test_gas_monotone_in_time(self):
        model = AuditPrecompileModel(GasSchedule.istanbul())
        values = [model.verification_gas(288, ms) for ms in (5, 6, 7, 8, 9)]
        assert values == sorted(values)

    def test_private_costs_more_than_plain(self):
        """Fig. 5: the 288-byte line sits above the 96-byte line."""
        model = AuditPrecompileModel(GasSchedule.istanbul())
        for ms in (5.0, 7.0, 9.0):
            assert model.verification_gas(288, ms) > model.verification_gas(96, ms)

    def test_negative_time_rejected(self):
        model = AuditPrecompileModel(GasSchedule.istanbul())
        with pytest.raises(ValueError):
            model.verification_gas(288, -1)

    def test_vanilla_evm_far_more_expensive(self):
        """The ablation behind the paper's custom precompile: at k=300 a
        vanilla-EVM verifier costs several times the precompile budget."""
        schedule = GasSchedule.istanbul()
        vanilla = vanilla_evm_verification_gas(schedule, k=300)
        assert vanilla > 3 * PAPER_AUDIT_GAS

    def test_byzantium_worse_than_istanbul(self):
        byz = vanilla_evm_verification_gas(GasSchedule.byzantium(), k=300)
        ist = vanilla_evm_verification_gas(GasSchedule.istanbul(), k=300)
        assert byz > ist

    def test_usd_conversion(self):
        cost = CostModel()  # paper: 143 USD/ETH, 5 Gwei
        usd = cost.gas_to_usd(PAPER_AUDIT_GAS)
        assert 0.40 < usd < 0.45
        # The abstract's $0.1 reading corresponds to ~1.2 Gwei.
        cheap = CostModel(gas_price_gwei=1.2)
        assert 0.09 < cheap.gas_to_usd(PAPER_AUDIT_GAS) < 0.12

    def test_calldata_pricing(self):
        schedule = GasSchedule.istanbul()
        assert schedule.calldata_gas(b"\x00\x01") == 4 + 16

    def test_storage_pricing_rounds_to_slots(self):
        schedule = GasSchedule.istanbul()
        assert schedule.storage_gas(1) == 20_000
        assert schedule.storage_gas(33) == 40_000


class _Counter(Contract):
    def __init__(self):
        super().__init__()
        self.count = 0

    def bump(self, ctx, amount: int = 1):
        ctx.gas.consume(100)
        self.count += amount
        self.emit("bumped", count=self.count)
        return self.count

    def fail(self, ctx):
        self.require(False, "always fails")

    def burn(self, ctx):
        ctx.gas.consume(10**9)


class TestBlockchain:
    def test_accounts_and_transfer(self):
        chain = Blockchain()
        a = chain.create_account(2.0)
        b = chain.create_account(0.0)
        chain.transfer(a, b, WEI_PER_ETH)
        assert chain.balance_of_eth(a) == 1.0
        assert chain.balance_of_eth(b) == 1.0

    def test_contract_call_and_events(self):
        chain = Blockchain()
        user = chain.create_account(1.0)
        counter = _Counter()
        address = chain.deploy(counter, deployer=user)
        receipt = chain.transact(
            Transaction(sender=user, to=address, method="bump", args=(3,))
        )
        assert receipt.success
        assert receipt.return_value == 3
        assert receipt.events[0].name == "bumped"
        assert chain.events_named("bumped")

    def test_revert_rolls_back_state_and_value(self):
        chain = Blockchain()
        user = chain.create_account(1.0)
        counter = _Counter()
        address = chain.deploy(counter, deployer=user)
        before = chain.balance_of(user)
        receipt = chain.transact(
            Transaction(sender=user, to=address, method="fail", value=10**17)
        )
        assert not receipt.success
        assert counter.count == 0
        # Value refunded; only the gas fee was lost.
        assert chain.balance_of(user) > before - 10**17

    def test_out_of_gas(self):
        chain = Blockchain()
        user = chain.create_account(1.0)
        address = chain.deploy(_Counter(), deployer=user)
        receipt = chain.transact(
            Transaction(sender=user, to=address, method="burn", gas_limit=50_000)
        )
        assert not receipt.success
        assert "gas" in (receipt.error or "")

    def test_fees_conserved(self):
        chain = Blockchain()
        user = chain.create_account(1.0)
        address = chain.deploy(_Counter(), deployer=user)
        supply = chain.total_supply()
        chain.transact(Transaction(sender=user, to=address, method="bump"))
        chain.transact(Transaction(sender=user, to=address, method="fail"))
        assert chain.total_supply() == supply

    def test_blocks_advance_time(self):
        chain = Blockchain(block_time=15.0)
        assert chain.time == 0.0
        chain.mine_block()
        chain.mine_block()
        assert chain.time == 30.0
        assert len(chain.blocks) == 3

    def test_scheduler_fires_in_order(self):
        chain = Blockchain(block_time=10.0)
        user = chain.create_account(1.0)
        counter = _Counter()
        address = chain.deploy(counter, deployer=user)
        chain.schedule_call(address, "bump", delay=25.0, args=(10,))
        chain.schedule_call(address, "bump", delay=5.0, args=(1,))
        chain.mine_block()  # t=10: second call fires
        assert counter.count == 1
        chain.mine_block()  # t=20
        assert counter.count == 1
        chain.mine_block()  # t=30: first call fires
        assert counter.count == 11

    def test_chain_bytes_grow(self):
        chain = Blockchain()
        user = chain.create_account(1.0)
        address = chain.deploy(_Counter(), deployer=user)
        before = chain.chain_bytes()
        chain.transact(
            Transaction(sender=user, to=address, method="bump"),
            payload_bytes=500,
        )
        chain.mine_block()
        assert chain.chain_bytes() > before + 500

    def test_plain_transfer_to_eoa(self):
        chain = Blockchain()
        a = chain.create_account(1.0)
        b = chain.create_account(0.0)
        receipt = chain.transact(Transaction(sender=a, to=b, value=10**18 // 2))
        assert receipt.success
        assert chain.balance_of_eth(b) == 0.5
