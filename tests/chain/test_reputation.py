"""The Section VI-A reputation registry: stake, scoring, DoS/Sybil defences."""

from __future__ import annotations

import pytest

from repro.chain import Blockchain, Transaction, WEI_PER_ETH
from repro.chain.contracts.reputation import NEUTRAL_SCORE, ReputationRegistry


@pytest.fixture()
def registry_chain():
    chain = Blockchain(block_time=15.0)
    registry = ReputationRegistry(min_stake_wei=WEI_PER_ETH)
    operator = chain.create_account(5.0)
    address = chain.deploy(registry, deployer=operator)
    reporter = chain.create_account(5.0)
    chain.transact(
        Transaction(sender=operator, to=address, method="authorize_reporter",
                    args=(reporter,))
    )
    return chain, registry, address, reporter


def _register(chain, address, stake_eth=1.0) -> str:
    provider = chain.create_account(stake_eth + 1.0)
    receipt = chain.transact(
        Transaction(sender=provider, to=address, method="register",
                    value=int(stake_eth * WEI_PER_ETH))
    )
    assert receipt.success, receipt.error
    return provider


class TestRegistration:
    def test_register_with_stake(self, registry_chain):
        chain, registry, address, _ = registry_chain
        provider = _register(chain, address)
        assert registry.providers[provider].score == NEUTRAL_SCORE

    def test_insufficient_stake_rejected(self, registry_chain):
        chain, registry, address, _ = registry_chain
        poor = chain.create_account(1.0)
        receipt = chain.transact(
            Transaction(sender=poor, to=address, method="register",
                        value=WEI_PER_ETH // 2)
        )
        assert not receipt.success
        assert poor not in registry.providers

    def test_double_registration_rejected(self, registry_chain):
        chain, registry, address, _ = registry_chain
        provider = _register(chain, address)
        receipt = chain.transact(
            Transaction(sender=provider, to=address, method="register",
                        value=WEI_PER_ETH)
        )
        assert not receipt.success

    def test_deregister_in_good_standing(self, registry_chain):
        chain, registry, address, reporter = registry_chain
        provider = _register(chain, address)
        for _ in range(3):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(provider, True))
            )
        before = chain.balance_of(provider)
        receipt = chain.transact(
            Transaction(sender=provider, to=address, method="deregister")
        )
        assert receipt.success
        assert chain.balance_of(provider) > before
        assert provider not in registry.providers

    def test_griefer_forfeits_stake(self, registry_chain):
        """The Section VI-A DoS is self-defeating: rejections sink the score
        below neutral, and below-neutral deregistration forfeits the stake."""
        chain, registry, address, reporter = registry_chain
        provider = _register(chain, address)
        chain.transact(
            Transaction(sender=reporter, to=address, method="report_rejection",
                        args=(provider,))
        )
        receipt = chain.transact(
            Transaction(sender=provider, to=address, method="deregister")
        )
        assert not receipt.success  # stake stays locked


class TestScoring:
    def test_passes_raise_fails_lower(self, registry_chain):
        chain, registry, address, reporter = registry_chain
        provider = _register(chain, address)
        for _ in range(5):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(provider, True))
            )
        high = registry.providers[provider].score
        assert high > NEUTRAL_SCORE
        for _ in range(5):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(provider, False))
            )
        assert registry.providers[provider].score < high

    def test_unauthorised_reporter_rejected(self, registry_chain):
        chain, registry, address, _ = registry_chain
        provider = _register(chain, address)
        rando = chain.create_account(1.0)
        receipt = chain.transact(
            Transaction(sender=rando, to=address, method="report_audit",
                        args=(provider, False))
        )
        assert not receipt.success
        assert registry.providers[provider].score == NEUTRAL_SCORE

    def test_persistent_failures_get_banned(self, registry_chain):
        chain, registry, address, reporter = registry_chain
        provider = _register(chain, address)
        for _ in range(15):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(provider, False))
            )
        assert registry.providers[provider].banned
        assert chain.call(address, "score_of", provider) == 0.0
        assert not chain.call(address, "eligible", provider)

    def test_score_decays_toward_neutral(self):
        chain = Blockchain(block_time=3600.0)
        registry = ReputationRegistry(
            min_stake_wei=WEI_PER_ETH, decay_half_life=7200.0
        )
        operator = chain.create_account(5.0)
        address = chain.deploy(registry, deployer=operator)
        reporter = chain.create_account(5.0)
        chain.transact(
            Transaction(sender=operator, to=address,
                        method="authorize_reporter", args=(reporter,))
        )
        provider = _register(chain, address)
        for _ in range(8):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(provider, True))
            )
        peak = registry.providers[provider].score
        for _ in range(10):  # 10 hours = several half-lives
            chain.mine_block()
        decayed = chain.call(address, "score_of", provider)
        assert NEUTRAL_SCORE < decayed < peak

    def test_ranked_ordering(self, registry_chain):
        chain, registry, address, reporter = registry_chain
        good = _register(chain, address)
        bad = _register(chain, address)
        for _ in range(4):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(good, True))
            )
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(bad, False))
            )
        ranking = chain.call(address, "ranked")
        assert ranking[0][0] == good
        assert ranking[-1][0] == bad


class TestSybilResistance:
    def test_fresh_identities_cost_capital_and_start_neutral(self, registry_chain):
        """Whitewashing via re-registration burns a stake per identity and
        never yields a better-than-neutral score."""
        chain, registry, address, reporter = registry_chain
        sybil_budget_eth = 3.0
        attacker_ids = []
        for _ in range(3):
            identity = _register(chain, address, stake_eth=1.0)
            attacker_ids.append(identity)
        total_locked = sum(
            registry.providers[i].stake_wei for i in attacker_ids
        )
        assert total_locked == int(sybil_budget_eth * WEI_PER_ETH)
        for identity in attacker_ids:
            assert registry.providers[identity].score == NEUTRAL_SCORE
        # An established honest provider outranks every fresh Sybil.
        honest = _register(chain, address)
        for _ in range(5):
            chain.transact(
                Transaction(sender=reporter, to=address, method="report_audit",
                            args=(honest, True))
            )
        ranking = chain.call(address, "ranked")
        assert ranking[0][0] == honest
