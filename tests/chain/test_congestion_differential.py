"""Differential check: the mempool path is invisible at uncongested load.

The same audit workload — a small fleet of contracts with a couple of
misbehaving providers — is run twice over identical chains: once with
provider agents calling ``transact()`` (the direct legacy path) and once
submitting through the fee-market mempool.  Below the gas target the pool
must be a pure reordering buffer: every proof lands in the same block,
every round reaches the same verdict, and the final ``state_hash`` is
bit-identical.

Two ingredients make bit-identity (not just equivalence) possible:

* both chains carry a pool (so the base-fee stamp/roll happens on both),
  configured with ``burn_base_fee=False``,
* the pooled agents keep legacy pricing (``pool_legacy_fees``): with the
  burn redirected to the fee sink, a legacy-priced pooled transaction is
  charged exactly ``gas_price`` — the same wei the direct path charges.

Run for a sequential chain and for a 4-lane sharded fabric.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import (
    ContractTerms,
    deploy_audit_contract,
    run_contracts_to_completion,
)
from repro.chain.blockchain import Blockchain
from repro.chain.fabric import ShardedChainFabric
from repro.chain.mempool import FeeMarketConfig, MempoolConfig
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon

PARAMS = ProtocolParams(s=4, k=3)
TERMS = ContractTerms(num_audits=2, audit_interval=15.0, response_window=15.0)
FLEET = 6
MISBEHAVING = 2
FILE_BYTES = 500


def _market() -> MempoolConfig:
    return MempoolConfig(fee_market=FeeMarketConfig(burn_base_fee=False))


def _fleet():
    """Deterministic packages + providers, rebuilt identically per run."""
    rng = random.Random(0xD1FF)
    owner = DataOwner(PARAMS, rng=rng)
    fleet = []
    for index in range(FLEET):
        package = owner.prepare(
            bytes(rng.randrange(256) for _ in range(FILE_BYTES)),
            fresh_keypair=index == 0,
        )
        provider = StorageProvider(rng=rng)
        assert provider.accept(package)
        fleet.append((package, provider))
    return fleet


def _run_workload(chain, use_pool: bool):
    """Deploy the fleet, run every contract to completion, collect verdicts."""
    beacon = HashChainBeacon(b"congestion-differential")
    deployments = []
    for index, (package, provider) in enumerate(_fleet()):
        deployment = deploy_audit_contract(
            chain, package, provider, TERMS, beacon, PARAMS,
            # Pin the recorded verification time: it is a wall-clock
            # measurement otherwise, and it lives in contract state.
            native_verify_ms=50.0,
        )
        if index < MISBEHAVING:
            deployment.provider_agent.misbehave_after_round = 0
        deployment.provider_agent.use_pool = use_pool
        deployment.provider_agent.pool_legacy_fees = True
        deployments.append(deployment)
    contracts = run_contracts_to_completion(chain, deployments)
    verdicts = tuple(
        tuple(bool(r.passed) for r in contract.rounds)
        for contract in contracts
    )
    states = tuple(contract.state.name for contract in contracts)
    return verdicts, states


def test_sequential_chain_pool_vs_transact_bit_identical():
    direct = Blockchain(mempool=_market())
    pooled = Blockchain(mempool=_market())
    direct_verdicts, direct_states = _run_workload(direct, use_pool=False)
    pooled_verdicts, pooled_states = _run_workload(pooled, use_pool=True)

    assert pooled_verdicts == direct_verdicts
    assert pooled_states == direct_states
    assert any(not v for vs in pooled_verdicts for v in vs)  # real rejects
    assert pooled.state_hash() == direct.state_hash()
    assert pooled.total_supply() == direct.total_supply()
    assert pooled.store.burned == 0  # the burn was redirected, not lost

    # The pool was genuinely on the path — and never under pressure.
    assert direct.pool.stats["drained"] == 0
    assert pooled.pool.stats["drained"] > 0
    assert pooled.pool.rejection_total() == 0
    assert len(pooled.pool) == 0  # fully drained at close


def test_four_lane_fabric_pool_vs_transact_bit_identical():
    direct = ShardedChainFabric(num_lanes=4, mempool=_market())
    pooled = ShardedChainFabric(num_lanes=4, mempool=_market())
    direct_verdicts, direct_states = _run_workload(direct, use_pool=False)
    pooled_verdicts, pooled_states = _run_workload(pooled, use_pool=True)

    assert pooled_verdicts == direct_verdicts
    assert pooled_states == direct_states
    assert pooled.state_hash() == direct.state_hash()
    for direct_lane, pooled_lane in zip(direct.lanes, pooled.lanes):
        assert pooled_lane.state_hash() == direct_lane.state_hash()
        assert len(pooled_lane.pool) == 0
        assert pooled_lane.pool.priority_inversions == 0
    # The fleet hashes onto more than one lane, and at least one lane's
    # pool actually carried proofs.
    drained = [lane.pool.stats["drained"] for lane in pooled.lanes]
    assert sum(1 for d in drained if d) >= 2
