"""Epoch checkpoint rollup, narrated: 64 files, 1 commitment, 1 fraud proof.

The story this demo tells (docs/PROTOCOL.md section 9):

1. A provider stores 64 files for 8 owners.  One beacon epoch fires and
   every file is audited off chain through the parallel engine.
2. Instead of 64 (challenge, proof, verdict) postings, the aggregator
   commits a single 85-byte Merkle verdict-tree root on chain, bonded for
   a fraud-proof window.
3. A light client verifies any single file's audit from the commitment
   plus one inclusion proof — no trust in the aggregator.
4. A *lying* aggregator flips one verdict in the next epoch's tree.  A
   challenger opens that one leaf on chain; the contract re-verifies the
   round from the leaf's own bytes and slashes the poster's bond.

Run me:  PYTHONPATH=src python examples/checkpoint_rollup.py
"""

from __future__ import annotations

import random

from repro.chain import (
    Blockchain,
    ChainExplorer,
    CheckpointContract,
    CheckpointLightClient,
    CheckpointStatus,
    Transaction,
    audit_the_auditor_checkpoints,
    checkpoint_amortization,
)
from repro.core import DataOwner, ProtocolParams
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.randomness import HashChainBeacon
from repro.rollup import CheckpointPipeline, build_checkpoint
from repro.sim.workloads import archive_file

OWNERS = 8
FILES_PER_OWNER = 8
PARAMS = ProtocolParams(s=6, k=4)  # demo-scale; the paper uses s=50, k=300


def main() -> int:
    rng = random.Random(0xCDE0)
    print("=" * 72)
    print("1) Fleet setup: 8 owners x 8 files on one storage provider")
    print("=" * 72)
    instances = []
    for owner_index in range(OWNERS):
        owner = DataOwner(PARAMS, rng=rng)
        for file_index in range(FILES_PER_OWNER):
            package = owner.prepare(
                archive_file(1_000, tag=f"o{owner_index}f{file_index}").data,
                fresh_keypair=file_index == 0,
            )
            instances.append(
                AuditInstance.from_package(package, owner_id=f"owner-{owner_index}")
            )
    print(f"   {len(instances)} audit instances prepared (s={PARAMS.s}, "
          f"k={PARAMS.k})")

    beacon = HashChainBeacon(b"checkpoint-rollup-demo")
    chain = Blockchain(block_time=15.0)
    aggregator = chain.create_account(10.0, label="aggregator")
    challenger = chain.create_account(1.0, label="watchtower")
    contract = CheckpointContract(beacon, PARAMS, fraud_window=600.0)
    address = chain.deploy(contract, deployer=aggregator)

    with AuditExecutor(instances, workers=1) as executor:
        scheduler = EpochScheduler(
            executor, PARAMS, beacon, rng=rng, checkpoint_mode=True
        )
        pipeline = CheckpointPipeline(scheduler, chain, address, aggregator)
        pipeline.register_fleet()

        print()
        print("=" * 72)
        print("2) One epoch, one commitment: 64 audits -> 85 on-chain bytes")
        print("=" * 72)
        settled = pipeline.settle_epoch(0)
        commitment = settled.bundle.checkpoint
        print(f"   epoch 0: {commitment.num_leaves} audits "
              f"({commitment.accepted} accepted, {commitment.rejected} "
              f"rejected)")
        print(f"   commitment: root {commitment.root.hex()[:16]}..., "
              f"{commitment.byte_size()} bytes, gas "
              f"{settled.receipt.gas_used:,}")
        amortized = checkpoint_amortization(chain.schedule, len(instances))
        print(f"   vs per-round postings: {amortized.per_round_trail_bytes:,} "
              f"trail bytes and {amortized.per_round_gas:,} gas "
              f"({amortized.bytes_reduction:,.0f}x bytes, "
              f"{amortized.gas_reduction:,.0f}x gas saved)")

        print()
        print("=" * 72)
        print("3) Light client: per-file inclusion proof against the root")
        print("=" * 72)
        client = CheckpointLightClient(
            contract.export_instance_registry(), PARAMS, beacon
        )
        sample = instances[17].name
        proof = settled.bundle.prove(sample)
        outcome = client.verify_inclusion(commitment, proof)
        print(f"   file {sample:#x}: opened leaf {proof.leaf_index} with "
              f"{len(proof.siblings)} siblings -> "
              f"{'VERIFIED' if outcome.ok else outcome.reason}")
        replay = audit_the_auditor_checkpoints(contract, pipeline)
        print(f"   full replay of every settled checkpoint: "
              f"{replay.rounds_checked} rounds, "
              f"{'consistent' if replay.consistent else 'INCONSISTENT'}")

        print()
        print("=" * 72)
        print("4) Fraud proof: a verdict-flipped checkpoint gets slashed")
        print("=" * 72)
        result = scheduler.run_epoch(1)
        records = list(result.checkpoint.records)
        victim = records[5]
        records[5] = victim.flipped()
        forged = build_checkpoint(1, tuple(records))
        print(f"   lying aggregator commits epoch 1 with file "
              f"{victim.name:#x}'s verdict flipped "
              f"({'pass' if victim.verdict else 'fail'} -> "
              f"{'pass' if records[5].verdict else 'fail'})")
        receipt = chain.transact(
            Transaction(
                sender=aggregator,
                to=address,
                method="post_checkpoint",
                args=(forged.checkpoint.to_bytes(),),
                value=contract.posting_bond_wei,
            ),
            payload_bytes=forged.checkpoint.byte_size(),
        )
        checkpoint_id = receipt.return_value
        opening = forged.prove(victim.name)
        before = chain.balance_of(challenger)
        challenge_receipt = chain.transact(
            Transaction(
                sender=challenger,
                to=address,
                method="challenge_leaf",
                args=(
                    checkpoint_id,
                    opening.leaf_data,
                    opening.leaf_index,
                    opening.siblings,
                    opening.directions,
                ),
                value=contract.challenge_bond_wei,
            ),
            payload_bytes=len(opening.leaf_data) + 32 * len(opening.siblings),
        )
        entry = contract.checkpoints[checkpoint_id]
        print(f"   watchtower opens that single leaf on chain...")
        print(f"   contract re-verifies the round: {entry.fraud_reason}")
        print(f"   checkpoint status: {entry.status.value}; watchtower "
              f"bounty: {chain.balance_of(challenger) - before:,} wei")

    print()
    print("=" * 72)
    print("5) Explorer: the on-chain checkpoint log")
    print("=" * 72)
    explorer = ChainExplorer(chain)
    for event in explorer.checkpoint_log():
        print(f"   {event['name']}: {event['payload']}")

    ok = (
        replay.consistent
        and outcome.ok
        and entry.status is CheckpointStatus.SLASHED
        and challenge_receipt.success
    )
    print()
    print("rollup demo:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
