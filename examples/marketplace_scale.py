#!/usr/bin/env python3
"""Marketplace scale-out: the Section VII-D systems analysis, executable.

Simulates a small live slice of the decentralized storage marketplace
(real contracts on a real simulated chain) and extrapolates to paper scale
with the measured quantities:

* chain throughput and the maximum sustainable user base,
* annual blockchain growth (Fig. 10 left),
* per-provider proving load with batch auditing (Fig. 10 right),
* the economics: per-audit, per-year, vs the cloud comparator.

Run:  python examples/marketplace_scale.py
"""

from __future__ import annotations

import random
import time

from repro.chain import Blockchain, ContractTerms, deploy_audit_contract
from repro.chain.agents import run_contracts_to_completion
from repro.core import (
    BatchItem,
    DataOwner,
    ProtocolParams,
    StorageProvider,
    random_challenge,
    verify_batch,
    verify_sequential,
)
from repro.randomness import HashChainBeacon
from repro.sim.economics import AnnualCostReport, usd_per_audit
from repro.sim.throughput import ChainCapacityModel, ProviderLoadModel


def main() -> None:
    rng = random.Random(5000)
    params = ProtocolParams(s=8, k=5)
    beacon = HashChainBeacon(b"marketplace")

    # ---- a live slice: 4 users, one shared chain ---------------------------
    print("=== live slice: 4 users, 2 audit rounds each, one chain ===")
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=2, audit_interval=80.0, response_window=25.0)
    deployments = []
    for user in range(4):
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(bytes([user + 1]) * 2000)
        provider = StorageProvider(rng=rng)
        deployments.append(
            deploy_audit_contract(chain, package, provider, terms, beacon, params)
        )
    contracts = run_contracts_to_completion(chain, deployments)
    rounds = sum(len(c.rounds) for c in contracts)
    trail = sum(c.total_trail_bytes() for c in contracts)
    print(f"{len(contracts)} contracts closed, {rounds} audit rounds, "
          f"all passed: {all(c.fails == 0 for c in contracts)}")
    print(f"chain: {len(chain.blocks)} blocks, {chain.chain_bytes():,} bytes "
          f"({trail:,} bytes of audit trails)\n")

    # ---- provider-side batching (one provider serving many owners) ---------
    print("=== batch auditing: one provider, 4 owners ===")
    items = []
    shared_provider = StorageProvider(rng=rng)
    for user in range(4):
        owner = DataOwner(params, rng=rng)
        package = owner.prepare(bytes([user + 10]) * 1500)
        assert shared_provider.accept(package)
        challenge = random_challenge(params, rng=rng)
        items.append(
            BatchItem(
                public=package.public,
                name=package.name,
                num_chunks=package.num_chunks,
                challenge=challenge,
                proof=shared_provider.respond(package.name, challenge),
            )
        )
    start = time.perf_counter()
    assert verify_sequential(items)
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    assert verify_batch(items, rng=rng)
    batch_s = time.perf_counter() - start
    print(f"sequential verification: {sequential_s*1000:.0f} ms; "
          f"batched: {batch_s*1000:.0f} ms "
          f"({sequential_s/batch_s:.2f}x)\n")

    # ---- extrapolation to paper scale --------------------------------------
    print("=== paper-scale extrapolation (Section VII-D) ===")
    capacity = ChainCapacityModel()
    load = ProviderLoadModel()
    print(f"throughput: {capacity.tx_per_second:.2f} tx/s "
          f"(18 KB blocks / 15 s)")
    print(f"max users at daily audits, 10x redundancy: "
          f"{capacity.max_concurrent_users():,}")
    for users in (1_000, 5_000, 10_000):
        growth = capacity.annual_chain_growth_bytes(users) / 2**30
        per_provider = load.users_per_provider(users)
        prove_all = load.proving_time_for_all(per_provider)
        print(f"  {users:>6,} users: chain +{growth:.2f} GB/yr, "
              f"{per_provider} users/provider, "
              f"{prove_all:.1f} s to prove all "
              f"({'tolerable' if load.tolerable(per_provider) else 'too slow'})")

    print("\n=== economics ===")
    print(f"per audit: ${usd_per_audit():.3f} at 5 Gwei "
          f"(${usd_per_audit(gas_price_gwei=1.2):.3f} at 1.2 Gwei - the "
          f"abstract's $0.1 reading)")
    for label, report in (
        ("single provider, daily", AnnualCostReport().compute()),
        (
            "10x redundancy, batched",
            AnnualCostReport(
                redundancy_providers=10, batch_redundant_audits=True
            ).compute(),
        ),
    ):
        print(f"  {label}: ${report['yearly_auditing_usd']:.0f}/yr auditing "
              f"+ ${report['one_time_setup_usd']:.2f} setup "
              f"(Dropbox Business: ${report['dropbox_business_usd']:.0f}/yr)")


if __name__ == "__main__":
    main()
