#!/usr/bin/env python3
"""Quickstart: one file, one provider, one on-chain audit contract.

Walks the full paper pipeline in ~a minute of pure Python:

1. the data owner prepares a file (keygen, chunking, authenticators),
2. the provider validates the package and acknowledges the contract,
3. both sides lock deposits; the contract schedules periodic audits,
4. the chain runs challenge -> prove -> verify rounds, paying the provider
   per pass, until the contract expires.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.chain import (
    Blockchain,
    ContractTerms,
    CostModel,
    deploy_audit_contract,
    run_contract_to_completion,
)
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon
from repro.sim.workloads import archive_file


def main() -> None:
    rng = random.Random(2026)

    # Bench-scale parameters; production would use s=50, k=300 (see README).
    params = ProtocolParams(s=10, k=8)
    print(f"protocol parameters: s={params.s} blocks/chunk, k={params.k} "
          f"challenged chunks, {params.challenge_bytes}-byte challenges")

    # 1. Owner-side preprocessing.
    owner = DataOwner(params, rng=rng)
    data = archive_file(30_000, tag="quickstart").data
    package = owner.prepare(data)
    print(f"prepared {len(data):,} bytes -> {package.num_chunks} chunks, "
          f"pk = {package.public.byte_size():,} B on chain")

    # 2. Provider-side validation (the Initialize-phase defence).
    provider = StorageProvider(rng=rng)
    accepted = provider.accept(package)
    print(f"provider validated keys + authenticators: {accepted}")

    # 3. Deploy the Fig. 2 contract and lock deposits.
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=3, audit_interval=120.0, response_window=30.0)
    beacon = HashChainBeacon(b"quickstart-beacon")
    deployment = deploy_audit_contract(
        chain, package, provider, terms, beacon, params
    )
    print(f"contract at {deployment.contract_address[:16]}..., "
          f"deposits locked, first challenge scheduled")

    # 4. Let the chain run.
    contract = run_contract_to_completion(chain, deployment)
    cost = CostModel()
    print(f"\ncontract closed: {contract.passes} passes, {contract.fails} fails")
    for round_record in contract.rounds:
        print(
            f"  round {round_record.round_id}: "
            f"{'PASS' if round_record.passed else 'FAIL'}  "
            f"gas={round_record.gas_used:,} "
            f"(${cost.gas_to_usd(round_record.gas_used):.2f})  "
            f"trail={round_record.trail_bytes()} B"
        )
    print(f"\nevents: {[e.name for e in chain.events]}")
    gain = chain.balance_of_eth(deployment.provider_account) - 10.0
    print(f"provider net earnings: {gain:+.4f} ETH")


if __name__ == "__main__":
    main()
