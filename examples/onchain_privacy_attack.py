#!/usr/bin/env python3
"""The Section V-C on-chain privacy attack, demonstrated both ways.

An eclipse attacker who can feed a victim chosen challenge randomness
observes audit trails on the public chain:

* against the **non-private** protocol (paper Eq. 1), s*u transcripts let
  it Lagrange-interpolate the response polynomials and solve a linear
  system that recovers **every raw block** of the challenged chunks;
* against the **Sigma-masked** protocol (paper Eq. 2 — this paper's
  contribution), the identical pipeline yields field noise.

The file is "encrypted" with deterministic (convergent) encryption, the
dedup-friendly mode the paper warns about: recovering ciphertext blocks is
enough for confirmation-of-file attacks.

Run:  python examples/onchain_privacy_attack.py
"""

from __future__ import annotations

import random

from repro.core import (
    DataOwner,
    EclipseChallengeFactory,
    InterpolationAttacker,
    ProtocolParams,
    StorageProvider,
    transcript_from_plain,
    transcript_from_private,
    transcripts_needed,
)
from repro.storage.encryption import encrypt_file, generate_key


def run_attack(params, package, prover, respond, to_transcript, rng):
    """The eclipse scenario: pin C1 (indices), vary C2 and r."""
    factory = EclipseChallengeFactory(params, rng=rng)
    attacker = InterpolationAttacker(params, package.num_chunks)
    pinned_c1, _ = factory.fresh_set_seeds()
    target = None
    for _ in range(params.k):                 # u = k coefficient sets
        _, c2 = factory.fresh_set_seeds()
        for _ in range(params.s):             # s evaluation points each
            challenge = factory.challenge(pinned_c1, c2)
            proof = respond(challenge)
            attacker.observe(to_transcript(challenge, proof))
            if target is None:
                target = challenge.expand(package.num_chunks).indices
    return attacker, target


def main() -> None:
    rng = random.Random(31337)
    params = ProtocolParams(s=6, k=4)

    # The victim's file: convergent-encrypted "private" photos.
    plaintext = b"EXIF:2026:06:08 GPS:22.3193,114.1694 " * 40
    key = generate_key(plaintext, "convergent")
    ciphertext = encrypt_file(plaintext, key, "convergent").ciphertext

    owner = DataOwner(params, rng=rng)
    package = owner.prepare(ciphertext)
    provider = StorageProvider(rng=rng)
    assert provider.accept(package)
    prover = provider.prover_for(package.name)
    need = transcripts_needed(params, params.k)
    print(f"victim file: {len(ciphertext)} bytes -> {package.num_chunks} chunks")
    print(f"attack budget: s*u = {params.s}*{params.k} = {need} transcripts\n")

    # ---- phase 1: the legacy non-private protocol --------------------------
    print("=== attacking NON-PRIVATE proofs (paper Eq. 1) ===")
    attacker, target = run_attack(
        params, package, prover, prover.respond_plain, transcript_from_plain, rng
    )
    recovered = attacker.recover_blocks(target)
    assert recovered is not None
    hits = sum(
        list(package.chunked.chunks[i]) == recovered[i] for i in target
    )
    print(f"observed {attacker.transcripts_seen} on-chain transcripts")
    print(f"recovered {hits}/{len(target)} challenged chunks EXACTLY")
    # Convergent encryption => the attacker can now run confirmation attacks
    # against candidate plaintexts entirely off-line.
    print("with convergent encryption these ciphertext blocks enable "
          "confirmation-of-file attacks\n")

    # ---- phase 2: the paper's Sigma-masked protocol -------------------------
    print("=== attacking PRIVATE proofs (paper Eq. 2, this work) ===")
    attacker2, target2 = run_attack(
        params, package, prover, prover.respond_private,
        transcript_from_private, rng,
    )
    recovered2 = attacker2.recover_blocks(target2)
    if recovered2 is None:
        print("attack pipeline failed outright (singular system)")
    else:
        hits2 = sum(
            list(package.chunked.chunks[i]) == recovered2[i] for i in target2
        )
        print(f"observed {attacker2.transcripts_seen} transcripts")
        print(f"recovered {hits2}/{len(target2)} chunks "
              f"(every 'recovered' block is uniform field noise)")
    print("\nthe Sigma masking (y' = zeta*y + z, fresh z per proof) is a "
          "one-time pad over Zp:\nno number of transcripts helps.")


if __name__ == "__main__":
    main()
