"""A decade of a photo archive's life, narrated: churn, repair, eviction.

The question a DSN depositor actually has — *will my archive still be
there in ten years?* — answered by simulation rather than hand-waving:

1. Two archives are erasure-coded RS(4,2) across 8 staked providers and
   placed under audit (one dormant Fig. 2 contract per shard + the epoch
   checkpoint rollup over a 2-lane sharded chain fabric).
2. Year after year, providers crash, leave politely or silently go flaky.
   Every epoch the whole fleet is challenged through the parallel audit
   engine; failures become ``no-proof`` rejections in that epoch's
   on-chain checkpoint.
3. Every failed shard is regenerated from survivors and re-placed on the
   best-reputation provider (the on-chain registry feeds placement),
   re-keyed, and put under a fresh audit contract.
4. Providers whose audit record rots below threshold are *evicted*: their
   registry stake is slashed on chain and their shards migrate away.
5. The run ends with the archives decrypting byte-for-byte — and a second
   run from the same seed reproduces the identical event trail and chain
   state hash.

QUICK=1 compresses the decade to two years for the CI smoke job.

Run me:  PYTHONPATH=src python examples/decade_archive.py
"""

from __future__ import annotations

import os

from repro.lifecycle import LifecycleConfig, LifecycleEngine
from repro.sim.throughput import LifecycleCapacityModel

QUICK = os.environ.get("QUICK", "") == "1"

CONFIG = LifecycleConfig(
    years=2.0 if QUICK else 10.0,
    epochs_per_year=4 if QUICK else 6,
    files=2,
    file_bytes=700,
    erasure_n=4,
    erasure_k=2,
    providers=8,
    churn=0.3,
    flake_rate=0.2,
    lanes=2,
    seed=2026,
    s=4,
    k=3,
)


def main() -> int:
    print(__doc__.split("\n\n")[0])
    print(f"\n[1] storing {CONFIG.files} archives x RS({CONFIG.erasure_n},"
          f"{CONFIG.erasure_k}) on {CONFIG.providers} staked providers, "
          f"{CONFIG.lanes}-lane fabric…")
    engine = LifecycleEngine(CONFIG)
    horizon = CONFIG.total_epochs
    print(f"[2] living {CONFIG.years:g} years = {horizon} epochs "
          f"(churn {CONFIG.churn:.0%}/yr, flake {CONFIG.flake_rate:.0%}/yr)")
    while engine.next_epoch <= horizon:
        summary = engine.run_epoch()
        beats = []
        if summary.departed:
            beats.append(f"{summary.departed} departed")
        if summary.joined:
            beats.append(f"{summary.joined} joined")
        if summary.rejected:
            beats.append(f"{summary.rejected} audits failed")
        if summary.repaired:
            beats.append(f"{summary.repaired} shards repaired")
        if summary.evicted:
            beats.append(f"{summary.evicted} providers evicted")
        story = f" — {', '.join(beats)}" if beats else ""
        print(f"    epoch {summary.epoch:3d}: {summary.audits} audits, "
              f"1 checkpoint/lane settled{story}")
    outcome = engine.outcome()

    print(f"\n[3] the ledger of a {CONFIG.years:g}-year life:")
    print(f"    {len(outcome.trail)} trail events: "
          f"{len(outcome.trail.of_kind('crashed'))} crashes, "
          f"{len(outcome.trail.of_kind('left'))} polite departures, "
          f"{len(outcome.trail.of_kind('flaky'))} flaky turns, "
          f"{outcome.total_repairs} shard repairs, "
          f"{outcome.total_evictions} evictions")
    slashes = outcome.trail.of_kind("slashed")
    evicted_names = {e.subject for e in outcome.trail.of_kind("evicted")}
    slashed_names = {e.subject for e in slashes}
    print(f"    every eviction slashed on chain: "
          f"{evicted_names <= slashed_names} "
          f"({len(slashes)} stake_slashed events)")
    print(f"    settlement: {outcome.total_commitment_gas:,} gas across "
          f"{outcome.epochs_run} epochs on {CONFIG.lanes} lanes")

    print("\n[4] did the archives survive?")
    floor = min(s.min_healthy_shards for s in outcome.summaries)
    print(f"    healthy-shard floor: {floor} (reconstruction needs "
          f"{CONFIG.erasure_k})")
    print(f"    byte-for-byte retrieval after {CONFIG.years:g} years: "
          f"{outcome.files_intact}")
    model = LifecycleCapacityModel(
        lanes=CONFIG.lanes,
        epochs_per_year=CONFIG.epochs_per_year,
        churn=CONFIG.churn,
        erasure_n=CONFIG.erasure_n,
        erasure_k=CONFIG.erasure_k,
    )
    print(f"    closed-form projection agrees: P[survive "
          f"{CONFIG.years:g} yr] = "
          f"{model.projected_durability(CONFIG.years):.6f}")

    print("\n[5] and the whole decade is replayable:")
    print(f"    trail digest  {outcome.trail_digest}")
    print(f"    state hash    {outcome.state_hash}")
    print("    (same seed => same digests; run me twice and diff)")
    engine.close()
    ok = outcome.files_intact and floor >= CONFIG.erasure_k
    print(f"\n{'OK' if ok else 'FAILED'}: the archive outlived its providers.")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
