#!/usr/bin/env python3
"""Adversarial audit demo: byzantine providers, detection, on-chain dispute.

Two acts, both fast enough for CI:

1. **Engine-side detection** — a fleet mixing honest providers with one
   provider per byzantine strategy (forged tags, replayed proofs,
   selective storage, bit-rot, churn) runs three beacon epochs through the
   parallel audit engine.  Every tampered or withheld response is caught;
   measured detection rates are printed next to the closed-form
   ``1 - (1 - rho)^c`` prediction.
2. **On-chain consequences** — a replaying provider runs a real audit
   contract.  The failed rounds record structured rejection reasons, the
   data owner raises disputes, and arbitration slashes both contract
   collateral and the provider's reputation-registry stake — all visible
   in the chain explorer.

Run:  PYTHONPATH=src python examples/adversarial_audit.py
See:  docs/SCENARIOS.md for the full strategy catalogue.
"""

from __future__ import annotations

from repro.adversary import (
    ScenarioRunner,
    StrategySpec,
    measured_detection_rate,
    run_onchain_dispute,
)
from repro.core import ProtocolParams


def main() -> None:
    params = ProtocolParams(s=4, k=4)

    print("=== Act 1: strategy mix through the parallel audit engine ===")
    runner = ScenarioRunner(
        [
            StrategySpec("honest", count=2),
            StrategySpec("forge"),
            StrategySpec("replay"),
            StrategySpec("selective", rho=0.4),
            StrategySpec("bitrot", rho=0.4),
            StrategySpec("offline", rho=0.6),
        ],
        params=params,
        file_bytes=1200,
    )
    report = runner.run(epochs=3)
    print("\n".join(report.summary_lines()))
    assert report.zero_false_accepts, "a tampered proof was accepted!"
    assert report.zero_false_rejects, "an honest proof was rejected!"

    measured, predicted = measured_detection_rate(
        num_chunks=80, rho=0.25, params=ProtocolParams(s=4, k=6), trials=2000
    )
    print(
        f"\nselective storage over 2000 sampled challenges: "
        f"measured {measured:.3f} vs predicted 1-(1-rho)^c = {predicted:.3f}"
    )

    print("\n=== Act 2: on-chain dispute flow ===")
    result = run_onchain_dispute(strategy="replay", rounds=3, params=params)
    print("\n".join(result.summary_lines()))
    assert result.fails > 0, "the cheating provider was never caught"
    assert result.stake_after_wei < result.stake_before_wei, (
        "the dispute did not slash the provider's registry stake"
    )
    print("\ncheating was detected, disputed, and slashed on chain.")


if __name__ == "__main__":
    main()
