#!/usr/bin/env python3
"""Photo-archive backup: the paper's motivating scenario, end to end.

A user backs up a photo collection to the DSN: encrypt, erasure-code
(the paper's 3-out-of-10 example), distribute via the Chord DHT, and put
every shard-holding provider under an on-chain audit contract.  Mid-way,
one provider silently deletes its shard — the audit catches it, the owner
is compensated from the provider's deposit, and the photos survive.

Run:  python examples/photo_archive_backup.py
"""

from __future__ import annotations

import random

from repro.chain import (
    Blockchain,
    ContractTerms,
    CostModel,
    deploy_audit_contract,
)
from repro.chain.agents import run_contracts_to_completion
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon
from repro.sim.workloads import photo_collection
from repro.storage import DsnClient, DsnCluster, SimulatedNetwork


def main() -> None:
    rng = random.Random(7)
    params = ProtocolParams(s=8, k=5)

    # --- the photo collection (kept small so the demo runs in ~a minute) ---
    photos = photo_collection(3, seed=11, mean_kb=8.0)
    album = b"".join(p.data for p in photos)
    print(f"album: {len(photos)} photos, {len(album):,} bytes total")

    # --- DSN: 12 providers, RS(10, 3) per the paper's example ---
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(1)))
    for index in range(12):
        cluster.add_node(f"provider-{index}")
    client = DsnClient("alice", cluster)
    manifest = client.store("photo-album", album, n=10, k=3)
    print(
        f"stored as {manifest.erasure_n} shards (any {manifest.erasure_k} "
        f"reconstruct, {manifest.redundancy_factor:.1f}x redundancy) on "
        f"{len(manifest.providers)} providers via DHT"
    )

    # --- audit layer: one Fig. 2 contract per shard ---
    chain = Blockchain(block_time=15.0)
    terms = ContractTerms(num_audits=2, audit_interval=90.0, response_window=30.0)
    beacon = HashChainBeacon(b"album-audits")
    owner = DataOwner(params, rng=rng)
    deployments = []
    for location in manifest.shards:
        shard = cluster.node(location.provider).get(
            "photo-album", location.shard_index
        )
        package = owner.prepare(shard)
        provider_role = StorageProvider(rng=rng)
        deployment = deploy_audit_contract(
            chain, package, provider_role, terms, beacon, params
        )
        deployments.append((location, deployment))
    print(f"deployed {len(deployments)} audit contracts")

    # --- one provider goes rogue after the first round ---
    rogue_location, rogue_deployment = deployments[2]
    rogue_deployment.provider_agent.misbehave_after_round = 1
    cluster.node(rogue_location.provider).drop_file("photo-album")
    print(f"{rogue_location.provider} silently dropped its shard!")

    # --- run all contracts concurrently on the shared chain ---
    contracts = run_contracts_to_completion(
        chain, [d for _, d in deployments]
    )
    cost = CostModel()
    total_gas = sum(c.total_audit_gas() for c in contracts)
    print("\naudit outcomes:")
    for (location, _), contract in zip(deployments, contracts):
        verdict = f"{contract.passes} pass / {contract.fails} fail"
        flag = "  <- caught!" if contract.fails else ""
        print(f"  shard {location.shard_index} @ {location.provider}: {verdict}{flag}")
    print(
        f"total auditing gas: {total_gas:,} "
        f"(${cost.gas_to_usd(total_gas):.2f} for "
        f"{sum(len(c.rounds) for c in contracts)} rounds across "
        f"{len(contracts)} providers)"
    )

    # --- compensation + recovery ---
    owner_compensation = chain.balance_of_eth(rogue_deployment.owner_account)
    print(f"owner compensated from rogue provider's deposit: "
          f"{owner_compensation:.4f} ETH")
    recovered = client.retrieve(manifest)
    assert recovered == album
    print("album fully recovered from the 9 surviving shards")

    # --- repair back to full redundancy ---
    manifest = client.repair(manifest, rogue_location.provider)
    assert client.retrieve(manifest) == album
    print(f"redundancy repaired: shards now on {len(manifest.providers)} providers")


if __name__ == "__main__":
    main()
