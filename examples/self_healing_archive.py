#!/usr/bin/env python3
"""Self-healing archive: the full orchestration loop in one object.

``AuditedDsn`` glues together everything this library implements — Chord
placement, erasure coding, per-shard Fig. 2 audit contracts, the
reputation registry, and automatic repair.  This demo stores an archive,
kills a provider, and watches the system notice (failed audit), compensate
(slashed deposit), heal (shard regenerated onto a fresh node) and re-arm
(replacement audit contract) without any operator action.

Run:  python examples/self_healing_archive.py
"""

from __future__ import annotations

import random

from repro.chain import Blockchain, ContractTerms
from repro.chain.explorer import ChainExplorer
from repro.core import ProtocolParams
from repro.dsn import AuditedDsn
from repro.randomness import HashChainBeacon
from repro.storage import DsnCluster, SimulatedNetwork


def main() -> None:
    cluster = DsnCluster(network=SimulatedNetwork(rng=random.Random(1)))
    for index in range(8):
        cluster.add_node(f"node-{index}")
    chain = Blockchain(block_time=15.0)
    system = AuditedDsn(
        cluster,
        chain,
        HashChainBeacon(b"self-healing"),
        params=ProtocolParams(s=5, k=3),
        terms=ContractTerms(num_audits=2, audit_interval=60.0,
                            response_window=20.0),
        rng=random.Random(2),
    )

    payload = b"quarterly backups, do not lose " * 60
    audited = system.store("dave", "q2-backup", payload, n=4, k=2)
    print(f"stored {len(payload):,} bytes as RS(4,2) shards on "
          f"{[sa.provider for sa in audited.shard_audits]}")

    victim = audited.shard_audits[0]
    victim.deployment.provider_agent.misbehave_after_round = 0
    cluster.node(victim.provider).drop_file("q2-backup")
    print(f"\n{victim.provider} went rogue: shard deleted, will ignore audits")

    repaired = []
    for step in range(4000):
        repaired.extend(system.run(1))
        if system.all_contracts_closed():
            break
    print(f"\nall contracts closed after {len(chain.blocks)} blocks")
    print(f"files auto-repaired: {sorted(set(repaired)) or 'none'}")

    replacement = next(
        sa for sa in audited.shard_audits
        if sa.shard_index == victim.shard_index and not sa.replaced
    )
    print(f"shard {victim.shard_index}: {victim.provider} (failed) -> "
          f"{replacement.provider} (replacement, under fresh contract)")

    recovered = system.retrieve("q2-backup")
    assert recovered == payload
    print("archive retrieved intact")

    explorer = ChainExplorer(chain)
    print("\non-chain picture:")
    for summary in explorer.audit_contracts():
        print(f"  {summary.address[:14]}...  {summary.state:>7}  "
              f"{summary.passes}P/{summary.fails}F  "
              f"gas={summary.total_gas:,}")
    print(f"events: {explorer.event_counts()}")


if __name__ == "__main__":
    main()
