"""Minimal Prometheus scrape endpoint on the standard library.

The JSON-RPC service speaks newline-delimited JSON over raw TCP, so the
Prometheus exposition lives on its own small HTTP server (a scraper
expects plain HTTP GET).  ``GET /metrics`` returns the registry in text
exposition format 0.0.4; ``GET /metrics.jsonl`` returns the JSON-lines
rendering; anything else is 404.  Runs on a daemon thread; ``port=0``
binds an ephemeral port (read it back from ``server.port``).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .registry import MetricsRegistry, get_registry

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set on the server class per instance

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        registry = self.server.registry  # type: ignore[attr-defined]
        if self.path in ("/metrics", "/"):
            body = registry.to_prometheus().encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        elif self.path == "/metrics.jsonl":
            body = registry.to_json_lines().encode("utf-8")
            content_type = "application/jsonl; charset=utf-8"
        else:
            self.send_error(404, "unknown path; try /metrics")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # silence per-request stderr noise
        pass


class MetricsHttpServer:
    """Threaded scrape endpoint bound to one registry."""

    def __init__(self, registry: MetricsRegistry | None = None, host: str = "127.0.0.1", port: int = 0):
        self.registry = registry or get_registry()
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.daemon_threads = True
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "MetricsHttpServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="metrics-httpd", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
