"""Unified observability layer: metrics registry, tracing, hot-path profiling.

This package is a **leaf**: it imports only the standard library, so any
layer of the system — including the BN254 crypto hot path — can import it
without creating cycles.  Three pillars:

- :mod:`repro.obs.registry` — a process-wide :class:`MetricsRegistry` of
  typed ``Counter`` / ``Gauge`` / ``Histogram`` instruments with label
  sets, snapshot-to-dict, Prometheus-text and JSON-lines exporters.
- :mod:`repro.obs.tracing` — a :class:`Tracer` emitting hierarchical
  spans over the epoch pipeline, with a deterministic mode
  (monotonic-counter timestamps) so traced runs stay byte-identical.
- :mod:`repro.obs.hotpath` — per-leg timers around the crypto hot path
  (MSM, Miller loop, final exponentiation, GF(256) erasure coding)
  behind a zero-overhead-when-disabled flag.

See docs/OBSERVABILITY.md for the instrument catalog and span taxonomy.
"""

from .hotpath import HOTPATH, HotPathProfiler
from .httpd import MetricsHttpServer
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    register_core_instruments,
)
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "register_core_instruments",
    "Tracer",
    "Span",
    "HOTPATH",
    "HotPathProfiler",
    "MetricsHttpServer",
]
