"""Process-wide metrics registry with typed instruments.

Three instrument kinds, modelled on the Prometheus data model but
implemented from scratch on the standard library:

- :class:`Counter` — monotonically increasing float (``_total`` names).
- :class:`Gauge` — point-in-time float; supports ``set``/``inc``/``dec``.
- :class:`Histogram` — fixed cumulative bucket boundaries plus sum and
  count, with quantile estimation by linear interpolation inside the
  owning bucket.

Instruments are created through a :class:`MetricsRegistry` and identified
by ``(name)``; creation is idempotent — asking for an existing name with
the same type/labels/buckets returns the existing family, so independent
modules can share instruments without coordination.  Label values select
a *child* series via :meth:`~_Family.labels`.

Everything is thread-safe: each family guards its children and their
values with one lock, and the registry guards the family table.  A
``Gauge`` may instead be backed by a zero-argument callback, sampled at
snapshot/export time — and the registry supports *collect hooks*, run
before every snapshot, for layers (fabric, mempool) whose live values
are pulled rather than pushed.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Sequence

# Default latency buckets (seconds): sub-millisecond codec work up to
# multi-second settlement phases.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class _Family:
    """One named instrument family; children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.label_names:
            # Unlabelled instruments act as their own single child.
            self._children[()] = self._new_child()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values, **kwargs):
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kwargs[name] for name in self.label_names)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {key!r}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # -- delegate the single-child API on unlabelled families ----------
    def _only(self):
        if self.label_names:
            raise ValueError(f"{self.name} has labels {self.label_names}; use .labels()")
        return self._children[()]


class Counter(_Family):
    kind = "counter"

    def _new_child(self):
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    @property
    def value(self) -> float:
        return self._only().value


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Family):
    kind = "gauge"

    def __init__(self, name, help, label_names, callback: Callable[[], float] | None = None):
        self._callback = callback
        super().__init__(name, help, label_names)
        if callback is not None and label_names:
            raise ValueError("callback gauges cannot have labels")

    def _new_child(self):
        return _GaugeChild(self._lock, self._callback)

    def set(self, value: float) -> None:
        self._only().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().inc(-amount)

    def set_callback(self, callback: Callable[[], float] | None) -> None:
        """Re-bind the sampling callback (e.g. to a freshly built fabric)."""
        self._callback = callback
        self._children[()]._callback = callback

    @property
    def value(self) -> float:
        return self._only().value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, lock: threading.Lock, callback=None):
        self._lock = lock
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._callback is not None:
            try:
                return float(self._callback())
            except Exception:
                return self._value
        return self._value


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, name, help, label_names, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self.buckets = bounds
        super().__init__(name, help, label_names)

    def _new_child(self):
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    def quantile(self, q: float) -> float:
        return self._only().quantile(q)

    def cumulative(self) -> "list[tuple[float, int]]":
        return self._only().cumulative()

    @property
    def count(self) -> int:
        return self._only().count

    @property
    def sum(self) -> float:
        return self._only().sum


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "_counts", "_overflow", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]):
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * len(buckets)
        self._overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._overflow += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(+Inf, count)``."""
        with self._lock:
            out, running = [], 0
            for bound, n in zip(self.buckets, self._counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, running + self._overflow))
            return out

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` in [0, 1] by bucket interpolation.

        Values beyond the last finite boundary clamp to that boundary —
        the standard Prometheus ``histogram_quantile`` behaviour.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        cum = self.cumulative()
        total = cum[-1][1]
        if total == 0:
            return 0.0
        target = q * total
        prev_bound, prev_count = 0.0, 0
        for bound, count in cum:
            if count >= target:
                if bound == math.inf:
                    return prev_bound
                if count == prev_count:
                    return bound
                frac = (target - prev_count) / (count - prev_count)
                return prev_bound + frac * (bound - prev_bound)
            prev_bound, prev_count = bound, count
        return prev_bound  # pragma: no cover - loop always returns


class MetricsRegistry:
    """Table of instrument families plus exporters.

    ``counter``/``gauge``/``histogram`` are idempotent: re-requesting an
    existing name returns the existing family (type and shape must
    match).  ``snapshot()`` renders everything to plain dicts;
    ``to_prometheus()`` and ``to_json_lines()`` render the two wire
    formats.  ``add_collect_hook`` registers a callable run before every
    snapshot/export so pull-style layers can refresh their gauges.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._hooks: list[Callable[[], None]] = []

    # -- instrument creation -------------------------------------------
    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"{name} already registered as {family.kind}, not {cls.kind}"
                    )
                if family.label_names != tuple(label_names):
                    raise ValueError(
                        f"{name} already registered with labels {family.label_names}"
                    )
                return family
            family = cls(name, help, tuple(label_names), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        family = self._get_or_create(Gauge, name, help, labels, callback=callback)
        if callback is not None and family._callback is not callback:
            family.set_callback(callback)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._get_or_create(Histogram, name, help, labels, buckets=buckets)
        if family.buckets != tuple(sorted(float(b) for b in buckets)):
            raise ValueError(f"{name} already registered with buckets {family.buckets}")
        return family

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    # -- collect hooks --------------------------------------------------
    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        with self._lock:
            self._hooks.append(hook)

    def remove_collect_hook(self, hook: Callable[[], None]) -> None:
        with self._lock:
            if hook in self._hooks:
                self._hooks.remove(hook)

    def collect(self) -> None:
        with self._lock:
            hooks = list(self._hooks)
        for hook in hooks:
            try:
                hook()
            except Exception:
                pass  # a dead hook must never break exposition

    # -- exporters -------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything as plain dicts (JSON-safe), for ``metrics_get``."""
        self.collect()
        out: dict[str, dict] = {}
        for family in self.families():
            series = []
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                ["+Inf" if math.isinf(le) else le, n]
                                for le, n in child.cumulative()
                            ],
                            "p50": child.quantile(0.50),
                            "p95": child.quantile(0.95),
                            "p99": child.quantile(0.99),
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                pairs = [
                    f'{ln}="{_escape_label(lv)}"'
                    for ln, lv in zip(family.label_names, key)
                ]
                base = "{" + ",".join(pairs) + "}" if pairs else ""
                if family.kind == "histogram":
                    for le, n in child.cumulative():
                        le_pairs = pairs + [f'le="{_format_value(le)}"']
                        lines.append(
                            f"{family.name}_bucket{{{','.join(le_pairs)}}} {n}"
                        )
                    lines.append(f"{family.name}_sum{base} {_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{base} {child.count}")
                else:
                    lines.append(f"{family.name}{base} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def to_json_lines(self) -> str:
        """One JSON object per series, newline-delimited."""
        snap = self.snapshot()
        lines = []
        for name in sorted(snap):
            entry = snap[name]
            for series in entry["series"]:
                record = {"name": name, "type": entry["type"], **series}
                lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


# Canonical instrument names per layer, so one ``repro serve`` exposition
# covers rpc/mempool/fabric/engine/lifecycle even before traffic arrives.
CORE_INSTRUMENTS: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
    # (kind, name, help, labels)
    ("counter", "rpc_requests_total", "JSON-RPC requests handled", ("method",)),
    ("counter", "rpc_errors_total", "JSON-RPC requests that returned an error", ("method",)),
    ("histogram", "rpc_request_seconds", "JSON-RPC per-request handler latency", ("method",)),
    ("counter", "mempool_submitted_total", "transactions admitted to the pool", ()),
    ("counter", "mempool_drained_total", "transactions drained into blocks", ()),
    ("counter", "mempool_replaced_total", "transactions replaced via RBF", ()),
    ("counter", "mempool_evicted_total", "transactions evicted by backpressure", ()),
    ("counter", "mempool_expired_total", "transactions expired by TTL", ()),
    ("counter", "mempool_rejections_total", "admission rejections by taxonomy reason", ("reason",)),
    ("counter", "mempool_priority_inversions_total", "lower-tip tx mined before higher-tip", ()),
    ("counter", "mempool_tips_paid_total", "priority fees paid to miners (wei)", ()),
    ("gauge", "mempool_depth", "pending transactions across all lanes", ()),
    ("counter", "fabric_blocks_mined_total", "blocks mined across all lanes", ()),
    ("counter", "fabric_txs_settled_total", "transactions settled across all lanes", ()),
    ("gauge", "fabric_lane_base_fee_wei", "current base fee per lane", ("lane",)),
    ("gauge", "fabric_settlement_chain_seconds", "slowest lane's occupied block slots x slot time", ()),
    ("counter", "engine_epochs_total", "audit epochs executed", ()),
    ("counter", "engine_audits_total", "audits judged, by verdict", ("verdict",)),
    ("histogram", "engine_prove_seconds", "per-epoch prove phase latency", ()),
    ("histogram", "engine_verify_seconds", "per-epoch verify phase latency", ()),
    ("counter", "crypto_leg_seconds_total", "hot-path time by crypto leg", ("leg",)),
    ("counter", "crypto_leg_calls_total", "hot-path calls by crypto leg", ("leg",)),
    ("counter", "lifecycle_epochs_total", "lifecycle epochs completed", ()),
    ("counter", "lifecycle_events_total", "lifecycle trail events by kind", ("kind",)),
    ("histogram", "lifecycle_epoch_seconds", "wall-clock per lifecycle epoch", ()),
    ("counter", "da_samples_total", "DA chunks sampled, by outcome", ("outcome",)),
    ("counter", "da_withholding_detected_total", "sampling runs that flagged withholding", ()),
    ("counter", "da_reconstructions_total", "k-of-n leaf-set reconstructions, by outcome", ("outcome",)),
    ("histogram", "da_sample_run_seconds", "wall-clock per sampling run", ()),
)


def register_core_instruments(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Pre-register the canonical instrument catalog (idempotent)."""
    registry = registry or get_registry()
    for kind, name, help, labels in CORE_INSTRUMENTS:
        getattr(registry, kind)(name, help, labels)
    return registry
