"""Hierarchical span tracing over the epoch pipeline.

A :class:`Tracer` records a tree of named spans per root operation
(typically one lifecycle epoch): challenge → prove → verify →
checkpoint build → post → mine → settle.  Two clocks run side by side:

- **wall clock** (``perf_counter``), always recorded in memory, so a
  span tree can decompose real epoch wall-time into named phases; and
- **logical clock** — a monotonic counter ticked once per span
  start/finish — used for the *exported* timestamps when the tracer is
  in deterministic mode, so two traced runs of the same seed export
  byte-identical JSONL (wall-clock never reaches the export).

Tracing writes nothing into chain state, RNG streams, or the lifecycle
``EventTrail``; a traced deterministic run therefore produces the same
``state_hash`` and trail digest as an untraced one (enforced by
``tests/obs/test_traced_lifecycle.py``).

A disabled tracer (``Tracer(enabled=False)`` or the module-level
``NULL_TRACER``) reuses one no-op context manager, so instrumented code
may call ``tracer.span(...)`` unconditionally.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Iterator


class Span:
    """One named region; children nest strictly inside the parent."""

    __slots__ = (
        "name",
        "attrs",
        "logical_start",
        "logical_end",
        "wall_start",
        "wall_end",
        "children",
    )

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = attrs or {}
        self.logical_start = 0
        self.logical_end = 0
        self.wall_start = 0.0
        self.wall_end = 0.0
        self.children: list[Span] = []

    @property
    def wall_seconds(self) -> float:
        return self.wall_end - self.wall_start

    def child_wall_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.children)

    def to_dict(self, deterministic: bool) -> dict:
        """JSON-safe span record.

        In deterministic mode only logical timestamps are exported; in
        wall mode both wall timestamps and duration are included.
        """
        record: dict = {"name": self.name}
        if self.attrs:
            record["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        record["t0"] = self.logical_start
        record["t1"] = self.logical_end
        if not deterministic:
            record["wall0"] = self.wall_start
            record["wall1"] = self.wall_end
            record["seconds"] = self.wall_seconds
        if self.children:
            record["children"] = [c.to_dict(deterministic) for c in self.children]
        return record


class _NullSpanContext:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._enter(self._span)
        return self._span

    def __exit__(self, *exc):
        self._tracer._exit(self._span)
        return False


class Tracer:
    """Collects span trees; one root span per top-level operation.

    ``deterministic=True`` switches the *exported* timestamps to the
    logical clock.  ``max_roots`` bounds memory on long-lived services:
    the oldest root trees are dropped once the limit is exceeded (the
    running totals in ``span_count`` are unaffected).

    Not thread-safe by design: one tracer belongs to one driving thread
    (the lifecycle/engine loop).  Concurrent lanes record their own
    timings through the metrics registry instead.
    """

    def __init__(
        self,
        deterministic: bool = False,
        enabled: bool = True,
        max_roots: int = 256,
    ):
        self.deterministic = deterministic
        self.enabled = enabled
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.span_count = 0
        self._stack: list[Span] = []
        self._clock = 0

    # -- recording -------------------------------------------------------
    def span(self, name: str, **attrs):
        """Context manager opening a span under the current innermost one."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, Span(name, attrs))

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _enter(self, span: Span) -> None:
        span.logical_start = self._tick()
        span.wall_start = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.wall_end = time.perf_counter()
        span.logical_end = self._tick()
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(f"span stack corrupted: closed {span.name!r} out of order")
        if not self._stack:
            self.roots.append(span)
            self.span_count += 1
            if len(self.roots) > self.max_roots:
                del self.roots[: len(self.roots) - self.max_roots]
        else:
            self.span_count += 1

    # -- export ----------------------------------------------------------
    def export_lines(self) -> Iterator[str]:
        """One JSON line per root span tree, stable key order."""
        for root in self.roots:
            yield json.dumps(
                root.to_dict(self.deterministic), sort_keys=True, separators=(",", ":")
            )

    def export_jsonl(self) -> str:
        lines = list(self.export_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> int:
        """Write the trail next to the lifecycle EventTrail; returns roots written."""
        text = self.export_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(self.roots)

    def digest(self) -> str:
        """SHA-256 over the exported JSONL — the replayable-trail anchor."""
        return hashlib.sha256(self.export_jsonl().encode("utf-8")).hexdigest()

    def tree_dicts(self, last: int | None = None) -> list[dict]:
        roots = self.roots if last is None else self.roots[-last:]
        return [r.to_dict(self.deterministic) for r in roots]

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self._clock = 0
        self.span_count = 0


NULL_TRACER = Tracer(enabled=False)
