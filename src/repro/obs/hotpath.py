"""Zero-overhead-when-disabled profiling of the crypto hot path.

The BN254 prove/verify legs and the GF(256) erasure codec carry gated
timers (see ``crypto/bn254/msm.py``, ``crypto/bn254/pairing.py``,
``storage/erasure.py``).  The gate is a single attribute read::

    if HOTPATH.enabled:
        t0 = time.perf_counter()
        out = _impl(...)
        HOTPATH.add("bn254.msm", time.perf_counter() - t0)
        return out
    return _impl(...)

Disabled cost is one boolean check per call against operations that take
hundreds of microseconds to milliseconds — unmeasurable, which the
overhead-guard test (``tests/obs/test_overhead_guard.py``) enforces.

Canonical leg names::

    bn254.msm          multi-scalar multiplication (Pippenger / fixed-base)
    bn254.miller_loop  one Miller loop evaluation
    bn254.final_exp    one final exponentiation
    gf256.encode       Reed-Solomon encode over GF(256)
    gf256.decode       Reed-Solomon decode/repair over GF(256)

``breakdown()`` renders a fig8-style prove/verify decomposition from
whatever traffic ran while the profiler was enabled.  ``publish`` copies
deltas into a :class:`~repro.obs.registry.MetricsRegistry`'s
``crypto_leg_seconds_total`` / ``crypto_leg_calls_total`` counters.

Note process scope: provers running inside a ``ProcessPoolExecutor``
profile their own worker process; the parent's profiler only sees work
executed in-process (the default single-worker engine and everything on
the verify side).
"""

from __future__ import annotations

import threading

LEGS = (
    "bn254.msm",
    "bn254.miller_loop",
    "bn254.final_exp",
    "gf256.encode",
    "gf256.decode",
)


class HotPathProfiler:
    """Per-leg call counts and accumulated seconds, behind one flag."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._published: dict[str, float] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._calls.clear()
            self._seconds.clear()
            self._published.clear()

    def add(self, leg: str, seconds: float) -> None:
        if leg not in LEGS:
            raise KeyError(f"unknown hot-path leg {leg!r}; known: {LEGS}")
        with self._lock:
            self._calls[leg] = self._calls.get(leg, 0) + 1
            self._seconds[leg] = self._seconds.get(leg, 0.0) + seconds

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {
                leg: {"calls": self._calls[leg], "seconds": self._seconds[leg]}
                for leg in sorted(self._calls)
            }

    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._seconds.values())

    def breakdown(self) -> dict[str, float]:
        """Fraction of profiled hot-path time per leg (fig8-style)."""
        with self._lock:
            total = sum(self._seconds.values())
            if total == 0:
                return {}
            return {leg: self._seconds[leg] / total for leg in sorted(self._seconds)}

    def publish(self, registry) -> None:
        """Push deltas since the last publish into registry counters."""
        seconds = registry.counter(
            "crypto_leg_seconds_total", "hot-path time by crypto leg", ("leg",)
        )
        calls = registry.counter(
            "crypto_leg_calls_total", "hot-path calls by crypto leg", ("leg",)
        )
        with self._lock:
            for leg, secs in self._seconds.items():
                delta = secs - self._published.get(leg, 0.0)
                if delta > 0:
                    seconds.labels(leg).inc(delta)
                call_delta = self._calls[leg] - self._published.get(f"{leg}#calls", 0)
                if call_delta > 0:
                    calls.labels(leg).inc(call_delta)
                self._published[leg] = secs
                self._published[f"{leg}#calls"] = self._calls[leg]


HOTPATH = HotPathProfiler()
