"""repro — a full reproduction of "Towards Privacy-assured and Lightweight
On-chain Auditing of Decentralized Storage" (Du et al., ICDCS 2020).

Packages
--------
* :mod:`repro.core`       — the paper's auditing protocol (HLA + KZG
  polynomial commitments + Sigma-protocol masking), attacks, batching.
* :mod:`repro.crypto`     — BN254 pairing curve and symmetric primitives,
  all implemented from scratch.
* :mod:`repro.snark`      — Groth16 + MiMC-Merkle circuit: the Section IV
  strawman.
* :mod:`repro.chain`      — simulated Ethereum-like chain, gas models and
  the Fig. 2 audit smart contract.
* :mod:`repro.engine`     — parallel audit engine: process-pool executor,
  precompute-backed provers, beacon-driven epoch scheduler.
* :mod:`repro.randomness` — commit-reveal / VDF / trusted beacons and the
  last-revealer attack.
* :mod:`repro.storage`    — DSN substrate: Reed-Solomon, ChaCha20, Chord
  DHT, simulated network, storage nodes.
* :mod:`repro.baselines`  — Sia-style Merkle auditing, MAC auditing and the
  Table I feature matrix.
* :mod:`repro.sim`        — economics and throughput models (Figs. 4-6, 10).

Quickstart: see ``examples/quickstart.py`` or the README.
"""

__version__ = "1.0.0"

from . import (
    baselines,
    chain,
    core,
    crypto,
    dsn,
    engine,
    randomness,
    sim,
    snark,
    storage,
)

__all__ = [
    "__version__",
    "baselines",
    "chain",
    "core",
    "crypto",
    "dsn",
    "engine",
    "randomness",
    "sim",
    "snark",
    "storage",
]
