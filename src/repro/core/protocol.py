"""High-level protocol roles: data owner, storage provider, audit sessions.

This module glues the primitive pieces (keys, chunking, authenticators,
prover, verifier) into the three-party workflow of paper Section III-B:

* :class:`DataOwner` prepares a file for outsourcing (encrypt upstream in
  :mod:`repro.storage`, chunk, authenticate) and produces the
  :class:`OutsourcingPackage` sent to the provider over a secure channel,
* :class:`StorageProvider` validates the package before acknowledging the
  contract (Initialize phase) and answers challenges afterwards,
* :class:`OffchainAuditSession` drives challenge/prove/verify rounds without
  a blockchain — the on-chain flow lives in
  :mod:`repro.chain.contracts.audit_contract` and reuses these same roles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn254 import G1Point
from ..crypto.field import random_scalar
from .authenticator import (
    PreprocessReport,
    generate_authenticators,
    validate_authenticators_batched,
)
from .challenge import Challenge, random_challenge
from .chunking import ChunkedFile, chunk_file
from .keys import KeyPair, PublicKey, generate_keypair, validate_public_key_batched
from .params import ProtocolParams
from .prover import ProveReport, Prover
from .proof import PrivateProof
from .verifier import Verifier, VerifyOutcome, VerifyReport


@dataclass(frozen=True)
class OutsourcingPackage:
    """Everything the provider receives at contract negotiation time."""

    public: PublicKey
    name: int
    chunked: ChunkedFile
    authenticators: tuple[G1Point, ...]

    @property
    def num_chunks(self) -> int:
        return self.chunked.num_chunks


class DataOwner:
    """The data owner D: key generation, preprocessing, payments."""

    def __init__(self, params: ProtocolParams | None = None, rng=None):
        self.params = params or ProtocolParams()
        self._rng = rng
        self.keypair: KeyPair | None = None

    def prepare(
        self,
        data: bytes,
        private_auditing: bool = True,
        report: PreprocessReport | None = None,
        fresh_keypair: bool = True,
    ) -> OutsourcingPackage:
        """Chunk + authenticate ``data`` and mint the outsourcing package.

        By default a fresh keypair and file identifier are generated per
        file, matching the paper's one-contract-per-file deployment.  With
        ``fresh_keypair=False`` the owner's existing keypair is reused
        across files — sound, since the unique per-file ``name`` domain-
        separates digests and authenticators — which is what lets the
        parallel engine share one GT fixed-base context and one set of
        alpha-power tables across all of an owner's contracts.
        """
        if (
            fresh_keypair
            or self.keypair is None
            or self.keypair.public.supports_privacy != private_auditing
        ):
            self.keypair = generate_keypair(
                self.params.s, private_auditing=private_auditing, rng=self._rng
            )
        name = random_scalar(self._rng)
        chunked = chunk_file(data, self.params, name)
        authenticators = generate_authenticators(chunked, self.keypair, report=report)
        return OutsourcingPackage(
            public=self.keypair.public,
            name=name,
            chunked=chunked,
            authenticators=tuple(authenticators),
        )

    def verifier_for(self, package: OutsourcingPackage) -> Verifier:
        return Verifier(package.public, package.name, package.num_chunks)


class StorageProvider:
    """The storage provider S: validation, storage, proof generation."""

    def __init__(self, rng=None, precompute=None):
        self._rng = rng
        self._precompute = precompute  # shared fixed-base tables, if any
        self._stored: dict[int, Prover] = {}

    def accept(self, package: OutsourcingPackage, validate: bool = True) -> bool:
        """Initialize-phase check: validate keys and authenticators.

        Returns False (provider refuses to ACK the contract) when the
        owner's metadata is malformed — the paper's defence against an
        owner forging metadata so audits always fail.
        """
        if validate:
            if not validate_public_key_batched(package.public, rng=self._rng):
                return False
            if not validate_authenticators_batched(
                package.chunked,
                list(package.authenticators),
                package.public,
                rng=self._rng,
            ):
                return False
        self._stored[package.name] = Prover(
            package.chunked,
            package.public,
            list(package.authenticators),
            rng=self._rng,
            precompute=self._precompute,
        )
        return True

    def prover_for(self, name: int) -> Prover:
        if name not in self._stored:
            raise KeyError(f"no file with identifier {name} stored here")
        return self._stored[name]

    def drop_file(self, name: int) -> None:
        """Simulate data loss (the behaviour audits must catch)."""
        self._stored.pop(name, None)

    def respond(
        self, name: int, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        return self.prover_for(name).respond_private(challenge, report)


@dataclass
class AuditRoundResult:
    challenge: Challenge
    proof: PrivateProof
    passed: VerifyOutcome  # truthy iff accepted; carries the rejection reason
    prove_report: ProveReport
    verify_report: VerifyReport


class OffchainAuditSession:
    """Challenge/prove/verify loop without a blockchain in between.

    Used by tests, examples and benchmarks; the smart-contract version in
    :mod:`repro.chain` adds deposits, payments and scheduling around the
    same three steps.
    """

    def __init__(
        self,
        owner: DataOwner,
        provider: StorageProvider,
        package: OutsourcingPackage,
        rng=None,
    ):
        self.owner = owner
        self.provider = provider
        self.package = package
        self.verifier = owner.verifier_for(package)
        self._rng = rng
        self.history: list[AuditRoundResult] = []

    def run_round(self, challenge: Challenge | None = None) -> AuditRoundResult:
        if challenge is None:
            challenge = random_challenge(self.owner.params, rng=self._rng)
        prove_report = ProveReport()
        verify_report = VerifyReport()
        proof = self.provider.respond(self.package.name, challenge, prove_report)
        passed = self.verifier.verify_private(challenge, proof, verify_report)
        result = AuditRoundResult(
            challenge=challenge,
            proof=proof,
            passed=passed,
            prove_report=prove_report,
            verify_report=verify_report,
        )
        self.history.append(result)
        return result
