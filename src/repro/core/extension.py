"""Append-only file extension — a forward-compatible archive feature.

The paper scopes itself to static archives ("once data is distributed and
archived, there would be no more update of data") and leaves dynamism to
future work.  Appending, however, is compatible with archive semantics
(backup streams grow monotonically) and with this HLA construction:
chunk authenticators are indexed by ``H(name || i)``, so *new* chunks at
*fresh* indices extend the file without touching existing authenticators —
no re-preprocessing of old data, no new keys, and audits over the combined
file keep working.

What appending cannot do (and the API refuses): modify or delete existing
chunks — that would require the dynamic-PDP machinery the paper cites
([57]-[59]) and break the archive model.
"""

from __future__ import annotations

from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.field import BLOCK_BYTES, bytes_to_blocks
from .authenticator import generate_authenticators
from .chunking import ChunkedFile
from .keys import KeyPair
from .params import ProtocolParams
from .protocol import OutsourcingPackage


class AppendError(ValueError):
    """Raised when an extension would rewrite existing, committed data."""


def append_data(
    package: OutsourcingPackage,
    keypair: KeyPair,
    more_data: bytes,
    params: ProtocolParams,
) -> OutsourcingPackage:
    """Extend an outsourced file with new bytes, returning a new package.

    Preconditions: the existing file must end on a chunk boundary
    (archives are appended in chunk-aligned batches; callers pad their
    batches, exactly as the original file was padded).  The old
    authenticators are reused verbatim; only the new chunks are signed.
    """
    if not more_data:
        raise AppendError("nothing to append")
    if keypair.public.epsilon != package.public.epsilon:
        raise AppendError("keypair does not match the package's public key")
    old = package.chunked
    blocks_in_last = old.byte_length % (params.s * BLOCK_BYTES)
    if blocks_in_last != 0:
        raise AppendError(
            "existing file does not end on a chunk boundary; pad the "
            "original upload to s*31-byte multiples to enable appending"
        )
    new_blocks = bytes_to_blocks(more_data)
    padding = (-len(new_blocks)) % params.s
    new_blocks.extend([0] * padding)
    new_chunks = tuple(
        tuple(new_blocks[offset : offset + params.s])
        for offset in range(0, len(new_blocks), params.s)
    )
    combined = ChunkedFile(
        name=old.name,
        byte_length=old.byte_length + len(more_data),
        s=old.s,
        chunks=old.chunks + new_chunks,
    )
    # Authenticate only the new tail: build a temporary view whose chunk
    # indices continue from the old count.
    tail_view = ChunkedFile(
        name=old.name,
        byte_length=len(more_data),
        s=old.s,
        chunks=new_chunks,
    )
    tail_auths = _generate_offset_authenticators(
        tail_view, keypair, offset=old.num_chunks
    )
    return OutsourcingPackage(
        public=package.public,
        name=package.name,
        chunked=combined,
        authenticators=package.authenticators + tuple(tail_auths),
    )


def _generate_offset_authenticators(chunked: ChunkedFile, keypair: KeyPair, offset: int):
    """Authenticators for chunks whose global indices start at ``offset``."""
    from ..crypto.bn254.msm import FixedBaseMul
    from ..crypto.bn254 import G1Point
    from .authenticator import block_digest_point
    from .polynomial import evaluate

    table = FixedBaseMul(G1Point.generator())
    x = keypair.secret.x
    alpha = keypair.secret.alpha
    out = []
    for local_index, chunk in enumerate(chunked.chunks):
        global_index = offset + local_index
        m_alpha = evaluate(chunk, alpha)
        digest = block_digest_point(chunked.name, global_index)
        out.append((table.mul(m_alpha) + digest) * x)
    return out


def overwrite_refused(package: OutsourcingPackage, chunk_index: int) -> None:
    """The guard rail: mutation of committed chunks is a protocol error."""
    raise AppendError(
        f"chunk {chunk_index} is committed; the archive protocol is "
        "append-only (dynamic updates need the [57]-[59] machinery the "
        "paper explicitly scopes out)"
    )
