"""Key generation (paper Section V-B, "Initialize").

The data owner samples the secret key ``sk = (x, alpha)`` and publishes

    pk = (epsilon = g2^x,  delta = g2^(alpha * x),  {g1^(alpha^j)},
          g2,  e(g1, epsilon),  H)

on the blockchain.  The powers of alpha run up to ``s - 1`` so that the
storage provider can both build the KZG witness (degree s-2 quotient) *and*
validate the authenticators it receives (degree s-1 commitment) — the paper
lists s-1 powers in Initialize and s powers in the Audit section; we keep
the larger set and account for it in the Fig. 4 size model.

``e(g1, epsilon)`` is only carried when on-chain privacy is enabled: it is
the fixed base of the Sigma commitment ``R`` — this is exactly the constant
size gap between the two bars of the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..crypto.bn254 import (
    CURVE_ORDER,
    FP_BYTES,
    G1_COMPRESSED_BYTES,
    G2_COMPRESSED_BYTES,
    GT_COMPRESSED_BYTES,
    G1Point,
    G2Point,
    GTFixedBase,
    PrecomputeCache,
    g1_from_bytes,
    g1_to_bytes,
    g2_from_bytes,
    g2_to_bytes,
    gt_from_bytes,
    gt_to_bytes,
    pairing,
)
from ..crypto.bn254.fields import Fp12
from ..crypto.field import random_scalar


@dataclass(frozen=True)
class SecretKey:
    """sk = (x, alpha).  Never leaves the data owner."""

    x: int
    alpha: int


@dataclass(frozen=True)
class PublicKey:
    """The on-chain public key (one per storage contract)."""

    epsilon: G2Point                 # g2^x
    delta: G2Point                   # g2^(alpha x)
    powers: tuple[G1Point, ...]      # g1^(alpha^j), j = 0..s-1
    pairing_base: Fp12 | None        # e(g1, epsilon); present iff private mode

    @property
    def s(self) -> int:
        return len(self.powers)

    @property
    def supports_privacy(self) -> bool:
        return self.pairing_base is not None

    def byte_size(self, include_name: bool = True) -> int:
        """On-chain footprint in bytes — the quantity plotted in Fig. 4."""
        size = 2 * G2_COMPRESSED_BYTES + len(self.powers) * G1_COMPRESSED_BYTES
        if self.pairing_base is not None:
            size += GT_COMPRESSED_BYTES
        if include_name:
            size += FP_BYTES  # the file identifier `name` is also recorded
        return size

    def to_bytes(self) -> bytes:
        parts = [
            len(self.powers).to_bytes(4, "big"),
            b"\x01" if self.pairing_base is not None else b"\x00",
            g2_to_bytes(self.epsilon),
            g2_to_bytes(self.delta),
        ]
        parts.extend(g1_to_bytes(power) for power in self.powers)
        if self.pairing_base is not None:
            parts.append(gt_to_bytes(self.pairing_base))
        return b"".join(parts)

    @staticmethod
    def from_bytes(data: bytes) -> "PublicKey":
        count = int.from_bytes(data[:4], "big")
        has_base = data[4] == 1
        offset = 5
        epsilon = g2_from_bytes(data[offset : offset + G2_COMPRESSED_BYTES])
        offset += G2_COMPRESSED_BYTES
        delta = g2_from_bytes(data[offset : offset + G2_COMPRESSED_BYTES])
        offset += G2_COMPRESSED_BYTES
        powers = []
        for _ in range(count):
            powers.append(g1_from_bytes(data[offset : offset + G1_COMPRESSED_BYTES]))
            offset += G1_COMPRESSED_BYTES
        base = None
        if has_base:
            base = gt_from_bytes(data[offset : offset + GT_COMPRESSED_BYTES])
        return PublicKey(
            epsilon=epsilon, delta=delta, powers=tuple(powers), pairing_base=base
        )

    def gt_table(self, precompute: PrecomputeCache | None = None) -> GTFixedBase:
        """Windowed table over e(g1, epsilon) for fast Sigma commitments.

        With a :class:`~repro.crypto.bn254.PrecomputeCache` the table is
        shared across every file outsourced under this key (the engine's
        per-owner reuse); without one, a fresh table is built per call —
        the seed behaviour.
        """
        if self.pairing_base is None:
            raise ValueError("public key was generated without privacy support")
        if precompute is not None:
            return precompute.gt_context(self.pairing_base)
        return GTFixedBase(self.pairing_base)


@dataclass(frozen=True)
class KeyPair:
    secret: SecretKey
    public: PublicKey


def generate_keypair(
    s: int, private_auditing: bool = True, rng=None
) -> KeyPair:
    """Sample sk = (x, alpha) and derive the public key with s alpha-powers."""
    if s < 1:
        raise ValueError("s must be >= 1")
    x = random_scalar(rng)
    alpha = random_scalar(rng)
    g1 = G1Point.generator()
    g2 = G2Point.generator()
    epsilon = g2 * x
    delta = g2 * (alpha * x % CURVE_ORDER)
    powers = []
    power_of_alpha = 1
    for _ in range(s):
        powers.append(g1 * power_of_alpha)
        power_of_alpha = power_of_alpha * alpha % CURVE_ORDER
    base = pairing(g1, epsilon) if private_auditing else None
    return KeyPair(
        secret=SecretKey(x=x, alpha=alpha),
        public=PublicKey(
            epsilon=epsilon, delta=delta, powers=tuple(powers), pairing_base=base
        ),
    )


def validate_public_key(public: PublicKey) -> bool:
    """Structural consistency check a provider runs before signing on.

    Confirms the published powers really are consecutive powers of a single
    alpha under the same x as epsilon/delta:

        e(g1^(alpha^(j+1)), epsilon) == e(g1^(alpha^j), delta / ... )

    Concretely we check e(powers[j+1], epsilon) == e(powers[j], delta)
    pair-by-pair, since delta = epsilon^alpha, and that powers[0] == g1.
    """
    if public.powers[0] != G1Point.generator():
        return False
    from ..crypto.bn254 import pairing_check

    for j in range(len(public.powers) - 1):
        if not pairing_check(
            [(public.powers[j + 1], public.epsilon), (-public.powers[j], public.delta)]
        ):
            return False
    if public.pairing_base is not None:
        if public.pairing_base != pairing(G1Point.generator(), public.epsilon):
            return False
    return True


def validate_public_key_batched(public: PublicKey, rng=None) -> bool:
    """Randomised one-shot variant of :func:`validate_public_key`.

    Takes a random linear combination of all the pairwise checks so the
    whole key is validated with a single product-pairing — the difference
    between O(s) and O(1) pairings for the provider during Initialize.
    """
    if public.powers[0] != G1Point.generator():
        return False
    from ..crypto.bn254 import multi_scalar_mul, pairing_check

    count = len(public.powers) - 1
    if count == 0:
        combined_ok = True
    else:
        weights = [random_scalar(rng) for _ in range(count)]
        lhs = multi_scalar_mul(list(public.powers[1:]), weights)
        rhs = multi_scalar_mul(list(public.powers[:-1]), weights)
        combined_ok = pairing_check([(lhs, public.epsilon), (-rhs, public.delta)])
    if not combined_ok:
        return False
    if public.pairing_base is not None:
        return public.pairing_base == pairing(G1Point.generator(), public.epsilon)
    return True
