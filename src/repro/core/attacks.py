"""The Section V-C on-chain privacy attack, implemented end to end.

Without the Sigma-protocol masking, every audit leaves ``y = P_k(r)`` on the
public chain.  ``P_k`` has degree s-1, so an adversary who observes ``s``
transcripts sharing the same challenged set {(i, c_i)} (same C1/C2, fresh r)
reconstructs ``P_k`` by Lagrange interpolation.  Each reconstruction yields
the s linear combinations ``b_j = sum_t c_t * m_{i_t, j}``; after ``u = k``
reconstructions with linearly independent coefficient vectors the attacker
solves a k x k system per block position and recovers **every raw block** of
the challenged chunks.

The paper notes that eclipse attacks [31], [32] let a real adversary feed a
victim chosen challenge randomness, which is exactly what
:class:`EclipseChallengeFactory` models.

Against the private proofs the same pipeline provably fails:
``y' = zeta * y + z`` is a one-time-pad in Zp (z uniform, fresh per proof),
so interpolation returns field noise — demonstrated in
``examples/onchain_privacy_attack.py`` and asserted in the test suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..crypto.bn254.constants import CURVE_ORDER as R
from .challenge import Challenge
from .params import ProtocolParams
from .polynomial import lagrange_interpolate, solve_linear_system
from .proof import PlainProof, PrivateProof


@dataclass(frozen=True)
class Transcript:
    """One on-chain audit trail entry as an adversary sees it."""

    challenge: Challenge
    response_value: int  # y for plain proofs, y' for private proofs


def transcript_from_plain(challenge: Challenge, proof: PlainProof) -> Transcript:
    return Transcript(challenge=challenge, response_value=proof.y)


def transcript_from_private(
    challenge: Challenge, proof: PrivateProof
) -> Transcript:
    return Transcript(challenge=challenge, response_value=proof.y_masked)


class EclipseChallengeFactory:
    """Adversary-controlled challenge generation (eclipse-attack model).

    Fixing ``C1`` pins the challenged chunk *indices*; fixing ``C2`` pins
    the coefficients; ``r`` varies per round.  A real attacker achieves
    this by monopolising the victim's view of the beacon (paper Section
    V-C); here we simply mint the challenges directly.
    """

    def __init__(self, params: ProtocolParams, rng=None):
        self.params = params
        self._rng = rng
        self._counter = 0

    def _seed(self) -> bytes:
        if self._rng is None:
            return os.urandom(self.params.seed_bytes)
        return bytes(
            self._rng.randrange(256) for _ in range(self.params.seed_bytes)
        )

    def fresh_set_seeds(self) -> tuple[bytes, bytes]:
        """A new (C1, C2) pair — i.e. a new challenged set."""
        return self._seed(), self._seed()

    def challenge(self, c1: bytes, c2: bytes) -> Challenge:
        """Next challenge for a pinned set: same (C1, C2), fresh r."""
        self._counter += 1
        r_seed = self._counter.to_bytes(self.params.seed_bytes, "big")
        return Challenge(c1=c1, c2=c2, r_seed=r_seed, k=self.params.k)


@dataclass
class RecoveredSet:
    """Interpolation output for one pinned challenged set."""

    indices: tuple[int, ...]
    coefficients: tuple[int, ...]
    combined_polynomial: list[int] = field(repr=False)


class InterpolationAttacker:
    """Implements the two stages of the Section V-C attack."""

    def __init__(self, params: ProtocolParams, num_chunks: int):
        self.params = params
        self.num_chunks = num_chunks
        self._observations: dict[tuple[bytes, bytes], list[Transcript]] = {}

    def observe(self, transcript: Transcript) -> None:
        key = (transcript.challenge.c1, transcript.challenge.c2)
        self._observations.setdefault(key, []).append(transcript)

    @property
    def transcripts_seen(self) -> int:
        return sum(len(v) for v in self._observations.values())

    def recover_combined_polynomials(self) -> list[RecoveredSet]:
        """Stage 1: Lagrange-interpolate P_k for every set with >= s points.

        The challenge expansion is public (C1/C2 are on chain), so the
        adversary knows the challenged indices and coefficients exactly.
        """
        recovered = []
        for (c1, c2), transcripts in self._observations.items():
            # Deduplicate evaluation points; need s distinct ones.
            points: dict[int, int] = {}
            for transcript in transcripts:
                points[transcript.challenge.point] = transcript.response_value
            if len(points) < self.params.s:
                continue
            sample = list(points.items())[: self.params.s]
            polynomial = lagrange_interpolate(sample)
            expanded = transcripts[0].challenge.expand(self.num_chunks)
            recovered.append(
                RecoveredSet(
                    indices=expanded.indices,
                    coefficients=expanded.coefficients,
                    combined_polynomial=polynomial,
                )
            )
        return recovered

    def recover_blocks(
        self, target_indices: tuple[int, ...]
    ) -> dict[int, list[int]] | None:
        """Stage 2: solve for the raw blocks of ``target_indices``.

        Requires u = len(target_indices) recovered sets whose challenged
        indices equal ``target_indices`` (as the eclipse attacker arranges).
        Returns {chunk_index: [m_{i,0} .. m_{i,s-1}]} or None if the
        adversary has not yet gathered enough independent combinations.
        """
        sets = [
            r
            for r in self.recover_combined_polynomials()
            if r.indices == target_indices
        ]
        u = len(target_indices)
        if len(sets) < u:
            return None
        chosen = sets[:u]
        matrix = [list(r.coefficients) for r in chosen]
        blocks: dict[int, list[int]] = {index: [] for index in target_indices}
        for position in range(self.params.s):
            rhs = [
                r.combined_polynomial[position]
                if position < len(r.combined_polynomial)
                else 0
                for r in chosen
            ]
            try:
                solution = solve_linear_system(matrix, rhs)
            except ValueError:
                return None  # coefficient vectors not independent yet
            for slot, chunk_index in enumerate(target_indices):
                blocks[chunk_index].append(solution[slot])
        return blocks


def transcripts_needed(params: ProtocolParams, chunks_to_recover: int) -> int:
    """The paper's s*u bound: transcripts required to recover u chunks."""
    return params.s * chunks_to_recover


def mask_looks_uniform(values: list[int], buckets: int = 16) -> bool:
    """Crude uniformity check used to show y' carries no signal.

    Splits Zr into equal buckets and performs a chi-square-style test with
    a generous threshold — private-proof y' values pass, raw y values from
    a *constant* underlying polynomial evaluated at clustered points would
    not be relevant here (we use it only as a sanity signal in tests).
    """
    if len(values) < buckets * 4:
        raise ValueError("need at least 4 observations per bucket")
    counts = [0] * buckets
    for value in values:
        counts[value * buckets // R] += 1
    expected = len(values) / buckets
    chi2 = sum((count - expected) ** 2 / expected for count in counts)
    # 99.9th percentile of chi2 with 15 dof is ~37.7; be generous.
    return chi2 < 60.0
