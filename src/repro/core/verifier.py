"""On-chain proof verification (paper Eq. (1) and Eq. (2)).

The verifier (smart contract) recomputes the challenge expansion, derives

    chi = prod_t H(name || i_t)^{c_t}

and checks a product of three pairings with one shared final exponentiation.
For the private proof the check is Eq. (2):

    R * e(sigma^zeta, g2) * e(g1^{-y'}, epsilon)
        == e(chi^zeta, epsilon) * e(psi^zeta, delta * epsilon^{-r})

which we fold into  ``R * e(zeta*sigma, g2) * e(-y'*g1 - zeta*chi +
r*zeta*psi, epsilon) * e(-zeta*psi, delta) == 1`` — the psi leg is split
over delta and epsilon by bilinearity so every pairing argument is a
*fixed* G2 point whose Miller-loop lines can be prepared once.

Verification cost is *constant* in the file size — the paper's headline
on-chain efficiency property — and the measured wall time feeds the Fig. 5
gas extrapolation.

Rejections are *structured*: a failed check returns a falsy
:class:`VerifyOutcome` carrying a :class:`RejectionReason` — which equation
failed, plus a per-pairing-group residual fingerprint computed on the
failure path only.  The dispute flow in
:mod:`repro.chain.contracts.audit_contract` records these reasons on chain,
and the adversarial scenario tables in ``docs/SCENARIOS.md`` are built from
them.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from ..crypto.bn254 import (
    G1Point,
    G2Point,
    PrecomputeCache,
    hash_gt_to_scalar,
    miller_loop_product,
    final_exponentiation,
    multi_scalar_mul,
)
from .authenticator import block_digest_point
from .challenge import Challenge, ExpandedChallenge
from .keys import PublicKey
from .proof import PlainProof, PrivateProof


@dataclass(frozen=True)
class RejectionReason:
    """Why a proof was rejected, in machine-readable form.

    ``code`` is one of:

    * ``"pairing-mismatch"`` — the product-of-pairings equation did not
      evaluate to the GT identity (the cryptographic rejection);
    * ``"no-proof"`` — the provider never answered within the response
      window (contract-level timeout);
    * ``"malformed-proof"`` — the on-chain bytes do not decode to a
      well-formed proof;
    * ``"replayed-proof"`` — the bytes are identical to a proof posted in
      an earlier round (contract-level replay detection; the pairing check
      would also reject it, this code just names the behaviour).

    ``pairing_groups`` carries one ``(label, fingerprint)`` entry per
    pairing leg of the failed equation.  The fingerprints localize *where*
    transcripts diverge when two parties re-verify the same bytes (the
    dispute/light-client use case); a single verifier cannot attribute the
    mismatch to one leg alone — only the product is constrained to be 1.
    """

    code: str
    equation: str | None = None
    pairing_groups: tuple[tuple[str, str], ...] = ()
    detail: str = ""

    def describe(self) -> str:
        """One-line human-readable rendering (CLI / explorer output)."""
        parts = [self.code]
        if self.equation:
            parts.append(f"[{self.equation}]")
        if self.detail:
            parts.append(self.detail)
        if self.pairing_groups:
            legs = ", ".join(f"{label}={fp}" for label, fp in self.pairing_groups)
            parts.append(f"residuals: {legs}")
        return " ".join(parts)


@dataclass(frozen=True, eq=False)
class VerifyOutcome:
    """Truthy/falsy verification verdict with an attached reason.

    Evaluates as ``True`` exactly when the proof was accepted, and compares
    equal to plain booleans by verdict, so existing boolean call sites keep
    working; rejection callers read ``.reason``.
    """

    ok: bool
    reason: RejectionReason | None = None

    def __bool__(self) -> bool:
        return self.ok

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VerifyOutcome):
            return self.ok == other.ok and self.reason == other.reason
        if isinstance(other, bool):
            return self.ok is other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.ok, self.reason))

    @staticmethod
    def accept() -> "VerifyOutcome":
        return _ACCEPT

    @staticmethod
    def reject(
        code: str,
        equation: str | None = None,
        pairing_groups: tuple[tuple[str, str], ...] = (),
        detail: str = "",
    ) -> "VerifyOutcome":
        return VerifyOutcome(
            ok=False,
            reason=RejectionReason(
                code=code,
                equation=equation,
                pairing_groups=pairing_groups,
                detail=detail,
            ),
        )


_ACCEPT = VerifyOutcome(ok=True)


def _gt_fingerprint(value) -> str:
    """Short stable identifier of a GT element (for rejection diagnostics)."""
    return hashlib.sha256(repr(value).encode()).hexdigest()[:12]


def _pairing_group_residuals(
    labelled_pairs: list[tuple[str, tuple[G1Point, G2Point]]],
    extra: tuple[tuple[str, object], ...] = (),
) -> tuple[tuple[str, str], ...]:
    """Per-leg residual fingerprints, computed only on the failure path."""
    groups = [
        (label, _gt_fingerprint(final_exponentiation(miller_loop_product([pair]))))
        for label, pair in labelled_pairs
    ]
    groups.extend((label, _gt_fingerprint(value)) for label, value in extra)
    return tuple(groups)


@dataclass
class VerifyReport:
    """Wall-clock decomposition of one verification (Fig. 5 input)."""

    hash_seconds: float = 0.0      # chi digests (k hash-to-curve)
    msm_seconds: float = 0.0       # chi aggregation + proof point scaling
    pairing_seconds: float = 0.0   # 3 Miller loops + 1 final exponentiation

    @property
    def total_seconds(self) -> float:
        return self.hash_seconds + self.msm_seconds + self.pairing_seconds


class Verifier:
    """Stateless audit verification bound to one (public key, file) pair."""

    def __init__(
        self,
        public: PublicKey,
        name: int,
        num_chunks: int,
        precompute: PrecomputeCache | None = None,
    ):
        if num_chunks < 1:
            raise ValueError("file must contain at least one chunk")
        self.public = public
        self.name = name
        self.num_chunks = num_chunks
        # Optional shared cache: memoizes the per-file digest points H(name||i)
        # that the seed verifier re-hashed on every round.
        self._precompute = precompute

    def _digest(self, index: int) -> G1Point:
        if self._precompute is not None:
            return self._precompute.block_digest(self.name, index)
        return block_digest_point(self.name, index)

    def _g2_arg(self, point: G2Point):
        """Prepared Miller-loop lines when a cache is attached (the G2
        arguments are fixed per key/epoch, so the lines amortize)."""
        if self._precompute is not None:
            return self._precompute.prepared_g2(point)
        return point

    def compute_chi(
        self, expanded: ExpandedChallenge, report: VerifyReport | None = None
    ) -> G1Point:
        """chi = prod H(name||i)^{c_i} over the challenged set."""
        t0 = time.perf_counter()
        digests = [self._digest(i) for i in expanded.indices]
        t1 = time.perf_counter()
        if self._precompute is not None:
            # Digest points are fixed per file; reuse their wNAF tables.
            chi = self._precompute.wnaf_msm(
                digests, list(expanded.coefficients)
            )
        else:
            chi = multi_scalar_mul(digests, list(expanded.coefficients))
        t2 = time.perf_counter()
        if report is not None:
            report.hash_seconds += t1 - t0
            report.msm_seconds += t2 - t1
        return chi

    def verify_plain(
        self,
        challenge: Challenge,
        proof: PlainProof,
        report: VerifyReport | None = None,
    ) -> VerifyOutcome:
        """Paper Eq. (1): the non-private check (used by baselines/attack demo)."""
        expanded = challenge.expand(self.num_chunks)
        chi = self.compute_chi(expanded, report)
        t0 = time.perf_counter()
        g1 = G1Point.generator()
        g2 = G2Point.generator()
        # Split e(-psi, delta - r*epsilon) = e(-psi, delta) * e(r*psi, epsilon)
        # so every pairing leg lands on a *fixed* G2 point: one cheap G1
        # scalar mult replaces a G2 scalar mult plus fresh Miller lines, and
        # cached prepared lines cover the whole check.  Final exponentiation
        # of the product is the identical GT element (bilinearity).
        scaled_psi = -proof.psi
        left_g1 = -(g1 * proof.y) - chi - scaled_psi * expanded.point
        t1 = time.perf_counter()
        pairs = [
            (proof.sigma, self._g2_arg(g2)),
            (left_g1, self._g2_arg(self.public.epsilon)),
            (scaled_psi, self._g2_arg(self.public.delta)),
        ]
        product = final_exponentiation(miller_loop_product(pairs))
        ok = product.is_one()
        t2 = time.perf_counter()
        if report is not None:
            report.msm_seconds += t1 - t0
            report.pairing_seconds += t2 - t1
        if ok:
            return VerifyOutcome.accept()
        return VerifyOutcome.reject(
            code="pairing-mismatch",
            equation="Eq.1",
            pairing_groups=_pairing_group_residuals(
                [
                    ("sigma*g2", pairs[0]),
                    ("(y,chi,r*psi)*epsilon", pairs[1]),
                    ("psi*delta", pairs[2]),
                ]
            ),
            detail="product of pairings != 1",
        )

    def verify_private(
        self,
        challenge: Challenge,
        proof: PrivateProof,
        report: VerifyReport | None = None,
    ) -> VerifyOutcome:
        """Paper Eq. (2): the Sigma-masked on-chain check."""
        expanded = challenge.expand(self.num_chunks)
        chi = self.compute_chi(expanded, report)
        t0 = time.perf_counter()
        zeta = hash_gt_to_scalar(proof.commitment)
        g1 = G1Point.generator()
        g2 = G2Point.generator()
        scaled_sigma = proof.sigma * zeta
        # Same delta/epsilon split as the plain check: all three G2
        # arguments are fixed per key, so the prepared lines amortize.
        scaled_psi = -(proof.psi * zeta)
        left_g1 = (
            -(g1 * proof.y_masked) - chi * zeta - scaled_psi * expanded.point
        )
        t1 = time.perf_counter()
        pairs = [
            (scaled_sigma, self._g2_arg(g2)),
            (left_g1, self._g2_arg(self.public.epsilon)),
            (scaled_psi, self._g2_arg(self.public.delta)),
        ]
        product = final_exponentiation(miller_loop_product(pairs))
        ok = (product * proof.commitment).is_one()
        t2 = time.perf_counter()
        if report is not None:
            report.msm_seconds += t1 - t0
            report.pairing_seconds += t2 - t1
        if ok:
            return VerifyOutcome.accept()
        return VerifyOutcome.reject(
            code="pairing-mismatch",
            equation="Eq.2",
            pairing_groups=_pairing_group_residuals(
                [
                    ("zeta*sigma*g2", pairs[0]),
                    ("(y',chi,r*psi)*epsilon", pairs[1]),
                    ("zeta*psi*delta", pairs[2]),
                ],
                extra=(("commitment-R", proof.commitment),),
            ),
            detail="product of pairings * R != 1",
        )
