"""On-chain proof verification (paper Eq. (1) and Eq. (2)).

The verifier (smart contract) recomputes the challenge expansion, derives

    chi = prod_t H(name || i_t)^{c_t}

and checks a product of three pairings with one shared final exponentiation.
For the private proof the check is Eq. (2):

    R * e(sigma^zeta, g2) * e(g1^{-y'}, epsilon)
        == e(chi^zeta, epsilon) * e(psi^zeta, delta * epsilon^{-r})

which we fold into  ``R * e(zeta*sigma, g2) * e(-y'*g1 - zeta*chi, epsilon)
* e(-zeta*psi, delta - r*epsilon) == 1``.

Verification cost is *constant* in the file size — the paper's headline
on-chain efficiency property — and the measured wall time feeds the Fig. 5
gas extrapolation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..crypto.bn254 import (
    G1Point,
    G2Point,
    PrecomputeCache,
    hash_gt_to_scalar,
    miller_loop_product,
    final_exponentiation,
    multi_scalar_mul,
)
from .authenticator import block_digest_point
from .challenge import Challenge, ExpandedChallenge
from .keys import PublicKey
from .proof import PlainProof, PrivateProof


@dataclass
class VerifyReport:
    """Wall-clock decomposition of one verification (Fig. 5 input)."""

    hash_seconds: float = 0.0      # chi digests (k hash-to-curve)
    msm_seconds: float = 0.0       # chi aggregation + proof point scaling
    pairing_seconds: float = 0.0   # 3 Miller loops + 1 final exponentiation

    @property
    def total_seconds(self) -> float:
        return self.hash_seconds + self.msm_seconds + self.pairing_seconds


class Verifier:
    """Stateless audit verification bound to one (public key, file) pair."""

    def __init__(
        self,
        public: PublicKey,
        name: int,
        num_chunks: int,
        precompute: PrecomputeCache | None = None,
    ):
        if num_chunks < 1:
            raise ValueError("file must contain at least one chunk")
        self.public = public
        self.name = name
        self.num_chunks = num_chunks
        # Optional shared cache: memoizes the per-file digest points H(name||i)
        # that the seed verifier re-hashed on every round.
        self._precompute = precompute

    def _digest(self, index: int) -> G1Point:
        if self._precompute is not None:
            return self._precompute.block_digest(self.name, index)
        return block_digest_point(self.name, index)

    def compute_chi(
        self, expanded: ExpandedChallenge, report: VerifyReport | None = None
    ) -> G1Point:
        """chi = prod H(name||i)^{c_i} over the challenged set."""
        t0 = time.perf_counter()
        digests = [self._digest(i) for i in expanded.indices]
        t1 = time.perf_counter()
        chi = multi_scalar_mul(digests, list(expanded.coefficients))
        t2 = time.perf_counter()
        if report is not None:
            report.hash_seconds += t1 - t0
            report.msm_seconds += t2 - t1
        return chi

    def verify_plain(
        self,
        challenge: Challenge,
        proof: PlainProof,
        report: VerifyReport | None = None,
    ) -> bool:
        """Paper Eq. (1): the non-private check (used by baselines/attack demo)."""
        expanded = challenge.expand(self.num_chunks)
        chi = self.compute_chi(expanded, report)
        t0 = time.perf_counter()
        g1 = G1Point.generator()
        g2 = G2Point.generator()
        left_g1 = -(g1 * proof.y) - chi
        twisted = self.public.delta - self.public.epsilon * expanded.point
        t1 = time.perf_counter()
        product = final_exponentiation(
            miller_loop_product(
                [
                    (proof.sigma, g2),
                    (left_g1, self.public.epsilon),
                    (-proof.psi, twisted),
                ]
            )
        )
        ok = product.is_one()
        t2 = time.perf_counter()
        if report is not None:
            report.msm_seconds += t1 - t0
            report.pairing_seconds += t2 - t1
        return ok

    def verify_private(
        self,
        challenge: Challenge,
        proof: PrivateProof,
        report: VerifyReport | None = None,
    ) -> bool:
        """Paper Eq. (2): the Sigma-masked on-chain check."""
        expanded = challenge.expand(self.num_chunks)
        chi = self.compute_chi(expanded, report)
        t0 = time.perf_counter()
        zeta = hash_gt_to_scalar(proof.commitment)
        g1 = G1Point.generator()
        g2 = G2Point.generator()
        scaled_sigma = proof.sigma * zeta
        left_g1 = -(g1 * proof.y_masked) - chi * zeta
        twisted = self.public.delta - self.public.epsilon * expanded.point
        scaled_psi = -(proof.psi * zeta)
        t1 = time.perf_counter()
        product = final_exponentiation(
            miller_loop_product(
                [
                    (scaled_sigma, g2),
                    (left_g1, self.public.epsilon),
                    (scaled_psi, twisted),
                ]
            )
        )
        ok = (product * proof.commitment).is_one()
        t2 = time.perf_counter()
        if report is not None:
            report.msm_seconds += t1 - t0
            report.pairing_seconds += t2 - t1
        return ok
