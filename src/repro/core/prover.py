"""The storage provider's proof generation (paper Fig. 3, right column).

Given the expanded challenge ``{(i_t, c_t)}, r`` the prover computes

    sigma = prod_t sigma_{i_t}^{c_t}                       (k-term G1 MSM)
    P_k   = sum_t c_t * M_{i_t}                            (k*s Zp mults)
    y     = P_k(r)                                         (Horner)
    Q_k   = (P_k - y) / (x - r)                            (synthetic division)
    psi   = g1^{Q_k(alpha)}                                ((s-1)-term MSM)

and, in private mode, the Sigma-protocol masking of Section V-D:

    z  <-$ Zp,   R = e(g1, epsilon)^z,   zeta = H'(R),   y' = zeta*y + z.

Only ``(sigma, y', psi, R)`` ever reaches the chain; ``y`` and therefore the
data-dependent polynomial evaluation stays local.  Timing is split into the
ECC / Zp / GT components plotted in the paper's Figs. 8 and 9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    GTFixedBase,
    PrecomputeCache,
    gt_pow,
    hash_gt_to_scalar,
    multi_scalar_mul,
)
from ..crypto.field import random_scalar
from .challenge import Challenge, ExpandedChallenge
from .chunking import ChunkedFile
from .keys import PublicKey
from .polynomial import evaluate, linear_combination, quotient_by_linear
from .proof import PlainProof, PrivateProof


class ResponseWithheld(RuntimeError):
    """Raised by a prover that deliberately stays silent for a round.

    The adversarial churn strategy (:mod:`repro.adversary.strategies`)
    models providers that are offline when a challenge fires; agents and
    schedulers catch this and let the response window lapse, which the
    contract records as a ``no-proof`` failure.
    """


@dataclass
class ProveReport:
    """Wall-clock decomposition of one proof generation (Figs. 8/9 data)."""

    zp_seconds: float = 0.0
    ecc_seconds: float = 0.0
    privacy_seconds: float = 0.0  # the "+ security" overhead of Fig. 8

    @property
    def total_seconds(self) -> float:
        return self.zp_seconds + self.ecc_seconds + self.privacy_seconds


class Prover:
    """A storage provider's audit-answering state for one stored file."""

    def __init__(
        self,
        chunked: ChunkedFile,
        public: PublicKey,
        authenticators: Sequence[G1Point],
        rng=None,
        precompute: PrecomputeCache | None = None,
    ):
        if len(authenticators) != chunked.num_chunks:
            raise ValueError("one authenticator per chunk required")
        if chunked.s > len(public.powers):
            raise ValueError("chunk size exceeds published alpha powers")
        self.chunked = chunked
        self.public = public
        self.authenticators = list(authenticators)
        self._rng = rng
        # Shared fixed-base tables (powers-of-alpha MSM, GT contexts).  When
        # absent, every table is private to this prover — the seed path.
        self._precompute = precompute
        self._gt_table: GTFixedBase | None = None

    # -- internals ----------------------------------------------------------

    def _aggregate(
        self, expanded: ExpandedChallenge, report: ProveReport | None
    ) -> tuple[G1Point, list[int], int, G1Point]:
        """Shared pipeline: returns (sigma, P_k coefficients, y, psi)."""
        t0 = time.perf_counter()
        challenged = [self.chunked.chunks[i] for i in expanded.indices]
        combined = linear_combination(challenged, list(expanded.coefficients))
        y = evaluate(combined, expanded.point)
        quotient = quotient_by_linear(combined, expanded.point)
        t1 = time.perf_counter()
        sigma_bases = [self.authenticators[i] for i in expanded.indices]
        sigma_coeffs = list(expanded.coefficients)
        if self._precompute is not None:
            # Authenticators are fixed per file: their wNAF tables amortize
            # across every round that challenges the same chunk.
            sigma = self._precompute.wnaf_msm(sigma_bases, sigma_coeffs)
        else:
            sigma = multi_scalar_mul(sigma_bases, sigma_coeffs)
        if self._precompute is not None:
            # The powers of alpha are fixed per contract: cached wNAF tables
            # cost ~30 additions per base to build (vs ~1600 for a windowed
            # fixed-base table) at near-identical per-audit cost, which keeps
            # the engine's cold-start epoch cheap.
            psi = self._precompute.wnaf_msm(
                list(self.public.powers[: len(quotient)]),
                quotient,
                identity=G1Point.infinity(),
            )
        else:
            # s == 1 means a degree-0 commitment: the quotient is empty and
            # psi degenerates to the G1 identity.
            psi = multi_scalar_mul(
                list(self.public.powers[: len(quotient)]),
                quotient,
                identity=G1Point.infinity(),
            )
        t2 = time.perf_counter()
        if report is not None:
            report.zp_seconds += t1 - t0
            report.ecc_seconds += t2 - t1
        return sigma, combined, y, psi

    def _sigma_commitment(self, report: ProveReport | None) -> tuple[int, "object"]:
        """Sample z and compute R = e(g1, epsilon)^z with the cached table."""
        t0 = time.perf_counter()
        z = random_scalar(self._rng)
        if self.public.pairing_base is None:
            raise ValueError(
                "public key lacks e(g1, epsilon); regenerate with privacy "
                "support to produce private proofs"
            )
        if self._gt_table is None:
            self._gt_table = self.public.gt_table(self._precompute)
        commitment = self._gt_table.pow(z)
        t1 = time.perf_counter()
        if report is not None:
            report.privacy_seconds += t1 - t0
        return z, commitment

    # -- public API -----------------------------------------------------------

    def respond_plain(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PlainProof:
        """Non-private response (sigma, y, psi) verified by paper Eq. (1).

        Exposed for the baselines and the Section V-C attack demonstration;
        production deployments should always use :meth:`respond_private`.
        """
        expanded = challenge.expand(self.chunked.num_chunks)
        sigma, _, y, psi = self._aggregate(expanded, report)
        return PlainProof(sigma=sigma, y=y, psi=psi)

    def respond_private(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        """The paper's secure audit response (sigma, y', psi, R)."""
        expanded = challenge.expand(self.chunked.num_chunks)
        sigma, _, y, psi = self._aggregate(expanded, report)
        z, commitment = self._sigma_commitment(report)
        t0 = time.perf_counter()
        zeta = hash_gt_to_scalar(commitment)
        y_masked = (zeta * y + z) % CURVE_ORDER
        t1 = time.perf_counter()
        if report is not None:
            report.privacy_seconds += t1 - t0
        return PrivateProof(
            sigma=sigma, y_masked=y_masked, psi=psi, commitment=commitment
        )

    # -- storage accounting --------------------------------------------------

    def extra_storage_bytes(self) -> int:
        """Authenticator storage the provider carries (1/s of data size)."""
        from .authenticator import authenticator_storage_bytes

        return authenticator_storage_bytes(self.chunked.num_chunks)


class CheatingProver(Prover):
    """A provider that lost data and tries plausible-looking responses.

    Strategies (all must fail verification — tested):

    * ``zero-fill``: answers as if missing blocks were zero,
    * ``random-sigma``: substitutes a random aggregated authenticator,
    * ``stale-proof``: replays the proof from a previous round.
    """

    def __init__(self, *args, strategy: str = "zero-fill", **kwargs):
        super().__init__(*args, **kwargs)
        if strategy not in ("zero-fill", "random-sigma", "stale-proof"):
            raise ValueError(f"unknown cheating strategy {strategy!r}")
        self.strategy = strategy
        self._last_proof: PrivateProof | None = None

    def respond_private(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        if self.strategy == "stale-proof" and self._last_proof is not None:
            return self._last_proof
        proof = super().respond_private(challenge, report)
        if self.strategy == "random-sigma":
            proof = PrivateProof(
                sigma=G1Point.generator() * random_scalar(self._rng),
                y_masked=proof.y_masked,
                psi=proof.psi,
                commitment=proof.commitment,
            )
        self._last_proof = proof
        return proof
