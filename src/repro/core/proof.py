"""Audit proof objects and their on-chain byte encodings.

Two proof shapes, matching the two lines of the paper's Fig. 5:

* :class:`PlainProof` — the non-private response ``(sigma, y, psi)``:
  96 bytes (2 compressed G1 + 1 Zp scalar).  Verified with paper Eq. (1).
  **Leaks data**: Section V-C shows y = P_k(r) enables interpolation attacks.
* :class:`PrivateProof` — the Sigma-masked response
  ``(sigma, y', psi, R)``: 288 bytes (2 G1 + 1 Zp + 1 torus-compressed GT).
  Verified with paper Eq. (2).  This is the paper's headline proof size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn254 import (
    FP_BYTES,
    G1_COMPRESSED_BYTES,
    GT_COMPRESSED_BYTES,
    G1Point,
    g1_from_bytes,
    g1_to_bytes,
    gt_from_bytes,
    gt_to_bytes,
)
from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.bn254.fields import Fp12

PLAIN_PROOF_BYTES = 2 * G1_COMPRESSED_BYTES + FP_BYTES            # 96
PRIVATE_PROOF_BYTES = PLAIN_PROOF_BYTES + GT_COMPRESSED_BYTES     # 288


@dataclass(frozen=True)
class PlainProof:
    """(sigma, y, psi) — paper Section V-B without the privacy layer."""

    sigma: G1Point
    y: int
    psi: G1Point

    def to_bytes(self) -> bytes:
        return (
            g1_to_bytes(self.sigma)
            + (self.y % R).to_bytes(FP_BYTES, "big")
            + g1_to_bytes(self.psi)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "PlainProof":
        if len(data) != PLAIN_PROOF_BYTES:
            raise ValueError(f"plain proof must be {PLAIN_PROOF_BYTES} bytes")
        sigma = g1_from_bytes(data[:G1_COMPRESSED_BYTES])
        y = int.from_bytes(data[G1_COMPRESSED_BYTES : G1_COMPRESSED_BYTES + FP_BYTES], "big")
        if y >= R:
            raise ValueError("y not canonical")
        psi = g1_from_bytes(data[G1_COMPRESSED_BYTES + FP_BYTES :])
        return PlainProof(sigma=sigma, y=y, psi=psi)

    def byte_size(self) -> int:
        return PLAIN_PROOF_BYTES


@dataclass(frozen=True)
class PrivateProof:
    """(sigma, y', psi, R) — paper Section V-D, the 288-byte on-chain proof."""

    sigma: G1Point
    y_masked: int
    psi: G1Point
    commitment: Fp12  # R = e(g1, epsilon)^z

    def to_bytes(self) -> bytes:
        return (
            g1_to_bytes(self.sigma)
            + (self.y_masked % R).to_bytes(FP_BYTES, "big")
            + g1_to_bytes(self.psi)
            + gt_to_bytes(self.commitment)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "PrivateProof":
        if len(data) != PRIVATE_PROOF_BYTES:
            raise ValueError(f"private proof must be {PRIVATE_PROOF_BYTES} bytes")
        sigma = g1_from_bytes(data[:G1_COMPRESSED_BYTES])
        offset = G1_COMPRESSED_BYTES
        y_masked = int.from_bytes(data[offset : offset + FP_BYTES], "big")
        if y_masked >= R:
            raise ValueError("y' not canonical")
        offset += FP_BYTES
        psi = g1_from_bytes(data[offset : offset + G1_COMPRESSED_BYTES])
        offset += G1_COMPRESSED_BYTES
        commitment = gt_from_bytes(data[offset:])
        return PrivateProof(
            sigma=sigma, y_masked=y_masked, psi=psi, commitment=commitment
        )

    def byte_size(self) -> int:
        return PRIVATE_PROOF_BYTES
