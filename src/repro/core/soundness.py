"""Operational versions of the paper's soundness arguments (Theorem 1).

Two extractors, mirroring the proof sketch in Section VI-A ("the
unforgeable problem can be transformed into the extractability of
knowledge in a proof of knowledge problem"):

1. **Special soundness of the Sigma layer** — two accepting transcripts
   that share the commitment ``R`` (hence the masking nonce ``z``) but
   answer different oracle challenges ``zeta`` reveal the masked
   evaluation:  ``y = (y'_1 - y'_2) / (zeta_1 - zeta_2)``.  In the random
   oracle model an extractor obtains such a pair by forking the prover;
   here :class:`ForkingProver` plays the prover side so the algebra can be
   exercised end to end.

2. **Evaluation-to-data extraction** — given enough opened evaluations of
   ``P_k`` (the PoR heart: any prover answering random challenges
   correctly must "know" the data), Lagrange interpolation plus linear
   algebra recovers the raw blocks.  This is the *same* machinery as the
   Section V-C attack — which is exactly the paper's point: extractability
   for the auditor is leakage for the adversary, and the Sigma layer is
   what separates the two (the extractor works with the prover's
   cooperation / forking; the adversary only sees single-shot masked
   transcripts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn254 import CURVE_ORDER, G1Point, gt_pow, hash_gt_to_scalar
from ..crypto.bn254.fields import Fp12
from ..crypto.field import random_scalar
from .challenge import Challenge
from .polynomial import evaluate, linear_combination
from .proof import PrivateProof
from .prover import Prover


@dataclass(frozen=True)
class ForkedTranscripts:
    """Two accepting transcripts sharing (sigma, psi, R) with distinct zeta."""

    challenge: Challenge
    proof_one: PrivateProof
    zeta_one: int
    proof_two: PrivateProof
    zeta_two: int


class ForkingProver(Prover):
    """A prover that can be 'rewound': same z, two different zetas.

    Models the random-oracle forking lemma: the extractor reprograms
    H'(R) between the two runs.  Only the extractor-facing API differs
    from :class:`Prover`; the proofs themselves are ordinary Eq.-2 proofs.
    """

    def respond_forked(self, challenge: Challenge) -> ForkedTranscripts:
        expanded = challenge.expand(self.chunked.num_chunks)
        sigma, _, y, psi = self._aggregate(expanded, None)
        z = random_scalar(self._rng)
        if self._gt_table is None:
            self._gt_table = self.public.gt_table()
        commitment = self._gt_table.pow(z)
        zeta_one = hash_gt_to_scalar(commitment)
        # The "reprogrammed oracle" answer for the second run: any distinct
        # non-zero challenge works; derive it deterministically.
        zeta_two = (zeta_one * 2 + 1) % CURVE_ORDER
        proof_one = PrivateProof(
            sigma=sigma,
            y_masked=(zeta_one * y + z) % CURVE_ORDER,
            psi=psi,
            commitment=commitment,
        )
        proof_two = PrivateProof(
            sigma=sigma,
            y_masked=(zeta_two * y + z) % CURVE_ORDER,
            psi=psi,
            commitment=commitment,
        )
        return ForkedTranscripts(
            challenge=challenge,
            proof_one=proof_one,
            zeta_one=zeta_one,
            proof_two=proof_two,
            zeta_two=zeta_two,
        )


def extract_masked_evaluation(transcripts: ForkedTranscripts) -> tuple[int, int]:
    """Special-soundness extraction: recover (y, z) from a forked pair.

        y = (y'_1 - y'_2) / (zeta_1 - zeta_2)
        z = y'_1 - zeta_1 * y

    Raises ValueError if the transcripts do not actually fork.
    """
    if transcripts.proof_one.commitment != transcripts.proof_two.commitment:
        raise ValueError("transcripts do not share the Sigma commitment R")
    delta_zeta = (transcripts.zeta_one - transcripts.zeta_two) % CURVE_ORDER
    if delta_zeta == 0:
        raise ValueError("transcripts answer the same challenge: no fork")
    delta_y = (
        transcripts.proof_one.y_masked - transcripts.proof_two.y_masked
    ) % CURVE_ORDER
    y = delta_y * pow(delta_zeta, -1, CURVE_ORDER) % CURVE_ORDER
    z = (transcripts.proof_one.y_masked - transcripts.zeta_one * y) % CURVE_ORDER
    return y, z


def verify_extraction(
    transcripts: ForkedTranscripts,
    prover: Prover,
    extracted_y: int,
    extracted_z: int,
) -> bool:
    """Check the extractor's output against the ground truth.

    (Test-harness helper: a real extractor has no ground truth, but here we
    can confirm y = P_k(r) and R = e(g1, eps)^z.)
    """
    expanded = transcripts.challenge.expand(prover.chunked.num_chunks)
    combined = linear_combination(
        [prover.chunked.chunks[i] for i in expanded.indices],
        list(expanded.coefficients),
    )
    if evaluate(combined, expanded.point) != extracted_y:
        return False
    base = prover.public.pairing_base
    if base is None:
        return False
    return gt_pow(base, extracted_z) == transcripts.proof_one.commitment


def knowledge_error_bound(num_forks: int) -> float:
    """Upper bound on the probability a data-less prover survives forking.

    Each independent fork succeeds for a non-knowing prover with
    probability at most 1/r (guessing the masked evaluation); the bound is
    union-style and astronomically small for any practical r.
    """
    r = float(CURVE_ORDER)
    return min(1.0, num_forks / r)
