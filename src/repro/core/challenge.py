"""Challenge generation and deterministic expansion (paper Fig. 3, left).

The smart contract publishes only three lambda-bit seeds — ``C1``, ``C2``
and ``r`` (48 bytes total, Section VII-B) — and both prover and verifier
expand them locally:

    {i_0..i_{k-1}}  = PRP_{C1}(0..k-1)     distinct chunk indices
    {c_0..c_{k-1}}  = PRF_{C2}(0..k-1)     coefficients in Zp
    r               = evaluation point in Zp (derived from the r-seed)

Pre-determined expansion is what the paper calls "expanding the domain of
randomness outputs": it keeps on-chain randomness consumption constant
regardless of k.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.field import hash_to_scalar
from ..crypto.prf import FeistelPrp, Prf
from .params import ProtocolParams


@dataclass(frozen=True)
class Challenge:
    """The on-chain challenge: (C1, C2, r) seeds plus the audit round."""

    c1: bytes
    c2: bytes
    r_seed: bytes
    k: int

    def __post_init__(self) -> None:
        if len(self.c1) != len(self.c2) or len(self.c1) != len(self.r_seed):
            raise ValueError("challenge seeds must have equal length")
        if self.k < 1:
            raise ValueError("k must be positive")

    @property
    def point(self) -> int:
        """The polynomial evaluation point r in Zp."""
        return hash_to_scalar(b"challenge-point", self.r_seed)

    def byte_size(self) -> int:
        """On-chain size: 48 bytes at lambda = 128."""
        return len(self.c1) + len(self.c2) + len(self.r_seed)

    def to_bytes(self) -> bytes:
        return self.c1 + self.c2 + self.r_seed

    @staticmethod
    def from_bytes(data: bytes, k: int, seed_bytes: int = 16) -> "Challenge":
        if len(data) != 3 * seed_bytes:
            raise ValueError(f"challenge must be {3 * seed_bytes} bytes")
        return Challenge(
            c1=data[:seed_bytes],
            c2=data[seed_bytes : 2 * seed_bytes],
            r_seed=data[2 * seed_bytes :],
            k=k,
        )

    def expand(self, num_chunks: int) -> "ExpandedChallenge":
        """Derive the challenged set {(i, c_i)} and the evaluation point.

        Memoized: expansion is deterministic, and prover and verifier both
        expand the *same* challenge every audit (the Feistel PRP sampling
        is a measurable slice of a warm epoch).
        """
        return _expand_challenge(self, num_chunks)


@lru_cache(maxsize=2048)
def _expand_challenge(challenge: Challenge, num_chunks: int) -> "ExpandedChallenge":
    k = min(challenge.k, num_chunks)
    prp = FeistelPrp(challenge.c1, num_chunks)
    indices = prp.sample_indices(k)
    coefficients = Prf(challenge.c2).scalars(k)
    return ExpandedChallenge(
        indices=tuple(indices),
        coefficients=tuple(coefficients),
        point=challenge.point,
    )


@dataclass(frozen=True)
class ExpandedChallenge:
    """The fully-expanded challenge both sides compute locally."""

    indices: tuple[int, ...]
    coefficients: tuple[int, ...]
    point: int

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.coefficients):
            raise ValueError("indices and coefficients must align")
        if not 0 <= self.point < R:
            raise ValueError("evaluation point out of field range")

    @property
    def k(self) -> int:
        return len(self.indices)


def random_challenge(params: ProtocolParams, rng=None) -> Challenge:
    """Sample a fresh challenge the way the beacon-backed contract would."""
    seed_bytes = params.seed_bytes
    if rng is None:
        material = os.urandom(3 * seed_bytes)
    else:
        material = bytes(rng.randrange(256) for _ in range(3 * seed_bytes))
    return Challenge.from_bytes(material, k=params.k, seed_bytes=seed_bytes)


def epoch_challenge(
    beacon_output: bytes, params: ProtocolParams, name: int
) -> Challenge:
    """Per-file challenge for one engine epoch, with a shared evaluation point.

    ``C1``/``C2`` are domain-separated per file (each file gets distinct
    challenged indices and coefficients), while the ``r``-seed is derived
    from the epoch beacon alone, so every audit in the epoch evaluates at
    the same point ``r``.  Sharing ``r`` is sound — it is unpredictable
    until the beacon fires, exactly as when independent contracts read the
    same beacon round — and it is what lets grouped batch verification
    merge each owner's ``delta - r*epsilon`` pairs into one Miller loop.
    """
    import hashlib

    seed_bytes = params.seed_bytes
    name_bytes = name.to_bytes(32, "big")
    c1 = hashlib.sha256(b"epoch-c1" + name_bytes + beacon_output).digest()
    c2 = hashlib.sha256(b"epoch-c2" + name_bytes + beacon_output).digest()
    r_seed = hashlib.sha256(b"epoch-r" + beacon_output).digest()
    return Challenge(
        c1=c1[:seed_bytes],
        c2=c2[:seed_bytes],
        r_seed=r_seed[:seed_bytes],
        k=params.k,
    )


def challenge_from_beacon(
    beacon_output: bytes, params: ProtocolParams
) -> Challenge:
    """Derive the round challenge from raw beacon randomness.

    The beacon output is stretched with domain separation so that a 32-byte
    beacon value still yields three independent seeds.
    """
    import hashlib

    seed_bytes = params.seed_bytes
    material = b"".join(
        hashlib.sha256(b"chal-seed" + bytes([label]) + beacon_output).digest()
        for label in range(3)
    )
    seeds = [
        material[i * 32 : i * 32 + seed_bytes] for i in range(3)
    ]
    return Challenge(c1=seeds[0], c2=seeds[1], r_seed=seeds[2], k=params.k)
