"""Protocol parameters (the paper's lambda, s, k knobs).

* ``s`` — blocks per chunk, the storage/computation trade-off parameter: the
  provider stores one authenticator per chunk, i.e. extra storage is ``1/s``
  of the data size (paper Section VII-C); proof generation cost grows with
  ``s`` while preprocessing cost falls.  The paper lands on ``s = 50``.
* ``k`` — challenged chunks per audit.  ``k = 300`` gives 95% detection
  confidence when 1% of the data is corrupted (paper Section VI-A).
* ``security_bits`` — lambda; the challenge seeds C1/C2/r are lambda bits
  each, giving the 48-byte on-chain challenge of Section VII-B.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper defaults (Sections VI-A / VII).
DEFAULT_S = 50
DEFAULT_K = 300
SECURITY_BITS = 128

#: Challenge seed size in bytes (three seeds make the 48-byte challenge).
SEED_BYTES = SECURITY_BITS // 8


@dataclass(frozen=True)
class ProtocolParams:
    """Immutable bundle of audit-protocol parameters."""

    s: int = DEFAULT_S
    k: int = DEFAULT_K
    security_bits: int = SECURITY_BITS

    def __post_init__(self) -> None:
        if self.s < 1:
            raise ValueError("s (blocks per chunk) must be >= 1")
        if self.k < 1:
            raise ValueError("k (challenged chunks) must be >= 1")
        if self.security_bits not in (80, 128, 256):
            raise ValueError("security_bits must be one of 80, 128, 256")

    @property
    def seed_bytes(self) -> int:
        return self.security_bits // 8

    @property
    def challenge_bytes(self) -> int:
        """On-chain challenge size: C1 || C2 || r (48 bytes at lambda=128)."""
        return 3 * self.seed_bytes

    def storage_overhead_ratio(self) -> float:
        """Provider-side extra storage as a fraction of the data size.

        One 32-byte G1 authenticator per chunk of ``s`` 31-byte blocks.
        """
        from ..crypto.field import BLOCK_BYTES

        return 32 / (self.s * BLOCK_BYTES)
