"""Storage-assurance analysis: challenged chunks vs detection confidence.

Paper Section VI-A: "setting k to 300 can give D storage assurance of 95%
if only 1% of entire data is tampered".  The underlying model (Ateniese et
al., CCS'07) is that each of the k challenged chunks independently hits a
corrupted chunk with probability rho:

    P_detect = 1 - (1 - rho)^k

The exact hypergeometric version (the PRP samples *without* replacement) is
also provided; it dominates the binomial bound, so the paper's k values are
conservative.  This module generates the x-axis of the paper's Fig. 9
(confidence levels 91%..99% -> k = 240..460).
"""

from __future__ import annotations

import math


def detection_probability(k: int, corruption_fraction: float) -> float:
    """P[>= 1 corrupted chunk challenged] under sampling with replacement."""
    if not 0 <= corruption_fraction <= 1:
        raise ValueError("corruption_fraction must be in [0, 1]")
    if k < 0:
        raise ValueError("k must be non-negative")
    return 1.0 - (1.0 - corruption_fraction) ** k


def detection_probability_exact(
    num_chunks: int, corrupted_chunks: int, k: int
) -> float:
    """Exact hypergeometric detection probability (without replacement).

    P = 1 - C(n - t, k) / C(n, k) for n chunks, t corrupted, k challenged.
    """
    if corrupted_chunks < 0 or corrupted_chunks > num_chunks:
        raise ValueError("corrupted_chunks out of range")
    k = min(k, num_chunks)
    if corrupted_chunks == 0:
        return 0.0
    if k > num_chunks - corrupted_chunks:
        return 1.0
    miss = math.comb(num_chunks - corrupted_chunks, k) / math.comb(num_chunks, k)
    return 1.0 - miss


def required_challenges(confidence: float, corruption_fraction: float) -> int:
    """Smallest k with detection_probability(k, rho) >= confidence.

    required_challenges(0.95, 0.01) == 299, which the paper rounds to 300;
    required_challenges(0.99, 0.01) == 459 (paper: 460).
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if not 0 < corruption_fraction < 1:
        raise ValueError("corruption_fraction must be in (0, 1)")
    return math.ceil(
        math.log(1.0 - confidence) / math.log(1.0 - corruption_fraction)
    )


def figure9_k_schedule(
    confidences: tuple[float, ...] = (0.91, 0.93, 0.95, 0.97, 0.99),
    corruption_fraction: float = 0.01,
) -> dict[float, int]:
    """The confidence -> k mapping underlying the paper's Fig. 9 x-axis."""
    return {
        confidence: required_challenges(confidence, corruption_fraction)
        for confidence in confidences
    }
