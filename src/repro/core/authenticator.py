"""Homomorphic authenticator generation and validation (paper Section V-B).

The data owner binds every chunk to a single G1 authenticator through the
pairing-based polynomial commitment:

    sigma_i = (g1^{M_i(alpha)} * H(name || i))^x

Knowing ``alpha``, the owner evaluates ``M_i(alpha)`` directly in Zp and
pays two scalar multiplications plus one hash-to-curve per chunk — this is
the "minimized work for data owner" of Section VII-C.

The provider, who must *not* learn ``alpha``, validates the received
authenticators against the public powers with pairings (Initialize phase:
"S checks it with public keys").  The randomised batch check keeps that a
constant number of pairings.

Instrumented timing (ECC vs Zp vs hashing) feeds the Fig. 7 benchmark; the
``naive`` evaluation mode reproduces the O(s^2)-per-chunk behaviour that
explains the paper's U-shaped preprocessing curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

from ..crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    hash_to_g1,
    multi_scalar_mul,
    pairing_check,
)
from ..crypto.bn254.msm import FixedBaseMul
from ..crypto.field import random_scalar
from .chunking import ChunkedFile
from .keys import KeyPair, PublicKey
from .polynomial import evaluate, evaluate_naive, interpolate_sequential

EvalMode = Literal["horner", "naive", "interpolate"]


def _evaluate_interpolated(chunk, alpha: int) -> int:
    """Evaluation-form chunks: O(s^2) basis transform, then Horner.

    Models the prototype's per-chunk "polynomial coefficient
    transformation" (see :func:`interpolate_sequential`); reproduces the
    Fig. 7 U-shape when swept over s.
    """
    return evaluate(interpolate_sequential(list(chunk)), alpha)


def block_digest_point(name: int, chunk_index: int) -> G1Point:
    """H(name || i): the per-chunk random-oracle digest in G1."""
    message = name.to_bytes(32, "big") + b"||" + chunk_index.to_bytes(8, "big")
    return hash_to_g1(message)


@dataclass
class PreprocessReport:
    """Wall-clock decomposition of authenticator generation (Fig. 7 data)."""

    num_chunks: int = 0
    zp_seconds: float = 0.0
    ecc_seconds: float = 0.0
    hash_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.zp_seconds + self.ecc_seconds + self.hash_seconds


def generate_authenticators(
    chunked: ChunkedFile,
    keypair: KeyPair,
    mode: EvalMode = "horner",
    report: PreprocessReport | None = None,
    g1_table: FixedBaseMul | None = None,
) -> list[G1Point]:
    """Compute sigma_i for every chunk of the file.

    ``mode='horner'`` is the efficient path (O(s) Zp ops per chunk);
    ``mode='naive'`` re-exponentiates per coefficient (O(s log s));
    ``mode='interpolate'`` treats blocks as evaluations and performs the
    O(s^2) coefficient transformation per chunk — the prototype-faithful
    mode that reproduces the Fig. 7 U-shape.
    """
    x = keypair.secret.x
    alpha = keypair.secret.alpha
    evaluators = {
        "horner": evaluate,
        "naive": evaluate_naive,
        "interpolate": _evaluate_interpolated,
    }
    evaluator = evaluators[mode]
    if g1_table is None:
        g1_table = FixedBaseMul(G1Point.generator())
    authenticators = []
    for index, chunk in enumerate(chunked.chunks):
        t0 = time.perf_counter()
        m_alpha = evaluator(chunk, alpha)
        t1 = time.perf_counter()
        digest = block_digest_point(chunked.name, index)
        t2 = time.perf_counter()
        committed = g1_table.mul(m_alpha) + digest
        authenticators.append(committed * x)
        t3 = time.perf_counter()
        if report is not None:
            report.num_chunks += 1
            report.zp_seconds += t1 - t0
            report.hash_seconds += t2 - t1
            report.ecc_seconds += t3 - t2
    return authenticators


def validate_authenticator(
    chunk: Sequence[int],
    chunk_index: int,
    authenticator: G1Point,
    public: PublicKey,
    name: int,
) -> bool:
    """Provider-side check of a single sigma_i (two pairings).

    e(sigma_i, g2) == e(g1^{M_i(alpha)} * H(name||i), epsilon), where the
    commitment is rebuilt from the public alpha-powers (the provider never
    sees alpha).
    """
    if len(chunk) > len(public.powers):
        raise ValueError("chunk degree exceeds the published alpha powers")
    from ..crypto.bn254.curve import G2Point

    commitment = multi_scalar_mul(list(public.powers[: len(chunk)]), list(chunk))
    commitment = commitment + block_digest_point(name, chunk_index)
    return pairing_check(
        [(authenticator, G2Point.generator()), (-commitment, public.epsilon)]
    )


def validate_authenticators_batched(
    chunked: ChunkedFile,
    authenticators: Sequence[G1Point],
    public: PublicKey,
    rng=None,
) -> bool:
    """Randomised whole-file validation with a single product pairing.

    Checks e(sum rho_i sigma_i, g2) == e(sum rho_i (C_i + H_i), epsilon)
    for uniformly random rho_i; a forged authenticator passes with
    probability 1/r.  Cost: one d-term and one s-term MSM + 2 Miller loops.
    """
    if len(authenticators) != chunked.num_chunks:
        return False
    if chunked.s > len(public.powers):
        raise ValueError("chunk degree exceeds the published alpha powers")
    from ..crypto.bn254.curve import G2Point

    weights = [random_scalar(rng) for _ in range(chunked.num_chunks)]
    # Aggregate chunk coefficients across chunks: combined[j] = sum_i w_i m_{i,j}.
    combined = [0] * chunked.s
    for weight, chunk in zip(weights, chunked.chunks):
        for j, block in enumerate(chunk):
            combined[j] = (combined[j] + weight * block) % CURVE_ORDER
    commitment = multi_scalar_mul(list(public.powers[: chunked.s]), combined)
    digests = [
        block_digest_point(chunked.name, index)
        for index in range(chunked.num_chunks)
    ]
    commitment = commitment + multi_scalar_mul(digests, weights)
    aggregated = multi_scalar_mul(list(authenticators), weights)
    return pairing_check(
        [(aggregated, G2Point.generator()), (-commitment, public.epsilon)]
    )


def authenticator_storage_bytes(num_chunks: int) -> int:
    """Provider-side extra storage: one compressed G1 point per chunk."""
    from ..crypto.bn254 import G1_COMPRESSED_BYTES

    return num_chunks * G1_COMPRESSED_BYTES
