"""Polynomial arithmetic over the scalar field Zr.

Everything the protocol does with data is polynomial algebra (paper
Definitions 1 and 3):

* a chunk is the coefficient vector of ``M_i(x)``,
* the aggregated response is ``P_k(x) = sum_i c_i M_i(x)``,
* the KZG witness needs the quotient ``Q_k(x) = (P_k(x) - P_k(r))/(x - r)``,
* the Section V-C adversary reconstructs ``P_k`` by Lagrange interpolation.

Polynomials are dense coefficient lists, lowest degree first.
"""

from __future__ import annotations

from typing import Sequence

from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.field import batch_inverse


def evaluate(coefficients: Sequence[int], point: int) -> int:
    """Horner evaluation: O(n) multiplications."""
    accumulator = 0
    for coefficient in reversed(coefficients):
        accumulator = (accumulator * point + coefficient) % R
    return accumulator


def evaluate_naive(coefficients: Sequence[int], point: int) -> int:
    """Textbook evaluation with a fresh ``pow`` per term: O(n^2) mults.

    Kept deliberately: the Fig. 7 preprocessing sweep uses this mode to
    reproduce the paper's U-shaped cost curve, which is consistent with an
    O(s^2)-per-chunk coefficient transformation in the original prototype
    (see EXPERIMENTS.md).
    """
    return sum(
        coefficient * pow(point, exponent, R)
        for exponent, coefficient in enumerate(coefficients)
    ) % R


def add(a: Sequence[int], b: Sequence[int]) -> list[int]:
    length = max(len(a), len(b))
    out = [0] * length
    for index, value in enumerate(a):
        out[index] = value % R
    for index, value in enumerate(b):
        out[index] = (out[index] + value) % R
    return out


def scalar_mul(coefficients: Sequence[int], scalar: int) -> list[int]:
    scalar %= R
    return [c * scalar % R for c in coefficients]


def linear_combination(
    polynomials: Sequence[Sequence[int]], scalars: Sequence[int]
) -> list[int]:
    """sum_i scalars[i] * polynomials[i] — the aggregation that builds P_k."""
    if len(polynomials) != len(scalars):
        raise ValueError("polynomials and scalars must have the same length")
    if not polynomials:
        return [0]
    length = max(len(p) for p in polynomials)
    out = [0] * length
    for polynomial, scalar in zip(polynomials, scalars):
        scalar %= R
        for index, coefficient in enumerate(polynomial):
            out[index] = (out[index] + coefficient * scalar) % R
    return out


def quotient_by_linear(coefficients: Sequence[int], root: int) -> list[int]:
    """Synthetic division: (P(x) - P(root)) / (x - root).

    Returns the quotient coefficients (degree deg(P) - 1).  This is the
    "finite field polynomial quotient algorithm" of paper Section V-D used
    to build the KZG witness without knowing alpha.
    """
    if not coefficients:
        return []
    quotient = [0] * (len(coefficients) - 1)
    carry = 0
    for index in range(len(coefficients) - 1, 0, -1):
        carry = (carry * root + coefficients[index]) % R
        quotient[index - 1] = carry
    return quotient


def mul(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Schoolbook product (the library's polynomials stay small)."""
    if not a or not b:
        return [0]
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % R
    return out


def lagrange_interpolate(points: Sequence[tuple[int, int]]) -> list[int]:
    """Unique degree < n polynomial through n points (x_i distinct).

    This is the adversary's tool in the Section V-C on-chain privacy attack:
    after observing ``s`` (challenge, response) pairs that reuse the same
    challenged set, the attacker interpolates ``P_k`` and reads off the
    linear combinations of the raw data blocks.
    """
    xs = [x % R for x, _ in points]
    ys = [y % R for _, y in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct x values")
    result = [0] * len(points)
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        # numerator(x) = prod_{j != i} (x - x_j)
        numerator = [1]
        denominator = 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            numerator = mul(numerator, [(-xj) % R, 1])
            denominator = denominator * (xi - xj) % R
        scale = yi * pow(denominator, -1, R) % R
        for index, coefficient in enumerate(numerator):
            result[index] = (result[index] + coefficient * scale) % R
    return result


def interpolate_sequential(values: Sequence[int]) -> list[int]:
    """Coefficients of the polynomial with P(i) = values[i], i = 0..n-1.

    This is the "polynomial coefficient transformation of data blocks" the
    paper counts into preprocessing (Section VII-C): when chunks are stored
    in *evaluation form* (so any s surviving blocks reconstruct the chunk),
    the owner must interpolate each chunk to coefficient form before
    committing to it.  Deliberately O(s^2) per chunk — the cost that, traded
    against the O(1/s) per-chunk EC work, produces Fig. 7's U-shaped curve.
    """
    n = len(values)
    if n == 0:
        return []
    if n == 1:
        return [values[0] % R]
    # full(x) = prod_j (x - j); numerator_i = full / (x - i).
    full = [1]
    for j in range(n):
        full = mul(full, [(-j) % R, 1])
    # Factorial-based denominators: prod_{j != i}(i - j) = i! (n-1-i)! (-1)^(n-1-i).
    factorial = [1] * n
    for i in range(1, n):
        factorial[i] = factorial[i - 1] * i % R
    result = [0] * n
    for i, y in enumerate(values):
        if y % R == 0:
            continue
        numerator = quotient_by_linear(full, i)
        denominator = factorial[i] * factorial[n - 1 - i] % R
        if (n - 1 - i) % 2:
            denominator = (-denominator) % R
        scale = y * pow(denominator, -1, R) % R
        for index, coefficient in enumerate(numerator):
            result[index] = (result[index] + coefficient * scale) % R
    return result


def vanishing_quotient_check(
    polynomial: Sequence[int], root: int, value: int
) -> bool:
    """Sanity helper: P(root) == value and division is exact."""
    return evaluate(polynomial, root) == value % R


def solve_linear_system(
    matrix: Sequence[Sequence[int]], rhs: Sequence[int]
) -> list[int]:
    """Gaussian elimination over Zr for square systems.

    Used by the privacy attack to separate individual blocks out of ``u``
    recovered linear combinations (paper Section V-C).  Raises ValueError
    on singular systems.
    """
    n = len(matrix)
    if any(len(row) != n for row in matrix) or len(rhs) != n:
        raise ValueError("system must be square with matching rhs")
    a = [[value % R for value in row] for row in matrix]
    b = [value % R for value in rhs]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot_row is None:
            raise ValueError("singular system: challenge matrix not invertible")
        a[col], a[pivot_row] = a[pivot_row], a[col]
        b[col], b[pivot_row] = b[pivot_row], b[col]
        inv = pow(a[col][col], -1, R)
        a[col] = [value * inv % R for value in a[col]]
        b[col] = b[col] * inv % R
        for row in range(n):
            if row != col and a[row][col]:
                factor = a[row][col]
                a[row] = [
                    (a[row][idx] - factor * a[col][idx]) % R for idx in range(n)
                ]
                b[row] = (b[row] - factor * b[col]) % R
    return b


# ---------------------------------------------------------------------------
# Number-theoretic transform (used by the Groth16 QAP construction)
# ---------------------------------------------------------------------------

#: r - 1 = 2^28 * odd, so Zr supports radix-2 NTTs up to size 2^28.
TWO_ADICITY = 28
_ODD_PART = (R - 1) >> TWO_ADICITY


def _find_two_adic_root() -> int:
    """A primitive 2^28-th root of unity, derived at import time.

    ``g^odd_part`` has exact order 2^28 iff ``g`` is a quadratic non-residue
    (then ``(g^odd)^(2^27) = g^((r-1)/2) = -1 != 1``), so scanning small
    candidates for non-residuosity suffices — no factorisation of r-1
    needed.
    """
    candidate = 2
    while pow(candidate, (R - 1) // 2, R) == 1:
        candidate += 1
    return pow(candidate, _ODD_PART, R)


ROOT_OF_UNITY_2_28 = _find_two_adic_root()


def root_of_unity(order: int) -> int:
    """Primitive ``order``-th root of unity (order must be a power of two)."""
    if order & (order - 1):
        raise ValueError("order must be a power of two")
    log = order.bit_length() - 1
    if log > TWO_ADICITY:
        raise ValueError(f"no 2^{log} roots of unity in Zr (max 2^28)")
    omega = ROOT_OF_UNITY_2_28
    for _ in range(TWO_ADICITY - log):
        omega = omega * omega % R
    return omega


def ntt(values: Sequence[int], invert: bool = False) -> list[int]:
    """In-place iterative radix-2 NTT; length must be a power of two."""
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    data = [v % R for v in values]
    # Bit-reversal permutation.
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            data[i], data[j] = data[j], data[i]
    length = 2
    while length <= n:
        omega = root_of_unity(length)
        if invert:
            omega = pow(omega, -1, R)
        for start in range(0, n, length):
            w = 1
            for offset in range(length // 2):
                even = data[start + offset]
                odd = data[start + offset + length // 2] * w % R
                data[start + offset] = (even + odd) % R
                data[start + offset + length // 2] = (even - odd) % R
                w = w * omega % R
        length <<= 1
    if invert:
        n_inv = pow(n, -1, R)
        data = [v * n_inv % R for v in data]
    return data


def interpolate_on_domain(evaluations: Sequence[int]) -> list[int]:
    """Coefficients of the polynomial with given values on the 2^k domain."""
    return ntt(evaluations, invert=True)


def evaluate_on_domain(coefficients: Sequence[int], size: int) -> list[int]:
    """Evaluate on the size-``size`` root-of-unity domain (zero-padded)."""
    padded = list(coefficients) + [0] * (size - len(coefficients))
    return ntt(padded)
