"""Streaming preprocessing: authenticate arbitrarily large files in O(s) memory.

The paper's target workload is archive data — image backups, file
collections — which can far exceed RAM.  ``stream_authenticators`` consumes
any iterable of byte strings (file objects, network streams), carries at
most one chunk of state, and yields authenticators as it goes, so a 1 GB
archive needs kilobytes of working memory instead of gigabytes.

Equivalence with the in-memory path is asserted by the test suite, and the
incremental hash ties the stream to the same ``ChunkedFile`` layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..crypto.bn254 import G1Point
from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.bn254.msm import FixedBaseMul
from ..crypto.field import BLOCK_BYTES
from .authenticator import block_digest_point
from .keys import KeyPair
from .params import ProtocolParams


@dataclass
class StreamSummary:
    """What the owner keeps after a streaming pass."""

    name: int
    byte_length: int
    num_chunks: int


def _blocks_from_stream(stream: Iterable[bytes]) -> Iterator[int]:
    """Re-block an arbitrary byte stream into 31-byte field elements."""
    buffer = b""
    for piece in stream:
        buffer += piece
        while len(buffer) >= BLOCK_BYTES:
            yield int.from_bytes(buffer[:BLOCK_BYTES], "big")
            buffer = buffer[BLOCK_BYTES:]
    if buffer:
        yield int.from_bytes(buffer, "big")


def stream_authenticators(
    stream: Iterable[bytes],
    keypair: KeyPair,
    params: ProtocolParams,
    name: int,
    g1_table: FixedBaseMul | None = None,
) -> Iterator[tuple[int, G1Point]]:
    """Yield (chunk_index, sigma_i) pairs while consuming the stream.

    Memory: one chunk of coefficients plus the fixed-base table.  The
    produced authenticators are bit-identical to
    :func:`repro.core.authenticator.generate_authenticators` on the same
    bytes (asserted by tests).
    """
    if g1_table is None:
        g1_table = FixedBaseMul(G1Point.generator())
    x = keypair.secret.x
    alpha = keypair.secret.alpha
    s = params.s
    chunk_index = 0
    # Horner state runs highest-coefficient-first, but the stream arrives
    # lowest-first; accumulate sum(m_j * alpha^j) with a running power.
    accumulator = 0
    power = 1
    filled = 0
    for block in _blocks_from_stream(stream):
        accumulator = (accumulator + block * power) % R
        power = power * alpha % R
        filled += 1
        if filled == s:
            digest = block_digest_point(name, chunk_index)
            yield chunk_index, (g1_table.mul(accumulator) + digest) * x
            chunk_index += 1
            accumulator, power, filled = 0, 1, 0
    if filled:
        digest = block_digest_point(name, chunk_index)
        yield chunk_index, (g1_table.mul(accumulator) + digest) * x


def stream_summary(
    stream: Iterable[bytes], params: ProtocolParams, name: int
) -> StreamSummary:
    """Byte/chunk accounting for a stream without keeping its contents."""
    total = 0
    for piece in stream:
        total += len(piece)
    blocks = (total + BLOCK_BYTES - 1) // BLOCK_BYTES
    chunks = (blocks + params.s - 1) // params.s
    return StreamSummary(name=name, byte_length=total, num_chunks=max(1, chunks))
