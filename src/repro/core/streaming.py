"""Streaming preprocessing: authenticate arbitrarily large files in O(s) memory.

The paper's target workload is archive data — image backups, file
collections — which can far exceed RAM.  ``stream_authenticators`` consumes
any iterable of byte strings (file objects, network streams), carries at
most one chunk of state, and yields authenticators as it goes, so a 1 GB
archive needs kilobytes of working memory instead of gigabytes.

Equivalence with the in-memory path is asserted by the test suite, and the
incremental hash ties the stream to the same ``ChunkedFile`` layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..crypto.bn254 import (
    G1Point,
    GTFixedBase,
    PrecomputeCache,
    hash_gt_to_scalar,
    multi_scalar_mul,
)
from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.bn254.msm import FixedBaseMul
from ..crypto.field import BLOCK_BYTES, random_scalar
from .authenticator import block_digest_point
from .challenge import Challenge
from .keys import KeyPair, PublicKey
from .params import ProtocolParams
from .polynomial import evaluate, quotient_by_linear
from .proof import PlainProof, PrivateProof
from .prover import ProveReport


@dataclass
class StreamSummary:
    """What the owner keeps after a streaming pass."""

    name: int
    byte_length: int
    num_chunks: int


def _blocks_from_stream(stream: Iterable[bytes]) -> Iterator[int]:
    """Re-block an arbitrary byte stream into 31-byte field elements."""
    buffer = b""
    for piece in stream:
        buffer += piece
        while len(buffer) >= BLOCK_BYTES:
            yield int.from_bytes(buffer[:BLOCK_BYTES], "big")
            buffer = buffer[BLOCK_BYTES:]
    if buffer:
        yield int.from_bytes(buffer, "big")


def stream_authenticators(
    stream: Iterable[bytes],
    keypair: KeyPair,
    params: ProtocolParams,
    name: int,
    g1_table: FixedBaseMul | None = None,
) -> Iterator[tuple[int, G1Point]]:
    """Yield (chunk_index, sigma_i) pairs while consuming the stream.

    Memory: one chunk of coefficients plus the fixed-base table.  The
    produced authenticators are bit-identical to
    :func:`repro.core.authenticator.generate_authenticators` on the same
    bytes (asserted by tests).
    """
    if g1_table is None:
        g1_table = FixedBaseMul(G1Point.generator())
    x = keypair.secret.x
    alpha = keypair.secret.alpha
    s = params.s
    chunk_index = 0
    # Horner state runs highest-coefficient-first, but the stream arrives
    # lowest-first; accumulate sum(m_j * alpha^j) with a running power.
    accumulator = 0
    power = 1
    filled = 0
    for block in _blocks_from_stream(stream):
        accumulator = (accumulator + block * power) % R
        power = power * alpha % R
        filled += 1
        if filled == s:
            digest = block_digest_point(name, chunk_index)
            yield chunk_index, (g1_table.mul(accumulator) + digest) * x
            chunk_index += 1
            accumulator, power, filled = 0, 1, 0
    if filled:
        digest = block_digest_point(name, chunk_index)
        yield chunk_index, (g1_table.mul(accumulator) + digest) * x


class StreamingProver:
    """Answer audit challenges from a byte *stream* in O(s) working memory.

    The in-memory :class:`~repro.core.prover.Prover` holds every chunk of
    the file; archives larger than RAM cannot.  This prover instead walks
    the stream once per challenge, accumulating the challenged linear
    combination ``P_k = Σ c_t · M_{i_t}`` chunk by chunk — at any moment it
    holds one chunk's coefficients plus the s-vector accumulator — and then
    finishes exactly like the in-memory pipeline (evaluate, synthetic
    division, MSMs, Sigma masking).

    Differential guarantee (asserted by
    ``tests/core/test_streaming_prover_differential.py``): for the same
    challenge, the same authenticators and the same nonce RNG, the
    produced proof is **byte-identical** to ``Prover``'s.

    ``stream_factory`` is any zero-argument callable returning a fresh
    iterable of byte strings (an opened file, a network fetch); it is
    invoked once per proof.
    """

    def __init__(
        self,
        stream_factory: Callable[[], Iterable[bytes]],
        public: PublicKey,
        authenticators: Sequence[G1Point],
        params: ProtocolParams,
        rng=None,
        precompute: PrecomputeCache | None = None,
    ):
        if params.s > len(public.powers):
            raise ValueError("chunk size exceeds published alpha powers")
        if not authenticators:
            raise ValueError("cannot prove over an empty file")
        self.stream_factory = stream_factory
        self.public = public
        self.authenticators = list(authenticators)
        self.params = params
        self._rng = rng
        self._precompute = precompute
        self._gt_table: GTFixedBase | None = None

    @property
    def num_chunks(self) -> int:
        return len(self.authenticators)

    # -- streaming aggregation ----------------------------------------------

    def _combine_streaming(self, expanded) -> list[int]:
        """One pass over the stream: Σ c_t · M_{i_t} in O(s) memory."""
        coefficient_of: dict[int, int] = {}
        for index, coefficient in zip(expanded.indices, expanded.coefficients):
            coefficient_of[index] = (
                coefficient_of.get(index, 0) + coefficient
            ) % R
        s = self.params.s
        combined = [0] * s
        chunk_index = 0
        position = 0
        seen = 0
        for block in _blocks_from_stream(self.stream_factory()):
            weight = coefficient_of.get(chunk_index)
            if weight is not None:
                combined[position] = (combined[position] + weight * block) % R
            position += 1
            if position == s:
                chunk_index += 1
                position = 0
            seen += 1
        if seen == 0:
            raise ValueError("cannot prove over an empty stream")
        chunks = chunk_index + (1 if position else 0)
        if chunks != self.num_chunks:
            raise ValueError(
                f"stream has {chunks} chunks, {self.num_chunks} authenticators"
            )
        # Mirror the in-memory path's trailing-zero shape: linear_combination
        # returns exactly s coefficients (padded chunks), as we do here.
        return combined

    def _aggregate(self, expanded, report: ProveReport | None):
        t0 = time.perf_counter()
        combined = self._combine_streaming(expanded)
        y = evaluate(combined, expanded.point)
        quotient = quotient_by_linear(combined, expanded.point)
        t1 = time.perf_counter()
        sigma = multi_scalar_mul(
            [self.authenticators[i] for i in expanded.indices],
            list(expanded.coefficients),
        )
        if self._precompute is not None:
            psi = self._precompute.wnaf_msm(
                list(self.public.powers[: len(quotient)]),
                quotient,
                identity=G1Point.infinity(),
            )
        else:
            psi = multi_scalar_mul(
                list(self.public.powers[: len(quotient)]),
                quotient,
                identity=G1Point.infinity(),
            )
        t2 = time.perf_counter()
        if report is not None:
            report.zp_seconds += t1 - t0
            report.ecc_seconds += t2 - t1
        return sigma, y, psi

    # -- public API -----------------------------------------------------------

    def respond_plain(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PlainProof:
        expanded = challenge.expand(self.num_chunks)
        sigma, y, psi = self._aggregate(expanded, report)
        return PlainProof(sigma=sigma, y=y, psi=psi)

    def respond_private(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        expanded = challenge.expand(self.num_chunks)
        sigma, y, psi = self._aggregate(expanded, report)
        t0 = time.perf_counter()
        z = random_scalar(self._rng)
        if self.public.pairing_base is None:
            raise ValueError(
                "public key lacks e(g1, epsilon); regenerate with privacy "
                "support to produce private proofs"
            )
        if self._gt_table is None:
            self._gt_table = self.public.gt_table(self._precompute)
        commitment = self._gt_table.pow(z)
        zeta = hash_gt_to_scalar(commitment)
        y_masked = (zeta * y + z) % R
        t1 = time.perf_counter()
        if report is not None:
            report.privacy_seconds += t1 - t0
        return PrivateProof(
            sigma=sigma, y_masked=y_masked, psi=psi, commitment=commitment
        )


def stream_summary(
    stream: Iterable[bytes], params: ProtocolParams, name: int
) -> StreamSummary:
    """Byte/chunk accounting for a stream without keeping its contents."""
    total = 0
    for piece in stream:
        total += len(piece)
    blocks = (total + BLOCK_BYTES - 1) // BLOCK_BYTES
    chunks = (blocks + params.s - 1) // params.s
    return StreamSummary(name=name, byte_length=total, num_chunks=max(1, chunks))
