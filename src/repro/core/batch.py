"""Batch auditing: verifying many users' proofs with one final exponentiation.

Paper Section VII-D: "our auditing protocol natively supports the batch
auditing [24]" — a storage provider serving dozens of data owners answers
each owner's challenge separately, but the *verifier* can check all the
resulting proofs together.

The small-exponent batching trick: for random 128-bit rho_u (rho_0 = 1),
the combined check

    prod_u [ E_u ]^{rho_u} == 1

(with E_u the Eq.-2 product of user u) holds iff every E_u == 1 except with
probability ~2^-128.  Scaling each user's G1 inputs by rho_u pushes the
exponent inside the Miller loops, so U proofs cost 3U Miller loops + U-1
short GT exponentiations + **one** hard final exponentiation instead of U.
128 bits suffice for the soundness bound and halve the scaling cost
(`bench_ablation_batch_auditing` quantifies the win).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    PrecomputeCache,
    final_exponentiation,
    gt_multi_pow,
    hash_gt_to_scalar,
    miller_loop_product,
    multi_scalar_mul,
)
from ..crypto.bn254.fields import Fp12
from ..crypto.field import random_scalar
from .authenticator import block_digest_point
from .challenge import Challenge
from .keys import PublicKey
from .proof import PrivateProof
from .verifier import RejectionReason, Verifier, VerifyOutcome, VerifyReport


@dataclass(frozen=True)
class BatchItem:
    """One user's audit instance: their key, file identity and response."""

    public: PublicKey
    name: int
    num_chunks: int
    challenge: Challenge
    proof: PrivateProof


@dataclass(frozen=True)
class ItemRejection:
    """One rejected proof inside a batch: which proof, and why."""

    index: int                 # position in the batch
    name: int                  # file identifier (which proof)
    reason: RejectionReason | None


@dataclass(eq=False)
class BatchVerifyOutcome:
    """Truthy/falsy verdict for a whole batch, with failure localization.

    Like :class:`~repro.core.verifier.VerifyOutcome`, it evaluates and
    compares as a boolean by verdict, so pre-existing ``== True`` call
    sites keep working.

    The combined small-exponent check only says *whether* every proof in
    the batch is valid.  When it fails, :meth:`pinpoint` re-verifies each
    item individually (paying per-proof pairings on the failure path only)
    and returns the structured :class:`ItemRejection` list — which proof
    failed, and that proof's :class:`~repro.core.verifier.RejectionReason`
    with its per-pairing-group residual fingerprints.
    """

    ok: bool
    checked: int
    mode: str  # "grouped" | "flat" | "sequential"
    items: tuple[BatchItem, ...] = field(default=(), repr=False)
    _failures: tuple[ItemRejection, ...] | None = field(default=None, repr=False)

    def __bool__(self) -> bool:
        return self.ok

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BatchVerifyOutcome):
            return (self.ok, self.checked, self.mode) == (
                other.ok, other.checked, other.mode
            )
        if isinstance(other, bool):
            return self.ok is other
        return NotImplemented

    __hash__ = object.__hash__  # mutable (memoized pinpoint): identity hash

    def pinpoint(
        self, precompute: PrecomputeCache | None = None
    ) -> tuple[ItemRejection, ...]:
        """Which proofs failed (empty for an accepted batch); memoized."""
        if self.ok:
            return ()
        if self._failures is None:
            failures = []
            for index, item in enumerate(self.items):
                verifier = Verifier(
                    item.public, item.name, item.num_chunks, precompute=precompute
                )
                outcome = verifier.verify_private(item.challenge, item.proof)
                if not outcome:
                    failures.append(
                        ItemRejection(
                            index=index, name=item.name, reason=outcome.reason
                        )
                    )
            self._failures = tuple(failures)
        return self._failures

    def rejected_names(
        self, precompute: PrecomputeCache | None = None
    ) -> tuple[int, ...]:
        return tuple(rejection.name for rejection in self.pinpoint(precompute))


def _small_exponent(rng) -> int:
    """A 128-bit batching exponent (soundness error 2^-128)."""
    import secrets

    if rng is None:
        return secrets.randbits(128) | 1
    return rng.getrandbits(128) | 1


def verify_batch(
    items: list[BatchItem],
    rng=None,
    report: VerifyReport | None = None,
) -> BatchVerifyOutcome:
    """Check all items at once; truthy iff every individual proof is valid."""
    if not items:
        return BatchVerifyOutcome(ok=True, checked=0, mode="flat")
    g1 = G1Point.generator()
    g2 = G2Point.generator()
    pairs: list[tuple[G1Point, G2Point]] = []
    gt_items: list[tuple[Fp12, int]] = []
    for index, item in enumerate(items):
        rho = 1 if index == 0 else _small_exponent(rng)
        verifier = Verifier(item.public, item.name, item.num_chunks)
        expanded = item.challenge.expand(item.num_chunks)
        chi = verifier.compute_chi(expanded, report)
        zeta = hash_gt_to_scalar(item.proof.commitment)
        t0 = time.perf_counter()
        scaled_zeta = zeta * rho
        pairs.append((item.proof.sigma * scaled_zeta, g2))
        pairs.append(
            (-(g1 * (item.proof.y_masked * rho)) - chi * scaled_zeta, item.public.epsilon)
        )
        twisted = item.public.delta - item.public.epsilon * expanded.point
        pairs.append((-(item.proof.psi * scaled_zeta), twisted))
        gt_items.append((item.proof.commitment, rho))
        t1 = time.perf_counter()
        if report is not None:
            report.msm_seconds += t1 - t0
    t0 = time.perf_counter()
    # One shared squaring chain for all rho-blinded commitments (exact
    # arithmetic: same element as multiplying per-item gt_pow results).
    gt_accumulator = gt_multi_pow(gt_items)
    product = final_exponentiation(miller_loop_product(pairs))
    ok = (product * gt_accumulator).is_one()
    t1 = time.perf_counter()
    if report is not None:
        report.pairing_seconds += t1 - t0
    # Items are retained only on failure — that is the only path where
    # pinpoint() needs them, and accepted epochs would otherwise pin every
    # decoded proof in long-running scheduler histories.
    return BatchVerifyOutcome(
        ok=ok, checked=len(items), mode="flat", items=() if ok else tuple(items)
    )


def verify_batch_grouped(
    items: list[BatchItem],
    rng=None,
    report: VerifyReport | None = None,
    precompute: PrecomputeCache | None = None,
) -> BatchVerifyOutcome:
    """Batch verification with pair-merging and per-group Pippenger MSMs.

    The parallel audit engine's verification back end.  Same soundness as
    :func:`verify_batch` (small-exponent blinding, one final exponentiation),
    plus two structural optimizations enabled by pairing bilinearity:

    * **G2 grouping** — all pairs sharing a G2 point collapse into one
      Miller loop via ``prod_u e(A_u, Q) == e(sum_u A_u, Q)``.  The sigma
      pairs all share ``g2``; the chi/y'/r*psi pairs share each owner's
      ``epsilon``; the psi pairs share each owner's ``delta`` (the
      ``delta - r*epsilon`` leg is split over the two fixed points by
      bilinearity, so grouping never depends on a shared evaluation
      point).  3U Miller loops become ``1 + 2*owners``, all against
      G2 points whose prepared lines persist across epochs.
    * **Deferred MSMs** — each group's G1 side is accumulated as (base,
      scalar) pairs — chi is never materialized per item; its digest points
      go straight into the owner's group — and reduced with one Pippenger
      MSM per group, amortizing window overhead across the whole batch.
    """
    if not items:
        return BatchVerifyOutcome(ok=True, checked=0, mode="grouped")
    g1 = G1Point.generator()
    g2 = G2Point.generator()
    gt_items: list[tuple[Fp12, int]] = []
    groups: dict[G2Point, tuple[list[G1Point], list[int], list[bool]]] = {}
    # Every file of an owner contributes g1^{-y' rho} to the same epsilon
    # group; folding those into one scalar drops U-per-owner points from the
    # group MSMs (the group element is unchanged — same linear combination).
    g1_scalars: dict[G2Point, int] = {}

    def contribute(
        base: G1Point, scalar: int, g2_point: G2Point, fixed: bool = False
    ) -> None:
        """``fixed`` marks epoch-recurring bases (digests, g1) whose wNAF
        tables are worth keeping in the precompute cache."""
        bases, scalars, cacheable = groups.setdefault(g2_point, ([], [], []))
        bases.append(base)
        scalars.append(scalar % CURVE_ORDER)
        cacheable.append(fixed)

    for index, item in enumerate(items):
        rho = 1 if index == 0 else _small_exponent(rng)
        expanded = item.challenge.expand(item.num_chunks)
        zeta = hash_gt_to_scalar(item.proof.commitment)
        scaled_zeta = zeta * rho % CURVE_ORDER
        t0 = time.perf_counter()
        if precompute is not None:
            digests = [
                precompute.block_digest(item.name, i) for i in expanded.indices
            ]
        else:
            digests = [block_digest_point(item.name, i) for i in expanded.indices]
        t1 = time.perf_counter()
        # Eq. (2), rho-blinded:  R^rho * e(sigma^{zeta rho}, g2)
        #   * e(g1^{-y' rho} * chi^{-zeta rho} * psi^{r zeta rho}, epsilon)
        #   * e(psi^{-zeta rho}, delta)  == 1
        contribute(item.proof.sigma, scaled_zeta, g2)
        g1_scalars[item.public.epsilon] = (
            g1_scalars.get(item.public.epsilon, 0) - item.proof.y_masked * rho
        ) % CURVE_ORDER
        for digest, coefficient in zip(digests, expanded.coefficients):
            contribute(
                digest,
                -(coefficient * scaled_zeta),
                item.public.epsilon,
                fixed=True,
            )
        # e(psi^{-zeta rho}, delta - r*epsilon) splits by bilinearity into
        # e(psi^{-zeta rho}, delta) * e(psi^{r zeta rho}, epsilon), so the
        # psi legs land on the *fixed* per-owner G2 points instead of a
        # fresh delta - r*epsilon combination per challenge point — no
        # per-epoch G2 arithmetic or Miller-line preparation at all.
        contribute(item.proof.psi, -scaled_zeta, item.public.delta)
        contribute(
            item.proof.psi, expanded.point * scaled_zeta, item.public.epsilon
        )
        gt_items.append((item.proof.commitment, rho))
        t2 = time.perf_counter()
        if report is not None:
            report.hash_seconds += t1 - t0
            report.msm_seconds += t2 - t1
    for g2_point, scalar in g1_scalars.items():
        contribute(g1, scalar, g2_point, fixed=True)
    t0 = time.perf_counter()
    # All rho-blinded commitments ride one shared cyclotomic squaring chain
    # (bit-identical to the old per-item gt_pow product, ~U times fewer
    # squarings); the G2 sides reuse cached Miller-loop lines when a
    # precompute cache is attached.
    gt_accumulator = gt_multi_pow(gt_items)
    pairs = []
    for g2_point, (bases, scalars, cacheable) in groups.items():
        if precompute is not None:
            merged = precompute.wnaf_msm(bases, scalars, cacheable)
            g2_arg = precompute.prepared_g2(g2_point)
        else:
            merged = multi_scalar_mul(bases, scalars)
            g2_arg = g2_point
        pairs.append((merged, g2_arg))
    t1 = time.perf_counter()
    product = final_exponentiation(miller_loop_product(pairs))
    ok = (product * gt_accumulator).is_one()
    t2 = time.perf_counter()
    if report is not None:
        report.msm_seconds += t1 - t0
        report.pairing_seconds += t2 - t1
    return BatchVerifyOutcome(
        ok=ok, checked=len(items), mode="grouped", items=() if ok else tuple(items)
    )


def verify_sequential(
    items: list[BatchItem],
    report: VerifyReport | None = None,
) -> BatchVerifyOutcome:
    """Baseline: verify each proof independently (for the ablation bench).

    Unlike the combined checks, failures localize for free — each item's
    :class:`~repro.core.verifier.VerifyOutcome` is computed anyway, so the
    rejection list is filled in without a pinpoint pass.
    """
    failures = []
    for index, item in enumerate(items):
        verifier = Verifier(item.public, item.name, item.num_chunks)
        outcome = verifier.verify_private(item.challenge, item.proof, report)
        if not outcome:
            failures.append(
                ItemRejection(index=index, name=item.name, reason=outcome.reason)
            )
    # _failures is pre-filled, so pinpoint() never needs the items — do not
    # retain them even on failure.
    return BatchVerifyOutcome(
        ok=not failures,
        checked=len(items),
        mode="sequential",
        _failures=tuple(failures),
    )
