"""Batch auditing: verifying many users' proofs with one final exponentiation.

Paper Section VII-D: "our auditing protocol natively supports the batch
auditing [24]" — a storage provider serving dozens of data owners answers
each owner's challenge separately, but the *verifier* can check all the
resulting proofs together.

The small-exponent batching trick: for random 128-bit rho_u (rho_0 = 1),
the combined check

    prod_u [ E_u ]^{rho_u} == 1

(with E_u the Eq.-2 product of user u) holds iff every E_u == 1 except with
probability ~2^-128.  Scaling each user's G1 inputs by rho_u pushes the
exponent inside the Miller loops, so U proofs cost 3U Miller loops + U-1
short GT exponentiations + **one** hard final exponentiation instead of U.
128 bits suffice for the soundness bound and halve the scaling cost
(`bench_ablation_batch_auditing` quantifies the win).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..crypto.bn254 import (
    G1Point,
    G2Point,
    final_exponentiation,
    gt_pow,
    hash_gt_to_scalar,
    miller_loop_product,
)
from ..crypto.bn254.fields import Fp12
from ..crypto.field import random_scalar
from .challenge import Challenge
from .keys import PublicKey
from .proof import PrivateProof
from .verifier import Verifier, VerifyReport


@dataclass(frozen=True)
class BatchItem:
    """One user's audit instance: their key, file identity and response."""

    public: PublicKey
    name: int
    num_chunks: int
    challenge: Challenge
    proof: PrivateProof


def _small_exponent(rng) -> int:
    """A 128-bit batching exponent (soundness error 2^-128)."""
    import secrets

    if rng is None:
        return secrets.randbits(128) | 1
    return rng.getrandbits(128) | 1


def verify_batch(
    items: list[BatchItem],
    rng=None,
    report: VerifyReport | None = None,
) -> bool:
    """Check all items at once; True iff every individual proof is valid."""
    if not items:
        return True
    g1 = G1Point.generator()
    g2 = G2Point.generator()
    pairs: list[tuple[G1Point, G2Point]] = []
    gt_accumulator = Fp12.one()
    for index, item in enumerate(items):
        rho = 1 if index == 0 else _small_exponent(rng)
        verifier = Verifier(item.public, item.name, item.num_chunks)
        expanded = item.challenge.expand(item.num_chunks)
        chi = verifier.compute_chi(expanded, report)
        zeta = hash_gt_to_scalar(item.proof.commitment)
        t0 = time.perf_counter()
        scaled_zeta = zeta * rho
        pairs.append((item.proof.sigma * scaled_zeta, g2))
        pairs.append(
            (-(g1 * (item.proof.y_masked * rho)) - chi * scaled_zeta, item.public.epsilon)
        )
        twisted = item.public.delta - item.public.epsilon * expanded.point
        pairs.append((-(item.proof.psi * scaled_zeta), twisted))
        if rho == 1:
            gt_accumulator = gt_accumulator * item.proof.commitment
        else:
            gt_accumulator = gt_accumulator * gt_pow(item.proof.commitment, rho)
        t1 = time.perf_counter()
        if report is not None:
            report.msm_seconds += t1 - t0
    t0 = time.perf_counter()
    product = final_exponentiation(miller_loop_product(pairs))
    ok = (product * gt_accumulator).is_one()
    t1 = time.perf_counter()
    if report is not None:
        report.pairing_seconds += t1 - t0
    return ok


def verify_sequential(
    items: list[BatchItem],
    report: VerifyReport | None = None,
) -> bool:
    """Baseline: verify each proof independently (for the ablation bench)."""
    for item in items:
        verifier = Verifier(item.public, item.name, item.num_chunks)
        if not verifier.verify_private(item.challenge, item.proof, report):
            return False
    return True
