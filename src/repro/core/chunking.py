"""File chunking: bytes -> field-element blocks -> s-block chunks.

Paper Section V-B: the file F is divided into n blocks (group elements of
Zp), and every ``s`` consecutive blocks form a chunk
``m_i = (m_{i,0}, ..., m_{i,s-1})``; the last chunk is zero-padded.  Each
chunk is the coefficient vector of the degree s-1 polynomial ``M_i(x)``
(Definition 1) that the authenticator commits to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.field import BLOCK_BYTES, blocks_to_bytes, bytes_to_blocks
from .params import ProtocolParams


@dataclass(frozen=True)
class ChunkedFile:
    """A file in the protocol's algebraic representation.

    ``chunks[i][j]`` is block ``m_{i,j}`` — coefficient j of ``M_i(x)``.
    """

    name: int                      # file identifier sampled from Zp
    byte_length: int               # original length (for exact round-trips)
    s: int                         # blocks per chunk
    chunks: tuple[tuple[int, ...], ...] = field(repr=False)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def num_blocks(self) -> int:
        """n in the paper: blocks before padding."""
        return (self.byte_length + BLOCK_BYTES - 1) // BLOCK_BYTES

    def chunk_polynomial(self, index: int) -> tuple[int, ...]:
        """Coefficients of M_index(x), lowest degree first."""
        return self.chunks[index]

    def to_bytes(self) -> bytes:
        """Reassemble the original file contents exactly."""
        flat: list[int] = []
        for chunk in self.chunks:
            flat.extend(chunk)
        return blocks_to_bytes(flat, self.byte_length)


def chunk_file(data: bytes, params: ProtocolParams, name: int) -> ChunkedFile:
    """Split ``data`` into the d = ceil(n/s) chunks of paper Definition 1."""
    if not data:
        raise ValueError("cannot outsource an empty file")
    blocks = bytes_to_blocks(data)
    s = params.s
    padding = (-len(blocks)) % s
    blocks.extend([0] * padding)
    chunks = tuple(
        tuple(blocks[offset : offset + s]) for offset in range(0, len(blocks), s)
    )
    return ChunkedFile(name=name, byte_length=len(data), s=s, chunks=chunks)


def corrupt_chunk(
    chunked: ChunkedFile, chunk_index: int, block_index: int = 0, delta: int = 1
) -> ChunkedFile:
    """Return a copy with one block tampered (for detection experiments)."""
    from ..crypto.bn254.constants import CURVE_ORDER as R

    chunks = [list(chunk) for chunk in chunked.chunks]
    chunks[chunk_index][block_index] = (chunks[chunk_index][block_index] + delta) % R
    return ChunkedFile(
        name=chunked.name,
        byte_length=chunked.byte_length,
        s=chunked.s,
        chunks=tuple(tuple(chunk) for chunk in chunks),
    )
