"""The paper's main contribution: privacy-assured, lightweight auditing.

Public API tour (see README for a narrated version):

>>> from repro.core import ProtocolParams, DataOwner, StorageProvider
>>> from repro.core import OffchainAuditSession
>>> owner = DataOwner(ProtocolParams(s=10, k=20))
>>> package = owner.prepare(b"some archive bytes" * 100)
>>> provider = StorageProvider()
>>> assert provider.accept(package)
>>> session = OffchainAuditSession(owner, provider, package)
>>> assert session.run_round().passed
"""

from .attacks import (
    EclipseChallengeFactory,
    InterpolationAttacker,
    Transcript,
    transcript_from_plain,
    transcript_from_private,
    transcripts_needed,
)
from .authenticator import (
    PreprocessReport,
    block_digest_point,
    generate_authenticators,
    validate_authenticator,
    validate_authenticators_batched,
)
from .batch import (
    BatchItem,
    BatchVerifyOutcome,
    ItemRejection,
    verify_batch,
    verify_batch_grouped,
    verify_sequential,
)
from .challenge import (
    Challenge,
    ExpandedChallenge,
    challenge_from_beacon,
    epoch_challenge,
    random_challenge,
)
from .chunking import ChunkedFile, chunk_file, corrupt_chunk
from .confidence import (
    detection_probability,
    detection_probability_exact,
    figure9_k_schedule,
    required_challenges,
)
from .keys import (
    KeyPair,
    PublicKey,
    SecretKey,
    generate_keypair,
    validate_public_key,
    validate_public_key_batched,
)
from .params import DEFAULT_K, DEFAULT_S, ProtocolParams
from .proof import PLAIN_PROOF_BYTES, PRIVATE_PROOF_BYTES, PlainProof, PrivateProof
from .protocol import (
    AuditRoundResult,
    DataOwner,
    OffchainAuditSession,
    OutsourcingPackage,
    StorageProvider,
)
from .extension import AppendError, append_data
from .prover import CheatingProver, ProveReport, Prover, ResponseWithheld
from .soundness import (
    ForkedTranscripts,
    ForkingProver,
    extract_masked_evaluation,
    knowledge_error_bound,
    verify_extraction,
)
from .streaming import (
    StreamingProver,
    StreamSummary,
    stream_authenticators,
    stream_summary,
)
from .verifier import RejectionReason, Verifier, VerifyOutcome, VerifyReport

__all__ = [
    "AppendError",
    "AuditRoundResult",
    "BatchItem",
    "BatchVerifyOutcome",
    "Challenge",
    "CheatingProver",
    "ChunkedFile",
    "DataOwner",
    "DEFAULT_K",
    "DEFAULT_S",
    "EclipseChallengeFactory",
    "ForkedTranscripts",
    "ForkingProver",
    "ExpandedChallenge",
    "InterpolationAttacker",
    "ItemRejection",
    "KeyPair",
    "OffchainAuditSession",
    "OutsourcingPackage",
    "PLAIN_PROOF_BYTES",
    "PRIVATE_PROOF_BYTES",
    "PlainProof",
    "PreprocessReport",
    "PrivateProof",
    "ProtocolParams",
    "ProveReport",
    "Prover",
    "PublicKey",
    "RejectionReason",
    "ResponseWithheld",
    "SecretKey",
    "StorageProvider",
    "StreamSummary",
    "Transcript",
    "Verifier",
    "VerifyOutcome",
    "VerifyReport",
    "block_digest_point",
    "append_data",
    "challenge_from_beacon",
    "chunk_file",
    "corrupt_chunk",
    "detection_probability",
    "epoch_challenge",
    "extract_masked_evaluation",
    "detection_probability_exact",
    "figure9_k_schedule",
    "generate_authenticators",
    "generate_keypair",
    "knowledge_error_bound",
    "random_challenge",
    "required_challenges",
    "StreamingProver",
    "stream_authenticators",
    "stream_summary",
    "transcript_from_plain",
    "transcript_from_private",
    "transcripts_needed",
    "validate_authenticator",
    "validate_authenticators_batched",
    "validate_public_key",
    "validate_public_key_batched",
    "verify_extraction",
    "verify_batch",
    "verify_batch_grouped",
    "verify_sequential",
]
