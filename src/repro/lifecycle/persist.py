"""Engine-level durability: checkpoint the lifecycle engine every epoch.

The chain side of a lifecycle run is already durable (each fabric lane
writes a :class:`~repro.chain.state.WalStateStore`); this module makes the
*engine* side — cluster contents, manifests, audit packages, RNG streams,
the event trail — equally durable, and knits the two together so a crash
at **any** point resumes bit-identically:

* After every epoch the engine writes one atomic snapshot
  (``<dir>/engine.pkl``, tmp + rename) that records, along with its own
  state, each lane's WAL size at that boundary and the fabric's canonical
  ``state_hash``.
* :func:`load_engine` truncates every lane WAL back to the recorded size —
  every commit is one whole frame, so the cut lands on a frame boundary
  and discards exactly the partial epoch a crash may have written — then
  reopens the fabric and refuses to continue unless its ``state_hash``
  matches the snapshot.

Because the engine is deterministic given its restored RNG streams, the
re-run of the interrupted epoch reproduces the same transactions the lost
process would have committed, so the final trail digest and fabric hash
are identical to an uninterrupted run (asserted by
``tests/lifecycle/test_lifecycle_resume.py``).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import random
from pathlib import Path

ENGINE_SNAPSHOT = "engine.pkl"
SNAPSHOT_VERSION = 1


def _shard_audit_state(shard_audit) -> dict:
    deployment = shard_audit.deployment
    return {
        "provider": shard_audit.provider,
        "shard_index": shard_audit.shard_index,
        "file_name": shard_audit.file_name,
        "replaced": shard_audit.replaced,
        "package": shard_audit.package,
        "contract_address": deployment.contract_address,
        "owner_account": deployment.owner_account,
        "provider_account": deployment.provider_account,
    }


def save_engine(engine) -> Path:
    """Atomically persist the engine at the current epoch boundary."""
    config = engine.config
    assert config.persist_dir, "save_engine requires a persist_dir"
    directory = Path(config.persist_dir)
    directory.mkdir(parents=True, exist_ok=True)
    wal_sizes = [lane.store.wal_size() for lane in engine.fabric.lanes]
    files_state = {}
    for file_id, audited in engine.dsn.files.items():
        files_state[file_id] = {
            "manifest": audited.manifest,
            "shard_audits": [
                _shard_audit_state(audit) for audit in audited.shard_audits
            ],
        }
    state = {
        "version": SNAPSHOT_VERSION,
        "config": config,
        "next_epoch": engine.next_epoch,
        "node_seq": engine.node_seq,
        "trail_lines": engine.trail.to_lines(),
        "summaries": engine.summaries,
        "totals": (
            engine.total_commitment_gas,
            engine.total_repairs,
            engine.total_evictions,
            engine.wall_seconds,
        ),
        "churn_rng": engine._churn.rng.getstate(),
        "batch_rng": engine._batch_rng.getstate(),
        "owner_rng": engine._owner_rng.getstate(),
        "cluster": engine.dsn.cluster,
        "payloads": engine.payloads,
        "client_keys": {
            file_id: (client.owner_name, dict(client.keys))
            for file_id, client in engine.dsn._clients.items()
        },
        "files": files_state,
        "providers": engine.providers,
        "registry_address": engine.registry_address,
        "oracle": engine.oracle,
        "lane_settlement": engine.lane_settlement,
        "registered": set(engine._registered),
        "wal_sizes": wal_sizes,
        "fabric_state_hash": engine.fabric.state_hash(),
    }
    tmp_path = directory / (ENGINE_SNAPSHOT + ".tmp")
    with open(tmp_path, "wb") as handle:
        pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    final_path = directory / ENGINE_SNAPSHOT
    tmp_path.replace(final_path)
    return final_path


class LifecycleResumeError(RuntimeError):
    """The persisted chain state does not match the engine snapshot."""


def load_engine(persist_dir: str, **overrides):
    """Reopen a persisted lifecycle run at its last epoch boundary.

    ``overrides`` may adjust pure *execution* knobs (currently only
    ``workers``); anything that feeds the determinism domain is refused.
    """
    from ..chain.fabric import ShardedChainFabric
    from ..chain.state import WalStateStore
    from ..chain import ContractTerms
    from ..chain.agents import AuditDeployment, ProviderAgent
    from ..core import ProtocolParams, StorageProvider
    from ..crypto.bn254 import PrecomputeCache
    from ..dsn import AuditedDsn, AuditedFile, ShardAudit
    from ..engine import AuditExecutor, AuditInstance
    from ..randomness import HashChainBeacon
    from ..storage import DsnClient, ReputationWeightedPlacement
    from .engine import DORMANT_INTERVAL, LifecycleEngine
    from .events import EventTrail
    from .hazard import ChurnModel

    allowed = {"workers", "crypto_cache_dir"}
    refused = set(overrides) - allowed
    if refused:
        raise ValueError(
            f"cannot override determinism-relevant fields on resume: {refused}"
        )
    directory = Path(persist_dir)
    snapshot_path = directory / ENGINE_SNAPSHOT
    with open(snapshot_path, "rb") as handle:
        state = pickle.load(handle)
    if state["version"] != SNAPSHOT_VERSION:
        raise LifecycleResumeError(
            f"unsupported engine snapshot version {state['version']}"
        )
    config = dataclasses.replace(
        state["config"], persist_dir=str(directory), **overrides
    )

    # Rewind each lane's WAL to the recorded boundary, then reopen.
    lanes_dir = directory / "lanes"
    for index, size in enumerate(state["wal_sizes"]):
        WalStateStore.truncate_wal(lanes_dir / f"lane-{index:03d}", size)
    mempool = None
    if getattr(config, "mempool", False):
        from ..chain.mempool import MempoolConfig

        mempool = MempoolConfig()
    fabric = ShardedChainFabric(
        num_lanes=config.lanes, persist_dir=str(lanes_dir), mempool=mempool
    )
    if fabric.state_hash() != state["fabric_state_hash"]:
        fabric.close()
        raise LifecycleResumeError(
            "reopened fabric state does not match the engine snapshot"
        )

    engine = LifecycleEngine.__new__(LifecycleEngine)
    engine.config = config
    # The tracer and registry handles are never pickled (spans are run
    # artifacts, not state); a reopened engine starts untraced.
    engine._init_observability(None)
    engine.fabric = fabric
    engine.params = ProtocolParams(s=config.s, k=config.k)
    engine.beacon = HashChainBeacon(f"lifecycle-{config.seed}".encode())
    engine._cache = PrecomputeCache()
    engine.trail = EventTrail.from_lines(state["trail_lines"])
    engine.summaries = state["summaries"]
    (
        engine.total_commitment_gas,
        engine.total_repairs,
        engine.total_evictions,
        engine.wall_seconds,
    ) = state["totals"]
    engine.next_epoch = state["next_epoch"]
    engine.node_seq = state["node_seq"]
    engine.providers = state["providers"]
    engine.payloads = state["payloads"]
    engine.registry_address = state["registry_address"]
    engine.oracle = state["oracle"]
    engine.lane_settlement = state["lane_settlement"]
    engine._registered = set(state["registered"])

    engine._churn = ChurnModel(config.hazard_config(), rng=random.Random())
    engine._churn.rng.setstate(state["churn_rng"])
    engine._batch_rng = random.Random()
    engine._batch_rng.setstate(state["batch_rng"])
    engine._owner_rng = random.Random()
    engine._owner_rng.setstate(state["owner_rng"])

    cluster = state["cluster"]
    placement = ReputationWeightedPlacement(
        score_of=engine._score_of, minimum_score=config.min_placement_score
    )
    dsn = AuditedDsn(
        cluster,
        fabric,
        engine.beacon,
        params=engine.params,
        terms=ContractTerms(
            num_audits=1,
            audit_interval=DORMANT_INTERVAL,
            response_window=DORMANT_INTERVAL / 10,
        ),
        reputation=None,
        rng=engine._owner_rng,
        placement=placement,
        validate_packages=config.validate_packages,
        key_mode="convergent",
    )
    dsn.reputation = engine.registry  # type: ignore[assignment]
    dsn._reputation_address = engine.registry_address
    engine.dsn = dsn
    engine._registry_lane = fabric.lane(
        fabric.lane_index_of_contract(engine.registry_address)
    )

    engine._shards = {}
    for file_id, file_state in state["files"].items():
        audited = AuditedFile(manifest=file_state["manifest"])
        for audit_state in file_state["shard_audits"]:
            lane = fabric.home_lane(audit_state["file_name"])
            provider_role = StorageProvider()
            if audit_state["package"] is not None:
                provider_role.accept(audit_state["package"], validate=False)
            agent = ProviderAgent(
                chain=lane,
                account=audit_state["provider_account"],
                provider=provider_role,
                contract_address=audit_state["contract_address"],
                file_name=audit_state["file_name"],
            )
            deployment = AuditDeployment(
                contract_address=audit_state["contract_address"],
                owner_account=audit_state["owner_account"],
                provider_account=audit_state["provider_account"],
                provider_agent=agent,
            )
            shard_audit = ShardAudit(
                provider=audit_state["provider"],
                shard_index=audit_state["shard_index"],
                deployment=deployment,
                file_name=audit_state["file_name"],
                replaced=audit_state["replaced"],
                package=audit_state["package"],
            )
            audited.shard_audits.append(shard_audit)
            if not shard_audit.replaced:
                engine._shards[shard_audit.file_name] = (file_id, shard_audit)
        dsn.files[file_id] = audited
        owner_name, keys = state["client_keys"][file_id]
        client = DsnClient(owner_name, cluster)
        client.keys = dict(keys)
        dsn._clients[file_id] = client

    engine.executor = AuditExecutor(
        [
            AuditInstance.from_package(audit.package, owner_id=file_id)
            for file_id, audit in engine._shards.values()
        ],
        workers=config.workers,
        cache_dir=getattr(config, "crypto_cache_dir", None),
    )
    return engine
