"""The long-horizon lifecycle engine: years of DSN operation in one run.

Every prior subsystem of this reproduction observes a deployment for a
handful of epochs.  This engine closes the loop the paper's lifetime
claims actually rest on: it time-compresses years of decentralized-storage
operation — provider churn, erasure-coded repair, reputation-weighted
re-placement, audit-driven eviction and per-epoch checkpoint settlement —
into one deterministic, seed-driven simulation that composes all four
earlier layers:

* the **parallel audit engine** proves every live shard's epoch challenge
  through one :class:`~repro.engine.executor.AuditExecutor`
  (:class:`~repro.engine.scheduler.EpochScheduler`, deterministic mode),
* the **adversary hooks** model churn: a crashed or flaky provider's
  proofs are withheld via scheduler overrides, exactly like the
  byzantine strategies of :mod:`repro.adversary`,
* the **checkpoint rollup** settles each epoch as per-lane commitments
  plus one cross-shard super-commitment on a
  :class:`~repro.chain.fabric.ShardedChainFabric`
  (:mod:`repro.rollup`), with optional per-lane WAL persistence,
* the **DSN substrate** stores, audits and *repairs*: every failed shard
  is regenerated through :meth:`repro.dsn.AuditedDsn._repair` onto a
  provider chosen by
  :class:`~repro.storage.placement.ReputationWeightedPlacement` over the
  live on-chain registry, re-keyed and put under a fresh audit contract.

Determinism contract: a run is a pure function of its
:class:`LifecycleConfig` — same seed ⇒ byte-identical event trail
(:class:`~repro.lifecycle.events.EventTrail`) and identical final fabric
``state_hash``.  With ``persist_dir`` set, the engine checkpoints itself
at every epoch boundary; killing the process anywhere and calling
:meth:`LifecycleEngine.open` truncates the lane WALs back to the last
boundary and continues to the *same* final hashes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import time
from dataclasses import dataclass

from ..chain import ContractTerms, Transaction
from ..chain.contracts.checkpoint_contract import CheckpointContract, CheckpointStatus
from ..chain.contracts.reputation import ReputationRegistry
from ..chain.fabric import ShardedChainFabric
from ..core import ProtocolParams
from ..core.prover import ResponseWithheld
from ..crypto.bn254 import PrecomputeCache
from ..dsn import AuditedDsn, ShardAudit
from ..engine import AuditExecutor, AuditInstance, EpochScheduler
from ..obs.registry import get_registry
from ..obs.tracing import NULL_TRACER, Tracer
from ..randomness import HashChainBeacon
from ..rollup.checkpoint import build_checkpoint
from ..rollup.fabric import build_fabric_checkpoint
from ..rollup.records import records_from_epoch
from ..sim.workloads import archive_file
from ..storage import DsnCluster, ReputationWeightedPlacement, SimulatedNetwork
from .events import EventTrail
from .hazard import ChurnModel, HazardConfig

#: Per-shard audit contracts deployed by the DSN are *dormant* during a
#: lifecycle run: their scheduled challenges sit beyond the simulated
#: horizon, because round auditing flows through the epoch rollup instead.
DORMANT_INTERVAL = 10**9


@dataclass(frozen=True)
class LifecycleConfig:
    """Everything a lifecycle run depends on (the determinism domain)."""

    years: float = 2.0
    epochs_per_year: int = 12
    files: int = 2
    file_bytes: int = 900
    erasure_n: int = 4
    erasure_k: int = 2
    providers: int = 8
    churn: float = 0.2
    crash_fraction: float = 0.5
    flake_rate: float = 0.1
    flake_rho: float = 0.6
    join_rate: float = 1.0
    hazard: str = "exponential"
    weibull_shape: float = 2.0
    lanes: int = 2
    seed: int = 0
    s: int = 4
    k: int = 3
    workers: int = 1
    eviction_threshold: float = 0.42
    min_placement_score: float = 0.3
    stake_eth: float = 1.0
    slash_fraction: float = 0.5
    fraud_window: float = 10.0
    persist_dir: str | None = None
    #: directory for the persistent BN254 precompute store (``--crypto-cache``):
    #: pure derived tables, so it lives outside the determinism domain.
    crypto_cache_dir: str | None = None
    validate_packages: bool = False
    #: route the engine's settlement/report/stake transactions through each
    #: lane's fee-market mempool (submit at the wallet-suggested tip, mine,
    #: read the receipt back from the drain) instead of direct transact().
    mempool: bool = False
    mempool_tip_gwei: float = 1.0

    def __post_init__(self) -> None:
        if self.years <= 0 or self.epochs_per_year < 1:
            raise ValueError("years and epochs_per_year must be positive")
        if not 1 <= self.erasure_k <= self.erasure_n:
            raise ValueError("need 1 <= erasure_k <= erasure_n")
        if self.providers < self.erasure_n + 1:
            raise ValueError("need at least erasure_n + 1 providers for repair")
        if self.lanes < 1 or self.files < 1:
            raise ValueError("lanes and files must be >= 1")

    @property
    def total_epochs(self) -> int:
        return max(1, round(self.years * self.epochs_per_year))

    @property
    def repair_tolerance(self) -> int:
        """Providers the fleet can lose per epoch without losing any file."""
        return self.erasure_n - self.erasure_k

    def hazard_config(self) -> HazardConfig:
        return HazardConfig(
            churn=self.churn,
            crash_fraction=self.crash_fraction,
            flake_rate=self.flake_rate,
            join_rate=self.join_rate,
            epochs_per_year=self.epochs_per_year,
            hazard=self.hazard,
            weibull_shape=self.weibull_shape,
        )


@dataclass
class ProviderState:
    """The engine's ledger entry for one storage provider."""

    name: str
    account: str               # stake account on the registry's lane
    joined_epoch: int
    alive: bool = True         # present in the cluster ring
    flaky: bool = False        # silently withholding proofs
    dead: bool = False         # crashed; shards must migrate off
    evicted: bool = False
    deregistered: bool = False


@dataclass
class EpochSummary:
    """One epoch's ledger line (mirrors the trail, numerically)."""

    epoch: int
    audits: int
    accepted: int
    rejected: int
    repaired: int
    deferred: int
    evicted: int
    joined: int
    departed: int
    commitment_gas: int
    wall_seconds: float
    min_healthy_shards: int


@dataclass
class LifecycleOutcome:
    """What a completed run hands back to callers and tests."""

    epochs_run: int
    trail: EventTrail
    state_hash: str
    trail_digest: str
    files_intact: bool
    summaries: list[EpochSummary]
    total_commitment_gas: int
    total_repairs: int
    total_evictions: int
    wall_seconds: float

    @property
    def epochs_per_second(self) -> float:
        return self.epochs_run / self.wall_seconds if self.wall_seconds else 0.0


def _sub_seed(seed: int, label: str) -> int:
    digest = hashlib.sha256(f"lifecycle:{label}:{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class LifecycleEngine:
    """Drives a DSN deployment through simulated years of churn and audit."""

    def __init__(self, config: LifecycleConfig, tracer: Tracer | None = None):
        self.config = config
        self._init_observability(tracer)
        self.trail = EventTrail()
        self.summaries: list[EpochSummary] = []
        self.next_epoch = 1
        self.node_seq = 0
        self.total_commitment_gas = 0
        self.total_repairs = 0
        self.total_evictions = 0
        self.wall_seconds = 0.0
        self.params = ProtocolParams(s=config.s, k=config.k)
        self.beacon = HashChainBeacon(f"lifecycle-{config.seed}".encode())
        self._cache = PrecomputeCache()
        self._churn = ChurnModel(
            config.hazard_config(),
            rng=random.Random(_sub_seed(config.seed, "churn")),
        )
        self._batch_rng = random.Random(_sub_seed(config.seed, "batch"))
        self._owner_rng = random.Random(_sub_seed(config.seed, "owner"))
        self.providers: dict[str, ProviderState] = {}
        self.payloads: dict[str, bytes] = {}
        #: file name (Zp id) -> (file_id, live ShardAudit)
        self._shards: dict[int, tuple[str, ShardAudit]] = {}
        #: lane id -> (aggregator account, checkpoint contract address)
        self.lane_settlement: dict[int, tuple[str, str]] = {}
        #: names already registered on their lane's checkpoint contract
        self._registered: set[int] = set()
        self._build_world()

    def _init_observability(self, tracer: Tracer | None) -> None:
        """Attach the tracer and registry instruments (also on reopen).

        Tracing and metrics sit entirely outside the determinism domain:
        spans never touch RNG streams, chain state or the trail, and the
        tracer is excluded from the persisted snapshot (a reopened engine
        starts with a fresh one).
        """
        self.tracer = tracer if tracer is not None else NULL_TRACER
        registry = get_registry()
        self._m_epochs = registry.counter(
            "lifecycle_epochs_total", "lifecycle epochs completed"
        )
        self._m_events = registry.counter(
            "lifecycle_events_total", "lifecycle trail events by kind", ("kind",)
        )
        self._m_epoch_seconds = registry.histogram(
            "lifecycle_epoch_seconds", "wall-clock per lifecycle epoch"
        )

    # ------------------------------------------------------------------ #
    # World construction                                                  #
    # ------------------------------------------------------------------ #

    def _lanes_dir(self):
        from pathlib import Path

        assert self.config.persist_dir is not None
        return Path(self.config.persist_dir) / "lanes"

    def _build_world(self) -> None:
        config = self.config
        if config.persist_dir:
            # A fresh run must never build on top of a previous run's WALs:
            # WalStateStore replays whatever the directory holds, which
            # would silently break the same-seed determinism contract.
            from pathlib import Path

            existing = Path(config.persist_dir) / "engine.pkl"
            if existing.exists():
                raise ValueError(
                    f"{config.persist_dir} already holds a persisted "
                    "lifecycle run; reopen it with LifecycleEngine.open / "
                    "--resume, or point --persist at a fresh directory"
                )
        persist = str(self._lanes_dir()) if config.persist_dir else None
        mempool = None
        if config.mempool:
            from ..chain.mempool import MempoolConfig

            mempool = MempoolConfig()
        self.fabric = ShardedChainFabric(
            num_lanes=config.lanes, persist_dir=persist, mempool=mempool
        )
        cluster = DsnCluster(
            network=SimulatedNetwork(
                rng=random.Random(_sub_seed(config.seed, "network"))
            )
        )
        registry = ReputationRegistry(
            min_stake_wei=int(config.stake_eth * 10**18)
        )
        placement = ReputationWeightedPlacement(
            score_of=self._score_of, minimum_score=config.min_placement_score
        )
        self.dsn = AuditedDsn(
            cluster,
            self.fabric,
            self.beacon,
            params=self.params,
            terms=ContractTerms(
                num_audits=1,
                audit_interval=DORMANT_INTERVAL,
                response_window=DORMANT_INTERVAL / 10,
            ),
            reputation=registry,
            rng=self._owner_rng,
            placement=placement,
            validate_packages=config.validate_packages,
            key_mode="convergent",
        )
        assert self.dsn._reputation_address is not None
        self.registry_address = self.dsn._reputation_address
        registry_lane = self.fabric.lane_index_of_contract(self.registry_address)
        self._registry_lane = self.fabric.lane(registry_lane)
        self.oracle = self._registry_lane.create_account(
            20.0, label="lifecycle-oracle"
        )
        self._transact(self.oracle, self.registry_address, "authorize_reporter",
                       (self.oracle,))
        for lane_id, lane in enumerate(self.fabric.lanes):
            account = lane.create_account(50.0, label=f"lifecycle-agg-{lane_id}")
            contract = CheckpointContract(
                self.beacon, self.params, fraud_window=config.fraud_window
            )
            address = lane.deploy(contract, deployer=account)
            self.lane_settlement[lane_id] = (account, address)
        for _ in range(config.providers):
            self._add_provider(epoch=0)
        for index in range(config.files):
            file_id = f"archive-{index:02d}"
            payload = archive_file(
                config.file_bytes, tag=f"lifecycle-{config.seed}-{index}"
            ).data
            self.payloads[file_id] = payload
            audited = self.dsn.store(
                f"owner-{index}", file_id, payload,
                n=config.erasure_n, k=config.erasure_k,
            )
            for shard_audit in audited.shard_audits:
                self._track_shard(file_id, shard_audit)
            self.trail.emit(
                0, "stored", file_id,
                shards=config.erasure_n, needed=config.erasure_k,
                bytes=len(payload),
            )
        self.executor = AuditExecutor(
            [
                AuditInstance.from_package(audit.package, owner_id=file_id)
                for file_id, audit in self._shards.values()
            ],
            workers=config.workers,
            cache_dir=config.crypto_cache_dir,
        )
        if config.persist_dir:
            self.checkpoint_state()

    def _add_provider(self, epoch: int) -> ProviderState:
        name = f"node-{self.node_seq:03d}"
        self.node_seq += 1
        self.dsn.cluster.add_node(name)
        account = self._registry_lane.create_account(
            self.config.stake_eth + 1.0, label=f"stake-{name}"
        )
        receipt = self._transact(
            account,
            self.registry_address,
            "register",
            (name,),
            value=int(self.config.stake_eth * 10**18),
        )
        if not receipt.success:
            raise RuntimeError(f"stake registration failed: {receipt.error}")
        state = ProviderState(name=name, account=account, joined_epoch=epoch)
        self.providers[name] = state
        self.trail.emit(epoch, "joined", name, stake_eth=self.config.stake_eth)
        return state

    def _track_shard(self, file_id: str, shard_audit: ShardAudit) -> None:
        assert shard_audit.package is not None
        self._shards[shard_audit.file_name] = (file_id, shard_audit)

    # ------------------------------------------------------------------ #
    # Chain helpers                                                       #
    # ------------------------------------------------------------------ #

    def _transact(self, sender, to, method, args=(), value=0, payload_bytes=0):
        tx = Transaction(
            sender=sender, to=to, method=method, args=tuple(args), value=value
        )
        if not self.config.mempool:
            return self.fabric.transact(tx, payload_bytes=payload_bytes)
        # Mempool mode: the engine behaves like any other fee-paying user —
        # escrow at the wallet-suggested fees, wait for the drain, and read
        # the execution receipt back out of the pool telemetry.
        lane = self.fabric.lanes[self.fabric.lane_index_for_tx(tx)]
        pool = lane.pool
        assert pool is not None, "mempool mode requires pooled lanes"
        max_fee_gwei, tip_gwei = pool.suggest_fees(self.config.mempool_tip_gwei)
        entry = lane.submit(
            dataclasses.replace(
                tx, max_fee_gwei=max_fee_gwei, priority_fee_gwei=tip_gwei
            ),
            payload_bytes=payload_bytes,
        )
        # The current pending block may be partly filled by direct
        # transact() traffic (the DSN store/repair path); if the fee
        # budget's gas reservation does not fit, the drain defers the
        # transaction to the next — empty — block.
        for _ in range(3):
            lane.mine_block()
            receipt = pool.last_drained.get((sender, entry.tx.nonce))
            if receipt is not None:
                return receipt
        raise RuntimeError(
            f"pooled transaction {method} was not drained into a block"
        )

    def _score_of(self, provider: str) -> float:
        return float(
            self.fabric.call(self.registry_address, "score_of", provider)
        )

    @property
    def registry(self) -> ReputationRegistry:
        contract = self.fabric.contract_at(self.registry_address)
        assert isinstance(contract, ReputationRegistry)
        return contract

    # ------------------------------------------------------------------ #
    # The epoch loop                                                      #
    # ------------------------------------------------------------------ #

    def run(self) -> LifecycleOutcome:
        """Run every remaining epoch and return the final outcome."""
        while self.next_epoch <= self.config.total_epochs:
            self.run_epoch()
        return self.outcome()

    def run_epoch(self) -> EpochSummary:
        """One epoch: churn → audit → settle → report → repair → evict."""
        epoch = self.next_epoch
        t0 = time.perf_counter()
        with self.tracer.span("epoch", epoch=epoch):
            with self.tracer.span("churn", epoch=epoch):
                joined, departed = self._churn_step(epoch)
            with self.tracer.span("audit", epoch=epoch):
                result, records = self._audit_step(epoch)
            with self.tracer.span("settle", epoch=epoch):
                commitment_gas = self._settle_step(epoch, records)
            with self.tracer.span("report", epoch=epoch):
                self._report_step(records)
            with self.tracer.span("repair", epoch=epoch):
                self._repair_step(epoch, records)
            with self.tracer.span("evict", epoch=epoch):
                evicted = self._evict_step(epoch)
            with self.tracer.span("finalize", epoch=epoch):
                self._finalize_step()
            with self.tracer.span("mine", epoch=epoch):
                self.fabric.mine_block()
        wall = time.perf_counter() - t0
        epoch_events = self.trail.for_epoch(epoch)
        repaired = sum(1 for e in epoch_events if e.kind == "repaired")
        deferred = sum(1 for e in epoch_events if e.kind == "deferred")
        summary = EpochSummary(
            epoch=epoch,
            audits=result.num_audits,
            accepted=sum(1 for r in records if r.verdict),
            rejected=sum(1 for r in records if not r.verdict),
            repaired=repaired,
            deferred=deferred,
            evicted=evicted,
            joined=joined,
            departed=departed,
            commitment_gas=commitment_gas,
            wall_seconds=wall,
            min_healthy_shards=self.min_healthy_shards(),
        )
        self.summaries.append(summary)
        self.total_commitment_gas += commitment_gas
        self.total_repairs += repaired
        self.total_evictions += evicted
        self.wall_seconds += wall
        self._m_epochs.inc()
        self._m_epoch_seconds.observe(wall)
        for event in epoch_events:
            self._m_events.labels(event.kind).inc()
        self.next_epoch = epoch + 1
        if self.config.persist_dir:
            self.checkpoint_state()
        return summary

    # -- phase 1: churn -------------------------------------------------- #

    def _active_providers(self) -> list[ProviderState]:
        return [
            state
            for _, state in sorted(self.providers.items())
            if state.alive and not state.dead and not state.evicted
        ]

    def _churn_step(self, epoch: int) -> tuple[int, int]:
        draw = self._churn.draw(
            [
                (state.name, epoch - state.joined_epoch)
                for state in self._active_providers()
            ],
            flaky={s.name for s in self.providers.values() if s.flaky},
            max_departures=self.config.repair_tolerance,
        )
        for _ in range(draw.joins):
            self._add_provider(epoch)
        for name in draw.leaves:
            self._graceful_leave(epoch, name)
        for name in draw.crashes:
            state = self.providers[name]
            state.dead = True
            state.alive = False
            state.flaky = False
            self.dsn.cluster.remove_node(name)
            self.trail.emit(
                epoch, "crashed", name, shards=len(self._names_held_by(name))
            )
        for name in draw.flakes:
            self.providers[name].flaky = True
            self.trail.emit(epoch, "flaky", name, rho=self.config.flake_rho)
        return draw.joins, len(draw.leaves) + len(draw.crashes)

    def _names_held_by(self, provider: str) -> list[int]:
        return sorted(
            name
            for name, (_, audit) in self._shards.items()
            if audit.provider == provider and not audit.replaced
        )

    def _graceful_leave(self, epoch: int, provider: str) -> None:
        """Migrate everything off a politely departing provider, then part."""
        state = self.providers[provider]
        migrated = True
        for name in self._names_held_by(provider):
            if not self._repair_shard(epoch, name, reason="leave"):
                migrated = False
        if not migrated:
            # Not enough eligible replacements this epoch: the departure is
            # postponed (the provider keeps serving; churn may redraw it).
            self.trail.emit(epoch, "deferred", provider, what="departure")
            return
        state.alive = False
        self.dsn.cluster.remove_node(provider)
        receipt = self._transact(
            state.account, self.registry_address, "deregister", (provider,)
        )
        state.deregistered = receipt.success
        refunded = 0
        if receipt.success:
            refund_events = [
                e for e in receipt.events if e.name == "deregistered"
            ]
            if refund_events:
                refunded = refund_events[0].payload.get("refunded", 0)
        self.trail.emit(
            epoch, "left", provider,
            refunded_wei=refunded, good_standing=receipt.success,
        )

    # -- phase 2: audits -------------------------------------------------- #

    def _withheld_override(self, challenge, epoch):
        raise ResponseWithheld("provider unavailable for this epoch")

    def _audit_step(self, epoch: int):
        overrides = {}
        flaky_names: list[int] = []
        for name, (_, audit) in sorted(self._shards.items()):
            if audit.replaced:
                continue
            state = self.providers.get(audit.provider)
            if state is None or state.dead or not state.alive:
                overrides[name] = self._withheld_override
            elif state.flaky:
                flaky_names.append(name)
        for name in self._churn.withholds(flaky_names, self.config.flake_rho):
            overrides[name] = self._withheld_override
        scheduler = EpochScheduler(
            self.executor,
            self.params,
            self.beacon,
            deterministic=True,
            rng=self._batch_rng,
            keep_history=False,
            overrides=overrides,
            cache=self._cache,
            tracer=self.tracer,
        )
        result = scheduler.run_epoch(epoch)
        records = records_from_epoch(result, precompute=self._cache)
        return result, records

    # -- phase 3: settlement ---------------------------------------------- #

    def _settle_step(self, epoch: int, records) -> int:
        by_lane: dict[int, list] = {}
        for record in records:
            by_lane.setdefault(
                self.fabric.lane_index_for(record.name), []
            ).append(record)
        lane_bundles = []
        gas = 0
        for lane_id in sorted(by_lane):
            account, address = self.lane_settlement[lane_id]
            for record in by_lane[lane_id]:
                gas += self._register_instance(lane_id, record.name)
            with self.tracer.span("checkpoint_build", epoch=epoch, lane=lane_id):
                bundle = build_checkpoint(epoch, tuple(by_lane[lane_id]))
            commitment_bytes = bundle.checkpoint.to_bytes()
            contract = self.fabric.lane(lane_id).contract_at(address)
            assert isinstance(contract, CheckpointContract)
            with self.tracer.span("post", epoch=epoch, lane=lane_id):
                receipt = self._transact(
                    account,
                    address,
                    "post_checkpoint",
                    (commitment_bytes,),
                    value=contract.posting_bond_wei,
                    payload_bytes=len(commitment_bytes),
                )
            if not receipt.success:
                raise RuntimeError(
                    f"lane {lane_id} checkpoint failed: {receipt.error}"
                )
            gas += receipt.gas_used
            lane_bundles.append((lane_id, bundle))
        fabric_bundle = build_fabric_checkpoint(epoch, lane_bundles)
        self.last_fabric_bundle = fabric_bundle
        self.trail.emit(
            epoch, "settled", f"epoch-{epoch}",
            lanes=len(lane_bundles),
            audits=fabric_bundle.checkpoint.num_leaves,
            accepted=fabric_bundle.checkpoint.accepted,
            rejected=fabric_bundle.checkpoint.rejected,
            root=fabric_bundle.checkpoint.fabric_root.hex()[:16],
            gas=gas,
        )
        return gas

    def _register_instance(self, lane_id: int, name: int) -> int:
        if name in self._registered:
            return 0
        _, audit = self._shards[name]
        assert audit.package is not None
        account, address = self.lane_settlement[lane_id]
        pk_bytes = audit.package.public.to_bytes()
        receipt = self._transact(
            account,
            address,
            "register_instance",
            (name, pk_bytes, audit.package.num_chunks),
            payload_bytes=len(pk_bytes) + 36,
        )
        if not receipt.success:
            raise RuntimeError(f"instance registration failed: {receipt.error}")
        self._registered.add(name)
        return receipt.gas_used

    # -- phase 4: reputation reports --------------------------------------- #

    def _report_step(self, records) -> None:
        registry = self.registry
        for record in records:
            _, audit = self._shards[record.name]
            provider = audit.provider
            if provider not in registry.providers:
                continue
            self._transact(
                self.oracle,
                self.registry_address,
                "report_audit",
                (provider, record.verdict),
            )

    # -- phase 5: repair --------------------------------------------------- #

    def _repair_step(self, epoch: int, records) -> None:
        for record in sorted(records, key=lambda r: r.name):
            if record.verdict:
                continue
            _, audit = self._shards[record.name]
            if audit.replaced:
                continue  # already migrated earlier this epoch
            self._repair_shard(epoch, record.name, reason=record.reject_code)

    def _repair_shard(self, epoch: int, name: int, reason: str) -> bool:
        """Regenerate one shard onto a fresh provider; False = deferred."""
        file_id, audit = self._shards[name]
        audited = self.dsn.files[file_id]
        try:
            self.dsn._repair(file_id, audited, audit)
        except RuntimeError as exc:
            self.trail.emit(
                epoch, "deferred", file_id,
                shard=audit.shard_index, why=str(exc)[:60],
            )
            return False
        replacement = audited.shard_audits[-1]
        assert replacement.package is not None
        self.executor.unregister(name)
        self.executor.register(
            AuditInstance.from_package(replacement.package, owner_id=file_id)
        )
        del self._shards[name]
        self._track_shard(file_id, replacement)
        self.trail.emit(
            epoch, "repaired", file_id,
            shard=audit.shard_index,
            source=audit.provider,
            target=replacement.provider,
            reason=reason,
        )
        self.trail.emit(
            epoch, "rekeyed", file_id,
            old=f"{name:#x}"[:14],
            new=f"{replacement.file_name:#x}"[:14],
            contract=replacement.deployment.contract_address[:14],
        )
        return True

    # -- phase 6: eviction -------------------------------------------------- #

    def _evict_step(self, epoch: int) -> int:
        evicted = 0
        registry = self.registry
        for _, state in sorted(self.providers.items()):
            if state.evicted:
                # An earlier eviction may have deferred part of its
                # migration (no eligible replacements that epoch); keep
                # draining the leftovers until the provider holds nothing.
                self._drain_evicted(epoch, state)
                continue
            if state.deregistered:
                continue
            record = registry.providers.get(state.name)
            if record is None:
                continue
            below = self._score_of(state.name) < self.config.eviction_threshold
            if not (state.dead or record.banned or below):
                continue
            self._evict(epoch, state)
            evicted += 1
        return evicted

    def _evict(self, epoch: int, state: ProviderState) -> None:
        """Audit-driven removal: slash the stake, migrate, drop from ring."""
        receipt = self._transact(
            self.oracle,
            self.registry_address,
            "slash_stake",
            (state.name, self.config.slash_fraction, self.oracle),
        )
        slashed_wei = 0
        if receipt.success:
            for event in receipt.events:
                if event.name == "stake_slashed":
                    slashed_wei = event.payload.get("slashed_wei", 0)
            self.trail.emit(
                epoch, "slashed", state.name, slashed_wei=slashed_wei
            )
        leftovers = self._names_held_by(state.name)
        fully_migrated = True
        for name in leftovers:
            if not self._repair_shard(epoch, name, reason="eviction"):
                fully_migrated = False
        state.evicted = True
        self.trail.emit(
            epoch, "evicted", state.name,
            cause="crash" if state.dead else "reputation",
            slashed_wei=slashed_wei,
            migrated=len(leftovers) if fully_migrated else "partial",
        )
        if state.alive and fully_migrated:
            state.alive = False
            self.dsn.cluster.remove_node(state.name)

    def _drain_evicted(self, epoch: int, state: ProviderState) -> None:
        """Finish a partially-deferred eviction: migrate, then drop the node."""
        if not state.alive:
            return
        leftovers = self._names_held_by(state.name)
        fully_migrated = True
        for name in leftovers:
            if not self._repair_shard(epoch, name, reason="eviction"):
                fully_migrated = False
        if fully_migrated:
            state.alive = False
            self.dsn.cluster.remove_node(state.name)

    # -- phase 7: finalize + bookkeeping ------------------------------------ #

    def _finalize_step(self) -> None:
        for lane_id, (account, address) in sorted(self.lane_settlement.items()):
            lane = self.fabric.lane(lane_id)
            contract = lane.contract_at(address)
            assert isinstance(contract, CheckpointContract)
            for entry in contract.checkpoints:
                if (
                    entry.status is CheckpointStatus.OPEN
                    and lane.time > entry.posted_at + contract.fraud_window
                ):
                    self._transact(
                        account, address, "finalize_checkpoint",
                        (entry.checkpoint_id,),
                    )

    def min_healthy_shards(self) -> int:
        """The weakest file's live shard count (durability floor)."""
        from ..storage.node import _checksum

        worst = None
        for file_id, audited in self.dsn.files.items():
            healthy = 0
            for location in audited.manifest.shards:
                node = self.dsn.cluster.nodes.get(location.provider)
                data = (
                    node.get(file_id, location.shard_index)
                    if node is not None
                    else None
                )
                if data is not None and _checksum(data) == location.checksum:
                    healthy += 1
            worst = healthy if worst is None else min(worst, healthy)
        return worst or 0

    def files_intact(self) -> bool:
        """End-to-end retrievability of every stored file."""
        for file_id, payload in self.payloads.items():
            try:
                if self.dsn.retrieve(file_id) != payload:
                    return False
            except RuntimeError:
                return False
        return True

    def outcome(self) -> LifecycleOutcome:
        return LifecycleOutcome(
            epochs_run=self.next_epoch - 1,
            trail=self.trail,
            state_hash=self.fabric.state_hash(),
            trail_digest=self.trail.digest(),
            files_intact=self.files_intact(),
            summaries=list(self.summaries),
            total_commitment_gas=self.total_commitment_gas,
            total_repairs=self.total_repairs,
            total_evictions=self.total_evictions,
            wall_seconds=self.wall_seconds,
        )

    # ------------------------------------------------------------------ #
    # Service hosting                                                      #
    # ------------------------------------------------------------------ #

    def service_node(self):
        """Host this engine behind the JSON-RPC audit service.

        Returns a :class:`~repro.rpc.node.ServiceNode` wrapping the
        engine's own fabric with the engine mounted, so ``audit_status``
        reports lifecycle progress and ``state_get`` resolves provider
        reputation.  Callers drive epochs (:meth:`run_epoch`) while the
        service answers reads; both serialize on the lanes' chain locks.
        """
        from ..rpc import ServiceNode

        return ServiceNode(self.fabric, lifecycle=self)

    # ------------------------------------------------------------------ #
    # Durability (crash + reopen)                                          #
    # ------------------------------------------------------------------ #

    def checkpoint_state(self) -> None:
        from .persist import save_engine

        save_engine(self)

    @classmethod
    def open(cls, persist_dir: str, **overrides) -> "LifecycleEngine":
        """Reopen a persisted run at its last epoch boundary.

        Truncates every lane's WAL back to the boundary the engine snapshot
        recorded (discarding any torn partial-epoch tail), restores the
        engine's own state, and verifies the reopened fabric's
        ``state_hash`` matches the snapshot before handing the engine back.
        """
        from .persist import load_engine

        return load_engine(persist_dir, **overrides)

    def close(self) -> None:
        self.executor.close()
        self.fabric.close()
