"""Long-horizon lifecycle simulation: years of churn, repair and eviction.

The first subsystem that composes every prior layer — parallel audit
engine, adversarial withholding, checkpoint rollup and sharded chain
fabric — into one closed, deterministic loop.  See
:mod:`repro.lifecycle.engine` for the epoch pipeline and
``docs/SCENARIOS.md`` for the narrated scenario.
"""

from .engine import (
    EpochSummary,
    LifecycleConfig,
    LifecycleEngine,
    LifecycleOutcome,
    ProviderState,
)
from .events import EVENT_KINDS, EventTrail, LifecycleEvent
from .hazard import ChurnDraw, ChurnModel, HazardConfig, per_epoch_probability
from .persist import LifecycleResumeError, load_engine, save_engine

__all__ = [
    "ChurnDraw",
    "ChurnModel",
    "EVENT_KINDS",
    "EpochSummary",
    "EventTrail",
    "HazardConfig",
    "LifecycleConfig",
    "LifecycleEngine",
    "LifecycleEvent",
    "LifecycleOutcome",
    "LifecycleResumeError",
    "ProviderState",
    "load_engine",
    "per_epoch_probability",
    "save_engine",
]
