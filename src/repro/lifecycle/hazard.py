"""Provider-churn hazard model: who joins, leaves, crashes or rots, and when.

The long-horizon engine time-compresses years into epochs; this module
supplies the per-epoch random transitions from *annual* rates, so a run
configured with ``churn=0.2`` really does turn over ~20% of its fleet per
simulated year regardless of the chosen epoch cadence.

Two hazard shapes are supported (Audita/SHELBY-style lifecycle analyses
both observe that departure risk is rarely memoryless):

* ``exponential`` — constant per-epoch hazard (memoryless),
* ``weibull`` — age-dependent hazard ``h(t) ∝ t^(shape-1)`` normalized so
  the *average* annual departure probability still matches ``churn``;
  ``shape > 1`` makes old providers likelier to leave (wear-out),
  ``shape < 1`` makes fresh providers the risky ones (infant mortality).

Everything is driven by one seeded :class:`random.Random`, so a draw
sequence is a pure function of (seed, epoch order) — the property the
determinism and crash/resume tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

HAZARD_SHAPES = ("exponential", "weibull")


def per_epoch_probability(annual_probability: float, epochs_per_year: int) -> float:
    """The per-epoch hazard that compounds to ``annual_probability`` per year."""
    if not 0.0 <= annual_probability < 1.0:
        raise ValueError("annual probability must be in [0, 1)")
    if epochs_per_year < 1:
        raise ValueError("epochs_per_year must be >= 1")
    return 1.0 - (1.0 - annual_probability) ** (1.0 / epochs_per_year)


@dataclass(frozen=True)
class HazardConfig:
    """Annual rates + the epoch cadence that compresses them."""

    churn: float = 0.2              # annual fraction of providers departing
    crash_fraction: float = 0.5    # departures that crash (vs leave politely)
    flake_rate: float = 0.1        # annual P[a provider turns silently flaky]
    join_rate: float = 1.0         # expected provider joins per year
    epochs_per_year: int = 12
    hazard: str = "exponential"
    weibull_shape: float = 2.0

    def __post_init__(self) -> None:
        if self.hazard not in HAZARD_SHAPES:
            raise ValueError(f"hazard must be one of {HAZARD_SHAPES}")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError("crash_fraction must be a probability")
        if self.weibull_shape <= 0:
            raise ValueError("weibull_shape must be positive")

    @property
    def leave_probability_per_epoch(self) -> float:
        return per_epoch_probability(self.churn, self.epochs_per_year)

    @property
    def flake_probability_per_epoch(self) -> float:
        return per_epoch_probability(self.flake_rate, self.epochs_per_year)

    @property
    def join_probability_per_epoch(self) -> float:
        """Bernoulli approximation of ``join_rate`` arrivals per year."""
        return min(1.0, self.join_rate / self.epochs_per_year)

    def departure_probability(self, age_epochs: int) -> float:
        """Per-epoch departure hazard for a provider of the given age."""
        base = self.leave_probability_per_epoch
        if self.hazard == "exponential":
            return base
        # Weibull-like discrete hazard: scale with age^(shape-1), normalized
        # by the mean age weight over one year so the annual rate is kept.
        year = self.epochs_per_year
        weights = [(t + 1) ** (self.weibull_shape - 1.0) for t in range(year)]
        mean_weight = sum(weights) / len(weights)
        weight = (age_epochs + 1) ** (self.weibull_shape - 1.0) / mean_weight
        return min(0.95, base * weight)


@dataclass(frozen=True)
class ChurnDraw:
    """One epoch's sampled transitions (all provider names)."""

    joins: int
    leaves: tuple[str, ...]     # graceful departures
    crashes: tuple[str, ...]    # abrupt departures (data gone)
    flakes: tuple[str, ...]     # providers turning silently unreliable


@dataclass
class ChurnModel:
    """Seeded sampler of per-epoch churn over a named provider population."""

    config: HazardConfig
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def draw(
        self,
        providers: list[tuple[str, int]],
        flaky: set[str] | None = None,
        max_departures: int | None = None,
    ) -> ChurnDraw:
        """Sample one epoch of churn.

        ``providers`` is an ordered list of (name, age_epochs); order must
        be deterministic (the engine passes a sorted view).  Departures are
        capped at ``max_departures`` (the caller's erasure tolerance) with
        the *later* draws dropped, so a run with churn within tolerance
        never loses more shards than repair can regenerate.
        """
        flaky = flaky or set()
        departures: list[tuple[str, bool]] = []  # (name, crashed)
        flakes: list[str] = []
        for name, age in providers:
            if self.rng.random() < self.config.departure_probability(age):
                crashed = self.rng.random() < self.config.crash_fraction
                departures.append((name, crashed))
                continue
            if name not in flaky and (
                self.rng.random() < self.config.flake_probability_per_epoch
            ):
                flakes.append(name)
        if max_departures is not None and len(departures) > max_departures:
            departures = departures[:max_departures]
        joins = 1 if self.rng.random() < self.config.join_probability_per_epoch else 0
        return ChurnDraw(
            joins=joins,
            leaves=tuple(name for name, crashed in departures if not crashed),
            crashes=tuple(name for name, crashed in departures if crashed),
            flakes=tuple(flakes),
        )

    def withholds(self, names: list[int], probability: float) -> tuple[int, ...]:
        """Per-shard Bernoulli draws for a flaky provider's silent failures."""
        return tuple(
            name for name in names if self.rng.random() < probability
        )
