"""Canonical lifecycle event trail: the replayable record of a simulated life.

Every observable state transition of the long-horizon engine — a provider
joining, crashing or being evicted, a shard being repaired and re-keyed,
an epoch settling through the checkpoint rollup — is appended to one
:class:`EventTrail` as a :class:`LifecycleEvent`.  The trail is the
engine's *test surface*: it has a canonical line encoding and a SHA-256
digest, so

* two runs from the same seed must produce byte-identical trails
  (determinism), and
* a crash + reopen must continue to the same final digest (durability),

both asserted by ``tests/lifecycle/``.  The encoding is text, one event
per line, so the explorer and humans can replay it without a decoder.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: The closed set of event kinds the engine may emit (order = severity-free).
EVENT_KINDS = (
    "stored",      # a file placed under audit (subject = file id)
    "joined",      # a provider entered the cluster (subject = provider)
    "left",        # graceful departure, shards migrated first
    "crashed",     # provider vanished; its shards must be repaired
    "flaky",       # provider started silently failing audits
    "repaired",    # one shard regenerated onto a fresh provider
    "rekeyed",     # a migrated shard got a fresh audit keypair + contract
    "deferred",    # a repair could not be placed this epoch (retried later)
    "evicted",     # audit/dispute record fell below threshold; removed
    "slashed",     # on-chain stake slash recorded for a provider
    "settled",     # one epoch committed through the checkpoint rollup
)


def _render_value(value) -> str:
    """Deterministic, newline-free rendering of one detail value."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, bytes):
        return value.hex()
    text = str(value)
    for forbidden in ("\n", "|", ",", "="):
        text = text.replace(forbidden, "_")
    return text


@dataclass(frozen=True)
class LifecycleEvent:
    """One lifecycle transition in canonical form."""

    epoch: int
    kind: str
    subject: str
    detail: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown lifecycle event kind {self.kind!r}")

    @staticmethod
    def make(epoch: int, kind: str, subject: str, **detail) -> "LifecycleEvent":
        rendered = tuple(
            (key, _render_value(value)) for key, value in sorted(detail.items())
        )
        return LifecycleEvent(
            epoch=epoch, kind=kind, subject=_render_value(subject), detail=rendered
        )

    def to_line(self) -> str:
        """Canonical one-line encoding: ``epoch|kind|subject|k=v,k=v``."""
        details = ",".join(f"{key}={value}" for key, value in self.detail)
        return f"{self.epoch}|{self.kind}|{self.subject}|{details}"

    @staticmethod
    def from_line(line: str) -> "LifecycleEvent":
        parts = line.rstrip("\n").split("|")
        if len(parts) != 4:
            raise ValueError(f"malformed lifecycle event line: {line!r}")
        epoch_text, kind, subject, details = parts
        detail: list[tuple[str, str]] = []
        if details:
            for pair in details.split(","):
                key, _, value = pair.partition("=")
                detail.append((key, value))
        return LifecycleEvent(
            epoch=int(epoch_text), kind=kind, subject=subject, detail=tuple(detail)
        )

    def get(self, key: str, default: str | None = None) -> str | None:
        for candidate, value in self.detail:
            if candidate == key:
                return value
        return default


@dataclass
class EventTrail:
    """An append-only, digestible sequence of lifecycle events."""

    events: list[LifecycleEvent] = field(default_factory=list)

    def emit(self, epoch: int, kind: str, subject: str, **detail) -> LifecycleEvent:
        event = LifecycleEvent.make(epoch, kind, subject, **detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> list[LifecycleEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_epoch(self, epoch: int) -> list[LifecycleEvent]:
        return [event for event in self.events if event.epoch == epoch]

    def to_lines(self) -> list[str]:
        return [event.to_line() for event in self.events]

    @staticmethod
    def from_lines(lines) -> "EventTrail":
        return EventTrail(
            events=[LifecycleEvent.from_line(line) for line in lines if line.strip()]
        )

    def digest(self) -> str:
        """SHA-256 over the canonical line encoding (the determinism anchor)."""
        hasher = hashlib.sha256(b"lifecycle-trail-v1")
        for event in self.events:
            hasher.update(event.to_line().encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()
