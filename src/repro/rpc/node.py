"""ServiceNode: the full audit stack behind one RPC method namespace.

Normalizes the two chain shapes (a single
:class:`~repro.chain.blockchain.Blockchain` or a
:class:`~repro.chain.fabric.ShardedChainFabric`) and optionally mounts the
audit layers on top:

* a :class:`~repro.rollup.fabric.CrossShardAggregator` — serves
  ``audit_status`` / ``checkpoint_get`` / ``fabric_proof_get``,
* a :class:`~repro.lifecycle.engine.LifecycleEngine` — the service-hosted
  mode (:meth:`~repro.lifecycle.engine.LifecycleEngine.service_node`),
  which additionally exposes provider reputation through ``state_get``.

Every handler returns plain JSON-serialisable values and raises
:class:`~repro.rpc.codec.RpcError` for domain failures, so the dispatcher
layer never needs type-specific knowledge.  Handlers run on server worker
threads: writes serialize per lane on ``Blockchain.lock``, and multi-lane
reads quiesce every lane in ascending order (each lane's miner/submitter
holds exactly one lane lock, so the ordered sweep cannot deadlock).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..chain.explorer import ChainExplorer
from ..chain.transaction import Transaction
from .codec import INVALID_PARAMS, NOT_FOUND, UNSUPPORTED, RpcError

#: Methods a ServiceNode contributes to a dispatcher, in protocol order.
SERVICE_METHODS = [
    "submit_tx",
    "pending_pool",
    "fee_suggest",
    "state_get",
    "audit_status",
    "checkpoint_get",
    "fabric_proof_get",
    "da_commitment_get",
    "da_sample_get",
    "explorer_summary",
    "explorer_blocks",
    "explorer_lanes",
    "explorer_fee_market",
    "explorer_audits",
    "explorer_checkpoints",
    "explorer_events",
    "mine",
    "node_status",
]

_SUBMIT_FIELDS = frozenset(
    {
        "sender",
        "to",
        "method",
        "args",
        "value",
        "gas_limit",
        "gas_price_gwei",
        "nonce",
        "max_fee_gwei",
        "priority_fee_gwei",
        "payload_bytes",
        "replace",
    }
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RpcError(INVALID_PARAMS, message)


def _hex(data: bytes) -> str:
    return data.hex()


def _merkle_proof_object(proof) -> dict:
    return {
        "leaf_index": proof.leaf_index,
        "leaf_data": _hex(proof.leaf_data),
        "siblings": [_hex(sibling) for sibling in proof.siblings],
        "directions": list(proof.directions),
    }


class ServiceNode:
    """One long-running audit-service node over a chain (or fabric)."""

    def __init__(self, chain, aggregator=None, lifecycle=None):
        self.chain = chain
        self.aggregator = aggregator
        self.lifecycle = lifecycle
        self.explorer = ChainExplorer(chain)
        self.started_at = time.time()
        self._miner_thread: threading.Thread | None = None
        self._miner_stop = threading.Event()
        self._mine_lock = threading.Lock()

    # -- plumbing ------------------------------------------------------------

    @property
    def lanes(self) -> list:
        return list(getattr(self.chain, "lanes", [self.chain]))

    @property
    def sharded(self) -> bool:
        return hasattr(self.chain, "lanes")

    @contextmanager
    def _quiesced(self):
        """Hold every lane's lock (ascending) for a consistent read."""
        lanes = self.lanes
        for lane in lanes:
            lane.lock.acquire()
        try:
            yield
        finally:
            for lane in reversed(lanes):
                lane.lock.release()

    def _lane_for(self, lane: "int | None"):
        lanes = self.lanes
        if lane is None:
            return None
        _require(isinstance(lane, int) and not isinstance(lane, bool), "lane must be an integer")
        if not 0 <= lane < len(lanes):
            raise RpcError(NOT_FOUND, f"no lane {lane} (fabric has {len(lanes)})")
        return lanes[lane]

    def register_on(self, dispatcher) -> None:
        dispatcher.register_namespace(self, SERVICE_METHODS)

    # -- ingress ---------------------------------------------------------------

    def submit_tx(self, **payload) -> dict:
        """Admit one transaction into its settlement lane's mempool."""
        unknown = set(payload) - _SUBMIT_FIELDS
        _require(not unknown, f"unknown fields: {sorted(unknown)[:4]}")
        sender = payload.get("sender")
        _require(isinstance(sender, str) and bool(sender), "sender must be a string")
        to = payload.get("to")
        _require(to is None or isinstance(to, str), "to must be a string or null")
        method = payload.get("method")
        _require(
            method is None or isinstance(method, str), "method must be a string or null"
        )
        args = payload.get("args", [])
        _require(isinstance(args, list), "args must be an array")
        value = payload.get("value", 0)
        gas_limit = payload.get("gas_limit", 10_000_000)
        nonce = payload.get("nonce", 0)
        payload_bytes = payload.get("payload_bytes", 0)
        for field_name, field_value in (
            ("value", value),
            ("gas_limit", gas_limit),
            ("nonce", nonce),
            ("payload_bytes", payload_bytes),
        ):
            _require(
                isinstance(field_value, int) and not isinstance(field_value, bool)
                and field_value >= 0,
                f"{field_name} must be a non-negative integer",
            )
        for field_name in ("gas_price_gwei", "max_fee_gwei", "priority_fee_gwei"):
            field_value = payload.get(field_name)
            _require(
                field_value is None
                or (
                    isinstance(field_value, (int, float))
                    and not isinstance(field_value, bool)
                    and field_value >= 0
                ),
                f"{field_name} must be a non-negative number",
            )
        replace = payload.get("replace", False)
        _require(isinstance(replace, bool), "replace must be a boolean")

        tx = Transaction(
            sender=sender,
            to=to,
            method=method,
            args=tuple(args),
            value=value,
            gas_limit=gas_limit,
            gas_price_gwei=payload.get("gas_price_gwei", 5.0),
            nonce=nonce,
            max_fee_gwei=payload.get("max_fee_gwei"),
            priority_fee_gwei=payload.get("priority_fee_gwei"),
        )
        if self.sharded:
            try:
                lane_index = self.chain.lane_index_for_tx(tx)
            except KeyError:
                # No recipient to route by and the sender account does not
                # exist on any lane: structurally unroutable, not internal.
                raise RpcError(
                    NOT_FOUND, f"unknown sender account {sender}"
                ) from None
            lane = self.chain.lanes[lane_index]
        else:
            lane_index = 0
            lane = self.chain
        if lane.pool is None:
            raise RpcError(UNSUPPORTED, "this node has no mempool attached")
        entry = lane.submit(tx, payload_bytes, replace=replace)
        return {
            "tx_id": entry.tx.tx_id,
            "tx_hash": entry.tx.tx_hash,
            "lane": lane_index,
            "nonce": entry.tx.nonce,
            "seq": entry.seq,
            "max_fee_wei": entry.max_fee_wei,
            "tip_cap_wei": entry.tip_cap_wei,
            "escrow_wei": entry.escrow_wei,
        }

    def pending_pool(self, lane: "int | None" = None) -> dict:
        """Pending-pool depth, watermarks and rejection counters per lane."""
        selected = self._lane_for(lane)
        lanes = [selected] if selected is not None else self.lanes
        offset = lane if selected is not None else 0
        out = []
        for index, candidate in enumerate(lanes, start=offset):
            if candidate.pool is None:
                continue
            pool = candidate.pool
            out.append(
                {
                    "lane": index,
                    "pending": len(pool),
                    "base_fee_wei": candidate.base_fee_wei,
                    "stats": dict(pool.stats),
                    "rejections": dict(pool.rejections),
                }
            )
        if not out:
            raise RpcError(UNSUPPORTED, "this node has no mempool attached")
        return {"lanes": out, "pending_total": sum(row["pending"] for row in out)}

    def fee_suggest(self, tip_gwei: float = 1.0, lane: int = 0) -> dict:
        """Wallet-style fee suggestion for one lane's current market."""
        _require(
            isinstance(tip_gwei, (int, float)) and not isinstance(tip_gwei, bool)
            and tip_gwei >= 0,
            "tip_gwei must be a non-negative number",
        )
        selected = self._lane_for(lane)
        if selected.pool is None:
            raise RpcError(UNSUPPORTED, "this node has no mempool attached")
        max_fee_gwei, priority_gwei = selected.pool.suggest_fees(tip_gwei)
        return {
            "lane": lane,
            "base_fee_wei": selected.base_fee_wei,
            "max_fee_gwei": max_fee_gwei,
            "priority_fee_gwei": priority_gwei,
        }

    # -- state ----------------------------------------------------------------

    def state_get(self, address: "str | None" = None) -> dict:
        """Balance/nonce (and reputation when hosted) for one account."""
        _require(
            address is None or isinstance(address, str), "address must be a string"
        )
        with self._quiesced():
            if address is None:
                return {
                    "total_supply_wei": sum(
                        lane.total_supply() for lane in self.lanes
                    ),
                    "fee_sink_wei": sum(lane.fee_sink for lane in self.lanes),
                    "burned_wei": sum(lane.burned for lane in self.lanes),
                    "height": self.explorer.height(),
                }
            lane_index = None
            if self.sharded:
                try:
                    lane_index = self.chain.lane_index_of_account(address)
                except KeyError:
                    lane_index = None
            result = {
                "address": address,
                "balance_wei": self.chain.balance_of(address),
                "nonce": max(lane.nonce_of(address) for lane in self.lanes),
                "lane": lane_index if self.sharded else 0,
                "reputation": None,
            }
        if self.lifecycle is not None:
            record = self.lifecycle.registry.providers.get(address)
            if record is not None:
                result["reputation"] = {
                    "score": record.score,
                    "stake_wei": record.stake_wei,
                    "passes": record.passes,
                    "fails": record.fails,
                    "banned": record.banned,
                }
        return result

    # -- audit layer -----------------------------------------------------------

    def audit_status(self) -> dict:
        """Where the audit pipeline stands: epochs settled, verdict totals."""
        if self.lifecycle is not None:
            engine = self.lifecycle
            summaries = engine.summaries
            return {
                "mode": "lifecycle",
                "epochs_run": engine.next_epoch - 1,
                "total_epochs": engine.config.total_epochs,
                "files_intact": engine.files_intact(),
                "accepted": sum(s.accepted for s in summaries),
                "rejected": sum(s.rejected for s in summaries),
                "repaired": engine.total_repairs,
                "evicted": engine.total_evictions,
                "providers_active": len(engine._active_providers()),
                "last_epoch": (
                    {
                        "epoch": summaries[-1].epoch,
                        "audits": summaries[-1].audits,
                        "accepted": summaries[-1].accepted,
                        "rejected": summaries[-1].rejected,
                    }
                    if summaries
                    else None
                ),
            }
        if self.aggregator is not None:
            settled = self.aggregator.settled
            return {
                "mode": "aggregator",
                "epochs_settled": len(settled),
                "lanes": sorted(self.aggregator.pipelines),
                "instances": {
                    str(lane_id): len(names)
                    for lane_id, names in sorted(self.aggregator.lane_names.items())
                },
                "accepted": sum(s.fabric.checkpoint.accepted for s in settled),
                "rejected": sum(s.fabric.checkpoint.rejected for s in settled),
                "last_epoch": settled[-1].epoch if settled else None,
            }
        raise RpcError(UNSUPPORTED, "no audit pipeline mounted on this node")

    def _settlement(self, epoch: "int | None"):
        if self.aggregator is None:
            raise RpcError(UNSUPPORTED, "no cross-shard aggregator mounted")
        settled = self.aggregator.settled
        if not settled:
            raise RpcError(NOT_FOUND, "no epoch settled yet")
        if epoch is None:
            return settled[-1]
        _require(
            isinstance(epoch, int) and not isinstance(epoch, bool),
            "epoch must be an integer",
        )
        try:
            return self.aggregator.settlement_for_epoch(epoch)
        except KeyError as exc:
            raise RpcError(NOT_FOUND, str(exc)) from exc

    def checkpoint_get(self, epoch: "int | None" = None) -> dict:
        """One fabric super-commitment (latest when ``epoch`` is omitted)."""
        settlement = self._settlement(epoch)
        checkpoint = settlement.fabric.checkpoint
        return {
            "epoch": checkpoint.epoch,
            "num_lanes": checkpoint.num_lanes,
            "accepted": checkpoint.accepted,
            "rejected": checkpoint.rejected,
            "num_leaves": checkpoint.num_leaves,
            "fabric_root": _hex(checkpoint.fabric_root),
            "lanes_digest": _hex(checkpoint.lanes_digest),
            "commitment": _hex(checkpoint.to_bytes()),
            "lanes": [
                {
                    "lane": lane_id,
                    "root": _hex(bundle.checkpoint.root),
                    "accepted": bundle.checkpoint.accepted,
                    "rejected": bundle.checkpoint.rejected,
                    "commitment": _hex(bundle.checkpoint.to_bytes()),
                }
                for lane_id, bundle in settlement.fabric.lanes
            ],
        }

    def fabric_proof_get(self, name, epoch: "int | None" = None) -> dict:
        """Two-stage inclusion proof of one file's round (leaf -> fabric).

        ``name`` is a Zp file identifier (~254 bits): decimal strings are
        accepted alongside integers, since JSON numbers that wide do not
        survive every client's number type.
        """
        if isinstance(name, str):
            try:
                name = int(name, 0)
            except ValueError:
                raise RpcError(INVALID_PARAMS, "name must be an integer") from None
        _require(
            isinstance(name, int) and not isinstance(name, bool),
            "name must be an integer",
        )
        settlement = self._settlement(epoch)
        try:
            proof = settlement.fabric.prove(name)
        except KeyError as exc:
            raise RpcError(NOT_FOUND, str(exc)) from exc
        return {
            "epoch": settlement.epoch,
            "name": str(proof.name),  # Zp ids overflow doubles; ship as string
            "lane_id": proof.lane_id,
            "lane_proof": _merkle_proof_object(proof.lane_proof),
            "leaf_proof": _merkle_proof_object(proof.leaf_proof),
            "verified": settlement.fabric.verify_inclusion(proof),
        }

    # -- data availability ------------------------------------------------------

    #: Per-request chunk-index cap for ``da_sample_get`` — generous next to
    #: the default sample budget (18) yet keeps one frame well under the
    #: transport's MAX_FRAME_BYTES.
    DA_SAMPLE_MAX_INDICES = 64

    def _settled_lane(self, settlement, lane):
        _require(
            isinstance(lane, int) and not isinstance(lane, bool),
            "lane must be an integer",
        )
        settled = settlement.lanes.get(lane)
        if settled is None:
            raise RpcError(
                NOT_FOUND,
                f"no lane {lane} in epoch {settlement.epoch} "
                f"(lanes: {sorted(settlement.lanes)})",
            )
        return settled

    def da_commitment_get(
        self, epoch: "int | None" = None, lane: "int | None" = None
    ) -> dict:
        """Per-lane DA commitments for one epoch (latest when omitted).

        Everything a sampling light client needs before its first fetch:
        the (n, k) extension, chunk size, and the 64-byte namespaced root
        it will verify every sampled chunk against.
        """
        settlement = self._settlement(epoch)
        if lane is None:
            lanes = sorted(settlement.lanes)
        else:
            self._settled_lane(settlement, lane)
            lanes = [lane]
        out = []
        for lane_id in lanes:
            settled = settlement.lanes[lane_id]
            if settled.da is None:
                continue
            commitment = settled.da.commitment
            out.append(
                {
                    "lane": lane_id,
                    "epoch": commitment.epoch,
                    "n": commitment.n,
                    "k": commitment.k,
                    "chunk_bytes": commitment.chunk_bytes,
                    "checkpoint_root": _hex(commitment.checkpoint_root),
                    "nmt_root": _hex(commitment.root.to_bytes()),
                    "commitment": _hex(commitment.to_bytes()),
                }
            )
        if not out:
            raise RpcError(
                UNSUPPORTED,
                "this aggregator settles without DA commitments "
                "(da_params unset)",
            )
        return {"epoch": settlement.epoch, "lanes": out}

    def da_sample_get(self, epoch: int, lane: int, indices: list) -> dict:
        """Serve sampled DA chunks with their NMT openings.

        The aggregator-side half of the sampling protocol: each requested
        index answers either ``{available: true, data, proof}`` or
        ``{available: false}`` — a withheld chunk is an *answer* (one the
        client counts against the aggregator), not an error.
        """
        _require(
            isinstance(epoch, int) and not isinstance(epoch, bool),
            "epoch must be an integer",
        )
        _require(isinstance(indices, list) and indices, "indices must be a non-empty array")
        _require(
            len(indices) <= self.DA_SAMPLE_MAX_INDICES,
            f"at most {self.DA_SAMPLE_MAX_INDICES} indices per request",
        )
        for index in indices:
            _require(
                isinstance(index, int) and not isinstance(index, bool)
                and index >= 0,
                "indices must be non-negative integers",
            )
        settlement = self._settlement(epoch)
        settled = self._settled_lane(settlement, lane)
        if settled.da is None:
            raise RpcError(
                UNSUPPORTED,
                "this aggregator settles without DA commitments "
                "(da_params unset)",
            )
        bundle = settled.da
        n = bundle.commitment.n
        _require(
            all(index < n for index in indices),
            f"chunk indices must be below n={n}",
        )
        chunks = []
        for index in indices:
            response = bundle.chunk_with_proof(index)
            if response is None:
                chunks.append({"index": index, "available": False})
            else:
                chunk, proof = response
                chunks.append(
                    {
                        "index": index,
                        "available": True,
                        "data": _hex(chunk),
                        "proof": proof.to_object(),
                    }
                )
        return {
            "epoch": settlement.epoch,
            "lane": lane,
            "n": n,
            "k": bundle.commitment.k,
            "chunks": chunks,
        }

    # -- explorer family -------------------------------------------------------

    def explorer_summary(self) -> dict:
        with self._quiesced():
            return {
                "height": self.explorer.height(),
                "transactions": self.explorer.transaction_count(),
                "chain_bytes": sum(lane.chain_bytes() for lane in self.lanes),
                "events": self.explorer.event_counts(),
                "num_lanes": len(self.lanes),
                "has_fee_market": self.explorer.has_fee_market,
            }

    def explorer_blocks(self, limit: int = 20) -> list:
        _require(
            isinstance(limit, int) and not isinstance(limit, bool) and limit >= 1,
            "limit must be a positive integer",
        )
        with self._quiesced():
            return self.explorer.block_summaries()[-limit:]

    def explorer_lanes(self) -> list:
        with self._quiesced():
            return [vars(summary) for summary in self.explorer.lane_summaries()]

    def explorer_fee_market(self) -> list:
        with self._quiesced():
            return [
                vars(summary) for summary in self.explorer.fee_market_summaries()
            ]

    def explorer_audits(self) -> list:
        with self._quiesced():
            return [
                {**vars(summary), "reject_reasons": list(summary.reject_reasons)}
                for summary in self.explorer.audit_contracts()
            ]

    def explorer_checkpoints(self) -> list:
        with self._quiesced():
            return [vars(summary) for summary in self.explorer.checkpoint_contracts()]

    def explorer_events(self, name: "str | None" = None, limit: int = 50) -> list:
        _require(
            name is None or isinstance(name, str), "name must be a string or null"
        )
        _require(
            isinstance(limit, int) and not isinstance(limit, bool) and limit >= 1,
            "limit must be a positive integer",
        )
        with self._quiesced():
            return self.explorer.event_log(name)[-limit:]

    # -- block production -------------------------------------------------------

    def mine(self, blocks: int = 1) -> dict:
        """Mine ``blocks`` lockstep ticks (drains every lane's pool)."""
        _require(
            isinstance(blocks, int) and not isinstance(blocks, bool)
            and 1 <= blocks <= 10_000,
            "blocks must be an integer in [1, 10000]",
        )
        with self._mine_lock:
            for _ in range(blocks):
                self.chain.mine_block()
        return {
            "mined": blocks,
            "height": self.explorer.height(),
            "pending_total": self._pending_total(),
        }

    def _pending_total(self) -> int:
        return sum(
            len(lane.pool) for lane in self.lanes if lane.pool is not None
        )

    def node_status(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "num_lanes": len(self.lanes),
            "sharded": self.sharded,
            "concurrent": bool(getattr(self.chain, "concurrent", False)),
            "height": self.explorer.height(),
            "pending_total": self._pending_total(),
            "aggregator": self.aggregator is not None,
            "lifecycle": self.lifecycle is not None,
            "auto_mine": self._miner_thread is not None,
        }

    # -- background miner (soak / serve mode) ----------------------------------

    def start_auto_mine(self, interval: float = 0.05) -> None:
        """Mine on a timer so submitted traffic keeps settling."""
        if self._miner_thread is not None:
            return
        self._miner_stop.clear()

        def loop() -> None:
            while not self._miner_stop.wait(interval):
                with self._mine_lock:
                    self.chain.mine_block()

        self._miner_thread = threading.Thread(
            target=loop, name="auto-mine", daemon=True
        )
        self._miner_thread.start()

    def stop_auto_mine(self) -> None:
        if self._miner_thread is None:
            return
        self._miner_stop.set()
        self._miner_thread.join()
        self._miner_thread = None
