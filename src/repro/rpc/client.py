"""Blocking JSON-RPC client over the newline-framed TCP transport.

One :class:`RpcClient` wraps one persistent socket; calls serialize on an
internal lock, so a client instance can be shared — but the soak and
concurrency tests give every worker thread its own client, which is the
intended production shape (one connection per session).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any

from .codec import JSONRPC_VERSION, MAX_FRAME_BYTES


class RpcClientError(RuntimeError):
    """The server answered with a JSON-RPC error object."""

    def __init__(self, error: dict):
        super().__init__(f"[{error.get('code')}] {error.get('message')}")
        self.code = error.get("code")
        self.data = error.get("data")


class RpcTransportError(RuntimeError):
    """The connection died or the server broke framing."""


class RpcClient:
    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------

    def _roundtrip(self, payload: Any) -> Any:
        frame = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        with self._lock:
            try:
                self._file.write(frame)
                self._file.flush()
                line = self._file.readline(MAX_FRAME_BYTES + 2)
            except (ConnectionError, OSError) as exc:
                raise RpcTransportError(str(exc)) from exc
        if not line:
            raise RpcTransportError("server closed the connection")
        try:
            return json.loads(line)
        except ValueError as exc:
            raise RpcTransportError(f"unparseable response frame: {exc}") from exc

    def _request(self, method: str, params: Any) -> dict:
        self._next_id += 1
        request: dict[str, Any] = {
            "jsonrpc": JSONRPC_VERSION,
            "id": self._next_id,
            "method": method,
        }
        if params is not None:
            request["params"] = params
        return request

    # -- public surface ------------------------------------------------------

    def call_raw(self, method: str, params: Any = None) -> dict:
        """One call, returning the full response object (result or error)."""
        return self._roundtrip(self._request(method, params))

    def call(self, method: str, params: Any = None) -> Any:
        """One call, returning ``result`` (raises RpcClientError on error)."""
        response = self.call_raw(method, params)
        if "error" in response:
            raise RpcClientError(response["error"])
        return response.get("result")

    def notify(self, method: str, params: Any = None) -> None:
        """Fire-and-forget (no id, so the server sends no response)."""
        request = self._request(method, params)
        del request["id"]
        frame = json.dumps(request, separators=(",", ":")).encode() + b"\n"
        with self._lock:
            try:
                self._file.write(frame)
                self._file.flush()
            except (ConnectionError, OSError) as exc:
                raise RpcTransportError(str(exc)) from exc

    def batch(self, calls: "list[tuple[str, Any]]") -> list:
        """One batch frame; returns the response list (order per server)."""
        requests = [self._request(method, params) for method, params in calls]
        return self._roundtrip(requests)

    def send_raw_line(self, raw: bytes) -> bytes:
        """Ship arbitrary bytes as one frame (the fuzz harness's entry)."""
        if not raw.endswith(b"\n"):
            raw += b"\n"
        with self._lock:
            try:
                self._file.write(raw)
                self._file.flush()
                return self._file.readline(MAX_FRAME_BYTES + 2)
            except (ConnectionError, OSError) as exc:
                raise RpcTransportError(str(exc)) from exc
