"""Long-lived JSON-RPC 2.0 audit service: the network face of the stack.

The first layer where "clients" means sockets instead of in-process
calls.  A :class:`~repro.rpc.node.ServiceNode` wraps a chain (or sharded
fabric, optionally with the cross-shard aggregator and the lifecycle
engine mounted), a :class:`~repro.rpc.service.RpcDispatcher` routes and
meters methods, and :class:`~repro.rpc.server.RpcTcpServer` serves them
over newline-delimited JSON frames — stdlib only, one daemon thread per
connection, structured errors mirroring the mempool's admission taxonomy.

``python -m repro serve`` hosts it from the CLI; the protocol (method and
error tables, wire framing) is specified in ``docs/PROTOCOL.md``
section 12, and the concurrency/soak/differential test layer lives under
``tests/rpc/``.
"""

from .client import RpcClient, RpcClientError, RpcTransportError
from .codec import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    MAX_BATCH_ITEMS,
    MAX_FRAME_BYTES,
    METHOD_NOT_FOUND,
    NOT_FOUND,
    PARSE_ERROR,
    REJECTION_RPC_CODES,
    UNSUPPORTED,
    RpcError,
    decode_frame,
    encode_error,
    encode_frame,
    encode_result,
    rejection_error,
    validate_request,
)
from .node import SERVICE_METHODS, ServiceNode
from .server import RpcTcpServer, probe
from .service import RpcDispatcher

__all__ = [
    "INTERNAL_ERROR",
    "INVALID_PARAMS",
    "INVALID_REQUEST",
    "MAX_BATCH_ITEMS",
    "MAX_FRAME_BYTES",
    "METHOD_NOT_FOUND",
    "NOT_FOUND",
    "PARSE_ERROR",
    "REJECTION_RPC_CODES",
    "RpcClient",
    "RpcClientError",
    "RpcDispatcher",
    "RpcError",
    "RpcTcpServer",
    "RpcTransportError",
    "SERVICE_METHODS",
    "ServiceNode",
    "UNSUPPORTED",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "encode_result",
    "probe",
    "rejection_error",
    "validate_request",
]
