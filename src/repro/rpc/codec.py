"""JSON-RPC 2.0 request/response codec for the audit service.

Wire format: newline-delimited UTF-8 JSON frames over a stream transport
(one request object — or one batch array — per line).  The codec is
transport-agnostic: it turns raw frame bytes into validated
``(method, params, id)`` triples and structured error objects, and the
server/dispatcher layers never touch JSON themselves.

Error space (see ``docs/PROTOCOL.md`` section 12):

* the four JSON-RPC 2.0 standard codes (parse / invalid request / method
  not found / invalid params) plus ``-32603`` internal error,
* the application range ``-32000..-32099`` mirrors the mempool's
  admission-rejection taxonomy one-to-one
  (:data:`REJECTION_RPC_CODES`), so a client can tell "resubmit with a
  higher tip" (``underpriced``) from "fill the nonce gap first"
  (``nonce-gap``) without string-matching messages.

Every malformed frame — truncated JSON, wrong-typed ``id``, oversized
payload, batches nested in batches — maps to a structured error response,
never to a dropped connection or a traceback (fuzz-tested with 500+
seeded cases in ``tests/rpc/test_codec_fuzz.py``).
"""

from __future__ import annotations

import json
from typing import Any

JSONRPC_VERSION = "2.0"

# -- standard JSON-RPC 2.0 codes --------------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- application codes (-32000..-32099): the admission taxonomy -------------
#: mempool rejection ``code`` string -> JSON-RPC application error code.
REJECTION_RPC_CODES: dict[str, int] = {
    "rejected": -32000,               # MempoolRejection base (catch-all)
    "pool-full": -32001,
    "underpriced": -32002,
    "nonce-too-low": -32003,
    "nonce-gap": -32004,
    "nonce-occupied": -32005,
    "replacement-underpriced": -32006,
    "sender-limit": -32007,
    "insufficient-funds": -32008,
}
#: Requested entity (epoch, settlement, account, proof) does not exist.
NOT_FOUND = -32010
#: The node is not configured for this method (no mempool, no aggregator).
UNSUPPORTED = -32011

#: Hard cap on one frame (request line) and on an encoded params payload.
#: A line longer than this is rejected *before* json.loads ever runs, so
#: a hostile client cannot make the service buffer unbounded input.
MAX_FRAME_BYTES = 1_000_000
#: Batches beyond this length are refused as one invalid-request error.
MAX_BATCH_ITEMS = 256

_ERROR_NAMES = {
    PARSE_ERROR: "parse error",
    INVALID_REQUEST: "invalid request",
    METHOD_NOT_FOUND: "method not found",
    INVALID_PARAMS: "invalid params",
    INTERNAL_ERROR: "internal error",
    NOT_FOUND: "not found",
    UNSUPPORTED: "unsupported",
}


class RpcError(Exception):
    """A structured JSON-RPC error: raised by handlers, encoded on the wire."""

    def __init__(self, code: int, message: str = "", data: Any = None):
        super().__init__(message or _ERROR_NAMES.get(code, "error"))
        self.code = code
        self.message = message or _ERROR_NAMES.get(code, "error")
        self.data = data

    def to_object(self) -> dict:
        error: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.data is not None:
            error["data"] = self.data
        return error


def rejection_error(rejection) -> RpcError:
    """Map a :class:`~repro.chain.mempool.MempoolRejection` onto the wire.

    The rejection's ``code`` string travels in ``error.data.reason`` so
    clients can switch on the taxonomy without hard-coding numeric codes.
    """
    code = REJECTION_RPC_CODES.get(
        getattr(rejection, "code", "rejected"), REJECTION_RPC_CODES["rejected"]
    )
    return RpcError(
        code, str(rejection), data={"reason": getattr(rejection, "code", "rejected")}
    )


def _valid_id(request_id: Any) -> bool:
    # The spec allows String, Number and Null.  bool is an int subclass in
    # Python, so it must be excluded explicitly — `"id": true` is a
    # wrong-typed id, not request id 1.
    if request_id is None or isinstance(request_id, str):
        return True
    return isinstance(request_id, (int, float)) and not isinstance(request_id, bool)


def decode_frame(raw: bytes | str) -> Any:
    """One wire frame -> parsed JSON value (dict or batch list).

    Raises :class:`RpcError` with ``PARSE_ERROR`` for oversized or
    syntactically invalid frames.
    """
    if isinstance(raw, str):
        raw = raw.encode("utf-8", errors="replace")
    if len(raw) > MAX_FRAME_BYTES:
        raise RpcError(
            PARSE_ERROR,
            f"frame exceeds {MAX_FRAME_BYTES} bytes",
            data={"frame_bytes": len(raw)},
        )
    try:
        return json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise RpcError(PARSE_ERROR, f"invalid JSON: {exc}") from exc


def validate_request(obj: Any) -> tuple[str, Any, Any, bool]:
    """One request object -> ``(method, params, id, is_notification)``.

    Raises :class:`RpcError` (``INVALID_REQUEST``) on structural
    violations; method *existence* is the dispatcher's concern.
    """
    if not isinstance(obj, dict):
        raise RpcError(
            INVALID_REQUEST,
            "request must be an object"
            + (" (batch-in-batch is not allowed)" if isinstance(obj, list) else ""),
        )
    if obj.get("jsonrpc") != JSONRPC_VERSION:
        raise RpcError(INVALID_REQUEST, 'missing or wrong "jsonrpc" (need "2.0")')
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise RpcError(INVALID_REQUEST, '"method" must be a non-empty string')
    is_notification = "id" not in obj
    request_id = obj.get("id")
    if not is_notification and not _valid_id(request_id):
        raise RpcError(INVALID_REQUEST, '"id" must be a string, number or null')
    params = obj.get("params", {})
    if not isinstance(params, (list, dict)):
        raise RpcError(INVALID_REQUEST, '"params" must be an array or object')
    extra = set(obj) - {"jsonrpc", "method", "params", "id"}
    if extra:
        raise RpcError(
            INVALID_REQUEST, f"unexpected members: {sorted(extra)[:4]}"
        )
    if len(json.dumps(params)) > MAX_FRAME_BYTES // 2:
        raise RpcError(INVALID_PARAMS, "params payload too large")
    return method, params, request_id, is_notification


def encode_result(request_id: Any, result: Any) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def encode_error(request_id: Any, error: RpcError) -> dict:
    # A request whose id could not even be parsed answers with id null.
    if not _valid_id(request_id):
        request_id = None
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error.to_object()}


def encode_frame(payload: Any) -> bytes:
    """One response value -> one newline-terminated wire frame."""
    return json.dumps(payload, separators=(",", ":"), default=str).encode() + b"\n"
