"""Threaded TCP transport for the JSON-RPC audit service.

Stdlib only (:mod:`socketserver`): one daemon thread per connection, one
newline-delimited JSON frame per request (or batch).  Connections are
persistent — a client holds its socket open and pipelines requests — and
the listener backlog is sized for the soak tests' 1000+ concurrent
clients.

The transport enforces exactly one policy of its own: a line longer than
:data:`~repro.rpc.codec.MAX_FRAME_BYTES` is answered with a structured
parse error and the connection is closed (the alternative — buffering an
unbounded line — is a memory DoS).  Everything else, including every
malformed frame, is the codec/dispatcher's problem and always produces a
response frame.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from .codec import MAX_FRAME_BYTES, PARSE_ERROR, RpcError, encode_error, encode_frame
from .service import RpcDispatcher


class _RpcConnectionHandler(socketserver.StreamRequestHandler):
    # Bounded readline: +2 covers the newline so an exactly-MAX frame with
    # its terminator is not misclassified as oversized.
    rbufsize = -1

    def handle(self) -> None:
        dispatcher: RpcDispatcher = self.server.dispatcher  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(MAX_FRAME_BYTES + 2)
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed
            if len(line) > MAX_FRAME_BYTES and not line.endswith(b"\n"):
                # The line never terminated inside the cap: answer with a
                # structured error, then drop the connection — resyncing a
                # frame stream mid-line is not possible.
                error = RpcError(
                    PARSE_ERROR, f"frame exceeds {MAX_FRAME_BYTES} bytes"
                )
                self._send(encode_frame(encode_error(None, error)))
                return
            if not line.strip():
                continue  # bare newline keep-alive
            response = dispatcher.handle_raw(line)
            if response is not None and not self._send(response):
                return

    def _send(self, frame: bytes) -> bool:
        try:
            self.wfile.write(frame)
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


class RpcTcpServer(socketserver.ThreadingTCPServer):
    """``serve()`` in the foreground or ``serve_in_thread()`` for tests."""

    daemon_threads = True
    allow_reuse_address = True
    # The soak test opens >=1000 sockets in a burst; the default backlog
    # of 5 would refuse most of them before accept() ever runs.
    request_queue_size = 2048

    def __init__(self, dispatcher: RpcDispatcher, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _RpcConnectionHandler)
        self.dispatcher = dispatcher
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> "tuple[str, int]":
        host, port = self.socket.getsockname()[:2]
        return host, port

    def serve_in_thread(self) -> "tuple[str, int]":
        """Start accepting on a daemon thread; returns (host, port)."""
        self._thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="rpc-accept",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def probe(host: str, port: int, timeout: float = 2.0) -> bool:
    """True when a TCP connect to the service succeeds inside ``timeout``."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
