"""Method dispatcher: named handlers, error mapping, per-method metrics.

The dispatcher is the transport-independent core of the RPC service: the
TCP server (:mod:`repro.rpc.server`) hands it raw frame bytes, it returns
encoded response bytes (or ``None`` for notifications).  Handlers are
plain callables taking keyword arguments; positional (array) params are
bound left-to-right against the handler's signature.

Error contract — *every* failure becomes a structured JSON-RPC error:

* :class:`~repro.rpc.codec.RpcError` raised by a handler passes through,
* a :class:`~repro.chain.mempool.MempoolRejection` maps onto the
  application code taxonomy (:func:`~repro.rpc.codec.rejection_error`),
* ``TypeError`` from binding bad arguments maps to ``INVALID_PARAMS``,
* anything else maps to ``INTERNAL_ERROR`` carrying only the exception
  class name — tracebacks never cross the wire.

Metrics: every method accumulates ``{calls, errors, seconds}`` under a
lock, served by the built-in ``rpc_metrics`` method alongside the method
list (``rpc_methods``).
"""

from __future__ import annotations

import inspect
import threading
import time
from typing import Any, Callable

from .codec import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    MAX_BATCH_ITEMS,
    METHOD_NOT_FOUND,
    RpcError,
    decode_frame,
    encode_error,
    encode_frame,
    encode_result,
    rejection_error,
    validate_request,
)


class RpcDispatcher:
    """Routes validated requests to registered handlers and meters them."""

    def __init__(self):
        self._methods: dict[str, Callable] = {}
        self._metrics: dict[str, dict[str, float]] = {}
        self._metrics_lock = threading.Lock()
        self.register("rpc_methods", self._rpc_methods)
        self.register("rpc_metrics", self._rpc_metrics)

    # -- registry ------------------------------------------------------------

    def register(self, name: str, handler: Callable) -> None:
        if name in self._methods:
            raise ValueError(f"method {name!r} already registered")
        self._methods[name] = handler
        self._metrics[name] = {"calls": 0, "errors": 0, "seconds": 0.0}

    def register_namespace(self, obj: Any, names: "list[str]") -> None:
        """Register ``obj.<name>`` for every name (the ServiceNode hookup)."""
        for name in names:
            self.register(name, getattr(obj, name))

    def methods(self) -> list[str]:
        return sorted(self._methods)

    # -- built-ins -----------------------------------------------------------

    def _rpc_methods(self) -> list[str]:
        return self.methods()

    def _rpc_metrics(self) -> dict:
        with self._metrics_lock:
            return {
                name: dict(stats)
                for name, stats in sorted(self._metrics.items())
                if stats["calls"]
            }

    # -- dispatch ------------------------------------------------------------

    def _record(self, method: str, seconds: float, failed: bool) -> None:
        with self._metrics_lock:
            stats = self._metrics.get(method)
            if stats is None:
                return
            stats["calls"] += 1
            stats["seconds"] += seconds
            if failed:
                stats["errors"] += 1

    def _invoke(self, method: str, params: Any) -> Any:
        handler = self._methods.get(method)
        if handler is None:
            raise RpcError(METHOD_NOT_FOUND, f"unknown method {method!r}")
        try:
            if isinstance(params, dict):
                return handler(**params)
            return handler(*params)
        except RpcError:
            raise
        except TypeError as exc:
            # Distinguish a bad binding (caller's fault) from a TypeError
            # raised deeper in the handler body (the service's fault).
            try:
                if isinstance(params, dict):
                    inspect.signature(handler).bind(**params)
                else:
                    inspect.signature(handler).bind(*params)
            except TypeError:
                raise RpcError(INVALID_PARAMS, str(exc)) from exc
            raise

    def handle_request(self, obj: Any) -> "dict | None":
        """One request object -> one response object (None = notification)."""
        method = "?"
        request_id: Any = None
        t0 = time.perf_counter()
        try:
            method, params, request_id, is_notification = validate_request(obj)
            result = self._invoke(method, params)
            response = (
                None if is_notification else encode_result(request_id, result)
            )
            self._record(method, time.perf_counter() - t0, failed=False)
            return response
        except RpcError as exc:
            self._record(method, time.perf_counter() - t0, failed=True)
            return encode_error(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — the wire must never see a traceback
            if _is_rejection(exc):
                error = rejection_error(exc)
            else:
                error = RpcError(
                    INTERNAL_ERROR,
                    "internal error",
                    data={"exception": type(exc).__name__},
                )
            self._record(method, time.perf_counter() - t0, failed=True)
            return encode_error(request_id, error)

    def handle_raw(self, raw: bytes) -> "bytes | None":
        """One wire frame in, one wire frame out (None: all notifications)."""
        try:
            parsed = decode_frame(raw)
        except RpcError as exc:
            return encode_frame(encode_error(None, exc))
        if isinstance(parsed, list):
            if not parsed:
                return encode_frame(
                    encode_error(None, RpcError(-32600, "empty batch"))
                )
            if len(parsed) > MAX_BATCH_ITEMS:
                return encode_frame(
                    encode_error(
                        None,
                        RpcError(
                            -32600,
                            f"batch exceeds {MAX_BATCH_ITEMS} requests",
                            data={"batch_items": len(parsed)},
                        ),
                    )
                )
            responses = [
                response
                for response in (self.handle_request(item) for item in parsed)
                if response is not None
            ]
            return encode_frame(responses) if responses else None
        response = self.handle_request(parsed)
        return None if response is None else encode_frame(response)


def _is_rejection(exc: Exception) -> bool:
    # Imported lazily so the dispatcher stays usable without the chain
    # package on the import path (e.g. codec-only fuzz harnesses).
    try:
        from ..chain.mempool import MempoolRejection
    except ImportError:  # pragma: no cover
        return False
    return isinstance(exc, MempoolRejection)
