"""Method dispatcher: named handlers, error mapping, per-method metrics.

The dispatcher is the transport-independent core of the RPC service: the
TCP server (:mod:`repro.rpc.server`) hands it raw frame bytes, it returns
encoded response bytes (or ``None`` for notifications).  Handlers are
plain callables taking keyword arguments; positional (array) params are
bound left-to-right against the handler's signature.

Error contract — *every* failure becomes a structured JSON-RPC error:

* :class:`~repro.rpc.codec.RpcError` raised by a handler passes through,
* a :class:`~repro.chain.mempool.MempoolRejection` maps onto the
  application code taxonomy (:func:`~repro.rpc.codec.rejection_error`),
* ``TypeError`` from binding bad arguments maps to ``INVALID_PARAMS``,
* anything else maps to ``INTERNAL_ERROR`` carrying only the exception
  class name — tracebacks never cross the wire.

Metrics: every method is metered through :mod:`repro.obs` registry
instruments — ``rpc_requests_total`` / ``rpc_errors_total`` counters and
an ``rpc_request_seconds`` histogram, all labelled by method.  The
built-in ``rpc_metrics`` method keeps its historical per-method
``{calls, errors, seconds}`` keys (computed from those instruments) and
now adds ``mean`` / ``p50`` / ``p95`` / ``p99`` estimated from the fixed
histogram buckets.  ``metrics_get`` exposes the whole registry snapshot
and ``trace_get`` the span trees of an attached tracer.

By default each dispatcher meters into its own private
:class:`~repro.obs.registry.MetricsRegistry` (so concurrent dispatchers
and test fixtures stay isolated); ``repro serve`` passes the process-wide
registry so RPC metrics land beside the mempool/fabric/engine/lifecycle
instruments in one Prometheus exposition.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Callable

from ..obs.registry import MetricsRegistry
from ..obs.tracing import Tracer
from .codec import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    MAX_BATCH_ITEMS,
    METHOD_NOT_FOUND,
    RpcError,
    decode_frame,
    encode_error,
    encode_frame,
    encode_result,
    rejection_error,
    validate_request,
)


class RpcDispatcher:
    """Routes validated requests to registered handlers and meters them."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self._methods: dict[str, Callable] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._requests = self.registry.counter(
            "rpc_requests_total", "JSON-RPC requests handled", ("method",)
        )
        self._errors = self.registry.counter(
            "rpc_errors_total", "JSON-RPC requests that returned an error", ("method",)
        )
        self._latency = self.registry.histogram(
            "rpc_request_seconds", "JSON-RPC per-request handler latency", ("method",)
        )
        self.register("rpc_methods", self._rpc_methods)
        self.register("rpc_metrics", self._rpc_metrics)
        self.register("metrics_get", self._metrics_get)
        self.register("trace_get", self._trace_get)

    # -- registry ------------------------------------------------------------

    def register(self, name: str, handler: Callable) -> None:
        if name in self._methods:
            raise ValueError(f"method {name!r} already registered")
        self._methods[name] = handler

    def register_namespace(self, obj: Any, names: "list[str]") -> None:
        """Register ``obj.<name>`` for every name (the ServiceNode hookup)."""
        for name in names:
            self.register(name, getattr(obj, name))

    def methods(self) -> list[str]:
        return sorted(self._methods)

    # -- built-ins -----------------------------------------------------------

    def _rpc_methods(self) -> list[str]:
        return self.methods()

    def _rpc_metrics(self) -> dict:
        """Per-method metrics: historical keys plus histogram quantiles.

        ``calls``/``errors``/``seconds`` keep their pre-registry meaning;
        ``mean``/``p50``/``p95``/``p99`` come from the latency histogram.
        """
        out: dict[str, dict[str, float]] = {}
        for (key, child) in self._latency.children():
            if not child.count:
                continue
            method = key[0]
            out[method] = {
                "calls": int(self._requests.labels(method).value),
                "errors": int(self._errors.labels(method).value),
                "seconds": child.sum,
                "mean": child.sum / child.count,
                "p50": child.quantile(0.50),
                "p95": child.quantile(0.95),
                "p99": child.quantile(0.99),
            }
        return dict(sorted(out.items()))

    def _metrics_get(self) -> dict:
        """The full registry snapshot (all layers when serve shares one)."""
        return self.registry.snapshot()

    def _trace_get(self, last: int = 8) -> dict:
        """Span trees from the attached tracer (empty when none attached)."""
        if self.tracer is None:
            return {"enabled": False, "spans": 0, "roots": []}
        return {
            "enabled": self.tracer.enabled,
            "deterministic": self.tracer.deterministic,
            "spans": self.tracer.span_count,
            "digest": self.tracer.digest(),
            "roots": self.tracer.tree_dicts(last=max(0, int(last))),
        }

    # -- dispatch ------------------------------------------------------------

    def _record(self, method: str, seconds: float, failed: bool) -> None:
        if method not in self._methods:
            return
        self._requests.labels(method).inc()
        self._latency.labels(method).observe(seconds)
        if failed:
            self._errors.labels(method).inc()

    def _invoke(self, method: str, params: Any) -> Any:
        handler = self._methods.get(method)
        if handler is None:
            raise RpcError(METHOD_NOT_FOUND, f"unknown method {method!r}")
        try:
            if isinstance(params, dict):
                return handler(**params)
            return handler(*params)
        except RpcError:
            raise
        except TypeError as exc:
            # Distinguish a bad binding (caller's fault) from a TypeError
            # raised deeper in the handler body (the service's fault).
            try:
                if isinstance(params, dict):
                    inspect.signature(handler).bind(**params)
                else:
                    inspect.signature(handler).bind(*params)
            except TypeError:
                raise RpcError(INVALID_PARAMS, str(exc)) from exc
            raise

    def handle_request(self, obj: Any) -> "dict | None":
        """One request object -> one response object (None = notification)."""
        method = "?"
        request_id: Any = None
        t0 = time.perf_counter()
        try:
            method, params, request_id, is_notification = validate_request(obj)
            result = self._invoke(method, params)
            response = (
                None if is_notification else encode_result(request_id, result)
            )
            self._record(method, time.perf_counter() - t0, failed=False)
            return response
        except RpcError as exc:
            self._record(method, time.perf_counter() - t0, failed=True)
            return encode_error(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — the wire must never see a traceback
            if _is_rejection(exc):
                error = rejection_error(exc)
            else:
                error = RpcError(
                    INTERNAL_ERROR,
                    "internal error",
                    data={"exception": type(exc).__name__},
                )
            self._record(method, time.perf_counter() - t0, failed=True)
            return encode_error(request_id, error)

    def handle_raw(self, raw: bytes) -> "bytes | None":
        """One wire frame in, one wire frame out (None: all notifications)."""
        try:
            parsed = decode_frame(raw)
        except RpcError as exc:
            return encode_frame(encode_error(None, exc))
        if isinstance(parsed, list):
            if not parsed:
                return encode_frame(
                    encode_error(None, RpcError(-32600, "empty batch"))
                )
            if len(parsed) > MAX_BATCH_ITEMS:
                return encode_frame(
                    encode_error(
                        None,
                        RpcError(
                            -32600,
                            f"batch exceeds {MAX_BATCH_ITEMS} requests",
                            data={"batch_items": len(parsed)},
                        ),
                    )
                )
            responses = [
                response
                for response in (self.handle_request(item) for item in parsed)
                if response is not None
            ]
            return encode_frame(responses) if responses else None
        response = self.handle_request(parsed)
        return None if response is None else encode_frame(response)


def _is_rejection(exc: Exception) -> bool:
    # Imported lazily so the dispatcher stays usable without the chain
    # package on the import path (e.g. codec-only fuzz harnesses).
    try:
        from ..chain.mempool import MempoolRejection
    except ImportError:  # pragma: no cover
        return False
    return isinstance(exc, MempoolRejection)
