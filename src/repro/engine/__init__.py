"""Parallel audit engine: multi-tenant auditing as fast as the hardware allows.

The per-proof library in :mod:`repro.core` answers one challenge at a time;
this package turns it into an auditing *service*:

* :mod:`repro.engine.tasks` — picklable encodings of audit state and work,
* :mod:`repro.engine.executor` — a process-pool executor fanning
  independent audit instances across cores, each worker holding a shared
  :class:`~repro.crypto.bn254.PrecomputeCache` of fixed-base tables,
* :mod:`repro.engine.scheduler` — beacon-driven epochs whose proofs land in
  the one-final-exponentiation grouped batch verifier.

See ``docs/ARCHITECTURE.md`` for where this layer sits and
``benchmarks/bench_parallel_engine.py`` for the measured speedup over the
sequential per-proof path.
"""

from .executor import AuditExecutor
from .scheduler import EpochResult, EpochScheduler
from .tasks import (
    AuditInstance,
    BatchVerifyResult,
    BatchVerifyTask,
    ProveOutcome,
    ProveTask,
    VerifyTask,
)

__all__ = [
    "AuditExecutor",
    "AuditInstance",
    "BatchVerifyResult",
    "BatchVerifyTask",
    "EpochResult",
    "EpochScheduler",
    "ProveOutcome",
    "ProveTask",
    "VerifyTask",
]
