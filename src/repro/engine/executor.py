"""Process-pool prover/verifier executor.

Fans independent audit instances out across CPU cores.  The pool is primed
once with every registered :class:`~repro.engine.tasks.AuditInstance`
(worker initializer), after which each round ships only 48-byte challenges
out and 288-byte proofs back.  Every worker owns one
:class:`~repro.crypto.bn254.PrecomputeCache`, so fixed-base tables — the
powers-of-alpha MSM windows, the per-owner GT contexts, the per-file digest
points — are built once per worker and reused for every audit it executes.

With ``workers == 1`` (or on a single-core host) the executor runs inline
in the calling process with the identical code path and cache: results are
byte-for-byte the same, only the transport differs.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from ..core.batch import BatchItem, verify_batch_grouped
from ..core.prover import Prover
from ..core.verifier import Verifier, VerifyOutcome
from ..crypto.bn254 import PrecomputeCache, PrecomputeStore
from .tasks import (
    AuditInstance,
    BatchVerifyResult,
    BatchVerifyTask,
    ProveOutcome,
    ProveTask,
    VerifyTask,
)


class _AuditRuntime:
    """Provers/verifiers for the registered instances over one shared cache.

    Built once per worker process (and once in the parent for inline mode).
    """

    def __init__(
        self,
        instances: Sequence[AuditInstance],
        window: int = 4,
        cache_dir: str | None = None,
    ):
        store = PrecomputeStore(cache_dir) if cache_dir else None
        self.cache = PrecomputeCache(window=window, store=store)
        self.instances: dict[int, AuditInstance] = {
            instance.name: instance for instance in instances
        }
        self.provers: dict[int, Prover] = {}
        self.verifiers: dict[int, Verifier] = {}
        for instance in instances:
            self.provers[instance.name] = Prover(
                instance.chunked,
                instance.public,
                list(instance.authenticators),
                precompute=self.cache,
            )
            self.verifiers[instance.name] = Verifier(
                instance.public,
                instance.name,
                instance.num_chunks,
                precompute=self.cache,
            )

    def prove(self, task: ProveTask) -> ProveOutcome:
        from ..core.prover import ProveReport

        prover = self.provers.get(task.name)
        if prover is None:
            raise KeyError(f"no audit instance registered for file {task.name}")
        prover._rng = task.rng()  # pin the Sigma nonce to the task's seed
        report = ProveReport()
        proof = prover.respond_private(task.challenge(), report)
        return ProveOutcome(
            name=task.name,
            proof_bytes=proof.to_bytes(),
            zp_seconds=report.zp_seconds,
            ecc_seconds=report.ecc_seconds,
            privacy_seconds=report.privacy_seconds,
        )

    def verify(self, task: VerifyTask) -> VerifyOutcome:
        verifier = self.verifiers.get(task.name)
        if verifier is None:
            raise KeyError(f"no audit instance registered for file {task.name}")
        return verifier.verify_private(task.challenge(), task.proof())

    def verify_batch(self, task: BatchVerifyTask) -> BatchVerifyResult:
        """Run one whole-batch check; pinpoint in place when it fails."""
        from ..core.proof import PrivateProof

        items = []
        for name, challenge_bytes, proof_bytes in task.entries:
            instance = self.instances.get(name)
            if instance is None:
                raise KeyError(f"no audit instance registered for file {name}")
            items.append(
                BatchItem(
                    public=instance.public,
                    name=name,
                    num_chunks=instance.num_chunks,
                    challenge=task.challenge_for(challenge_bytes),
                    proof=PrivateProof.from_bytes(proof_bytes),
                )
            )
        outcome = verify_batch_grouped(
            items, rng=task.rng(), precompute=self.cache
        )
        return BatchVerifyResult(
            ok=outcome.ok,
            checked=outcome.checked,
            mode=outcome.mode,
            failures=outcome.pinpoint(self.cache),
        )


# Worker-process globals (set by the pool initializer).
_RUNTIME: _AuditRuntime | None = None


def _init_worker(
    instances: list[AuditInstance], window: int, cache_dir: str | None
) -> None:
    global _RUNTIME
    _RUNTIME = _AuditRuntime(instances, window=window, cache_dir=cache_dir)


def _prove_in_worker(task: ProveTask) -> ProveOutcome:
    assert _RUNTIME is not None, "worker initializer did not run"
    return _RUNTIME.prove(task)


def _verify_in_worker(task: VerifyTask) -> VerifyOutcome:
    assert _RUNTIME is not None, "worker initializer did not run"
    return _RUNTIME.verify(task)


def _verify_batch_in_worker(task: BatchVerifyTask) -> BatchVerifyResult:
    assert _RUNTIME is not None, "worker initializer did not run"
    return _RUNTIME.verify_batch(task)


class AuditExecutor:
    """Executes prove/verify tasks for a registered fleet of audits.

    ``workers=0`` (the default) resolves to the host's CPU count.  The
    process pool is created lazily on the first multi-worker call, so an
    executor used inline never forks.
    """

    def __init__(
        self,
        instances: Iterable[AuditInstance],
        workers: int = 0,
        window: int = 4,
        cache_dir: str | None = None,
    ):
        self.instances: dict[int, AuditInstance] = {}
        for instance in instances:
            if instance.name in self.instances:
                raise ValueError(f"duplicate audit instance {instance.name}")
            self.instances[instance.name] = instance
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU core)")
        self.workers = workers or os.cpu_count() or 1
        self.window = window
        # Optional persistent precompute directory: every runtime (inline
        # and each pool worker) loads tables from — and writes fresh builds
        # to — the same store, so table work is shared across processes and
        # survives restarts.
        self.cache_dir = cache_dir
        self._pool: ProcessPoolExecutor | None = None
        self._inline: _AuditRuntime | None = None
        # Concurrent lane workers share one executor: pool creation and
        # teardown must be atomic (ProcessPoolExecutor itself is
        # thread-safe once built).
        self._pool_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "AuditExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._invalidate_pool()

    # -- dynamic fleets (lifecycle engine: repair swaps instances) -----------

    def register(self, instance: AuditInstance) -> None:
        """Add one audit instance to a live executor.

        The inline runtime gains its prover/verifier immediately; a warm
        process pool is torn down so the next fan-out call re-primes the
        workers with the updated fleet.
        """
        if instance.name in self.instances:
            raise ValueError(f"duplicate audit instance {instance.name}")
        self.instances[instance.name] = instance
        if self._inline is not None:
            self._inline.instances[instance.name] = instance
            self._inline.provers[instance.name] = Prover(
                instance.chunked,
                instance.public,
                list(instance.authenticators),
                precompute=self._inline.cache,
            )
            self._inline.verifiers[instance.name] = Verifier(
                instance.public,
                instance.name,
                instance.num_chunks,
                precompute=self._inline.cache,
            )
        self._invalidate_pool()

    def unregister(self, name: int) -> None:
        """Drop one audit instance (e.g. its shard migrated to a new key)."""
        if name not in self.instances:
            raise KeyError(f"no audit instance registered for file {name}")
        del self.instances[name]
        if self._inline is not None:
            self._inline.instances.pop(name, None)
            self._inline.provers.pop(name, None)
            self._inline.verifiers.pop(name, None)
        self._invalidate_pool()

    def _invalidate_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    @property
    def runtime(self) -> _AuditRuntime:
        """The parent-process runtime (inline mode's state, lazily built)."""
        if self._inline is None:
            self._inline = _AuditRuntime(
                list(self.instances.values()),
                window=self.window,
                cache_dir=self.cache_dir,
            )
        return self._inline

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(
                        list(self.instances.values()),
                        self.window,
                        self.cache_dir,
                    ),
                )
            return self._pool

    def _chunksize(self, count: int) -> int:
        return max(1, count // (4 * self.workers))

    # -- execution ----------------------------------------------------------

    def prove(self, tasks: Sequence[ProveTask]) -> list[ProveOutcome]:
        """Run every prove task, order-preserving."""
        if self.workers == 1:
            return [self.runtime.prove(task) for task in tasks]
        pool = self._ensure_pool()
        return list(
            pool.map(_prove_in_worker, tasks, chunksize=self._chunksize(len(tasks)))
        )

    def verify(self, tasks: Sequence[VerifyTask]) -> list[VerifyOutcome]:
        """Run individual Eq.-(2) checks, order-preserving.

        The epoch scheduler prefers
        :func:`~repro.core.batch.verify_batch_grouped` (one final
        exponentiation for the whole batch); this fan-out path exists for
        callers that need per-proof verdicts, e.g. to pinpoint which
        provider failed after a batch mismatch.
        """
        if self.workers == 1:
            return [self.runtime.verify(task) for task in tasks]
        pool = self._ensure_pool()
        return list(
            pool.map(_verify_in_worker, tasks, chunksize=self._chunksize(len(tasks)))
        )

    def verify_batch(self, task: BatchVerifyTask) -> BatchVerifyResult:
        """Run one whole-batch check, off-loaded to a worker process.

        One :class:`~repro.engine.tasks.BatchVerifyTask` is one lane-epoch:
        concurrent lane threads each submit theirs and the pool runs them
        on separate cores — the step that was previously always inline in
        the parent.  ``workers == 1`` verifies inline, bit-identically.
        """
        if self.workers == 1:
            return self.runtime.verify_batch(task)
        pool = self._ensure_pool()
        return pool.submit(_verify_batch_in_worker, task).result()
