"""Picklable task encoding for the parallel audit engine.

A worker process cannot share the parent's :class:`~repro.core.prover.Prover`
objects, so the engine splits state from work:

* :class:`AuditInstance` — one registered (owner, file) audit: the public
  key, the chunked file and its authenticators.  Shipped to each worker
  once, at pool start-up.
* :class:`ProveTask` — one audit round for one instance: the 48-byte
  on-chain challenge plus a deterministic RNG seed for the Sigma-protocol
  nonce.  A few dozen bytes per task.
* :class:`ProveOutcome` — the wire-format proof plus the prover's timing
  report, sent back to the parent.

Everything here is a plain dataclass over ints, bytes and BN254 points
(all picklable), and proofs travel as their canonical byte encodings —
which is also what makes the engine's determinism testable bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..core.challenge import Challenge
from ..core.chunking import ChunkedFile
from ..core.keys import PublicKey
from ..core.proof import PrivateProof
from ..crypto.bn254 import G1Point


@dataclass(frozen=True)
class AuditInstance:
    """One (owner, file) audit registration.

    ``owner_id`` groups instances that share a keypair; the engine uses it
    only for bookkeeping — cache sharing happens automatically because the
    precompute cache is keyed by the group elements themselves.
    """

    owner_id: str
    name: int
    public: PublicKey
    chunked: ChunkedFile
    authenticators: tuple[G1Point, ...]

    @property
    def num_chunks(self) -> int:
        return self.chunked.num_chunks

    @staticmethod
    def from_package(package, owner_id: str = "") -> "AuditInstance":
        """Adapt a :class:`~repro.core.protocol.OutsourcingPackage`."""
        return AuditInstance(
            owner_id=owner_id or f"owner-{package.name:x}"[:16],
            name=package.name,
            public=package.public,
            chunked=package.chunked,
            authenticators=tuple(package.authenticators),
        )


@dataclass(frozen=True)
class ProveTask:
    """One audit round to execute: which file, which challenge, which seed.

    ``rng_seed`` pins the Sigma-protocol nonce ``z`` so that proving is a
    pure function of the task — the property behind the engine's
    parallel-equals-sequential determinism guarantee.  ``None`` keeps the
    nonce truly random (production behaviour).
    """

    name: int
    challenge_bytes: bytes
    k: int
    seed_bytes: int = 16
    rng_seed: int | None = None

    def challenge(self) -> Challenge:
        return Challenge.from_bytes(
            self.challenge_bytes, k=self.k, seed_bytes=self.seed_bytes
        )

    def rng(self):
        return None if self.rng_seed is None else random.Random(self.rng_seed)

    @staticmethod
    def for_round(
        instance: AuditInstance,
        challenge: Challenge,
        epoch: int | None = None,
        salt: bytes = b"engine",
    ) -> "ProveTask":
        """Build the task for one instance/round, deriving a deterministic
        per-task seed from (salt, epoch, file name) when ``epoch`` is given."""
        rng_seed = None
        if epoch is not None:
            digest = hashlib.sha256(
                salt
                + epoch.to_bytes(8, "big")
                + instance.name.to_bytes(32, "big")
            ).digest()
            rng_seed = int.from_bytes(digest, "big")
        return ProveTask(
            name=instance.name,
            challenge_bytes=challenge.to_bytes(),
            k=challenge.k,
            seed_bytes=len(challenge.c1),
            rng_seed=rng_seed,
        )


@dataclass(frozen=True)
class ProveOutcome:
    """A finished proof plus its wall-clock decomposition."""

    name: int
    proof_bytes: bytes
    zp_seconds: float
    ecc_seconds: float
    privacy_seconds: float

    def proof(self) -> PrivateProof:
        return PrivateProof.from_bytes(self.proof_bytes)


@dataclass(frozen=True)
class BatchVerifyTask:
    """One whole batch check (a lane-epoch's proofs) for a worker process.

    Ships ``(name, challenge bytes, proof bytes)`` triples; the worker
    already holds every instance's public key and chunk count from the
    pool initializer, so the task stays a few hundred bytes per proof.
    ``rng_seed`` pins the small-exponent blinding draw — the verdict is
    rho-independent, so this only matters for reproducible transcripts.
    """

    entries: tuple[tuple[int, bytes, bytes], ...]
    k: int
    seed_bytes: int = 16
    rng_seed: int | None = None

    def rng(self):
        return None if self.rng_seed is None else random.Random(self.rng_seed)

    def challenge_for(self, challenge_bytes: bytes) -> Challenge:
        return Challenge.from_bytes(
            challenge_bytes, k=self.k, seed_bytes=self.seed_bytes
        )


@dataclass(frozen=True)
class BatchVerifyResult:
    """Slim wire form of a :class:`~repro.core.batch.BatchVerifyOutcome`.

    Pinpointing runs *in the worker* on the failure path (the
    :class:`~repro.core.batch.ItemRejection` reasons are plain picklable
    dataclasses), so an accepted batch ships back a dozen bytes and a
    rejected one ships only its failure list — never the decoded proofs.
    """

    ok: bool
    checked: int
    mode: str
    failures: tuple = ()


@dataclass(frozen=True)
class VerifyTask:
    """One individual Eq.-(2) check (the fan-out alternative to batching)."""

    name: int
    challenge_bytes: bytes
    k: int
    proof_bytes: bytes
    seed_bytes: int = 16

    def challenge(self) -> Challenge:
        return Challenge.from_bytes(
            self.challenge_bytes, k=self.k, seed_bytes=self.seed_bytes
        )

    def proof(self) -> PrivateProof:
        return PrivateProof.from_bytes(self.proof_bytes)
