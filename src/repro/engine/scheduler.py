"""Epoch scheduler: thousands of concurrent audits per beacon round.

Production framing (ROADMAP north star): one storage provider holds files
for many owners, and every beacon round ("epoch") all of those contracts
fire a challenge at once.  The scheduler

1. derives one challenge per registered audit instance from the epoch's
   beacon output (:func:`~repro.core.challenge.epoch_challenge` — per-file
   challenged sets, shared evaluation point),
2. fans proof generation out through the
   :class:`~repro.engine.executor.AuditExecutor` (process pool or inline),
3. feeds every proof into the one-final-exponentiation grouped batch
   verifier (:func:`~repro.core.batch.verify_batch_grouped`), and
4. records wall-clock throughput for the capacity models in
   :mod:`repro.sim.throughput`.

Determinism: with ``deterministic=True`` every Sigma nonce is derived from
(salt, epoch, file name), so an epoch's proofs are a pure function of the
fleet and the beacon — sequential and parallel execution agree
byte-for-byte (tested, and asserted by ``bench_parallel_engine``).  Those
inputs are *public*, so an observer could recompute the nonce and strip
the privacy mask: deterministic mode is strictly for tests and benchmarks
and is **off by default** — production epochs draw each nonce from the
OS CSPRNG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.batch import BatchItem, verify_batch_grouped
from ..core.challenge import Challenge, epoch_challenge
from ..core.params import ProtocolParams
from ..crypto.bn254 import PrecomputeCache
from ..randomness.beacon import RandomnessBeacon
from .executor import AuditExecutor
from .tasks import ProveOutcome, ProveTask


@dataclass
class EpochResult:
    """Everything one epoch produced, plus its timing breakdown."""

    epoch: int
    num_audits: int
    batch_ok: bool
    prove_seconds: float
    verify_seconds: float
    outcomes: list[ProveOutcome] = field(repr=False)
    challenges: dict[int, Challenge] = field(repr=False)

    @property
    def total_seconds(self) -> float:
        return self.prove_seconds + self.verify_seconds

    @property
    def audits_per_second(self) -> float:
        return self.num_audits / self.total_seconds if self.total_seconds else 0.0

    def proof_bytes(self) -> dict[int, bytes]:
        """name -> canonical proof encoding (the bit-for-bit test surface)."""
        return {outcome.name: outcome.proof_bytes for outcome in self.outcomes}


class EpochScheduler:
    """Drives audit epochs for a fleet of registered instances."""

    def __init__(
        self,
        executor: AuditExecutor,
        params: ProtocolParams,
        beacon: RandomnessBeacon,
        salt: bytes = b"engine-epoch",
        deterministic: bool = False,
        rng=None,
        keep_history: bool = True,
    ):
        self.executor = executor
        self.params = params
        self.beacon = beacon
        self.salt = salt
        self.deterministic = deterministic
        # Long-running services auditing thousands of instances per epoch
        # should disable history retention: every EpochResult holds all of
        # its epoch's proofs and challenges.
        self.keep_history = keep_history
        self._rng = rng  # blinds the batch-verification exponents
        # Parent-side cache: per-file digest points reused by the grouped
        # verifier across epochs.
        self.cache = PrecomputeCache()
        self.history: list[EpochResult] = []

    def run_epoch(self, epoch: int) -> EpochResult:
        """Challenge every instance, prove in parallel, batch-verify."""
        instances = list(self.executor.instances.values())
        if not instances:
            raise ValueError("no audit instances registered with the executor")
        beacon_output = self.beacon.output(epoch)
        challenges: dict[int, Challenge] = {}
        tasks: list[ProveTask] = []
        for instance in instances:
            challenge = epoch_challenge(beacon_output, self.params, instance.name)
            challenges[instance.name] = challenge
            tasks.append(
                ProveTask.for_round(
                    instance,
                    challenge,
                    epoch=epoch if self.deterministic else None,
                    salt=self.salt,
                )
            )
        t0 = time.perf_counter()
        outcomes = self.executor.prove(tasks)
        t1 = time.perf_counter()
        items = [
            BatchItem(
                public=instance.public,
                name=instance.name,
                num_chunks=instance.num_chunks,
                challenge=challenges[instance.name],
                proof=outcome.proof(),
            )
            for instance, outcome in zip(instances, outcomes)
        ]
        batch_ok = verify_batch_grouped(
            items, rng=self._rng, precompute=self.cache
        )
        t2 = time.perf_counter()
        result = EpochResult(
            epoch=epoch,
            num_audits=len(instances),
            batch_ok=batch_ok,
            prove_seconds=t1 - t0,
            verify_seconds=t2 - t1,
            outcomes=list(outcomes),
            challenges=challenges,
        )
        if self.keep_history:
            self.history.append(result)
        return result

    def run(self, epochs: int, start_epoch: int = 0) -> list[EpochResult]:
        return [self.run_epoch(start_epoch + i) for i in range(epochs)]
