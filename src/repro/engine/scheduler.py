"""Epoch scheduler: thousands of concurrent audits per beacon round.

Production framing (ROADMAP north star): one storage provider holds files
for many owners, and every beacon round ("epoch") all of those contracts
fire a challenge at once.  The scheduler

1. derives one challenge per registered audit instance from the epoch's
   beacon output (:func:`~repro.core.challenge.epoch_challenge` — per-file
   challenged sets, shared evaluation point),
2. fans proof generation out through the
   :class:`~repro.engine.executor.AuditExecutor` (process pool or inline),
3. feeds every proof into the one-final-exponentiation grouped batch
   verifier (:func:`~repro.core.batch.verify_batch_grouped`), and
4. records wall-clock throughput for the capacity models in
   :mod:`repro.sim.throughput`.

Determinism: with ``deterministic=True`` every Sigma nonce is derived from
(salt, epoch, file name), so an epoch's proofs are a pure function of the
fleet and the beacon — sequential and parallel execution agree
byte-for-byte (tested, and asserted by ``bench_parallel_engine``).  Those
inputs are *public*, so an observer could recompute the nonce and strip
the privacy mask: deterministic mode is strictly for tests and benchmarks
and is **off by default** — production epochs draw each nonce from the
OS CSPRNG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.batch import BatchVerifyOutcome, BatchItem, verify_batch_grouped
from ..core.challenge import Challenge, epoch_challenge
from ..core.params import ProtocolParams
from ..core.proof import PrivateProof
from ..core.prover import ResponseWithheld
from ..crypto.bn254 import PrecomputeCache, PrecomputeStore
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.tracing import NULL_TRACER, Tracer
from ..randomness.beacon import RandomnessBeacon
from .executor import AuditExecutor
from .tasks import BatchVerifyTask, ProveOutcome, ProveTask

#: A proof override: called with (challenge, epoch) in place of the engine's
#: honest prover for one registered file.  Returning ``None`` or raising
#: :class:`~repro.core.prover.ResponseWithheld` models a silent provider.
ProofOverride = Callable[[Challenge, int], "PrivateProof | None"]


@dataclass
class EpochResult:
    """Everything one epoch produced, plus its timing breakdown."""

    epoch: int
    num_audits: int
    batch_ok: BatchVerifyOutcome
    prove_seconds: float
    verify_seconds: float
    outcomes: list[ProveOutcome] = field(repr=False)
    challenges: dict[int, Challenge] = field(repr=False)
    withheld: tuple[int, ...] = ()  # files whose response never arrived
    #: Filled in checkpoint mode: the epoch's Merkle verdict tree plus its
    #: 85-byte on-chain commitment (a rollup CheckpointBundle).
    checkpoint: "object | None" = field(default=None, repr=False)

    @property
    def total_seconds(self) -> float:
        return self.prove_seconds + self.verify_seconds

    @property
    def audits_per_second(self) -> float:
        return self.num_audits / self.total_seconds if self.total_seconds else 0.0

    def proof_bytes(self) -> dict[int, bytes]:
        """name -> canonical proof encoding (the bit-for-bit test surface)."""
        return {outcome.name: outcome.proof_bytes for outcome in self.outcomes}

    def rejected_names(self) -> tuple[int, ...]:
        """Files whose proofs failed this epoch (withheld ones included)."""
        return self.withheld + self.batch_ok.rejected_names()


class EpochScheduler:
    """Drives audit epochs for a fleet of registered instances."""

    def __init__(
        self,
        executor: AuditExecutor,
        params: ProtocolParams,
        beacon: RandomnessBeacon,
        salt: bytes = b"engine-epoch",
        deterministic: bool = False,
        rng=None,
        keep_history: bool = True,
        overrides: "dict[int, ProofOverride] | None" = None,
        checkpoint_mode: bool = False,
        names=None,
        cache: PrecomputeCache | None = None,
        pooled_verify: bool = False,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.executor = executor
        # Observability: spans around the challenge/prove/verify phases
        # (no-op through NULL_TRACER when untraced) and epoch-level
        # registry instruments.  Neither touches challenges, nonces or
        # verdicts, so deterministic runs are unaffected.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        registry = registry if registry is not None else get_registry()
        self._m_epochs = registry.counter("engine_epochs_total", "audit epochs executed")
        self._m_audits = registry.counter(
            "engine_audits_total", "audits judged, by verdict", ("verdict",)
        )
        self._m_prove = registry.histogram(
            "engine_prove_seconds", "per-epoch prove phase latency"
        )
        self._m_verify = registry.histogram(
            "engine_verify_seconds", "per-epoch verify phase latency"
        )
        self.params = params
        self.beacon = beacon
        self.salt = salt
        self.deterministic = deterministic
        # Instance filter: a scheduler can drive a *subset* of the
        # executor's registered fleet (frozen at construction).  This is
        # how the sharded fabric runs one scheduler per lane while every
        # lane's proof generation fans out through the same process pool.
        if names is not None:
            names = frozenset(names)
            unknown = names - set(executor.instances)
            if unknown:
                raise KeyError(
                    f"names not registered with the executor: {sorted(unknown)[:4]}"
                )
        self.names: "frozenset[int] | None" = names
        # Long-running services auditing thousands of instances per epoch
        # should disable history retention: every EpochResult holds all of
        # its epoch's proofs and challenges.
        self.keep_history = keep_history
        # Checkpoint mode: every epoch additionally canonicalizes its
        # outcome into a rollup verdict tree (result.checkpoint), batching
        # the whole epoch behind one on-chain commitment before settlement.
        self.checkpoint_mode = checkpoint_mode
        self._rng = rng  # blinds the batch-verification exponents
        # Pooled verification ships the whole epoch batch to an executor
        # worker process instead of verifying inline in the parent — the
        # piece that kept multi-lane settlement single-core.  Verdicts are
        # identical (the blinding exponents do not affect accept/reject).
        self.pooled_verify = pooled_verify
        # Parent-side cache: per-file digest points reused by the grouped
        # verifier across epochs.  Callers that rebuild schedulers per epoch
        # (the lifecycle engine's changing fleet) pass a shared cache in.
        # The default inherits the executor's persistent store (if any), so
        # verifier tables survive restarts alongside the prover tables.
        if cache is None:
            store = (
                PrecomputeStore(executor.cache_dir)
                if executor.cache_dir
                else None
            )
            cache = PrecomputeCache(store=store)
        self.cache = cache
        self.history: list[EpochResult] = []
        # Adversary harness hook: files whose proofs come from a strategy
        # callable instead of the engine's honest prover (the batch verifier
        # treats both identically — that is the point of the exercise).
        self.overrides: dict[int, ProofOverride] = {}
        for name, override in (overrides or {}).items():
            self.set_override(name, override)

    def set_override(self, name: int, override: ProofOverride) -> None:
        """Route one registered file's proofs through ``override``."""
        if name not in self.executor.instances:
            raise KeyError(f"file {name} not registered with the executor")
        if self.names is not None and name not in self.names:
            raise KeyError(f"file {name} outside this scheduler's instance subset")
        self.overrides[name] = override

    def _verify_items(self, items: list[BatchItem]) -> BatchVerifyOutcome:
        """Grouped batch check: inline, or in a pool worker (pooled_verify)."""
        if not (self.pooled_verify and items):
            return verify_batch_grouped(items, rng=self._rng, precompute=self.cache)
        task = BatchVerifyTask(
            entries=tuple(
                (item.name, item.challenge.to_bytes(), item.proof.to_bytes())
                for item in items
            ),
            k=items[0].challenge.k,
            seed_bytes=len(items[0].challenge.c1),
            rng_seed=self._rng.getrandbits(64) if self._rng is not None else None,
        )
        result = self.executor.verify_batch(task)
        # Reconstruct the rich outcome: the worker already pinpointed, so
        # the parent never needs to retain (or re-verify) the items.
        return BatchVerifyOutcome(
            ok=result.ok,
            checked=result.checked,
            mode=result.mode,
            _failures=tuple(result.failures),
        )

    def run_epoch(self, epoch: int) -> EpochResult:
        """Challenge every instance, prove in parallel, batch-verify."""
        instances = [
            instance
            for instance in self.executor.instances.values()
            if self.names is None or instance.name in self.names
        ]
        if not instances:
            raise ValueError("no audit instances registered with the executor")
        with self.tracer.span("challenge", epoch=epoch, audits=len(instances)):
            beacon_output = self.beacon.output(epoch)
            challenges: dict[int, Challenge] = {}
            tasks: list[ProveTask] = []
            for instance in instances:
                challenge = epoch_challenge(beacon_output, self.params, instance.name)
                challenges[instance.name] = challenge
                if instance.name in self.overrides:
                    continue
                tasks.append(
                    ProveTask.for_round(
                        instance,
                        challenge,
                        epoch=epoch if self.deterministic else None,
                        salt=self.salt,
                    )
                )
        t0 = time.perf_counter()
        with self.tracer.span("prove", epoch=epoch):
            engine_outcomes = {
                outcome.name: outcome for outcome in self.executor.prove(tasks)
            }
            # Overridden files prove inline through their strategy callable;
            # a None / ResponseWithheld response never reaches the batch.
            withheld: list[int] = []
            outcomes: list[ProveOutcome] = []
            for instance in instances:
                override = self.overrides.get(instance.name)
                if override is None:
                    outcomes.append(engine_outcomes[instance.name])
                    continue
                try:
                    proof = override(challenges[instance.name], epoch)
                except ResponseWithheld:
                    proof = None
                if proof is None:
                    withheld.append(instance.name)
                    continue
                outcomes.append(
                    ProveOutcome(
                        name=instance.name,
                        proof_bytes=proof.to_bytes(),
                        zp_seconds=0.0,
                        ecc_seconds=0.0,
                        privacy_seconds=0.0,
                    )
                )
        t1 = time.perf_counter()
        with self.tracer.span("verify", epoch=epoch, proofs=len(outcomes)):
            by_name = {instance.name: instance for instance in instances}
            items = [
                BatchItem(
                    public=by_name[outcome.name].public,
                    name=outcome.name,
                    num_chunks=by_name[outcome.name].num_chunks,
                    challenge=challenges[outcome.name],
                    proof=outcome.proof(),
                )
                for outcome in outcomes
            ]
            batch_ok = self._verify_items(items)
        t2 = time.perf_counter()
        result = EpochResult(
            epoch=epoch,
            num_audits=len(instances),
            batch_ok=batch_ok,
            prove_seconds=t1 - t0,
            verify_seconds=t2 - t1,
            outcomes=outcomes,
            challenges=challenges,
            withheld=tuple(withheld),
        )
        if self.checkpoint_mode:
            # Imported lazily: the engine layer stays importable without
            # the rollup package on the path of every caller.
            from ..rollup.checkpoint import build_epoch_checkpoint

            with self.tracer.span("checkpoint_build", epoch=epoch):
                result.checkpoint = build_epoch_checkpoint(
                    result, precompute=self.cache
                )
        rejected = len(result.rejected_names())
        self._m_epochs.inc()
        self._m_audits.labels("accepted").inc(result.num_audits - rejected)
        if rejected:
            self._m_audits.labels("rejected").inc(rejected)
        self._m_prove.observe(result.prove_seconds)
        self._m_verify.observe(result.verify_seconds)
        if self.keep_history:
            self.history.append(result)
        return result

    def run(self, epochs: int, start_epoch: int = 0) -> list[EpochResult]:
        return [self.run_epoch(start_epoch + i) for i in range(epochs)]
