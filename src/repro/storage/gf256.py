"""GF(2^8) arithmetic with numpy-vectorised helpers.

The erasure-coding layer works over the field GF(256) with the standard
Reed-Solomon reduction polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
Log/antilog tables give O(1) multiplication; the numpy paths operate on
whole shards at once, which is what makes megabyte-scale erasure coding
practical in pure Python.
"""

from __future__ import annotations

import numpy as np

REDUCING_POLY = 0x11D
GENERATOR = 2

# Build exp/log tables once at import.
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_value = 1
for _power in range(255):
    _EXP[_power] = _value
    _LOG[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= REDUCING_POLY
_EXP[255:510] = _EXP[:255]  # wraparound so exp lookups never need mod


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_pow(a: int, exponent: int) -> int:
    if a == 0:
        return 0 if exponent else 1
    return int(_EXP[(int(_LOG[a]) * exponent) % 255])


def gf_mul_vector(scalar: int, vector: np.ndarray) -> np.ndarray:
    """scalar * vector over GF(256), vectorised."""
    if scalar == 0:
        return np.zeros_like(vector)
    if scalar == 1:
        return vector.copy()
    log_scalar = int(_LOG[scalar])
    out = np.zeros_like(vector)
    nonzero = vector != 0
    out[nonzero] = _EXP[log_scalar + _LOG[vector[nonzero]]]
    return out


def gf_matmul(matrix: list[list[int]], shards: np.ndarray) -> np.ndarray:
    """Matrix (rows x k) times shard stack (k x length) over GF(256)."""
    rows = len(matrix)
    _, length = shards.shape
    out = np.zeros((rows, length), dtype=np.uint8)
    for row_index, row in enumerate(matrix):
        accumulator = np.zeros(length, dtype=np.uint8)
        for coefficient, shard in zip(row, shards):
            if coefficient:
                accumulator ^= gf_mul_vector(coefficient, shard)
        out[row_index] = accumulator
    return out


def gf_matrix_invert(matrix: list[list[int]]) -> list[list[int]]:
    """Gauss-Jordan inversion over GF(256); raises on singular input."""
    n = len(matrix)
    augmented = [list(row) + [1 if i == j else 0 for j in range(n)]
                 for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if augmented[r][col]), None)
        if pivot is None:
            raise ValueError("singular matrix over GF(256)")
        augmented[col], augmented[pivot] = augmented[pivot], augmented[col]
        inv = gf_inv(augmented[col][col])
        augmented[col] = [gf_mul(value, inv) for value in augmented[col]]
        for row in range(n):
            if row != col and augmented[row][col]:
                factor = augmented[row][col]
                augmented[row] = [
                    augmented[row][idx] ^ gf_mul(factor, augmented[col][idx])
                    for idx in range(2 * n)
                ]
    return [row[n:] for row in augmented]
