"""GF(2^8) arithmetic with numpy-vectorised helpers.

The erasure-coding layer works over the field GF(256) with the standard
Reed-Solomon reduction polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
Log/antilog tables give O(1) multiplication; the numpy paths operate on
whole shards at once, which is what makes megabyte-scale erasure coding
practical in pure Python.

Bulk shard arithmetic goes through a precomputed 256x256 product table:
``scalar * vector`` is a single ``take`` gather along the scalar's table
row — no log/antilog index arithmetic, no zero-masking pass, no per-element
Python.  The log-table scalar helpers stay as the reference the
differential tests check the table path against.
"""

from __future__ import annotations

import numpy as np

REDUCING_POLY = 0x11D
GENERATOR = 2

# Build exp/log tables once at import.
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_value = 1
for _power in range(255):
    _EXP[_power] = _value
    _LOG[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= REDUCING_POLY
_EXP[255:510] = _EXP[:255]  # wraparound so exp lookups never need mod

# Full 256x256 product table (64 KiB): row a is the map x -> a*x.  Built
# once from the log/antilog tables; rows/columns for 0 stay all-zero.
_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
_nonzero = np.arange(1, 256)
_MUL_TABLE[1:, 1:] = _EXP[_LOG[_nonzero][:, None] + _LOG[_nonzero][None, :]]


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_pow(a: int, exponent: int) -> int:
    if a == 0:
        return 0 if exponent else 1
    return int(_EXP[(int(_LOG[a]) * exponent) % 255])


def gf_mul_vector(scalar: int, vector: np.ndarray) -> np.ndarray:
    """scalar * vector over GF(256): one gather along the product-table row."""
    return _MUL_TABLE[scalar].take(vector)


def gf_mul_vector_ref(scalar: int, vector: np.ndarray) -> np.ndarray:
    """Log-table reference for :func:`gf_mul_vector` (differential tests)."""
    out = np.zeros_like(vector)
    for index, value in enumerate(vector):
        out[index] = gf_mul(scalar, int(value))
    return out


def gf_matmul(matrix: list[list[int]], shards: np.ndarray) -> np.ndarray:
    """Matrix (rows x k) times shard stack (k x length) over GF(256).

    Reported under the ``gf256.encode`` / ``gf256.decode`` HOTPATH legs by
    the erasure codec that drives it.
    """
    rows = len(matrix)
    _, length = shards.shape
    out = np.zeros((rows, length), dtype=np.uint8)
    for row_index, row in enumerate(matrix):
        accumulator = out[row_index]
        for coefficient, shard in zip(row, shards):
            if coefficient == 1:
                accumulator ^= shard
            elif coefficient:
                accumulator ^= _MUL_TABLE[coefficient].take(shard)
    return out


def gf_matmul_ref(matrix: list[list[int]], shards: np.ndarray) -> np.ndarray:
    """Per-element reference for :func:`gf_matmul` (differential tests)."""
    rows = len(matrix)
    _, length = shards.shape
    out = np.zeros((rows, length), dtype=np.uint8)
    for row_index, row in enumerate(matrix):
        for position in range(length):
            value = 0
            for coefficient, shard in zip(row, shards):
                value ^= gf_mul(coefficient, int(shard[position]))
            out[row_index][position] = value
    return out


def gf_matrix_invert(matrix: list[list[int]]) -> list[list[int]]:
    """Gauss-Jordan inversion over GF(256); raises on singular input."""
    n = len(matrix)
    augmented = [list(row) + [1 if i == j else 0 for j in range(n)]
                 for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if augmented[r][col]), None)
        if pivot is None:
            raise ValueError("singular matrix over GF(256)")
        augmented[col], augmented[pivot] = augmented[pivot], augmented[col]
        inv = gf_inv(augmented[col][col])
        augmented[col] = [gf_mul(value, inv) for value in augmented[col]]
        for row in range(n):
            if row != col and augmented[row][col]:
                factor = augmented[row][col]
                augmented[row] = [
                    augmented[row][idx] ^ gf_mul(factor, augmented[col][idx])
                    for idx in range(2 * n)
                ]
    return [row[n:] for row in augmented]
