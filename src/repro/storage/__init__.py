"""DSN storage substrate: erasure coding, encryption, DHT, nodes, client,
capability strings and placement strategies."""

from .capabilities import (
    CapabilityError,
    ReadCap,
    VerifyCap,
    check_verify_cap,
    make_read_cap,
    storage_index_from_key,
)
from .dht import ChordNode, ChordRing, chord_id
from .encryption import EncryptedFile, decrypt_file, encrypt_file, generate_key
from .erasure import ReedSolomonCode, Shard
from .manifest import FileManifest, ShardLocation
from .network import NetworkError, NetworkStats, SimulatedNetwork
from .node import DsnClient, DsnCluster, StorageNode
from .placement import (
    CapacityAwarePlacement,
    LatencyAwarePlacement,
    PlacementStrategy,
    ReputationWeightedPlacement,
    RingPlacement,
    place_with_strategy,
)

__all__ = [
    "CapabilityError",
    "CapacityAwarePlacement",
    "ChordNode",
    "ChordRing",
    "DsnClient",
    "LatencyAwarePlacement",
    "PlacementStrategy",
    "ReadCap",
    "ReputationWeightedPlacement",
    "RingPlacement",
    "DsnCluster",
    "EncryptedFile",
    "FileManifest",
    "NetworkError",
    "NetworkStats",
    "ReedSolomonCode",
    "Shard",
    "ShardLocation",
    "SimulatedNetwork",
    "StorageNode",
    "VerifyCap",
    "check_verify_cap",
    "chord_id",
    "decrypt_file",
    "encrypt_file",
    "generate_key",
    "make_read_cap",
    "place_with_strategy",
    "storage_index_from_key",
]
