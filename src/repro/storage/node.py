"""Storage nodes and the owner-side DSN client (paper Fig. 1, bottom half).

``StorageNode`` is one provider: shard storage keyed by (file, index) plus
the provider's DHT identity.  ``DsnClient`` is the data owner's pipeline —
exactly the Section III-A sequence::

    chunk -> encrypt (mandatory) -> erasure-code -> DHT lookup -> distribute

Retrieval gathers any k surviving shards, decodes, authenticates and
decrypts.  All traffic passes through the :class:`SimulatedNetwork`, so
injected crashes and partitions genuinely break fetches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .dht import ChordRing
from .encryption import EncryptedFile, decrypt_file, encrypt_file, generate_key
from .erasure import ReedSolomonCode, Shard
from .manifest import FileManifest, ShardLocation
from .network import NetworkError, SimulatedNetwork


def _checksum(data: bytes) -> bytes:
    return hashlib.sha256(b"SHARD" + data).digest()[:16]


@dataclass
class StorageNode:
    """One storage provider's disk + network identity."""

    name: str
    capacity_bytes: int = 1 << 30
    _shards: dict[tuple[str, int], bytes] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(len(v) for v in self._shards.values())

    def put(self, file_id: str, index: int, data: bytes) -> bool:
        if self.used_bytes + len(data) > self.capacity_bytes:
            return False
        self._shards[(file_id, index)] = bytes(data)
        return True

    def get(self, file_id: str, index: int) -> bytes | None:
        return self._shards.get((file_id, index))

    def delete(self, file_id: str, index: int) -> None:
        self._shards.pop((file_id, index), None)

    def drop_file(self, file_id: str) -> int:
        """Delete every shard of a file (misbehaviour injection)."""
        keys = [k for k in self._shards if k[0] == file_id]
        for key in keys:
            del self._shards[key]
        return len(keys)

    # -- byzantine fault injection (repro.adversary scenarios) -------------

    def corrupt_shard(self, file_id: str, index: int, flip_byte: int = 0) -> bool:
        """Bit-rot one stored shard in place; True if it existed.

        Retrieval detects this through the manifest checksum and skips the
        shard, the same way a failed audit flags the provider.
        """
        data = self._shards.get((file_id, index))
        if data is None:
            return False
        position = flip_byte % len(data)
        mutated = bytearray(data)
        mutated[position] ^= 0xFF
        self._shards[(file_id, index)] = bytes(mutated)
        return True

    def discard_fraction(self, fraction: float, rng=None) -> int:
        """Selective storage: silently delete ``fraction`` of held shards."""
        import random as _random

        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        keys = sorted(self._shards)
        count = int(len(keys) * fraction)
        chooser = rng or _random
        for key in chooser.sample(keys, count):
            del self._shards[key]
        return count


class DsnCluster:
    """A set of storage nodes joined into one DHT ring + network fabric."""

    def __init__(self, network: SimulatedNetwork | None = None, dht_bits: int = 16):
        self.network = network or SimulatedNetwork()
        self.ring = ChordRing(bits=dht_bits)
        self.nodes: dict[str, StorageNode] = {}

    def add_node(self, name: str, capacity_bytes: int = 1 << 30) -> StorageNode:
        node = StorageNode(name=name, capacity_bytes=capacity_bytes)
        self.nodes[name] = node
        self.ring.join(name)
        return node

    def remove_node(self, name: str) -> None:
        self.nodes.pop(name, None)
        self.ring.leave(name)

    def node(self, name: str) -> StorageNode:
        return self.nodes[name]


class DsnClient:
    """The data owner's storage client."""

    def __init__(self, owner_name: str, cluster: DsnCluster):
        self.owner_name = owner_name
        self.cluster = cluster
        self.keys: dict[str, bytes] = {}  # file_id -> encryption key

    def store(
        self,
        file_id: str,
        plaintext: bytes,
        n: int = 10,
        k: int = 3,
        key_mode: str = "random",
    ) -> FileManifest:
        """Encrypt, erasure-code and place shards on n distinct providers."""
        key = generate_key(plaintext if key_mode == "convergent" else None, key_mode)  # type: ignore[arg-type]
        self.keys[file_id] = key
        encrypted = encrypt_file(plaintext, key, key_mode)  # type: ignore[arg-type]
        code = ReedSolomonCode(n, k)
        shards = code.encode(encrypted.ciphertext)
        providers = self.cluster.ring.successors(file_id, n)
        manifest = FileManifest(
            file_id=file_id,
            plaintext_length=len(plaintext),
            ciphertext_length=len(encrypted.ciphertext),
            erasure_n=n,
            erasure_k=k,
            key_mode=key_mode,
            nonce=encrypted.nonce,
            tag=encrypted.tag,
        )
        for shard, provider in zip(shards, providers):
            self.cluster.network.send(self.owner_name, provider.name, len(shard.data))
            accepted = self.cluster.node(provider.name).put(
                file_id, shard.index, shard.data
            )
            if not accepted:
                raise RuntimeError(f"{provider.name} is out of capacity")
            manifest.shards.append(
                ShardLocation(
                    shard_index=shard.index,
                    provider=provider.name,
                    checksum=_checksum(shard.data),
                )
            )
        return manifest

    def retrieve(self, manifest: FileManifest) -> bytes:
        """Fetch any k healthy shards, decode, authenticate, decrypt."""
        code = ReedSolomonCode(manifest.erasure_n, manifest.erasure_k)
        collected: list[Shard] = []
        for location in manifest.shards:
            if len(collected) >= manifest.erasure_k:
                break
            try:
                self.cluster.network.send(
                    self.owner_name, location.provider, 64
                )
            except NetworkError:
                continue
            node = self.cluster.nodes.get(location.provider)
            data = node.get(manifest.file_id, location.shard_index) if node else None
            if data is None or _checksum(data) != location.checksum:
                continue  # lost or corrupted shard: skip it
            self.cluster.network.send(location.provider, self.owner_name, len(data))
            collected.append(Shard(index=location.shard_index, data=data))
        if len(collected) < manifest.erasure_k:
            raise RuntimeError(
                f"only {len(collected)} healthy shards available, "
                f"need {manifest.erasure_k}"
            )
        ciphertext = code.decode(collected, manifest.ciphertext_length)
        encrypted = EncryptedFile(
            ciphertext=ciphertext,
            nonce=manifest.nonce,
            tag=manifest.tag,
            key_mode=manifest.key_mode,  # type: ignore[arg-type]
        )
        return decrypt_file(encrypted, self.keys[manifest.file_id])

    def repair(
        self, manifest: FileManifest, provider: str, strategy=None
    ) -> FileManifest:
        """Re-generate the shards a failed provider held and re-place them.

        ``strategy`` is an optional
        :class:`~repro.storage.placement.PlacementStrategy`; when given,
        the replacement providers are taken from its ordering (e.g.
        best-reputation-first) instead of raw ring successors.  Providers
        already holding a shard of this file — and the failed provider —
        are always excluded.
        """
        code = ReedSolomonCode(manifest.erasure_n, manifest.erasure_k)
        survivors: list[Shard] = []
        for location in manifest.shards:
            if location.provider == provider:
                continue
            node = self.cluster.nodes.get(location.provider)
            data = node.get(manifest.file_id, location.shard_index) if node else None
            if data is not None and _checksum(data) == location.checksum:
                survivors.append(Shard(index=location.shard_index, data=data))
        lost = [loc for loc in manifest.shards if loc.provider == provider]
        healthy = [loc for loc in manifest.shards if loc.provider != provider]
        ciphertext = code.decode(survivors, manifest.ciphertext_length)
        fresh = code.encode(ciphertext)
        # Place the regenerated shards on providers not already used.
        used = {loc.provider for loc in healthy}
        if strategy is None:
            ordered = [
                node.name
                for node in self.cluster.ring.successors(
                    manifest.file_id, len(self.cluster.nodes)
                )
            ]
        else:
            ordered = list(
                strategy.select(self.cluster, manifest.file_id, len(lost))
            )
        candidates = [
            name
            for name in ordered
            if name not in used and name != provider and name in self.cluster.nodes
        ]
        if len(candidates) < len(lost):
            raise RuntimeError(
                f"only {len(candidates)} replacement providers available for "
                f"{len(lost)} lost shards of {manifest.file_id}"
            )
        candidate_iter = iter(candidates)
        for lost_loc in lost:
            shard = fresh[lost_loc.shard_index]
            while True:
                target = next(candidate_iter, None)
                if target is None:
                    raise RuntimeError(
                        f"replacement providers ran out of capacity while "
                        f"repairing {manifest.file_id}"
                    )
                self.cluster.network.send(self.owner_name, target, len(shard.data))
                if self.cluster.node(target).put(
                    manifest.file_id, shard.index, shard.data
                ):
                    break
            healthy.append(
                ShardLocation(
                    shard_index=shard.index,
                    provider=target,
                    checksum=_checksum(shard.data),
                )
            )
        manifest.shards = sorted(healthy, key=lambda s: s.shard_index)
        return manifest
