"""Tahoe-LAFS-style capability strings for stored files.

The paper's testbed is Tahoe-LAFS, whose signature idea is that *access is
a string*: knowing a read capability lets you locate and decrypt a file;
the weaker verify capability lets you locate and integrity-check it
without being able to read it.  That split is precisely the DSN auditing
story — storage providers and auditors hold verify-level material while
only the owner holds read-level — so this module rounds the storage
substrate out with the same mechanics:

    readcap   = URI:READ:<key material>:<verify digest>
    verifycap = URI:VERIFY:<storage index>:<verify digest>

``verifycap`` is derivable from ``readcap`` (attenuation), never the other
way around.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .manifest import FileManifest


class CapabilityError(ValueError):
    pass


def _b32(data: bytes) -> str:
    import base64

    return base64.b32encode(data).decode().rstrip("=").lower()


def _from_b32(text: str) -> bytes:
    import base64

    padding = "=" * (-len(text) % 8)
    return base64.b32decode(text.upper() + padding)


@dataclass(frozen=True)
class ReadCap:
    """Locate + decrypt: the owner's capability."""

    key: bytes           # 32-byte file encryption key
    verify_digest: bytes  # binds to the ciphertext (16 bytes)

    def to_string(self) -> str:
        return f"URI:READ:{_b32(self.key)}:{_b32(self.verify_digest)}"

    @staticmethod
    def from_string(text: str) -> "ReadCap":
        parts = text.split(":")
        if len(parts) != 4 or parts[0] != "URI" or parts[1] != "READ":
            raise CapabilityError("not a read capability")
        return ReadCap(key=_from_b32(parts[2]), verify_digest=_from_b32(parts[3]))

    def attenuate(self) -> "VerifyCap":
        """Derive the verify capability (one-way: key -> storage index)."""
        return VerifyCap(
            storage_index=storage_index_from_key(self.key),
            verify_digest=self.verify_digest,
        )


@dataclass(frozen=True)
class VerifyCap:
    """Locate + integrity-check: what auditors and repairers hold."""

    storage_index: bytes  # 16 bytes, derived one-way from the key
    verify_digest: bytes

    def to_string(self) -> str:
        return f"URI:VERIFY:{_b32(self.storage_index)}:{_b32(self.verify_digest)}"

    @staticmethod
    def from_string(text: str) -> "VerifyCap":
        parts = text.split(":")
        if len(parts) != 4 or parts[0] != "URI" or parts[1] != "VERIFY":
            raise CapabilityError("not a verify capability")
        return VerifyCap(
            storage_index=_from_b32(parts[2]), verify_digest=_from_b32(parts[3])
        )


def storage_index_from_key(key: bytes) -> bytes:
    """One-way derivation: the DHT location leaks nothing about the key."""
    return hashlib.sha256(b"TAHOE-SI" + key).digest()[:16]


def verify_digest_for(manifest: FileManifest) -> bytes:
    """Binds a capability to the manifest's ciphertext identity."""
    h = hashlib.sha256()
    h.update(b"TAHOE-VD")
    h.update(manifest.tag)
    h.update(manifest.nonce)
    h.update(manifest.ciphertext_length.to_bytes(8, "big"))
    return h.digest()[:16]


def make_read_cap(key: bytes, manifest: FileManifest) -> ReadCap:
    return ReadCap(key=key, verify_digest=verify_digest_for(manifest))


def check_verify_cap(cap: VerifyCap, key: bytes, manifest: FileManifest) -> bool:
    """Does this verify capability match the (key, manifest) pair?"""
    return (
        cap.storage_index == storage_index_from_key(key)
        and cap.verify_digest == verify_digest_for(manifest)
    )
