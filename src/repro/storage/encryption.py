"""Owner-side file encryption for the DSN (paper Section III-A).

"Data to be outsourced is first chunked into pieces and encrypted at the
block level by the data owner ... the encryption is a mandatory action
taken on the side of the data owner."

Encrypt-then-MAC over ChaCha20 + HMAC-SHA256.  Two key modes:

* ``random``   — fresh key per file (the secure default),
* ``convergent`` — key = H(plaintext), enabling cross-user deduplication at
  the cost of confirmation-of-file attacks; this is the "deterministic
  encryption" the paper's privacy discussion warns about, and what makes
  the on-chain leakage of Section V-C brute-forceable in practice.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import Literal

from ..crypto.chacha20 import chacha20_xor, convergent_key, derive_nonce

KeyMode = Literal["random", "convergent"]


@dataclass(frozen=True)
class EncryptedFile:
    """Ciphertext plus the public metadata needed to decrypt/verify."""

    ciphertext: bytes
    nonce: bytes
    tag: bytes
    key_mode: KeyMode

    def byte_size(self) -> int:
        return len(self.ciphertext) + len(self.nonce) + len(self.tag)


def _mac(key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
    return hmac.new(key, b"ETM" + nonce + ciphertext, hashlib.sha256).digest()


def _subkeys(key: bytes) -> tuple[bytes, bytes]:
    enc = hashlib.sha256(b"ENC" + key).digest()
    mac = hashlib.sha256(b"MAC" + key).digest()
    return enc, mac


def generate_key(plaintext: bytes | None = None, mode: KeyMode = "random") -> bytes:
    if mode == "convergent":
        if plaintext is None:
            raise ValueError("convergent mode derives the key from the plaintext")
        return convergent_key(plaintext)
    return os.urandom(32)


def encrypt_file(
    plaintext: bytes, key: bytes, mode: KeyMode = "random"
) -> EncryptedFile:
    enc_key, mac_key = _subkeys(key)
    if mode == "convergent":
        # Deterministic nonce so identical plaintexts dedupe to identical
        # ciphertexts across owners.
        nonce = derive_nonce(key)
    else:
        nonce = os.urandom(12)
    ciphertext = chacha20_xor(enc_key, nonce, plaintext)
    return EncryptedFile(
        ciphertext=ciphertext,
        nonce=nonce,
        tag=_mac(mac_key, nonce, ciphertext),
        key_mode=mode,
    )


def decrypt_file(encrypted: EncryptedFile, key: bytes) -> bytes:
    enc_key, mac_key = _subkeys(key)
    expected = _mac(mac_key, encrypted.nonce, encrypted.ciphertext)
    if not hmac.compare_digest(expected, encrypted.tag):
        raise ValueError("authentication tag mismatch (corrupted or wrong key)")
    return chacha20_xor(enc_key, encrypted.nonce, encrypted.ciphertext)
