"""File manifests: the owner's record of where everything lives.

A manifest ties together the storage-layer view (encrypted shards placed on
DHT nodes) with the audit-layer view (per-provider file identifiers and
public keys), mirroring how the paper's architecture layers auditing on top
of "most underlying P2P-akin storage systems" (Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ShardLocation:
    shard_index: int
    provider: str
    checksum: bytes


@dataclass
class FileManifest:
    """Everything the owner needs to retrieve and audit one file."""

    file_id: str
    plaintext_length: int
    ciphertext_length: int
    erasure_n: int
    erasure_k: int
    key_mode: str
    nonce: bytes
    tag: bytes
    shards: list[ShardLocation] = field(default_factory=list)
    # audit-layer linkage: provider name -> per-shard audit file identifier
    audit_names: dict[str, int] = field(default_factory=dict)

    @property
    def providers(self) -> list[str]:
        return sorted({s.provider for s in self.shards})

    @property
    def redundancy_factor(self) -> float:
        return self.erasure_n / self.erasure_k

    def shards_on(self, provider: str) -> list[ShardLocation]:
        return [s for s in self.shards if s.provider == provider]
