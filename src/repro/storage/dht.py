"""Chord distributed hash table (paper ref [16]) for provider lookup.

"The data owner looks up the storage provider candidates using the
distributed hash table and uses this table for routing."

Implements the Chord ring over an m-bit identifier space: consistent
hashing of node/keys onto the ring, successor lists, finger tables, and
iterative greedy lookup in O(log N) hops.  Node joins and leaves trigger a
stabilisation pass that rebuilds fingers — the simulation equivalent of
Chord's periodic stabilisation converging.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field


def chord_id(name: str | bytes, bits: int) -> int:
    if isinstance(name, str):
        name = name.encode()
    digest = hashlib.sha256(b"CHORD" + name).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


def _in_interval(value: int, start: int, end: int, modulus: int) -> bool:
    """value in (start, end] on the ring."""
    if start < end:
        return start < value <= end
    return value > start or value <= end


@dataclass
class ChordNode:
    """One DHT participant (a storage provider's routing identity)."""

    name: str
    node_id: int
    bits: int
    fingers: list["ChordNode"] = field(default_factory=list, repr=False)
    successor: "ChordNode | None" = field(default=None, repr=False)
    predecessor: "ChordNode | None" = field(default=None, repr=False)

    def closest_preceding(self, key: int) -> "ChordNode":
        for finger in reversed(self.fingers):
            if _in_interval(finger.node_id, self.node_id, key - 1, 1 << self.bits):
                if finger.node_id != key:
                    return finger
        return self


class ChordRing:
    """The whole ring, maintained centrally (simulation of converged Chord).

    ``lookup`` routes greedily through finger tables exactly as a real
    iterative Chord lookup would, and reports the hop count so tests can
    assert the O(log N) bound.
    """

    def __init__(self, bits: int = 16):
        self.bits = bits
        self.nodes: list[ChordNode] = []  # sorted by node_id

    # -- membership -----------------------------------------------------------

    def join(self, name: str) -> ChordNode:
        node_id = chord_id(name, self.bits)
        if any(n.node_id == node_id for n in self.nodes):
            raise ValueError(f"id collision for {name!r}; pick another name")
        node = ChordNode(name=name, node_id=node_id, bits=self.bits)
        index = bisect_right([n.node_id for n in self.nodes], node_id)
        self.nodes.insert(index, node)
        self.stabilize()
        return node

    def leave(self, name: str) -> None:
        self.nodes = [n for n in self.nodes if n.name != name]
        self.stabilize()

    def stabilize(self) -> None:
        """Rebuild successors/predecessors/fingers for the current ring."""
        count = len(self.nodes)
        if count == 0:
            return
        for index, node in enumerate(self.nodes):
            node.successor = self.nodes[(index + 1) % count]
            node.predecessor = self.nodes[(index - 1) % count]
            node.fingers = [
                self._successor_of((node.node_id + (1 << i)) % (1 << self.bits))
                for i in range(self.bits)
            ]

    def _successor_of(self, key: int) -> ChordNode:
        ids = [n.node_id for n in self.nodes]
        index = bisect_right(ids, key - 1)
        return self.nodes[index % len(self.nodes)]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: str | bytes | int, start: ChordNode | None = None) -> tuple[ChordNode, int]:
        """Iterative finger-table routing; returns (owner node, hop count)."""
        if not self.nodes:
            raise RuntimeError("empty ring")
        key_id = key if isinstance(key, int) else chord_id(key, self.bits)
        key_id %= 1 << self.bits
        current = start or self.nodes[0]
        hops = 0
        limit = 2 * self.bits + len(self.nodes)
        while True:
            assert current.successor is not None
            if _in_interval(
                key_id, current.node_id, current.successor.node_id, 1 << self.bits
            ):
                return current.successor, hops
            nxt = current.closest_preceding(key_id)
            if nxt is current:
                return current.successor, hops
            current = nxt
            hops += 1
            if hops > limit:
                raise RuntimeError("routing loop: ring not stabilised")

    def successors(self, key: str | bytes, count: int) -> list[ChordNode]:
        """The ``count`` distinct nodes following a key (replica placement)."""
        if count > len(self.nodes):
            raise ValueError(
                f"requested {count} distinct successors from a ring of {len(self.nodes)}"
            )
        owner, _ = self.lookup(key)
        start = self.nodes.index(owner)
        return [self.nodes[(start + i) % len(self.nodes)] for i in range(count)]
