"""A tiny message-level network simulator for the DSN.

Models the properties the storage layer's tests exercise: per-message
latency, byte accounting, node crash/recovery and partitions.  The DSN
client talks to storage nodes exclusively through this layer, so failure
injection exercises real code paths (timeouts -> shard unavailability ->
erasure-decoding from survivors).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class NetworkError(RuntimeError):
    """Raised when a message cannot be delivered (crash or partition)."""


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_sent: int = 0
    total_latency: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.messages if self.messages else 0.0


@dataclass
class SimulatedNetwork:
    """Latency + failure fabric connecting DSN participants by name."""

    base_latency: float = 0.020       # 20 ms
    jitter: float = 0.010
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    stats: NetworkStats = field(default_factory=NetworkStats)
    _down: set[str] = field(default_factory=set)
    _partitions: list[set[str]] = field(default_factory=list)

    # -- failure injection -----------------------------------------------------

    def crash(self, name: str) -> None:
        self._down.add(name)

    def recover(self, name: str) -> None:
        self._down.discard(name)

    def partition(self, *groups: set[str]) -> None:
        self._partitions = [set(g) for g in groups]

    def heal_partition(self) -> None:
        self._partitions = []

    def is_up(self, name: str) -> bool:
        return name not in self._down

    def _reachable(self, src: str, dst: str) -> bool:
        if dst in self._down or src in self._down:
            return False
        if not self._partitions:
            return True
        for group in self._partitions:
            if src in group and dst in group:
                return True
        # Names not mentioned in any partition group are isolated from
        # everything partitioned and connected to each other.
        in_any = any(src in g for g in self._partitions) or any(
            dst in g for g in self._partitions
        )
        return not in_any

    # -- transport ---------------------------------------------------------------

    def send(self, src: str, dst: str, payload_bytes: int) -> float:
        """Deliver a message; returns simulated latency or raises."""
        if not self._reachable(src, dst):
            raise NetworkError(f"{dst} unreachable from {src}")
        latency = self.base_latency + self.rng.random() * self.jitter
        self.stats.messages += 1
        self.stats.bytes_sent += payload_bytes
        self.stats.total_latency += latency
        return latency
