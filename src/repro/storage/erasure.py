"""Systematic Reed-Solomon erasure coding (paper Section III-A).

"Erasure coding (parity blocks) is also required for data redundancy" — the
data owner splits a file into ``k`` data shards and ``n - k`` parity shards
such that *any* ``k`` of the ``n`` survive a loss of the rest.  The paper's
cost discussion uses a "3-out-of-10" code (k=3, n=10); the same class
covers any (n, k).

Construction: a Vandermonde matrix over GF(256) is row-reduced so its top
k x k block is the identity (systematic form).  Encoding is a matrix-vector
product per byte column; decoding inverts the k x k submatrix of surviving
rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..obs.hotpath import HOTPATH
from .gf256 import gf_matmul, gf_matrix_invert, gf_mul, gf_pow


#: Bytes of the big-endian length header :meth:`ReedSolomonCode.encode_framed`
#: prepends, making framed shard sets self-describing on the wire.
FRAME_HEADER_BYTES = 8


def _systematic_matrix(n: int, k: int) -> list[list[int]]:
    """n x k generator matrix whose top k rows are the identity."""
    vandermonde = [[gf_pow(row, col) for col in range(k)] for row in range(1, n + 1)]
    top_inverse = gf_matrix_invert([row[:] for row in vandermonde[:k]])
    return [
        [
            _dot(vandermonde[row], [top_inverse[i][col] for i in range(k)])
            for col in range(k)
        ]
        for row in range(n)
    ]


def _dot(a: list[int], b: list[int]) -> int:
    out = 0
    for x, y in zip(a, b):
        out ^= gf_mul(x, y)
    return out


@dataclass(frozen=True)
class Shard:
    """One erasure-coded piece of a file."""

    index: int
    data: bytes

    @property
    def is_parity(self) -> bool:
        return False  # systematic codes: parity distinction is positional


class ReedSolomonCode:
    """A systematic RS(n, k) code over GF(256).

    ``encode`` returns n shards; ``decode`` reconstructs the original bytes
    from any k of them (by index).  Tolerates up to ``n - k`` erasures —
    the redundancy level the data owner tunes per Section III-A.
    """

    def __init__(self, n: int, k: int):
        if not 1 <= k <= n <= 255:
            raise ValueError("need 1 <= k <= n <= 255 for GF(256) RS codes")
        self.n = n
        self.k = k
        self.matrix = _systematic_matrix(n, k)

    @property
    def redundancy_factor(self) -> float:
        """Storage blow-up: n/k (e.g. 10/3 = 3.33x for the paper's code)."""
        return self.n / self.k

    def shard_length(self, data_length: int) -> int:
        return (data_length + self.k - 1) // self.k

    def encode(self, data: bytes) -> list[Shard]:
        if HOTPATH.enabled:
            t0 = perf_counter()
            result = self._encode(data)
            HOTPATH.add("gf256.encode", perf_counter() - t0)
            return result
        return self._encode(data)

    def _encode(self, data: bytes) -> list[Shard]:
        if not data:
            raise ValueError("cannot encode empty data")
        length = self.shard_length(len(data))
        padded = data.ljust(self.k * length, b"\x00")
        stack = np.frombuffer(padded, dtype=np.uint8).reshape(self.k, length)
        encoded = gf_matmul(self.matrix, stack)
        return [Shard(index=i, data=encoded[i].tobytes()) for i in range(self.n)]

    def decode(self, shards: list[Shard], data_length: int) -> bytes:
        """Reconstruct from any >= k distinct shards."""
        if HOTPATH.enabled:
            t0 = perf_counter()
            result = self._decode(shards, data_length)
            HOTPATH.add("gf256.decode", perf_counter() - t0)
            return result
        return self._decode(shards, data_length)

    def _decode(self, shards: list[Shard], data_length: int) -> bytes:
        unique: dict[int, Shard] = {}
        for shard in shards:
            if not 0 <= shard.index < self.n:
                raise ValueError(f"shard index {shard.index} out of range")
            unique.setdefault(shard.index, shard)
        if len(unique) < self.k:
            raise ValueError(
                f"need at least {self.k} shards to decode, got {len(unique)}"
            )
        chosen = sorted(unique.values(), key=lambda s: s.index)[: self.k]
        lengths = {len(s.data) for s in chosen}
        if len(lengths) != 1:
            raise ValueError("inconsistent shard lengths")
        submatrix = [self.matrix[s.index] for s in chosen]
        inverse = gf_matrix_invert(submatrix)
        stack = np.stack(
            [np.frombuffer(s.data, dtype=np.uint8) for s in chosen]
        )
        recovered = gf_matmul(inverse, stack)
        return recovered.reshape(-1).tobytes()[:data_length]

    def encode_framed(self, data: bytes) -> list[Shard]:
        """Encode with a self-describing length header.

        ``decode`` needs the caller to remember ``data_length`` — fine when
        encoder and decoder share state, unsafe when shards travel (DA
        chunks served over RPC carry no side channel).  Framing prepends an
        8-byte big-endian length so any ``k`` shards alone reconstruct the
        exact original bytes, including the empty payload the bare encoder
        rejects (the frame itself is never empty).
        """
        return self.encode(len(data).to_bytes(FRAME_HEADER_BYTES, "big") + data)

    def decode_framed(self, shards: list[Shard]) -> bytes:
        """Reconstruct framed data from any >= k shards, no length needed."""
        length = self.shard_length_framed(shards)
        raw = self.decode(shards, self.k * length)
        payload_length = int.from_bytes(raw[:FRAME_HEADER_BYTES], "big")
        if FRAME_HEADER_BYTES + payload_length > len(raw):
            raise ValueError(
                f"framed length {payload_length} exceeds decoded capacity "
                f"{len(raw) - FRAME_HEADER_BYTES}"
            )
        return raw[FRAME_HEADER_BYTES : FRAME_HEADER_BYTES + payload_length]

    def shard_length_framed(self, shards: list[Shard]) -> int:
        """Per-shard byte length of a framed shard set (must be uniform)."""
        lengths = {len(shard.data) for shard in shards}
        if len(lengths) != 1:
            raise ValueError("inconsistent shard lengths")
        (length,) = lengths
        if length * self.k < FRAME_HEADER_BYTES:
            raise ValueError("shards too short to carry a length frame")
        return length

    def repair(self, shards: list[Shard], missing_index: int, data_length: int) -> Shard:
        """Regenerate one lost shard from any k survivors."""
        data = self.decode(shards, self.k * self.shard_length(data_length))
        return self.encode(data)[missing_index]
