"""Provider-selection strategies for shard placement.

The baseline client places shards on the DHT successors of the file key
(pure Chord semantics).  Real deployments weigh more than ring position:
the paper's ecosystem discussion implies providers should be chosen by
*reputation* (Section VI-A) and users care about *latency*; capacity
limits are physical.  Each strategy returns an ordered provider list the
client walks until ``n`` shards are placed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from .dht import ChordRing
from .node import DsnCluster, StorageNode


class PlacementStrategy(Protocol):
    def select(self, cluster: DsnCluster, file_id: str, n: int) -> list[str]:
        """Ordered provider names to receive shards (length >= n)."""
        ...


@dataclass
class RingPlacement:
    """Pure Chord: ring successors of the file key (the client's default).

    Returns the *full* ring ordering so callers have fallbacks when a
    preferred node declines a shard (capacity, failures).
    """

    def select(self, cluster: DsnCluster, file_id: str, n: int) -> list[str]:
        if n > len(cluster.nodes):
            raise RuntimeError(f"need {n} providers, ring has {len(cluster.nodes)}")
        return [
            node.name
            for node in cluster.ring.successors(file_id, len(cluster.nodes))
        ]


@dataclass
class CapacityAwarePlacement:
    """Ring order, skipping providers that cannot fit the shard."""

    shard_bytes: int

    def select(self, cluster: DsnCluster, file_id: str, n: int) -> list[str]:
        candidates = cluster.ring.successors(file_id, len(cluster.nodes))
        fitting = [
            node.name
            for node in candidates
            if cluster.node(node.name).capacity_bytes
            - cluster.node(node.name).used_bytes
            >= self.shard_bytes
        ]
        if len(fitting) < n:
            raise RuntimeError(
                f"only {len(fitting)} providers can fit a "
                f"{self.shard_bytes}-byte shard; need {n}"
            )
        return fitting


@dataclass
class ReputationWeightedPlacement:
    """Best-reputation-first among ring candidates (Section VI-A selection).

    ``score_of`` is any callable name -> score; typically
    ``lambda name: chain.call(registry_address, "score_of", name)``.
    """

    score_of: Callable[[str], float]
    minimum_score: float = 0.3

    def select(self, cluster: DsnCluster, file_id: str, n: int) -> list[str]:
        candidates = cluster.ring.successors(file_id, len(cluster.nodes))
        eligible = [
            node.name
            for node in candidates
            if self.score_of(node.name) >= self.minimum_score
        ]
        if len(eligible) < n:
            raise RuntimeError(
                f"only {len(eligible)} providers meet the reputation bar"
            )
        return sorted(eligible, key=lambda name: -self.score_of(name))


@dataclass
class LatencyAwarePlacement:
    """Fastest-first by measured (simulated) round-trip to each provider."""

    probe_bytes: int = 64

    def select(self, cluster: DsnCluster, file_id: str, n: int) -> list[str]:
        from .network import NetworkError

        latencies = []
        for node in cluster.ring.successors(file_id, len(cluster.nodes)):
            try:
                latency = cluster.network.send("placer", node.name, self.probe_bytes)
            except NetworkError:
                continue
            latencies.append((latency, node.name))
        if len(latencies) < n:
            raise RuntimeError("not enough reachable providers")
        latencies.sort()
        return [name for _, name in latencies]


def place_with_strategy(
    client,
    strategy: PlacementStrategy,
    file_id: str,
    plaintext: bytes,
    n: int,
    k: int,
    key_mode: str = "random",
):
    """Store a file using an explicit placement strategy.

    Mirrors :meth:`repro.storage.node.DsnClient.store` but routes shard
    placement through ``strategy`` instead of raw ring successors.
    """
    from .encryption import encrypt_file, generate_key
    from .erasure import ReedSolomonCode
    from .manifest import FileManifest, ShardLocation
    from .node import _checksum

    key = generate_key(plaintext if key_mode == "convergent" else None, key_mode)
    client.keys[file_id] = key
    encrypted = encrypt_file(plaintext, key, key_mode)
    code = ReedSolomonCode(n, k)
    shards = code.encode(encrypted.ciphertext)
    provider_names = strategy.select(client.cluster, file_id, n)
    manifest = FileManifest(
        file_id=file_id,
        plaintext_length=len(plaintext),
        ciphertext_length=len(encrypted.ciphertext),
        erasure_n=n,
        erasure_k=k,
        key_mode=key_mode,
        nonce=encrypted.nonce,
        tag=encrypted.tag,
    )
    placed = 0
    name_iter = iter(provider_names)
    for shard in shards:
        while True:
            provider = next(name_iter, None)
            if provider is None:
                raise RuntimeError("ran out of providers during placement")
            client.cluster.network.send(client.owner_name, provider, len(shard.data))
            if client.cluster.node(provider).put(file_id, shard.index, shard.data):
                manifest.shards.append(
                    ShardLocation(
                        shard_index=shard.index,
                        provider=provider,
                        checksum=_checksum(shard.data),
                    )
                )
                placed += 1
                break
    if placed < n:
        raise RuntimeError("placement incomplete")
    return manifest
