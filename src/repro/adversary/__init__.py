"""Adversarial scenario harness: byzantine providers vs. the audit system.

The paper's security argument — cheating detection with probability
``1 - (1 - rho)^c``, unforgeability of the homomorphic authenticators,
freshness of beacon-derived challenges — is *exercised* here rather than
asserted.  The package provides

* a library of malicious-provider strategies implemented as drop-in
  :class:`~repro.core.prover.Prover` substitutes
  (:mod:`repro.adversary.strategies`),
* a byzantine :class:`~repro.storage.node.StorageNode` substitute for the
  DSN substrate (:mod:`repro.adversary.node`),
* a :class:`ScenarioRunner` that wires any strategy mix into the parallel
  audit engine and epoch scheduler and reports measured detection rates
  against the closed-form prediction (:mod:`repro.adversary.scenario`),
* an on-chain dispute demonstration that drives a cheating provider
  through the audit contract, raises a dispute and slashes collateral and
  reputation stake (:func:`run_onchain_dispute`).

See ``docs/SCENARIOS.md`` for the strategy catalogue with expected
detection probabilities and the CLI commands reproducing each run.
"""

from .feegrief import FeeGriefer, FeeGriefReport, detect_fee_griefers
from .node import ByzantineStorageNode
from .scenario import (
    DisputeDemoResult,
    ScenarioReport,
    ScenarioRunner,
    StrategyStats,
    measured_detection_rate,
    run_onchain_dispute,
)
from .strategies import (
    STRATEGY_KINDS,
    BitRotProver,
    ChurnProver,
    ReplayingProver,
    SelectiveStorageProver,
    StrategySpec,
    TagForgeryProver,
    expected_detection_rate,
    make_prover,
)

__all__ = [
    "STRATEGY_KINDS",
    "BitRotProver",
    "ByzantineStorageNode",
    "ChurnProver",
    "DisputeDemoResult",
    "FeeGriefReport",
    "FeeGriefer",
    "ReplayingProver",
    "ScenarioReport",
    "ScenarioRunner",
    "SelectiveStorageProver",
    "StrategySpec",
    "StrategyStats",
    "TagForgeryProver",
    "detect_fee_griefers",
    "expected_detection_rate",
    "make_prover",
    "measured_detection_rate",
    "run_onchain_dispute",
]
