"""Fee-griefing adversary: buy block space to crowd out audit proofs.

Unlike every strategy in :mod:`repro.adversary.strategies` — which cheat
*inside* the proof protocol — a fee griefer attacks the settlement layer
underneath it: by flooding the mempool with high-tip filler transactions
it drives the EIP-1559 base fee up and outbids honest proof submissions,
hoping providers miss their response windows (and get slashed) without
any cryptographic misbehaviour at all.

The countermeasure is economic and observational:

* honest senders that track the base fee (``Mempool.suggest_fees``) keep
  their transactions admissible, so griefing can delay but not censor —
  the griefer pays the (burned) base fee on every block it occupies,
* the attack is *visible*: :class:`FeeGriefReport` flags senders whose
  drained-gas share and tip premium over a window exceed thresholds, the
  same telemetry the explorer exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.mempool import MempoolRejection
from ..chain.transaction import Transaction


@dataclass
class FeeGriefer:
    """Floods one chain's pool with high-tip gas-sink filler every block.

    ``aggression`` scales the bid: the griefer tips ``aggression`` times
    the honest default and sizes its filler to ``gas_share`` of the block
    gas limit per block.  ``budget_wei`` caps total spend (escrow-level);
    a griefer that runs dry goes quiet, which is what lets the base fee
    decay back to the floor after a storm.
    """

    chain: object
    account: str
    sink_address: str
    gas_share: float = 1.0
    aggression: float = 4.0
    tx_gas: int = 500_000
    budget_wei: int | None = None
    spent_wei: int = 0
    submitted: int = 0
    rejected: int = 0

    def on_block(self) -> int:
        """Submit this block's filler burst; returns admitted tx count."""
        pool = self.chain.pool
        assert pool is not None, "fee griefing needs a mempool-enabled chain"
        budget_gas = int(self.chain.block_gas_limit * self.gas_share)
        count = max(1, budget_gas // self.tx_gas)
        max_fee_gwei, tip_gwei = pool.suggest_fees(1.0)
        tip_gwei *= self.aggression
        max_fee_gwei += tip_gwei
        admitted = 0
        for _ in range(count):
            escrow = int(max_fee_gwei * 10**9) * self.tx_gas
            if self.budget_wei is not None and self.spent_wei + escrow > self.budget_wei:
                break
            try:
                self.chain.submit(
                    Transaction(
                        sender=self.account,
                        to=self.sink_address,
                        method="consume",
                        args=(self.tx_gas - 25_000, "grief"),
                        gas_limit=self.tx_gas,
                        max_fee_gwei=max_fee_gwei,
                        priority_fee_gwei=tip_gwei,
                    )
                )
            except MempoolRejection:
                self.rejected += 1
                continue
            self.spent_wei += escrow
            admitted += 1
            self.submitted += 1
        return admitted


@dataclass(frozen=True)
class FeeGriefReport:
    """Detection verdict for one sender over an observation window."""

    sender: str
    gas_share: float
    mean_tip_wei: float
    honest_tip_wei: float
    flagged: bool


def detect_fee_griefers(
    chain,
    *,
    gas_share_threshold: float = 0.33,
    tip_premium_threshold: float = 2.0,
    honest_tip_wei: int = 10**9,
) -> list[FeeGriefReport]:
    """Flag senders that both dominate drained gas and overbid on tips.

    Works from the pool's drain telemetry alone (no sender identities in
    receipts are needed): a sender is flagged when it consumed more than
    ``gas_share_threshold`` of all pool-drained gas *and* its mean paid
    tip exceeded ``tip_premium_threshold`` times the honest default tip.
    Detection rate against a known griefer population is then simply the
    flagged fraction (measured by the congestion scenario tests).
    """
    pool = chain.pool
    assert pool is not None, "detection reads mempool telemetry"
    total_gas = sum(pool.drained_gas_by_sender.values())
    if not total_gas:
        return []
    tip_sum: dict[str, float] = {}
    tip_count: dict[str, int] = {}
    for (sender, _nonce), tip in pool.drained_tips.items():
        tip_sum[sender] = tip_sum.get(sender, 0.0) + tip
        tip_count[sender] = tip_count.get(sender, 0) + 1
    reports = []
    for sender, gas in sorted(pool.drained_gas_by_sender.items()):
        share = gas / total_gas
        mean_tip = tip_sum.get(sender, 0.0) / max(1, tip_count.get(sender, 0))
        flagged = (
            share > gas_share_threshold
            and mean_tip > tip_premium_threshold * honest_tip_wei
        )
        reports.append(
            FeeGriefReport(
                sender=sender,
                gas_share=share,
                mean_tip_wei=mean_tip,
                honest_tip_wei=float(honest_tip_wei),
                flagged=flagged,
            )
        )
    return reports
